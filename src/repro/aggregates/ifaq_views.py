"""View trees as S-IFAQ expressions (paper Examples 4.9 and 4.10).

The factorized engines in :mod:`repro.aggregates.engine` execute view
trees directly; this module renders the same plans as core-language
expressions, which keeps the transformation story inspectable — unit
tests check that the emitted expressions evaluate (via the reference
interpreter) to the same values the engines produce, and the backend
uses the emitted structure to drive code generation.

Two emitters mirror the paper's ladder:

* :func:`views_per_aggregate_expr` — one view per edge **per
  aggregate** (Example 4.9, before view merging);
* :func:`merged_views_expr` — merged views with record payloads and a
  single multi-aggregate scan per relation (Example 4.10).
"""

from __future__ import annotations

from repro.aggregates.batch import AggregateBatch, AggregateSpec
from repro.aggregates.join_tree import JoinTreeNode
from repro.db.database import Database
from repro.ir.builders import let_star, product, record
from repro.ir.expr import (
    DictLit,
    Dom,
    Expr,
    FieldAccess,
    Lookup,
    RecordLit,
    Sum,
    Var,
)

from repro.aggregates.engine import assign_attribute_owners, _owned_attrs


def _key_record(var: str, attrs: tuple[str, ...]) -> RecordLit:
    return RecordLit(tuple((a, FieldAccess(Var(var), a)) for a in attrs))


def _owned_product(var: str, rel_lookup: Expr, attrs: tuple[str, ...]) -> Expr:
    return product([rel_lookup] + [FieldAccess(Var(var), a) for a in attrs])


def views_per_aggregate_expr(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    result_var: str = "M",
) -> Expr:
    """Example 4.9: independent view trees, one per aggregate.

    Emits ``let V_<rel>_<agg> = ... in`` for every (edge, aggregate)
    pair and a root summation per aggregate, producing a record
    ``{agg_name = ..., ...}``.
    """
    owners = assign_attribute_owners(tree, db, batch.all_attributes())
    bindings: list[tuple[str, Expr]] = []
    root_fields: list[tuple[str, Expr]] = []

    for spec in batch:
        root_expr = _single_view(tree, spec, owners, bindings, suffix=spec.name)
        root_fields.append((spec.name, root_expr))

    return let_star(bindings, record(root_fields))


def _single_view(
    node: JoinTreeNode,
    spec: AggregateSpec,
    owners: dict[str, str],
    bindings: list[tuple[str, Expr]],
    suffix: str,
) -> Expr:
    """Emit the view chain for one aggregate rooted at ``node``.

    Children emit ``let``-bound dictionary views; the node itself
    returns a summation expression (a scalar at the root, a dictionary
    elsewhere — the caller binds it).
    """
    rel = node.relation
    x = f"x_{rel.lower()}"
    rel_lookup = Lookup(Var(rel), Var(x))
    owned = _owned_attrs(spec, owners, rel)

    factors: list[Expr] = [_owned_product(x, rel_lookup, owned)]
    for child in node.children:
        child_expr = _single_view(child, spec, owners, bindings, suffix)
        view_name = f"V_{child.relation}_{suffix}"
        bindings.append((view_name, child_expr))
        factors.append(Lookup(Var(view_name), _key_record(x, child.join_attrs)))

    body = product(factors)
    if node.join_attrs:  # non-root: a dictionary view keyed by join attrs
        return Sum(x, Dom(Var(rel)), DictLit(((_key_record(x, node.join_attrs), body),)))
    return Sum(x, Dom(Var(rel)), body)


def merged_views_expr(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
) -> Expr:
    """Example 4.10: merged views with record payloads, one scan per
    relation for the whole batch (multi-aggregate iteration)."""
    owners = assign_attribute_owners(tree, db, batch.all_attributes())
    bindings: list[tuple[str, Expr]] = []
    root_expr = _merged_view(tree, batch, owners, bindings)
    return let_star(bindings, root_expr)


def _merged_view(
    node: JoinTreeNode,
    batch: AggregateBatch,
    owners: dict[str, str],
    bindings: list[tuple[str, Expr]],
) -> Expr:
    rel = node.relation
    x = f"x_{rel.lower()}"
    rel_lookup = Lookup(Var(rel), Var(x))
    w_vars: list[tuple[str, JoinTreeNode]] = []

    inner_bindings: list[tuple[str, Expr]] = []
    for child in node.children:
        child_expr = _merged_view(child, batch, owners, bindings)
        view_name = f"W_{child.relation}"
        bindings.append((view_name, child_expr))
        w_var = f"w_{child.relation.lower()}"
        inner_bindings.append(
            (w_var, Lookup(Var(view_name), _key_record(x, child.join_attrs)))
        )
        w_vars.append((w_var, child))

    payload_fields: list[tuple[str, Expr]] = []
    for spec in batch:
        owned = _owned_attrs(spec, owners, rel)
        factors: list[Expr] = [FieldAccess(Var(x), a) for a in owned]
        for w_var, _child in w_vars:
            factors.append(FieldAccess(Var(w_var), spec.name))
        payload_fields.append((spec.name, product(factors)))
    payload = record(payload_fields)

    if node.join_attrs:
        body: Expr = Mul_scalar(rel_lookup, DictLit(((_key_record(x, node.join_attrs), payload),)))
    else:
        body = Mul_scalar(rel_lookup, payload)
    inner = let_star(inner_bindings, body)
    return Sum(x, Dom(Var(rel)), inner)


def Mul_scalar(scalar: Expr, value: Expr) -> Expr:
    from repro.ir.expr import Mul

    return Mul(scalar, value)
