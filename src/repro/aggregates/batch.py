"""Aggregate batches (paper Section 4.3, "Extract Aggregates").

The data-intensive kernel of an IFAQ learning program is a *batch* of
sum-product aggregates over the join result::

    M_{f1,f2} = Σ_{x∈dom(Q)} Q(x) · x.f1 · x.f2

An :class:`AggregateSpec` names the product of attributes (with
multiplicity — ``("c", "c")`` is ``x.c²``; the empty product is the
count ``|Q|``).  An :class:`AggregateBatch` is an ordered collection of
distinct specs; the whole covar matrix for *n* features is one batch of
``n(n+1)/2 + n + 1`` aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class AggregateSpec:
    """One sum-product aggregate: ``Σ Q(x) · Π_{a∈attrs} x.a``.

    ``attrs`` is kept sorted so that ``x.c * x.p`` and ``x.p * x.c``
    are the same aggregate — the view-merging pass deduplicates on
    this identity.
    """

    attrs: tuple[str, ...]

    @staticmethod
    def of(*attrs: str) -> "AggregateSpec":
        return AggregateSpec(tuple(sorted(attrs)))

    @property
    def name(self) -> str:
        """A stable identifier usable as a record field name."""
        if not self.attrs:
            return "agg_count"
        return "agg_" + "_".join(self.attrs)

    @property
    def degree(self) -> int:
        return len(self.attrs)

    def __repr__(self) -> str:
        if not self.attrs:
            return "Σ Q(x)"
        prod = "·".join(f"x.{a}" for a in self.attrs)
        return f"Σ Q(x)·{prod}"


COUNT = AggregateSpec(())


@dataclass(frozen=True)
class AggregateBatch:
    """An ordered set of distinct aggregate specs evaluated together."""

    specs: tuple[AggregateSpec, ...]

    @staticmethod
    def of(specs: Iterable[AggregateSpec]) -> "AggregateBatch":
        seen: dict[AggregateSpec, None] = {}
        for s in specs:
            seen.setdefault(s, None)
        return AggregateBatch(tuple(seen))

    def __iter__(self) -> Iterator[AggregateSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def index_of(self, spec: AggregateSpec) -> int:
        return self.specs.index(spec)

    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    def all_attributes(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for s in self.specs:
            for a in s.attrs:
                seen.setdefault(a, None)
        return tuple(seen)


def covar_batch(features: Sequence[str], label: str | None = None) -> AggregateBatch:
    """The non-centred covariance batch for linear regression.

    Contains the count, the first moments ``Σ x.f``, the second moments
    ``Σ x.f·x.g`` for every unordered feature pair (squares included),
    and — when a label is given — the label moments ``Σ x.y``,
    ``Σ x.y²`` and correlations ``Σ x.f·x.y``.
    """
    cols = list(features) + ([label] if label is not None else [])
    specs: list[AggregateSpec] = [COUNT]
    specs.extend(AggregateSpec.of(f) for f in cols)
    for i, f in enumerate(cols):
        for g in cols[i:]:
            specs.append(AggregateSpec.of(f, g))
    return AggregateBatch.of(specs)


def variance_batch(label: str) -> AggregateBatch:
    """The CART node-cost batch: count, ``Σ y``, ``Σ y²`` (Section 3)."""
    return AggregateBatch.of(
        [COUNT, AggregateSpec.of(label), AggregateSpec.of(label, label)]
    )
