"""Aggregate extraction (paper Section 4.3, "Extract Aggregates").

Scans an S-IFAQ expression for sum-product aggregates over the training
dataset ``Q``::

    Σ_{x∈dom(Q)} Q(x) · x.f1 · ... · x.fk        (k ≥ 0)

and replaces each with a field access into an aggregate-batch record
(``__aggs.agg_f1_f2``).  The collected batch is then computed directly
over the input database by the factorized engines — the expression no
longer needs ``Q`` materialized at all.

Constant factors are preserved outside the extracted aggregate, so
``Σ Q(x)·(-1)·x.f`` extracts the aggregate ``Σ Q(x)·x.f`` scaled by
``-1`` at the use site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aggregates.batch import AggregateBatch, AggregateSpec
from repro.ir.expr import (
    Const,
    Dom,
    Expr,
    FieldAccess,
    Lookup,
    Mul,
    Sum,
    Var,
)
from repro.ir.program import Program
from repro.ir.traversal import children, free_vars, rebuild_exact
from repro.opt.factorization import flatten_product


@dataclass
class ExtractionResult:
    """The rewritten expression plus the aggregates it references."""

    expr: Expr
    specs: list[AggregateSpec] = field(default_factory=list)

    def batch(self) -> AggregateBatch:
        return AggregateBatch.of(self.specs)


def match_aggregate(e: Expr, q_var: str) -> tuple[AggregateSpec, float] | None:
    """Match ``Σ_{x∈dom(Q)} c · Q(x) · x.a1 ⋯ x.ak`` → (spec, c).

    Returns None when the summation body contains anything beyond the
    relation lookup, field accesses on the loop variable, and numeric
    constants.
    """
    if not isinstance(e, Sum):
        return None
    if not (isinstance(e.domain, Dom) and isinstance(e.domain.operand, Var)):
        return None
    if e.domain.operand.name != q_var:
        return None
    x = e.var

    factors = flatten_product(e.body)
    lookup_count = 0
    attrs: list[str] = []
    coefficient = 1.0
    for f in factors:
        if isinstance(f, Lookup) and f.dict_expr == Var(q_var) and f.key == Var(x):
            lookup_count += 1
        elif isinstance(f, FieldAccess) and f.record == Var(x):
            attrs.append(f.name)
        elif isinstance(f, Const) and isinstance(f.value, (int, float)) and not isinstance(f.value, bool):
            coefficient *= f.value
        else:
            return None
    if lookup_count != 1:
        return None
    return AggregateSpec.of(*attrs), coefficient


def extract_aggregates(
    e: Expr, q_var: str = "Q", aggs_var: str = "__aggs"
) -> ExtractionResult:
    """Replace every matching aggregate in ``e`` with a batch reference."""
    result = ExtractionResult(expr=e)

    def visit(node: Expr) -> Expr:
        matched = match_aggregate(node, q_var)
        if matched is not None:
            spec, coefficient = matched
            if spec not in result.specs:
                result.specs.append(spec)
            ref: Expr = FieldAccess(Var(aggs_var), spec.name)
            if coefficient != 1.0:
                ref = Mul(Const(coefficient), ref)
            return ref
        new_children = tuple(visit(c) for c in children(node))
        return rebuild_exact(node, new_children)

    result.expr = visit(e)
    return result


def extract_program_aggregates(
    program: Program, q_var: str = "Q", aggs_var: str = "__aggs"
) -> tuple[Program, AggregateBatch]:
    """Extract aggregates from every component of a program.

    After extraction the init binding ``Q`` (and anything only it
    needed) is usually dead; :func:`remove_dead_inits` prunes it, so the
    residual program never touches the join result.
    """
    collector = ExtractionResult(expr=program.body)
    specs: list[AggregateSpec] = []

    def extract(e: Expr) -> Expr:
        res = extract_aggregates(e, q_var, aggs_var)
        for s in res.specs:
            if s not in specs:
                specs.append(s)
        return res.expr

    new_program = Program(
        inits=tuple(
            (name, extract(value)) if name != q_var else (name, value)
            for name, value in program.inits
        ),
        state=program.state,
        init=extract(program.init),
        cond=extract(program.cond),
        body=extract(program.body),
    )
    return remove_dead_inits(new_program), AggregateBatch.of(specs)


def remove_dead_inits(program: Program) -> Program:
    """Drop init bindings not referenced by anything downstream."""
    needed = (
        free_vars(program.init)
        | free_vars(program.cond)
        | free_vars(program.body)
    ) - {program.state}
    kept: list[tuple[str, Expr]] = []
    for name, value in reversed(program.inits):
        if name in needed:
            kept.append((name, value))
            needed |= free_vars(value)
    kept.reverse()
    if len(kept) == len(program.inits):
        return program
    return Program(
        inits=tuple(kept),
        state=program.state,
        init=program.init,
        cond=program.cond,
        body=program.body,
    )
