"""Join tree construction (paper Section 4.3, Example 4.8).

A join tree has relations as nodes; an edge is annotated with the
attributes its endpoints join on.  The tree directs the aggregate
pushdown: views flow bottom-up from leaves towards the root, which is
normally the fact table.

The paper assumes the join order is given (standard query-optimization
territory); :func:`build_join_tree` provides a sensible default — a
maximum-shared-attributes spanning tree rooted at the largest relation
— and callers can also pass an explicit parent mapping.  Rerooting
(:func:`reroot`) supports group-by aggregates whose group attribute
lives in a dimension table, as the regression-tree learner needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.db.schema import DatabaseSchema


@dataclass
class JoinTreeNode:
    """One relation in the join tree."""

    relation: str
    #: attributes shared with the parent (empty at the root)
    join_attrs: tuple[str, ...] = ()
    children: list["JoinTreeNode"] = field(default_factory=list)

    def walk(self) -> Iterator["JoinTreeNode"]:
        """Pre-order traversal."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, relation: str) -> "JoinTreeNode | None":
        for node in self.walk():
            if node.relation == relation:
                return node
        return None

    def relation_names(self) -> list[str]:
        return [n.relation for n in self.walk()]

    def pretty(self, indent: int = 0) -> str:
        key = f" ⋈[{', '.join(self.join_attrs)}]" if self.join_attrs else " (root)"
        lines = [" " * indent + self.relation + key]
        for c in self.children:
            lines.append(c.pretty(indent + 2))
        return "\n".join(lines)


class JoinTreeError(ValueError):
    """The query's join graph cannot form a (connected, acyclic) tree."""


def build_join_tree(
    schema: DatabaseSchema,
    relations: Sequence[str],
    root: str | None = None,
    stats: Mapping[str, int] | None = None,
) -> JoinTreeNode:
    """Greedy maximum-spanning-tree construction over the join graph.

    The root defaults to the relation with the most tuples (the fact
    table).  Edges are chosen by descending number of shared join
    attributes — a stand-in for the cost-based optimizer the paper
    defers to [25].
    """
    relations = list(relations)
    if not relations:
        raise JoinTreeError("no relations given")
    if root is None:
        if stats:
            root = max(relations, key=lambda r: stats.get(r, 0))
        else:
            root = relations[0]
    if root not in relations:
        raise JoinTreeError(f"root {root!r} is not among the query relations")

    graph = schema.join_graph()
    edges: dict[frozenset[str], tuple[str, ...]] = {
        frozenset(pair): attrs
        for pair, attrs in graph.items()
        if pair[0] in relations and pair[1] in relations
    }

    nodes = {root: JoinTreeNode(root)}
    remaining = set(relations) - {root}
    while remaining:
        best: tuple[int, str, str] | None = None
        for pending in remaining:
            for attached in nodes:
                attrs = edges.get(frozenset((pending, attached)))
                if attrs and (best is None or len(attrs) > best[0]):
                    best = (len(attrs), pending, attached)
        if best is None:
            raise JoinTreeError(
                f"join graph is disconnected: cannot attach {sorted(remaining)}"
            )
        _, pending, attached = best
        attrs = edges[frozenset((pending, attached))]
        child = JoinTreeNode(pending, join_attrs=attrs)
        nodes[attached].children.append(child)
        nodes[pending] = child
        remaining.discard(pending)
    return nodes[root]


def reroot(tree: JoinTreeNode, new_root: str, schema: DatabaseSchema) -> JoinTreeNode:
    """Reorient the tree so ``new_root`` becomes the root.

    Used for group-by aggregates: the grouping attribute's owner must
    sit at the root so the final scan is keyed by it (LMFAO's
    multi-root trick, which the paper lists as the categorical-feature
    extension).
    """
    if tree.relation == new_root:
        return tree
    if tree.find(new_root) is None:
        raise JoinTreeError(f"{new_root!r} is not in the join tree")

    # The tree as an undirected adjacency list, edges keeping their
    # join attributes; then rebuild by BFS from the new root.
    adjacency: dict[str, list[tuple[str, tuple[str, ...]]]] = {
        n.relation: [] for n in tree.walk()
    }
    for node in tree.walk():
        for c in node.children:
            adjacency[node.relation].append((c.relation, c.join_attrs))
            adjacency[c.relation].append((node.relation, c.join_attrs))

    root = JoinTreeNode(new_root)
    nodes = {new_root: root}
    frontier = [new_root]
    while frontier:
        current = frontier.pop()
        for neighbour, attrs in adjacency[current]:
            if neighbour in nodes:
                continue
            child = JoinTreeNode(neighbour, join_attrs=attrs)
            nodes[current].children.append(child)
            nodes[neighbour] = child
            frontier.append(neighbour)
    return root
