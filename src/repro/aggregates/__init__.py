"""Aggregate-query optimizations (paper Section 4.3)."""

from repro.aggregates.batch import (
    COUNT,
    AggregateBatch,
    AggregateSpec,
    covar_batch,
    variance_batch,
)
from repro.aggregates.engine import (
    apply_predicates,
    compute_batch_materialized,
    compute_batch_merged,
    compute_batch_mode,
    compute_batch_pushdown,
    compute_batch_trie,
    compute_groupby,
    compute_groupby_many,
    compute_groupby_tree,
)
from repro.aggregates.extract import (
    ExtractionResult,
    extract_aggregates,
    extract_program_aggregates,
    match_aggregate,
    remove_dead_inits,
)
from repro.aggregates.ifaq_views import merged_views_expr, views_per_aggregate_expr
from repro.aggregates.join_tree import (
    JoinTreeError,
    JoinTreeNode,
    build_join_tree,
    reroot,
)

__all__ = [
    "COUNT", "AggregateBatch", "AggregateSpec", "ExtractionResult",
    "JoinTreeError", "JoinTreeNode", "apply_predicates", "build_join_tree",
    "compute_batch_materialized", "compute_batch_merged",
    "compute_batch_mode", "compute_batch_pushdown", "compute_batch_trie",
    "compute_groupby", "compute_groupby_many", "compute_groupby_tree",
    "covar_batch", "extract_aggregates", "extract_program_aggregates",
    "match_aggregate", "merged_views_expr", "remove_dead_inits", "reroot",
    "variance_batch", "views_per_aggregate_expr",
]
