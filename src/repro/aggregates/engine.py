"""Factorized evaluation of aggregate batches over a join tree.

This module implements the Section 4.3 execution strategies as three
progressively optimized engines — the exact ladder of Figure 7a:

* :func:`compute_batch_pushdown` — *Aggregate Pushdown* (Example 4.9):
  every aggregate gets its own view tree, so each relation is scanned
  once **per aggregate**.
* :func:`compute_batch_merged` — *Merge Views* + *Multi-Aggregate
  Iteration* (Example 4.10): views computed at the same node merge, and
  one scan per relation computes all aggregates simultaneously
  (horizontal loop fusion, Figure 4h).
* :func:`compute_batch_trie` — *Dictionary to Trie* (Example 4.11): the
  root relation is grouped into a trie on its join attributes, hoisting
  child-view lookups and per-aggregate partial products out of the
  inner loops (factorized evaluation).

:func:`compute_batch_materialized` is the oracle: it materializes the
join (what the mainstream pipeline does) and aggregates over it.

All engines accept per-relation predicates, which is how the CART
learner pushes its node conditions δ into the scans.  Group-by batches
reroot the join tree at the owner of the grouping attribute:
:func:`compute_groupby_tree` is the interpreted evaluator, while
:func:`compute_groupby` routes the batch through the execution-backend
registry and the kernel cache like any other plannable kernel.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.aggregates.batch import AggregateBatch, AggregateSpec
from repro.aggregates.join_tree import JoinTreeNode, reroot
from repro.db.database import Database
from repro.db.query import JoinQuery, materialize_join
from repro.db.relation import Relation
from repro.runtime.values import RecordValue

Predicate = Callable[[RecordValue], bool]
Predicates = Mapping[str, Sequence[Predicate]]


def _passes(rel_name: str, rec: RecordValue, predicates: Predicates | None) -> bool:
    if not predicates:
        return True
    for p in predicates.get(rel_name, ()):
        if not p(rec):
            return False
    return True


def apply_predicates(db: Database, predicates: Predicates | None) -> Database:
    """A database with per-relation predicates folded into the data.

    Scanning the filtered relations is equivalent to applying the
    predicates inside the scans (they are per-relation and record-local),
    which lets kernel backends that cannot evaluate Python callables
    push δ conditions by filtering their input instead.
    """
    if not predicates:
        return db
    relations = dict(db.relations)
    for name, preds in predicates.items():
        if not preds or name not in relations:
            continue
        rel = relations[name]
        relations[name] = Relation(
            rel.schema,
            {rec: m for rec, m in rel.data.items() if _passes(name, rec, predicates)},
        )
    return Database(relations)


def assign_attribute_owners(
    tree: JoinTreeNode, db: Database, attrs: Sequence[str]
) -> dict[str, str]:
    """Map each aggregate attribute to the unique tree node providing it.

    Join attributes occur in several relations; the node nearest the
    root wins (any single owner is correct, because joined tuples agree
    on shared attributes).
    """
    owners: dict[str, str] = {}
    for attr in attrs:
        for node in tree.walk():  # pre-order: root first
            if db.relation(node.relation).schema.has_attribute(attr):
                owners[attr] = node.relation
                break
        else:
            raise KeyError(
                f"attribute {attr!r} is not provided by any relation in the join tree"
            )
    return owners


def _owned_attrs(spec: AggregateSpec, owners: dict[str, str], rel: str) -> tuple[str, ...]:
    return tuple(a for a in spec.attrs if owners[a] == rel)


def _partial(rec: RecordValue, attrs: tuple[str, ...], mult: int) -> float:
    value: float = mult
    for a in attrs:
        value *= rec[a]
    return value


# ---------------------------------------------------------------------------
# Oracle: aggregate over the materialized join
# ---------------------------------------------------------------------------


def compute_batch_materialized(
    db: Database,
    query: JoinQuery,
    batch: AggregateBatch,
    predicates: Predicates | None = None,
) -> dict[str, float]:
    """Materialize ``Q`` and aggregate over it (the unfactorized plan)."""
    joined = materialize_join(db, query)
    results = {spec.name: 0.0 for spec in batch}
    rel_names = list(query.relations)
    for rec, mult in joined.data.items():
        if predicates and not all(
            _passes(r, rec, predicates) for r in rel_names
        ):
            # Predicates are per-relation but every output attribute is
            # present in the join record, so they can be applied directly.
            continue
        for spec in batch:
            results[spec.name] += _partial(rec, spec.attrs, mult)
    return results


# ---------------------------------------------------------------------------
# Mode A: aggregate pushdown, one view tree per aggregate
# ---------------------------------------------------------------------------


def compute_batch_pushdown(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    predicates: Predicates | None = None,
) -> dict[str, float]:
    """Example 4.9: each aggregate pushes its own views down the tree.

    Correct but wasteful: ``len(batch)`` scans of every relation ("the
    performance of which can be even worse than materializing the
    join").
    """
    owners = assign_attribute_owners(tree, db, batch.all_attributes())
    results: dict[str, float] = {}
    for spec in batch:
        results[spec.name] = _eval_single(tree, db, spec, owners, predicates)
    return results


def _eval_single(
    node: JoinTreeNode,
    db: Database,
    spec: AggregateSpec,
    owners: dict[str, str],
    predicates: Predicates | None,
) -> Any:
    """Evaluate one aggregate at ``node``; returns a scalar at the root
    and a ``{join_key: partial}`` view below it."""
    relation = db.relation(node.relation)
    owned = _owned_attrs(spec, owners, node.relation)
    child_views = [
        (_eval_single(c, db, spec, owners, predicates), c.join_attrs)
        for c in node.children
    ]

    is_root = not node.join_attrs
    view: dict[tuple, float] = {}
    total = 0.0
    for rec, mult in relation.data.items():
        if not _passes(node.relation, rec, predicates):
            continue
        value = _partial(rec, owned, mult)
        for child_view, join_attrs in child_views:
            key = tuple(rec[a] for a in join_attrs)
            partial = child_view.get(key)
            if partial is None:
                value = 0.0
                break
            value *= partial
        if value == 0.0:
            continue
        if is_root:
            total += value
        else:
            key = tuple(rec[a] for a in node.join_attrs)
            view[key] = view.get(key, 0.0) + value
    return total if is_root else view


# ---------------------------------------------------------------------------
# Mode B: merged views + multi-aggregate iteration
# ---------------------------------------------------------------------------


def compute_batch_merged(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    predicates: Predicates | None = None,
) -> dict[str, float]:
    """Example 4.10: one fused scan per relation computes all aggregates.

    Views computed at the same node share their key (the join
    attributes with the parent) and merge into a single view whose
    payload is the vector of partial aggregates.
    """
    owners = assign_attribute_owners(tree, db, batch.all_attributes())
    totals = _eval_merged(tree, db, batch, owners, predicates)
    return {spec.name: totals[i] for i, spec in enumerate(batch)}


def _eval_merged(
    node: JoinTreeNode,
    db: Database,
    batch: AggregateBatch,
    owners: dict[str, str],
    predicates: Predicates | None,
) -> Any:
    relation = db.relation(node.relation)
    owned_per_spec = [
        _owned_attrs(spec, owners, node.relation) for spec in batch
    ]
    child_views = [
        (_eval_merged(c, db, batch, owners, predicates), c.join_attrs)
        for c in node.children
    ]
    n = len(batch.specs)

    is_root = not node.join_attrs
    view: dict[tuple, list[float]] = {}
    totals = [0.0] * n
    for rec, mult in relation.data.items():
        if not _passes(node.relation, rec, predicates):
            continue
        values = [_partial(rec, owned, mult) for owned in owned_per_spec]
        dead = False
        for child_view, join_attrs in child_views:
            key = tuple(rec[a] for a in join_attrs)
            partials = child_view.get(key)
            if partials is None:
                dead = True
                break
            for i in range(n):
                values[i] *= partials[i]
        if dead:
            continue
        if is_root:
            for i in range(n):
                totals[i] += values[i]
        else:
            key = tuple(rec[a] for a in node.join_attrs)
            acc = view.get(key)
            if acc is None:
                view[key] = values
            else:
                for i in range(n):
                    acc[i] += values[i]
    return totals if is_root else view


# ---------------------------------------------------------------------------
# Mode C: trie-factorized root scan
# ---------------------------------------------------------------------------


def build_root_trie(
    db: Database,
    tree: JoinTreeNode,
    predicates: Predicates | None = None,
) -> Any:
    """Group the root relation by its per-child join keys.

    Matches the paper's setup assumption that relations are indexed by
    their join attributes: benchmarks build the trie once (untimed) and
    hand it to :func:`compute_batch_trie`.
    """
    attr_groups = [list(c.join_attrs) for c in tree.children]
    return _group_relation(
        db.relation(tree.relation), attr_groups, tree.relation, predicates
    )


def compute_batch_trie(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    predicates: Predicates | None = None,
    root_trie: Any = None,
) -> dict[str, float]:
    """Example 4.11: the root relation becomes a trie grouped by its
    join attributes, so child-view lookups (and the per-aggregate
    multiplications by their partials) hoist out of the inner loops.

    ``root_trie`` may be supplied prebuilt (see :func:`build_root_trie`);
    otherwise it is constructed here.
    """
    owners = assign_attribute_owners(tree, db, batch.all_attributes())
    n = len(batch.specs)

    child_views = [
        (_eval_merged(c, db, batch, owners, predicates), c.join_attrs)
        for c in tree.children
    ]
    if root_trie is None:
        root_trie = build_root_trie(db, tree, predicates)

    owned_per_spec = [
        _owned_attrs(spec, owners, tree.relation) for spec in batch
    ]
    spec_range = range(n)

    totals = [0.0] * n

    def leaf(records: list, partials: list[float]) -> None:
        for rec, mult in records:
            for i in spec_range:
                value = partials[i] * mult
                if value:
                    for a in owned_per_spec[i]:
                        value *= rec[a]
                    totals[i] += value

    def descend(level: int, node: Any, partials: list[float]) -> None:
        if level == len(child_views):
            leaf(node, partials)
            return
        child_view, _ = child_views[level]
        last = level == len(child_views) - 1
        for key, sub in node.items():
            child_partials = child_view.get(key)
            if child_partials is None:
                continue
            next_partials = [partials[i] * child_partials[i] for i in spec_range]
            if last:
                leaf(sub, next_partials)
            else:
                descend(level + 1, sub, next_partials)

    descend(0, root_trie, [1.0] * n)
    return {spec.name: totals[i] for i, spec in enumerate(batch)}


def _group_relation(
    relation: Relation,
    attr_groups: list[list[str]],
    rel_name: str,
    predicates: Predicates | None,
) -> Any:
    """Group tuples into nested dicts keyed by each join-attr group;
    leaves keep the full records (owned attributes may live anywhere)."""
    if not attr_groups:
        return [
            (rec, mult)
            for rec, mult in relation.data.items()
            if _passes(rel_name, rec, predicates)
        ]
    root: dict = {}
    for rec, mult in relation.data.items():
        if not _passes(rel_name, rec, predicates):
            continue
        node = root
        for group in attr_groups[:-1]:
            node = node.setdefault(tuple(rec[a] for a in group), {})
        last = tuple(rec[a] for a in attr_groups[-1])
        node.setdefault(last, []).append((rec, mult))
    return root


# ---------------------------------------------------------------------------
# Mode dispatch (used by the engine execution backend)
# ---------------------------------------------------------------------------


def compute_batch_mode(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    mode: str = "trie",
    query: JoinQuery | None = None,
    predicates: Predicates | None = None,
) -> dict[str, float]:
    """Evaluate a batch by the named Section 4.3 strategy.

    ``materialized`` joins in ``query`` order when a query is given,
    otherwise in the tree's pre-order (the bags are equal either way).
    """
    if mode == "materialized":
        if query is None:
            query = JoinQuery(tuple(tree.relation_names()))
        return compute_batch_materialized(db, query, batch, predicates)
    if mode == "pushdown":
        return compute_batch_pushdown(db, tree, batch, predicates)
    if mode == "merged":
        return compute_batch_merged(db, tree, batch, predicates)
    if mode == "trie":
        return compute_batch_trie(db, tree, batch, predicates)
    raise ValueError(
        f"unknown aggregate mode {mode!r}; expected one of "
        "'materialized', 'pushdown', 'merged', 'trie'"
    )


# ---------------------------------------------------------------------------
# Group-by batches (regression trees / LMFAO-style)
# ---------------------------------------------------------------------------


def compute_groupby(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    group_attr: str,
    predicates: Predicates | None = None,
    *,
    backend: Any = "engine",
    kernel_cache: Any = None,
    layout: Any = None,
    plan: Any = None,
) -> dict[Any, list[float]]:
    """Per-group aggregate vectors: ``group value → [agg values]``.

    Group-by batches flow through the same plan → kernel → cache path
    as scalar batches: a group-by :class:`~repro.backend.plan.BatchPlan`
    (rerooted at the owner of ``group_attr``) is compiled once per
    (plan, layout, backend) fingerprint and every later call — e.g. the
    tree learner's per-node batches for the same feature — reuses the
    cached kernel with only the δ ``predicates`` changing at execution.

    ``backend`` is any registered name or
    :class:`~repro.backend.base.ExecutionBackend` instance; ``plan`` may
    be supplied prebuilt to skip planning (the fingerprint is cheap, the
    per-child cardinality statistics are not).
    """
    # Imported lazily: this module sits below the backend layer.
    from repro.backend.cache import default_kernel_cache
    from repro.backend.layout import LAYOUT_SORTED
    from repro.backend.plan import build_batch_plan
    from repro.backend.registry import get_backend

    if plan is None:
        plan = build_batch_plan(db, tree, batch, group_attr=group_attr)
    backend_impl = get_backend(backend)
    cache = kernel_cache if kernel_cache is not None else default_kernel_cache()
    kernel = cache.get_or_compile(
        backend_impl, plan, layout if layout is not None else LAYOUT_SORTED
    )
    return backend_impl.run_groupby(kernel, db, predicates)


def compute_groupby_many(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    group_attrs: Sequence[str],
    predicates: Predicates | None = None,
    *,
    backend: Any = "engine",
    kernel_cache: Any = None,
    layout: Any = None,
    plans: Mapping[str, Any] | None = None,
    multi_plan: Any = None,
) -> dict[str, dict[Any, list[float]]]:
    """Fused group-by batches: ``{group_attr: {group value: [values]}}``.

    Submits one group-by batch per attribute in ``group_attrs`` — the
    same batch, the same δ ``predicates`` — as a single
    :class:`~repro.backend.plan.MultiBatchPlan` kernel, so backends can
    share work across members (the numpy backend computes predicate
    masks once and shares the bottom-up value pass between attributes
    owned by the same relation).  Results are element-wise identical to
    calling :func:`compute_groupby` once per attribute.

    ``plans`` maps attributes to prebuilt single plans and ``multi_plan``
    may be the prebuilt bundle (the tree learner builds both once at fit
    time); missing pieces are planned here.
    """
    from repro.backend.cache import default_kernel_cache
    from repro.backend.layout import LAYOUT_SORTED
    from repro.backend.plan import MultiBatchPlan, build_batch_plan
    from repro.backend.registry import get_backend

    if multi_plan is None:
        plans = dict(plans) if plans else {}
        for attr in group_attrs:
            if attr not in plans:
                plans[attr] = build_batch_plan(db, tree, batch, group_attr=attr)
        multi_plan = MultiBatchPlan([plans[attr] for attr in group_attrs])
    elif multi_plan.group_attr != tuple(group_attrs):
        # Results are labelled by zipping member order with group_attrs;
        # a reordered prebuilt bundle must fail loudly, not mislabel.
        raise ValueError(
            f"multi_plan member order {multi_plan.group_attr!r} does not "
            f"match group_attrs {tuple(group_attrs)!r}"
        )
    backend_impl = get_backend(backend)
    cache = kernel_cache if kernel_cache is not None else default_kernel_cache()
    kernel = cache.get_or_compile(
        backend_impl, multi_plan, layout if layout is not None else LAYOUT_SORTED
    )
    results = backend_impl.run_groupby_many(kernel, db, predicates)
    return dict(zip(group_attrs, results))


def compute_groupby_tree(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    group_attr: str,
    predicates: Predicates | None = None,
) -> dict[Any, list[float]]:
    """The interpreted group-by evaluator (the engine backend's kernel).

    The tree is rerooted at the relation owning ``group_attr`` so the
    final scan is keyed by the grouping attribute directly.  Most
    callers want :func:`compute_groupby`, which adds kernel caching and
    backend choice on top of this.
    """
    owners = assign_attribute_owners(tree, db, list(batch.all_attributes()) + [group_attr])
    owner = owners[group_attr]
    if tree.relation != owner:
        tree = reroot(tree, owner, db.schema())
        owners = assign_attribute_owners(tree, db, batch.all_attributes())

    relation = db.relation(tree.relation)
    owned_per_spec = [
        _owned_attrs(spec, owners, tree.relation) for spec in batch
    ]
    child_views = [
        (_eval_merged(c, db, batch, owners, predicates), c.join_attrs)
        for c in tree.children
    ]
    n = len(batch.specs)

    groups: dict[Any, list[float]] = {}
    for rec, mult in relation.data.items():
        if not _passes(tree.relation, rec, predicates):
            continue
        values = [_partial(rec, owned, mult) for owned in owned_per_spec]
        dead = False
        for child_view, join_attrs in child_views:
            key = tuple(rec[a] for a in join_attrs)
            partials = child_view.get(key)
            if partials is None:
                dead = True
                break
            for i in range(n):
                values[i] *= partials[i]
        if dead:
            continue
        acc = groups.get(rec[group_attr])
        if acc is None:
            groups[rec[group_attr]] = values
        else:
            for i in range(n):
                acc[i] += values[i]
    return groups
