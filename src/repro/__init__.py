"""IFAQ — Multi-layer Optimizations for End-to-End Data Analytics.

A from-scratch Python reproduction of the CGO 2020 paper by Shaikhha,
Schleich, Ghita and Olteanu.  The package provides:

* :mod:`repro.ir` — the IFAQ core language (D-IFAQ / S-IFAQ AST),
* :mod:`repro.interp` — the reference interpreter,
* :mod:`repro.opt` — high-level optimizations (Figure 4a-e, i),
* :mod:`repro.typing` — schema specialization and the S-IFAQ type checker,
* :mod:`repro.aggregates` — aggregate batch extraction, join trees,
  pushdown, view merging, multi-aggregate iteration, tries,
* :mod:`repro.backend` — data-layout synthesis, Python/C++ codegen, and
  the pluggable execution layer (backend registry, kernel cache,
  sharded parallel evaluation),
* :mod:`repro.db` — the relational substrate,
* :mod:`repro.ml` — linear regression / regression trees on top of IFAQ,
  plus materialize-then-learn baselines,
* :mod:`repro.data` — synthetic Retailer and Favorita generators,
* :mod:`repro.serving` — the asyncio aggregate-serving layer with
  per-fingerprint request coalescing.

The commonly used entry points are re-exported here::

    from repro import IFAQCompiler, ShardedBackend, get_backend

ML estimators import numpy, so they load lazily on first access
(``repro.IFAQLinearRegression``).
"""

from repro.aggregates import (
    AggregateBatch,
    AggregateSpec,
    build_join_tree,
    covar_batch,
)
from repro.aggregates import compute_groupby, compute_groupby_many
from repro.backend import (
    ColumnStore,
    CppKernelBackend,
    EngineBackend,
    ExecutionBackend,
    Kernel,
    KernelCache,
    LayoutOptions,
    MultiBatchPlan,
    NumpyBackend,
    PythonKernelBackend,
    ShardedBackend,
    available_backends,
    column_store,
    default_kernel_cache,
    get_backend,
    register_backend,
)
from repro.compiler import CompilationArtifacts, IFAQCompiler
from repro.db import Database, JoinQuery, Relation, RelationSchema
from repro.serving import (
    AggregateRequest,
    AggregateService,
    CircuitBreaker,
    DeadlineExceeded,
    GroupByRequest,
    MultiGroupByRequest,
    QueueFull,
    RetryPolicy,
    ServiceStats,
)

__version__ = "1.7.0"

#: lazily imported ML entry points (numpy-backed)
_LAZY_ML = {
    "IFAQLinearRegression",
    "IFAQRegressionTree",
    "ScikitStyleLinearRegression",
    "TensorFlowStyleLinearRegression",
    "materialize_to_matrix",
    "rmse",
}

__all__ = [
    "AggregateBatch", "AggregateRequest", "AggregateService", "AggregateSpec",
    "CircuitBreaker", "ColumnStore", "CompilationArtifacts", "CppKernelBackend",
    "Database", "DeadlineExceeded", "EngineBackend", "ExecutionBackend",
    "GroupByRequest", "IFAQCompiler", "JoinQuery", "Kernel", "KernelCache",
    "LayoutOptions", "MultiBatchPlan", "MultiGroupByRequest", "NumpyBackend",
    "PythonKernelBackend", "QueueFull", "Relation", "RelationSchema",
    "RetryPolicy", "ServiceStats", "ShardedBackend", "__version__",
    "available_backends", "build_join_tree", "column_store",
    "compute_groupby", "compute_groupby_many", "covar_batch",
    "default_kernel_cache", "get_backend", "register_backend",
    *sorted(_LAZY_ML),
]


def __getattr__(name: str):
    if name in _LAZY_ML:
        import repro.ml as _ml

        return getattr(_ml, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
