"""IFAQ — Multi-layer Optimizations for End-to-End Data Analytics.

A from-scratch Python reproduction of the CGO 2020 paper by Shaikhha,
Schleich, Ghita and Olteanu.  The package provides:

* :mod:`repro.ir` — the IFAQ core language (D-IFAQ / S-IFAQ AST),
* :mod:`repro.interp` — the reference interpreter,
* :mod:`repro.opt` — high-level optimizations (Figure 4a-e, i),
* :mod:`repro.typing` — schema specialization and the S-IFAQ type checker,
* :mod:`repro.aggregates` — aggregate batch extraction, join trees,
  pushdown, view merging, multi-aggregate iteration, tries,
* :mod:`repro.backend` — data-layout synthesis and Python/C++ codegen,
* :mod:`repro.db` — the relational substrate,
* :mod:`repro.ml` — linear regression / regression trees on top of IFAQ,
  plus materialize-then-learn baselines,
* :mod:`repro.data` — synthetic Retailer and Favorita generators.
"""

__version__ = "1.0.0"
