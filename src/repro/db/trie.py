"""Trie (nested-dictionary) layouts for relations and views.

The *Dictionary to Trie* pass (Section 4.3, Example 4.11) stores a
relation as nested dictionaries grouped by its join attributes: the
first level maps values of the first group attribute, the next level
values of the second, and the leaves hold the residual tuples (or a
plain multiplicity when the grouping exhausts the attributes).

The *Sorted Dictionary* layout (Section 4.4) keeps each trie level as a
sorted list of ``(key, child)`` pairs, so iterating one trie while
looking into another proceeds in merge fashion without re-hashing.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Iterator

from repro.db.relation import Relation


def build_trie(relation: Relation, group_attrs: list[str]) -> dict:
    """Group ``relation`` into a nested-dict trie along ``group_attrs``.

    The result has ``len(group_attrs)`` dictionary levels; the leaf for
    a full key path is a list of ``(residual_record, multiplicity)``
    pairs, where the residual record holds the non-grouped attributes.
    With an empty residual schema the leaf degenerates to an aggregate
    multiplicity count, matching the paper's ``S'(xs)(xi)`` usage.
    """
    residual_names = [
        n for n in relation.schema.attribute_names() if n not in group_attrs
    ]
    root: dict = {}
    for rec, mult in relation.data.items():
        node = root
        for attr in group_attrs[:-1]:
            node = node.setdefault(rec[attr], {})
        last_key = rec[group_attrs[-1]]
        if residual_names:
            bucket = node.setdefault(last_key, [])
            bucket.append((rec.project(residual_names), mult))
        else:
            node[last_key] = node.get(last_key, 0) + mult
    return root


def iter_trie_leaves(trie: dict, depth: int) -> Iterator[tuple[tuple, Any]]:
    """Yield ``(key_path, leaf)`` pairs from a ``depth``-level trie."""
    if depth == 1:
        for k, leaf in trie.items():
            yield (k,), leaf
        return
    for k, child in trie.items():
        for path, leaf in iter_trie_leaves(child, depth - 1):
            yield (k,) + path, leaf


class SortedTrie:
    """A trie level materialized as parallel sorted arrays.

    Lookups use binary search and remember the last position, so an
    ascending sequence of probes costs amortized O(1) comparisons — the
    behaviour the paper's *Sorted Dictionary* optimization relies on
    ("instead of looking for a key in the whole domain, it can ignore
    the already iterated domain").
    """

    __slots__ = ("keys", "children", "_cursor")

    def __init__(self, items: Iterable[tuple[Any, Any]]):
        pairs = sorted(items, key=lambda kv: kv[0])
        self.keys = [k for k, _ in pairs]
        self.children = [v for _, v in pairs]
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return iter(zip(self.keys, self.children))

    def get(self, key: Any, default: Any = 0) -> Any:
        """Binary-search lookup starting from the last found position."""
        lo = self._cursor
        if lo < len(self.keys) and self.keys[lo] == key:
            return self.children[lo]
        if lo and (lo >= len(self.keys) or self.keys[lo] > key):
            lo = 0
        idx = bisect_left(self.keys, key, lo)
        if idx < len(self.keys) and self.keys[idx] == key:
            self._cursor = idx
            return self.children[idx]
        return default

    def reset_cursor(self) -> None:
        self._cursor = 0


def build_sorted_trie(relation: Relation, group_attrs: list[str]) -> SortedTrie:
    """A fully sorted trie: every level is a :class:`SortedTrie`."""
    nested = build_trie(relation, group_attrs)
    return _sort_level(nested, len(group_attrs))


def _sort_level(node: dict, depth: int) -> SortedTrie:
    if depth == 1:
        return SortedTrie(node.items())
    return SortedTrie((k, _sort_level(child, depth - 1)) for k, child in node.items())


def trie_tuple_count(trie: dict, depth: int) -> int:
    """Number of tuples represented by a nested-dict trie."""
    total = 0
    for _, leaf in iter_trie_leaves(trie, depth):
        if isinstance(leaf, list):
            total += sum(m for _, m in leaf)
        else:
            total += leaf
    return total
