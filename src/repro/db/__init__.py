"""Relational substrate: schemas, relations, tries, databases, queries."""

from repro.db.database import Database
from repro.db.query import JoinQuery, join_as_ifaq, materialize_join
from repro.db.relation import AppendDelta, Relation
from repro.db.schema import Attribute, DatabaseSchema, RelationSchema
from repro.db.trie import SortedTrie, build_sorted_trie, build_trie

__all__ = [
    "AppendDelta", "Attribute", "Database", "DatabaseSchema", "JoinQuery",
    "Relation", "RelationSchema", "SortedTrie", "build_sorted_trie",
    "build_trie", "join_as_ifaq", "materialize_join",
]
