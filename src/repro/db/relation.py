"""Relations with bag semantics, in the layouts Section 4.4 discusses.

The canonical representation is a dictionary from tuple-records to
integer multiplicities (how S-IFAQ types relations).  The data-layout
passes also use:

* **array layout** — a flat list of tuples (``Dictionary to Array``:
  most relations have multiplicity one),
* **trie layout** — nested dictionaries grouped by join attributes
  (``Dictionary to Trie``), optionally **sorted** for merge-style
  lookups (``Sorted Dictionary``).

Conversions are provided by this module and :mod:`repro.db.trie`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.db.schema import RelationSchema
from repro.runtime.values import DictValue, RecordValue


@dataclass(frozen=True)
class AppendDelta:
    """What one :meth:`Relation.append_rows` call changed.

    ``fresh`` counts *new distinct records* (appended at the end of the
    bag in insertion order — the property incremental consumers rely
    on); ``bumped`` counts rows that raised the multiplicity of a
    record that existed *before* the append.  A pure append
    (``bumped == 0``) leaves every pre-existing record's position and
    multiplicity untouched, so columnar caches can extend their arrays
    in place; a bump rewrites history and forces a rebuild.
    """

    relation: str
    #: distinct records before the append
    old_records: int
    #: distinct records after the append
    new_records: int
    #: rows absorbed by the appended tail (new records, or duplicates
    #: of a record this same batch created)
    fresh: int
    #: rows that bumped a record existing before this append
    bumped: int

    @property
    def pure_append(self) -> bool:
        return self.bumped == 0


@dataclass
class Relation:
    """A named relation: schema plus a bag of tuples.

    ``data`` maps :class:`RecordValue` tuples to positive integer
    multiplicities.  Most loaders produce multiplicity 1 throughout,
    which is what the dictionary-to-array layout pass exploits.
    """

    schema: RelationSchema
    data: dict[RecordValue, int]

    # -- construction ---------------------------------------------------

    @staticmethod
    def from_rows(schema: RelationSchema, rows: Iterable[tuple]) -> "Relation":
        """Build from positional tuples following the schema order."""
        names = schema.attribute_names()
        data: dict[RecordValue, int] = {}
        for row in rows:
            if len(row) != len(names):
                raise ValueError(
                    f"row arity {len(row)} does not match schema "
                    f"{schema.name!r} with {len(names)} attributes"
                )
            rec = RecordValue(zip(names, row))
            data[rec] = data.get(rec, 0) + 1
        return Relation(schema, data)

    @staticmethod
    def from_dicts(schema: RelationSchema, rows: Iterable[dict[str, Any]]) -> "Relation":
        """Build from attribute-name dictionaries."""
        names = schema.attribute_names()
        return Relation.from_rows(schema, (tuple(r[n] for n in names) for r in rows))

    # -- streaming ingest --------------------------------------------------

    def append_rows(self, rows: Iterable[tuple]) -> AppendDelta:
        """Append positional tuples in place (bag union).

        Dict insertion order means new distinct records land *after*
        every existing record, so ``list(data)`` keeps its old prefix
        verbatim — the invariant the column store's delta extension
        and the backends' delta-run protocol build on.  Rows equal to a
        pre-existing record bump its multiplicity instead (reported as
        ``bumped``; such an append is not a pure extension and
        downstream caches must rebuild).  Duplicates *within* the
        appended batch stay pure: they raise the multiplicity of a
        record that is itself part of the appended tail.
        """
        names = self.schema.attribute_names()
        old_records = len(self.data)
        fresh = bumped = 0
        batch_new: set[RecordValue] = set()
        for row in rows:
            if len(row) != len(names):
                raise ValueError(
                    f"row arity {len(row)} does not match schema "
                    f"{self.schema.name!r} with {len(names)} attributes"
                )
            rec = RecordValue(zip(names, row))
            if rec in self.data:
                self.data[rec] += 1
                if rec in batch_new:
                    fresh += 1  # duplicate of a record this batch created
                else:
                    bumped += 1
            else:
                self.data[rec] = 1
                batch_new.add(rec)
                fresh += 1
        return AppendDelta(
            relation=self.schema.name,
            old_records=old_records,
            new_records=len(self.data),
            fresh=fresh,
            bumped=bumped,
        )

    # -- basic accessors -------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def tuple_count(self) -> int:
        """Total number of tuples (multiplicities included)."""
        return sum(self.data.values())

    def distinct_count(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[tuple[RecordValue, int]]:
        return iter(self.data.items())

    def attribute_values(self, name: str) -> list[Any]:
        """All values of one attribute (with multiplicities)."""
        out: list[Any] = []
        for rec, mult in self.data.items():
            out.extend([rec[name]] * mult)
        return out

    def active_domain(self, name: str) -> list[Any]:
        """Sorted distinct values of one attribute."""
        return sorted({rec[name] for rec in self.data})

    def filter(self, predicate) -> "Relation":
        """A new relation keeping tuples where ``predicate(record)`` holds."""
        return Relation(
            self.schema,
            {rec: m for rec, m in self.data.items() if predicate(rec)},
        )

    def project(self, names: Iterable[str]) -> "Relation":
        """Bag projection onto ``names`` (multiplicities accumulate)."""
        names = tuple(names)
        sub_schema = RelationSchema(
            self.schema.name,
            tuple(a for a in self.schema.attributes if a.name in names),
        )
        data: dict[RecordValue, int] = {}
        for rec, mult in self.data.items():
            proj = rec.project(names)
            data[proj] = data.get(proj, 0) + mult
        return Relation(sub_schema, data)

    # -- layouts -----------------------------------------------------------

    def to_value(self) -> DictValue:
        """The relation as an IFAQ runtime value: ``{{tuple → mult}}``."""
        return DictValue(self.data)

    def to_array(self) -> list[tuple[RecordValue, int]]:
        """Array layout: a flat tuple list (Section 4.4, Dictionary to Array)."""
        return list(self.data.items())

    def estimated_size_bytes(self) -> int:
        """A coarse in-memory size estimate (8 bytes per attribute value).

        Used by Table 1 reporting and by the mlpack-style memory-budget
        model in the baselines.
        """
        return self.tuple_count() * len(self.schema) * 8

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {self.tuple_count()} tuples)"
