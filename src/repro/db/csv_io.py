"""CSV import/export for relations.

Columns are parsed according to the relation schema's attribute types:
int/real attributes become Python numbers, everything else stays a
string.  Exports write a header row with the attribute names.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.db.relation import Relation
from repro.db.schema import RelationSchema
from repro.ir.types import IntType, RealType, Type


def _parse_cell(raw: str, attr_type: Type) -> Any:
    if isinstance(attr_type, IntType):
        return int(raw)
    if isinstance(attr_type, RealType):
        return float(raw)
    return raw


def load_csv(path: str | Path, schema: RelationSchema, has_header: bool = True) -> Relation:
    """Load a relation from a CSV file using the schema's column order."""
    names = schema.attribute_names()
    types = [schema.attribute_type(n) for n in names]
    rows = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        if has_header:
            header = next(reader)
            if tuple(h.strip() for h in header) != names:
                raise ValueError(
                    f"CSV header {header} does not match schema attributes {names}"
                )
        for raw_row in reader:
            if not raw_row:
                continue
            if len(raw_row) != len(names):
                raise ValueError(
                    f"CSV row has {len(raw_row)} cells, expected {len(names)}: {raw_row}"
                )
            rows.append(tuple(_parse_cell(c, t) for c, t in zip(raw_row, types)))
    return Relation.from_rows(schema, rows)


def save_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to CSV (multiplicities expand to repeated rows)."""
    names = relation.schema.attribute_names()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for rec, mult in relation.data.items():
            row = [rec[n] for n in names]
            for _ in range(mult):
                writer.writerow(row)
