"""Relational schemas for the IFAQ database substrate.

A :class:`RelationSchema` is an ordered list of typed attributes; a
:class:`DatabaseSchema` names a set of relation schemas and can derive
the join graph (which attributes are shared between which relations),
which the aggregate optimizer turns into a join tree (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.types import DYN, RecordType, Type, relation_type


@dataclass(frozen=True)
class Attribute:
    """A named, typed relation attribute."""

    name: str
    type: Type = DYN

    def __repr__(self) -> str:
        return f"{self.name}: {self.type!r}"


@dataclass(frozen=True)
class RelationSchema:
    """An ordered attribute list for one relation."""

    name: str
    attributes: tuple[Attribute, ...]

    @staticmethod
    def of(name: str, attrs: dict[str, Type] | list[tuple[str, Type]]) -> "RelationSchema":
        items = attrs.items() if isinstance(attrs, dict) else attrs
        return RelationSchema(name, tuple(Attribute(n, t) for n, t in items))

    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def attribute_type(self, name: str) -> Type:
        for a in self.attributes:
            if a.name == name:
                return a.type
        raise KeyError(f"relation {self.name!r} has no attribute {name!r}")

    def tuple_type(self) -> RecordType:
        """The record type of one tuple of this relation."""
        return RecordType(tuple((a.name, a.type) for a in self.attributes))

    def ifaq_type(self):
        """The S-IFAQ type of the relation: ``Map[{...}, int]``."""
        return relation_type(tuple((a.name, a.type) for a in self.attributes))

    def __len__(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True)
class DatabaseSchema:
    """A collection of relation schemas with a derivable join graph."""

    relations: tuple[RelationSchema, ...] = field(default=())

    def relation(self, name: str) -> RelationSchema:
        for r in self.relations:
            if r.name == name:
                return r
        raise KeyError(f"no relation named {name!r}")

    def relation_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.relations)

    def shared_attributes(self, a: str, b: str) -> tuple[str, ...]:
        """Attributes common to relations ``a`` and ``b`` (natural-join keys)."""
        names_a = set(self.relation(a).attribute_names())
        return tuple(n for n in self.relation(b).attribute_names() if n in names_a)

    def join_graph(self) -> dict[tuple[str, str], tuple[str, ...]]:
        """Edges ``(rel_a, rel_b) → shared attrs`` over all relation pairs.

        Only pairs with at least one shared attribute appear; each
        unordered pair appears once with names sorted.
        """
        edges: dict[tuple[str, str], tuple[str, ...]] = {}
        names = self.relation_names()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                shared = self.shared_attributes(a, b)
                if shared:
                    edges[(a, b)] = shared
        return edges

    def all_attribute_names(self) -> tuple[str, ...]:
        """Distinct attribute names across all relations, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.relations:
            for a in r.attributes:
                seen.setdefault(a.name, None)
        return tuple(seen)
