"""Join queries and their materializing evaluator.

:class:`JoinQuery` describes a natural join of database relations with
an optional projection — the feature-extraction query that defines the
training dataset ``Q``.  :func:`materialize_join` evaluates it the way
the mainstream pipeline does (hash joins producing the full training
dataset); the aggregate optimizer exists to *avoid* this, but the
materialized result is the oracle all factorized evaluation is checked
against, and the substrate for the scikit/TensorFlow-style baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.schema import DatabaseSchema, RelationSchema
from repro.ir.builders import product
from repro.ir.expr import Cmp, DictLit, Dom, Expr, FieldAccess, Lookup, RecordLit, Sum, Var
from repro.runtime.values import RecordValue


@dataclass(frozen=True)
class JoinQuery:
    """A natural join over ``relations``, projected onto ``output_attrs``.

    With ``output_attrs = ()`` the output keeps every attribute (the
    usual learning setup: all features plus the label).
    """

    relations: tuple[str, ...]
    output_attrs: tuple[str, ...] = ()

    def output_attributes(self, schema: DatabaseSchema) -> tuple[str, ...]:
        if self.output_attrs:
            return self.output_attrs
        seen: dict[str, None] = {}
        for rel_name in self.relations:
            for attr in schema.relation(rel_name).attribute_names():
                seen.setdefault(attr, None)
        return tuple(seen)

    def join_attributes(self, schema: DatabaseSchema) -> dict[tuple[str, str], tuple[str, ...]]:
        """The join-graph edges restricted to this query's relations."""
        graph = schema.join_graph()
        wanted = set(self.relations)
        return {
            (a, b): attrs
            for (a, b), attrs in graph.items()
            if a in wanted and b in wanted
        }


def materialize_join(db: Database, query: JoinQuery) -> Relation:
    """Hash-join all query relations and project the output attributes.

    Joins are performed left-to-right in the order the query lists its
    relations, always joining on the shared attributes with the
    accumulated result (natural-join semantics).  Multiplicities
    multiply, as bag semantics requires.
    """
    if not query.relations:
        raise ValueError("query must reference at least one relation")

    current = db.relation(query.relations[0])
    for rel_name in query.relations[1:]:
        current = _hash_join(current, db.relation(rel_name))

    out_attrs = query.output_attributes(db.schema())
    keep = [a for a in current.schema.attribute_names() if a in out_attrs]
    result = current.project(keep)
    renamed = RelationSchema("Q", result.schema.attributes)
    return Relation(renamed, result.data)


def _hash_join(left: Relation, right: Relation) -> Relation:
    shared = [
        n for n in left.schema.attribute_names()
        if right.schema.has_attribute(n)
    ]
    left_names = left.schema.attribute_names()
    right_only = [n for n in right.schema.attribute_names() if n not in shared]

    index: dict[tuple, list[tuple[RecordValue, int]]] = {}
    for rec, mult in right.data.items():
        key = tuple(rec[a] for a in shared)
        index.setdefault(key, []).append((rec, mult))

    out_schema = RelationSchema(
        f"({left.schema.name}⋈{right.schema.name})",
        tuple(left.schema.attributes)
        + tuple(a for a in right.schema.attributes if a.name in right_only),
    )
    data: dict[RecordValue, int] = {}
    for lrec, lmult in left.data.items():
        key = tuple(lrec[a] for a in shared)
        for rrec, rmult in index.get(key, ()):
            combined = dict(zip(left_names, (lrec[n] for n in left_names)))
            for n in right_only:
                combined[n] = rrec[n]
            out = RecordValue(combined)
            data[out] = data.get(out, 0) + lmult * rmult
    return Relation(out_schema, data)


def join_as_ifaq(db_schema: DatabaseSchema, query: JoinQuery) -> Expr:
    """The S-IFAQ expression that materializes ``Q`` (Example 4.7).

    Produces nested summations over the input relations with equality
    indicators for the join conditions::

        Σ_{xs∈dom(S)} Σ_{xr∈dom(R)} ... {{k → S(xs)*R(xr)*...*(xs.i==xr.i)}}
    """
    rel_vars = {name: f"x_{name.lower()}" for name in query.relations}
    out_attrs = query.output_attributes(db_schema)

    # Which relation provides each output attribute (first occurrence wins).
    provider: dict[str, tuple[str, str]] = {}
    for rel_name in query.relations:
        for attr in db_schema.relation(rel_name).attribute_names():
            provider.setdefault(attr, (rel_vars[rel_name], attr))

    key_record = RecordLit(
        tuple(
            (attr, FieldAccess(Var(provider[attr][0]), provider[attr][1]))
            for attr in out_attrs
        )
    )

    factors: list[Expr] = [
        Lookup(Var(rel_name), Var(rel_vars[rel_name])) for rel_name in query.relations
    ]
    for (a, b), attrs in sorted(query.join_attributes(db_schema).items()):
        for attr in attrs:
            factors.append(
                Cmp(
                    "==",
                    FieldAccess(Var(rel_vars[a]), attr),
                    FieldAccess(Var(rel_vars[b]), attr),
                )
            )

    body: Expr = DictLit(((key_record, product(factors)),))
    for rel_name in reversed(query.relations):
        body = Sum(rel_vars[rel_name], Dom(Var(rel_name)), body)
    return body
