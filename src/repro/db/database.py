"""The database: a named collection of relations plus statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.db.relation import Relation
from repro.db.schema import DatabaseSchema
from repro.runtime.values import DictValue


@dataclass
class Database:
    """A set of relations addressable by name.

    ``to_env`` exposes the database as an interpreter environment, so
    IFAQ programs refer to relations as free variables (the paper's
    ``S``, ``R``, ``I`` in Example 3.1).
    """

    relations: dict[str, Relation] = field(default_factory=dict)

    @staticmethod
    def of(*relations: Relation) -> "Database":
        return Database({r.name: r for r in relations})

    def add(self, relation: Relation) -> None:
        self.relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"database has no relation {name!r}; "
                f"available: {sorted(self.relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def schema(self) -> DatabaseSchema:
        return DatabaseSchema(tuple(r.schema for r in self.relations.values()))

    def to_env(self) -> dict[str, DictValue]:
        """Interpreter environment binding each relation name to its value."""
        return {name: rel.to_value() for name, rel in self.relations.items()}

    def statistics(self) -> Mapping[str, int]:
        """Cardinality statistics used by the loop-scheduling cost model."""
        return {name: rel.tuple_count() for name, rel in self.relations.items()}

    def total_tuples(self) -> int:
        return sum(r.tuple_count() for r in self.relations.values())

    def estimated_size_bytes(self) -> int:
        return sum(r.estimated_size_bytes() for r in self.relations.values())
