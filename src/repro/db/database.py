"""The database: a named collection of relations plus statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.db.relation import AppendDelta, Relation
from repro.db.schema import DatabaseSchema
from repro.runtime.values import DictValue


@dataclass
class Database:
    """A set of relations addressable by name.

    ``to_env`` exposes the database as an interpreter environment, so
    IFAQ programs refer to relations as free variables (the paper's
    ``S``, ``R``, ``I`` in Example 3.1).

    Databases are immutable between executions **except** through
    :meth:`append_rows`, the streaming-ingest seam: it appends to one
    relation in place and bumps that relation's version counter, so
    caches keyed by ``(database, version_vector)`` can tell fresh data
    from stale without requiring a whole new database object.
    """

    relations: dict[str, Relation] = field(default_factory=dict)
    #: per-relation ingest version counters (missing = 0, the seed data)
    versions: dict[str, int] = field(default_factory=dict)

    @staticmethod
    def of(*relations: Relation) -> "Database":
        return Database({r.name: r for r in relations})

    def add(self, relation: Relation) -> None:
        self.relations[relation.name] = relation

    # -- streaming ingest --------------------------------------------------

    def append_rows(self, relation: str, rows: Iterable[tuple]) -> AppendDelta:
        """Append rows to one relation in place and bump its version.

        Returns the :class:`~repro.db.relation.AppendDelta` describing
        the change; ``delta.pure_append`` tells incremental consumers
        whether existing records were left untouched (arrays may be
        extended) or rewritten (caches must rebuild).
        """
        delta = self.relation(relation).append_rows(rows)
        self.versions[relation] = self.versions.get(relation, 0) + 1
        return delta

    def relation_version(self, name: str) -> int:
        return self.versions.get(name, 0)

    def version_vector(self) -> tuple[tuple[str, int], ...]:
        """The per-relation versions as a hashable, order-stable tuple.

        Part of cache identities (the serving layer's coalescing keys):
        two requests over the same database object only share work when
        their version vectors agree.
        """
        return tuple(
            (name, self.versions.get(name, 0)) for name in sorted(self.relations)
        )

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"database has no relation {name!r}; "
                f"available: {sorted(self.relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def schema(self) -> DatabaseSchema:
        return DatabaseSchema(tuple(r.schema for r in self.relations.values()))

    def to_env(self) -> dict[str, DictValue]:
        """Interpreter environment binding each relation name to its value."""
        return {name: rel.to_value() for name, rel in self.relations.items()}

    def statistics(self) -> Mapping[str, int]:
        """Cardinality statistics used by the loop-scheduling cost model."""
        return {name: rel.tuple_count() for name, rel in self.relations.items()}

    def total_tuples(self) -> int:
        return sum(r.tuple_count() for r in self.relations.values())

    def estimated_size_bytes(self) -> int:
        return sum(r.estimated_size_bytes() for r in self.relations.values())
