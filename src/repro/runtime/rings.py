"""Ring operations over IFAQ runtime values.

The summation construct ``Σ`` folds with a *monoid* addition that is
polymorphic over the value domain (paper Section 2.1, footnotes 1–2):

* numbers add numerically (booleans coerce to 0/1),
* records add pointwise (same field sets),
* dictionaries merge, adding payloads of shared keys (bag union),
* sets take the union.

Multiplication distributes scalars over records and dictionaries, which
is what lets expressions like ``R(xr) * {{k → v}}`` (Example 4.9) scale
a singleton dictionary by a multiplicity.

The scalar ``0`` is treated as the *polymorphic additive identity*:
``v_add(0, d) == d`` for a dictionary ``d``.  This gives empty
summations and missing-key lookups a consistent meaning without
requiring a static type for every accumulator.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.values import DictValue, RecordValue, SetValue


def is_zero(v: Any) -> bool:
    """Is ``v`` an additive identity of its domain?"""
    if isinstance(v, bool):
        return not v
    if isinstance(v, (int, float)):
        return v == 0
    if isinstance(v, DictValue):
        # A dictionary whose payloads are all zero is the zero bag.
        return all(is_zero(x) for x in v.values())
    if isinstance(v, SetValue):
        return len(v) == 0
    if isinstance(v, RecordValue):
        return all(is_zero(x) for x in v.values())
    return False


def v_add(a: Any, b: Any) -> Any:
    """Ring addition, polymorphic over the value domain."""
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a + b
    # The scalar zero is the universal additive identity.
    if isinstance(a, (int, float)) and a == 0:
        return b
    if isinstance(b, (int, float)) and b == 0:
        return a
    if isinstance(a, RecordValue) and isinstance(b, RecordValue):
        if a.field_names() != b.field_names():
            raise TypeError(f"cannot add records with different fields: {a!r} + {b!r}")
        return RecordValue((k, v_add(a[k], b[k])) for k in a.field_names())
    if isinstance(a, DictValue) and isinstance(b, DictValue):
        merged = dict(a.raw())
        for k, v in b.items():
            if k in merged:
                s = v_add(merged[k], v)
                if is_zero(s):
                    del merged[k]
                else:
                    merged[k] = s
            elif not is_zero(v):
                merged[k] = v
        return DictValue(merged)
    if isinstance(a, SetValue) and isinstance(b, SetValue):
        return SetValue(list(a) + list(b))
    raise TypeError(f"cannot add {type(a).__name__} and {type(b).__name__}")


def v_neg(a: Any) -> Any:
    """Additive inverse."""
    if isinstance(a, bool):
        return -int(a)
    if isinstance(a, (int, float)):
        return -a
    if isinstance(a, RecordValue):
        return RecordValue((k, v_neg(v)) for k, v in a.items())
    if isinstance(a, DictValue):
        return DictValue({k: v_neg(v) for k, v in a.items()})
    raise TypeError(f"cannot negate {type(a).__name__}")


def v_mul(a: Any, b: Any) -> Any:
    """Ring multiplication, with scalar scaling of collections."""
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a * b
    if isinstance(a, (int, float)):
        return _scale(b, a)
    if isinstance(b, (int, float)):
        return _scale(a, b)
    if isinstance(a, RecordValue) and isinstance(b, RecordValue):
        if a.field_names() != b.field_names():
            raise TypeError(
                f"cannot multiply records with different fields: {a!r} * {b!r}"
            )
        return RecordValue((k, v_mul(a[k], b[k])) for k in a.field_names())
    if isinstance(a, DictValue) and isinstance(b, DictValue):
        # Pointwise product on the key intersection (natural for
        # multiplicity-weighted payloads).
        out = {}
        for k, v in a.items():
            if k in b:
                p = v_mul(v, b[k])
                if not is_zero(p):
                    out[k] = p
        return DictValue(out)
    raise TypeError(f"cannot multiply {type(a).__name__} and {type(b).__name__}")


def _scale(v: Any, s: int | float) -> Any:
    if s == 0:
        return 0
    if isinstance(v, RecordValue):
        return RecordValue((k, v_mul(s, x)) for k, x in v.items())
    if isinstance(v, DictValue):
        scaled = {k: v_mul(s, x) for k, x in v.items()}
        return DictValue({k: x for k, x in scaled.items() if not is_zero(x)})
    raise TypeError(f"cannot scale {type(v).__name__} by a scalar")


def truthy(v: Any) -> bool:
    """Condition semantics for ``if`` and ``while``."""
    if isinstance(v, bool):
        return v
    if isinstance(v, (int, float)):
        return v != 0
    raise TypeError(f"condition must be scalar, got {type(v).__name__}")
