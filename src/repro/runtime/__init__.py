"""Runtime value model and ring arithmetic shared by the interpreter
and the generated code."""

from repro.runtime.rings import is_zero, truthy, v_add, v_mul, v_neg
from repro.runtime.values import (
    DictValue,
    FieldValue,
    RecordValue,
    SetValue,
    VariantValue,
)

__all__ = [
    "DictValue", "FieldValue", "RecordValue", "SetValue", "VariantValue",
    "is_zero", "truthy", "v_add", "v_mul", "v_neg",
]
