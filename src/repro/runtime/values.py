"""Runtime values of IFAQ programs.

The interpreter and the generated code share one value model:

* numbers (Python ``int``/``float``) and booleans,
* :class:`FieldValue` — first-class field names (type ``Field``),
* :class:`RecordValue` — immutable named tuples with ring arithmetic,
* :class:`VariantValue` — single-field partial records,
* :class:`DictValue` — dictionaries with bag/ring semantics (relations
  map tuples to multiplicities; aggregate views map keys to payloads),
* :class:`SetValue` — insertion-ordered sets.

Ring arithmetic over these values lives in :mod:`repro.runtime.rings`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping


class FieldValue:
    """A first-class field name, e.g. the elements of ``F = [['i','s']]``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FieldValue) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("field", self.name))

    def __repr__(self) -> str:
        return f"'{self.name}'"


class RecordValue(Mapping[str, Any]):
    """An immutable record ``{a = 1, b = 2.5}``.

    Hashable (so records can key dictionaries — relations map
    tuple-records to multiplicities) and ordered by field declaration.
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields: Mapping[str, Any] | Iterable[tuple[str, Any]]):
        if isinstance(fields, Mapping):
            items = tuple(fields.items())
        else:
            items = tuple(fields)
        object.__setattr__(self, "_fields", dict(items))
        object.__setattr__(self, "_hash", None)

    def __getitem__(self, name: str) -> Any:
        return self._fields[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def field_names(self) -> tuple[str, ...]:
        return tuple(self._fields)

    def items_tuple(self) -> tuple[tuple[str, Any], ...]:
        return tuple(self._fields.items())

    def project(self, names: Iterable[str]) -> "RecordValue":
        """The sub-record with just ``names`` (order follows ``names``)."""
        return RecordValue((n, self._fields[n]) for n in names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordValue):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(frozenset(self._fields.items()))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        inner = ", ".join(f"{k} = {v!r}" for k, v in self._fields.items())
        return "{" + inner + "}"


class VariantValue:
    """A variant ``<tag = value>`` — a record with exactly one field."""

    __slots__ = ("tag", "value")

    def __init__(self, tag: str, value: Any):
        self.tag = tag
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VariantValue)
            and self.tag == other.tag
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("variant", self.tag, self.value))

    def __repr__(self) -> str:
        return f"<{self.tag} = {self.value!r}>"


class DictValue(Mapping[Any, Any]):
    """A dictionary with ring semantics.

    Addition merges two dictionaries, adding payloads of shared keys and
    dropping entries whose payload becomes zero — exactly the bag-union
    semantics relations need (a relation is a ``DictValue`` from tuple
    records to integer multiplicities).  Lookup of a missing key yields
    the scalar zero ``0``, which :mod:`repro.runtime.rings` treats as
    the polymorphic additive identity.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[Any, Any] | Iterable[tuple[Any, Any]] = ()):
        if isinstance(data, Mapping):
            self._data = dict(data.items())
        else:
            self._data = dict(data)

    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def get(self, key: Any, default: Any = 0) -> Any:
        return self._data.get(key, default)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def items(self):
        return self._data.items()

    def values(self):
        return self._data.values()

    def keys(self):
        return self._data.keys()

    def raw(self) -> dict:
        """The underlying dict (shared, do not mutate)."""
        return self._data

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DictValue):
            return self._data == other._data
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r} → {v!r}" for k, v in self._data.items())
        return "{{" + inner + "}}"


class SetValue:
    """An insertion-ordered set; addition is union."""

    __slots__ = ("_data",)

    def __init__(self, elems: Iterable[Any] = ()):
        self._data = dict.fromkeys(elems)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, elem: object) -> bool:
        return elem in self._data

    def elements(self) -> tuple[Any, ...]:
        return tuple(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SetValue):
            return set(self._data) == set(other._data)
        return NotImplemented

    def __repr__(self) -> str:
        return "[[" + ", ".join(repr(x) for x in self._data) + "]]"
