"""Approximate structural equality for runtime values.

Optimizations reassociate floating-point arithmetic, so semantic
preservation is checked up to relative tolerance.  Comparison recurses
through records, dictionaries and sets; dictionary keys must match
exactly (they are categorical/join values, never derived floats).
"""

from __future__ import annotations

import math
from typing import Any

from repro.runtime.values import DictValue, FieldValue, RecordValue, SetValue, VariantValue


def values_close(a: Any, b: Any, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Recursive approximate equality across the IFAQ value domain."""
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    if isinstance(a, FieldValue) and isinstance(b, FieldValue):
        return a.name == b.name
    if isinstance(a, RecordValue) and isinstance(b, RecordValue):
        if set(a.field_names()) != set(b.field_names()):
            return False
        return all(values_close(a[k], b[k], rel_tol, abs_tol) for k in a.field_names())
    if isinstance(a, VariantValue) and isinstance(b, VariantValue):
        return a.tag == b.tag and values_close(a.value, b.value, rel_tol, abs_tol)
    if isinstance(a, DictValue) and isinstance(b, DictValue):
        # Compare modulo zero entries: {{k → 0}} and {{}} are the same
        # bag (constructors normally drop zeros, but hand-built values
        # in tests may carry them).
        from repro.runtime.rings import is_zero as _is_zero

        keys = set(a.keys()) | set(b.keys())
        return all(
            values_close(a.get(k, 0), b.get(k, 0), rel_tol, abs_tol) for k in keys
        )
    if isinstance(a, SetValue) and isinstance(b, SetValue):
        return set(a.elements()) == set(b.elements())
    # Mixed scalar-vs-collection: a scalar zero equals an empty collection
    # (the polymorphic additive identity).
    from repro.runtime.rings import is_zero

    if isinstance(a, (int, float)) and is_zero(a):
        return is_zero(b)
    if isinstance(b, (int, float)) and is_zero(b):
        return is_zero(a)
    return a == b
