"""Schema specialization (D-IFAQ → S-IFAQ) and static type checking."""

from repro.typing.partial_eval import PARTIAL_EVAL_RULES
from repro.typing.specialize import (
    SPECIALIZATION_RULES,
    schema_specialize,
    specialize_expr,
)
from repro.typing.typecheck import (
    IFAQTypeError,
    TypeChecker,
    infer_type,
    typecheck,
    typecheck_program,
)

__all__ = [
    "IFAQTypeError", "PARTIAL_EVAL_RULES", "SPECIALIZATION_RULES",
    "TypeChecker", "infer_type", "schema_specialize", "specialize_expr",
    "typecheck", "typecheck_program",
]
