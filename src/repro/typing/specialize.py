"""Schema specialization (paper Section 4.2, Figure 4g).

Converts a dynamically-typed D-IFAQ program into statically-typed
S-IFAQ given the database schema:

* dictionaries with statically-known ``Field`` keys become records,
* loops over static field sets are unrolled (partial evaluation),
* dynamic field accesses ``e[‘f‘]`` become static accesses ``e.f``,
* dictionary lookups on record-typed expressions become (then static)
  field accesses.

The result is checked with the strict S-IFAQ type checker; any residual
dynamic feature is reported as a type error.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import (
    DictBuild,
    DictLit,
    DynFieldAccess,
    Expr,
    FieldAccess,
    FieldLit,
    Let,
    Lookup,
    RecordLit,
    SetLit,
    Sum,
)
from repro.ir.program import Program
from repro.ir.traversal import children, rebuild_exact, substitute
from repro.ir.types import RecordType, Type
from repro.opt.generic import GENERIC_RULES
from repro.opt.rewriter import rewrite_fixpoint, rule
from repro.typing.partial_eval import PARTIAL_EVAL_RULES
from repro.typing.typecheck import TypeChecker


@rule("specialize/dictlit-to-record")
def dictlit_to_record(e: Expr) -> Optional[Expr]:
    """``{{..., ‘fi‘ → ei, ...}} → {..., fi = ei, ...}`` (Fig 4g rule 2)."""
    if not isinstance(e, DictLit) or not e.entries:
        return None
    if all(isinstance(k, FieldLit) for k, _ in e.entries):
        return RecordLit(tuple((k.name, v) for k, v in e.entries))
    return None


@rule("specialize/dyn-to-static-access")
def dyn_to_static_access(e: Expr) -> Optional[Expr]:
    """``e1[‘f‘] → e1.f`` (Fig 4g rule 1)."""
    if isinstance(e, DynFieldAccess) and isinstance(e.key, FieldLit):
        return FieldAccess(e.record, e.key.name)
    return None


SPECIALIZATION_RULES = (dictlit_to_record, dyn_to_static_access)


def _convert_record_lookups(e: Expr, env: dict[str, Type]) -> Expr:
    """``e1(e2) → e1[e2]`` when ``e1`` has been specialized to a record
    (Fig 4g rule 3).  Types are inferred leniently on the fly."""
    checker = TypeChecker(strict=False)

    def convert(node: Expr, scope: dict[str, Type]) -> Expr:
        if isinstance(node, (Sum, DictBuild)):
            domain = convert(node.domain, scope)
            elem = checker._domain_elem(checker.infer(domain, scope), node)
            body = convert(node.body, {**scope, node.var: elem})
            return rebuild_exact(node, (domain, body))
        if isinstance(node, Let):
            value = convert(node.value, scope)
            vt = checker.infer(value, scope)
            body = convert(node.body, {**scope, node.var: vt})
            return Let(node.var, value, body)

        new_children = tuple(convert(c, scope) for c in children(node))
        node = rebuild_exact(node, new_children)
        if isinstance(node, Lookup):
            dict_t = checker.infer(node.dict_expr, scope)
            if isinstance(dict_t, RecordType):
                return DynFieldAccess(node.dict_expr, node.key)
        return node

    return convert(e, dict(env))


def _inline_static_field_sets(program: Program) -> Program:
    """Substitute inits bound to field-set literals into their uses.

    The feature set ``let F = [[‘i‘, ...]]`` must be visible at each
    loop header before unrolling can fire; the binding itself is kept
    and removed later by dead-let cleanup if unused.
    """
    static_sets: dict[str, SetLit] = {}
    new_inits: list[tuple[str, Expr]] = []

    def subst_all(e: Expr) -> Expr:
        for name, value in static_sets.items():
            e = substitute(e, name, value)
        return e

    for name, value in program.inits:
        value = subst_all(value)
        if isinstance(value, SetLit) and value.elems and all(
            isinstance(x, FieldLit) for x in value.elems
        ):
            static_sets[name] = value
        else:
            new_inits.append((name, value))

    return Program(
        inits=tuple(new_inits),
        state=program.state,
        init=subst_all(program.init),
        cond=subst_all(program.cond),
        body=subst_all(program.body),
    )


def specialize_expr(e: Expr, env: dict[str, Type] | None = None, max_rounds: int = 10) -> Expr:
    """Run partial evaluation + specialization on one expression."""
    env = dict(env or {})
    rules = PARTIAL_EVAL_RULES + SPECIALIZATION_RULES + GENERIC_RULES
    for _ in range(max_rounds):
        before = e
        e = rewrite_fixpoint(e, rules)
        e = _convert_record_lookups(e, env)
        if e == before:
            return e
    return e


def schema_specialize(
    program: Program, relation_types: dict[str, Type]
) -> Program:
    """Specialize a whole program given relation types from the schema.

    ``relation_types`` maps each free relation variable to its
    ``Map[{...}, int]`` type (see ``RelationSchema.ifaq_type``).
    """
    program = _inline_static_field_sets(program)

    checker = TypeChecker(strict=False)
    scope: dict[str, Type] = dict(relation_types)

    inits: list[tuple[str, Expr]] = []
    for name, value in program.inits:
        value = specialize_expr(value, scope)
        inits.append((name, value))
        scope[name] = checker.infer(value, scope)

    init = specialize_expr(program.init, scope)
    scope[program.state] = checker.infer(init, scope)
    cond = specialize_expr(program.cond, scope)
    body = specialize_expr(program.body, scope)

    return Program(
        inits=tuple(inits),
        state=program.state,
        init=init,
        cond=cond,
        body=body,
    )
