"""Partial evaluation (paper Figure 4f).

Run before the schema-specialization rules proper: loops over
statically-known set literals are unrolled, and dictionary literals
combine under addition.  Unrolling is what turns the feature-indexed
dictionaries into position-addressable structures that Figure 4g can
convert to records.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import Add, DictBuild, DictLit, Expr, SetLit, Sum
from repro.ir.traversal import substitute
from repro.opt.rewriter import rule

#: Static loops beyond this size are left rolled (they would bloat the
#: generated code without helping specialization; real feature sets are
#: far smaller).
MAX_UNROLL = 128


@rule("pe/unroll-sum")
def unroll_sum(e: Expr) -> Optional[Expr]:
    """``Σ_{x∈[[e1,...,en]]} Γ(x) → Γ(e1) + ... + Γ(en)``."""
    if not (isinstance(e, Sum) and isinstance(e.domain, SetLit)):
        return None
    elems = e.domain.elems
    if not elems or len(elems) > MAX_UNROLL:
        return None
    terms = [substitute(e.body, e.var, elem) for elem in elems]
    result = terms[0]
    for t in terms[1:]:
        result = Add(result, t)
    return result


@rule("pe/unroll-dict-build")
def unroll_dict_build(e: Expr) -> Optional[Expr]:
    """``λ_{x∈[[e1,...,en]]} body → {{e1 → body[x:=e1], ...}}``."""
    if not (isinstance(e, DictBuild) and isinstance(e.domain, SetLit)):
        return None
    elems = e.domain.elems
    if not elems or len(elems) > MAX_UNROLL:
        return None
    return DictLit(
        tuple((elem, substitute(e.body, e.var, elem)) for elem in elems)
    )


@rule("pe/merge-dict-lits")
def merge_dict_lits(e: Expr) -> Optional[Expr]:
    """``{{e1→e2}} + {{e3→e4}}`` combines into one literal.

    Syntactically equal keys combine their payloads with ``+``
    (Figure 4f, second rule); distinct keys concatenate (third rule).
    The runtime dictionary-literal semantics performs the same
    combination for keys that only collide at run time.
    """
    if not (isinstance(e, Add) and isinstance(e.left, DictLit) and isinstance(e.right, DictLit)):
        return None
    entries = list(e.left.entries)
    for k, v in e.right.entries:
        for i, (ek, ev) in enumerate(entries):
            if ek == k:
                entries[i] = (ek, Add(ev, v))
                break
        else:
            entries.append((k, v))
    return DictLit(tuple(entries))


PARTIAL_EVAL_RULES = (unroll_sum, unroll_dict_build, merge_dict_lits)
