"""Type inference and checking for S-IFAQ (paper Section 4.2).

Two modes share one inference engine:

* **lenient** — used *during* schema specialization, when parts of the
  program are still dynamically typed: unknown constructs get ``DYN``;
* **strict** — the S-IFAQ well-formedness check run *after*
  specialization: residual dynamic features (field values, dynamic
  field accesses, heterogeneous collections) are type errors, reported
  to the user with the offending expression (Figure 1's "if there are
  type errors, they are reported").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import (
    Add,
    BinOp,
    Cmp,
    Const,
    DictBuild,
    DictLit,
    Dom,
    DynFieldAccess,
    Expr,
    FieldAccess,
    FieldLit,
    If,
    Let,
    Lookup,
    Mul,
    Neg,
    RecordLit,
    SetLit,
    Sum,
    UnaryOp,
    Var,
    VariantLit,
)
from repro.ir.pretty import pretty
from repro.ir.program import Program
from repro.ir.types import (
    BOOL,
    DYN,
    FIELD,
    INT,
    REAL,
    STRING,
    BoolType,
    DictType,
    DynType,
    FieldType,
    IntType,
    RealType,
    RecordType,
    SetType,
    StringType,
    Type,
    VariantType,
)


class IFAQTypeError(TypeError):
    """A static type error in an S-IFAQ expression."""

    def __init__(self, message: str, expr: Expr | None = None):
        if expr is not None:
            message = f"{message}\n  in: {pretty(expr)}"
        super().__init__(message)


@dataclass
class TypeChecker:
    """Infers IFAQ types under a variable-type environment."""

    strict: bool = False

    def error(self, message: str, expr: Expr) -> Type:
        if self.strict:
            raise IFAQTypeError(message, expr)
        return DYN

    # -- unification ---------------------------------------------------

    def unify(self, a: Type, b: Type, expr: Expr) -> Type:
        if isinstance(a, DynType):
            return b
        if isinstance(b, DynType):
            return a
        if a == b:
            return a
        # Numeric promotion and bool-as-0/1 in ring arithmetic.
        numericish = (IntType, RealType, BoolType)
        if isinstance(a, numericish) and isinstance(b, numericish):
            if isinstance(a, RealType) or isinstance(b, RealType):
                return REAL
            return INT
        if isinstance(a, RecordType) and isinstance(b, RecordType):
            if a.field_names() != b.field_names():
                return self.error(
                    f"record field mismatch: {a!r} vs {b!r}", expr
                )
            fields = tuple(
                (n, self.unify(a.field_type(n), b.field_type(n), expr))
                for n in a.field_names()
            )
            return RecordType(fields)
        if isinstance(a, DictType) and isinstance(b, DictType):
            return DictType(
                self.unify(a.key, b.key, expr), self.unify(a.value, b.value, expr)
            )
        if isinstance(a, SetType) and isinstance(b, SetType):
            return SetType(self.unify(a.elem, b.elem, expr))
        return self.error(f"cannot unify {a!r} with {b!r}", expr)

    # -- inference -----------------------------------------------------

    def infer(self, e: Expr, env: dict[str, Type]) -> Type:
        if isinstance(e, Const):
            if isinstance(e.value, bool):
                return BOOL
            if isinstance(e.value, int):
                return INT
            if isinstance(e.value, float):
                return REAL
            if isinstance(e.value, str):
                return STRING
            return self.error(f"unknown constant {e.value!r}", e)
        if isinstance(e, FieldLit):
            if self.strict:
                raise IFAQTypeError(
                    "field literal survived schema specialization", e
                )
            return FIELD
        if isinstance(e, Var):
            if e.name in env:
                return env[e.name]
            return self.error(f"unbound variable {e.name!r}", e)

        if isinstance(e, (Add, Mul)):
            lt = self.infer(e.left, env)
            rt = self.infer(e.right, env)
            if isinstance(e, Mul):
                # Scalar scaling of a collection or record keeps its type.
                if self._is_scalar(lt) and not self._is_scalar(rt):
                    return rt
                if self._is_scalar(rt) and not self._is_scalar(lt):
                    return lt
            return self.unify(lt, rt, e)
        if isinstance(e, Neg):
            return self.infer(e.operand, env)
        if isinstance(e, UnaryOp):
            t = self.infer(e.operand, env)
            if e.op == "not":
                return BOOL
            if e.op in ("abs", "sign"):
                return t
            return REAL
        if isinstance(e, BinOp):
            lt = self.infer(e.left, env)
            rt = self.infer(e.right, env)
            if e.op in ("and", "or"):
                return BOOL
            if e.op == "div":
                return REAL
            if e.op == "idiv":
                return INT
            return self.unify(lt, rt, e)
        if isinstance(e, Cmp):
            self.infer(e.left, env)
            self.infer(e.right, env)
            return BOOL

        if isinstance(e, Sum):
            elem = self._domain_elem(self.infer(e.domain, env), e)
            return self.infer(e.body, {**env, e.var: elem})
        if isinstance(e, DictBuild):
            elem = self._domain_elem(self.infer(e.domain, env), e)
            body = self.infer(e.body, {**env, e.var: elem})
            return DictType(elem, body)
        if isinstance(e, DictLit):
            key_t: Type = DYN
            val_t: Type = DYN
            for k, v in e.entries:
                key_t = self.unify(key_t, self.infer(k, env), e)
                val_t = self.unify(val_t, self.infer(v, env), e)
            return DictType(key_t, val_t)
        if isinstance(e, SetLit):
            elem_t: Type = DYN
            for x in e.elems:
                elem_t = self.unify(elem_t, self.infer(x, env), e)
            return SetType(elem_t)
        if isinstance(e, Dom):
            t = self.infer(e.operand, env)
            if isinstance(t, DictType):
                return SetType(t.key)
            if isinstance(t, SetType):
                return t
            return self.error(f"dom() of non-dictionary type {t!r}", e)
        if isinstance(e, Lookup):
            dt = self.infer(e.dict_expr, env)
            kt = self.infer(e.key, env)
            if isinstance(dt, DictType):
                self.unify(dt.key, kt, e)
                return dt.value
            if isinstance(dt, RecordType):
                # D-IFAQ residue: records as Field-keyed dictionaries.
                if self.strict:
                    raise IFAQTypeError(
                        "dictionary lookup on a record survived specialization", e
                    )
                return DYN
            return self.error(f"lookup on non-dictionary type {dt!r}", e)

        if isinstance(e, RecordLit):
            return RecordType(
                tuple((n, self.infer(v, env)) for n, v in e.fields)
            )
        if isinstance(e, VariantLit):
            return VariantType(((e.tag, self.infer(e.value, env)),))
        if isinstance(e, FieldAccess):
            rt = self.infer(e.record, env)
            if isinstance(rt, (RecordType, VariantType)):
                try:
                    return rt.field_type(e.name)
                except KeyError:
                    return self.error(
                        f"no field {e.name!r} in {rt!r}", e
                    )
            return self.error(f"field access on non-record type {rt!r}", e)
        if isinstance(e, DynFieldAccess):
            rt = self.infer(e.record, env)
            self.infer(e.key, env)
            if self.strict:
                raise IFAQTypeError(
                    "dynamic field access survived schema specialization", e
                )
            if isinstance(rt, RecordType) and isinstance(e.key, FieldLit):
                try:
                    return rt.field_type(e.key.name)
                except KeyError:
                    return DYN
            return DYN

        if isinstance(e, Let):
            vt = self.infer(e.value, env)
            return self.infer(e.body, {**env, e.var: vt})
        if isinstance(e, If):
            self.infer(e.cond, env)
            tt = self.infer(e.then_branch, env)
            ft = self.infer(e.else_branch, env)
            return self.unify(tt, ft, e)

        return self.error(f"unknown node {type(e).__name__}", e)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _is_scalar(t: Type) -> bool:
        return isinstance(t, (IntType, RealType, BoolType))

    def _domain_elem(self, t: Type, e: Expr) -> Type:
        if isinstance(t, SetType):
            return t.elem
        if isinstance(t, DictType):
            return t.key
        return self.error(f"iteration over non-collection type {t!r}", e)


def infer_type(e: Expr, env: dict[str, Type] | None = None) -> Type:
    """Lenient type inference (unknowns become ``DYN``)."""
    return TypeChecker(strict=False).infer(e, dict(env or {}))


def typecheck(e: Expr, env: dict[str, Type] | None = None) -> Type:
    """Strict S-IFAQ type checking; raises :class:`IFAQTypeError`."""
    return TypeChecker(strict=True).infer(e, dict(env or {}))


def typecheck_program(p: Program, env: dict[str, Type] | None = None) -> Type:
    """Strictly type-check a full program; returns the state's type."""
    checker = TypeChecker(strict=True)
    scope = dict(env or {})
    for name, value in p.inits:
        scope[name] = checker.infer(value, scope)
    state_t = checker.infer(p.init, scope)
    scope[p.state] = state_t
    cond_t = checker.infer(p.cond, scope)
    if not isinstance(cond_t, (BoolType, IntType, DynType)):
        raise IFAQTypeError(f"loop condition must be boolean, got {cond_t!r}", p.cond)
    body_t = checker.infer(p.body, scope)
    checker.unify(state_t, body_t, p.body)
    return state_t
