"""Reference interpreter for D-IFAQ / S-IFAQ expressions and programs.

This is the semantic oracle of the repository: every optimization pass
must produce an expression that evaluates to the same value under this
interpreter.  It is deliberately simple (structural recursion over the
AST) and instrumented with an operation counter so the high-level
optimization micro-benchmarks (paper Figure 6) can report interpreter
work alongside wall-clock time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.ir.expr import (
    Add,
    BinOp,
    Cmp,
    Const,
    DictBuild,
    DictLit,
    Dom,
    DynFieldAccess,
    Expr,
    FieldAccess,
    FieldLit,
    If,
    Let,
    Lookup,
    Mul,
    Neg,
    RecordLit,
    SetLit,
    Sum,
    UnaryOp,
    Var,
    VariantLit,
)
from repro.ir.pretty import pretty
from repro.ir.program import Program
from repro.runtime.rings import is_zero, truthy, v_add, v_mul, v_neg
from repro.runtime.values import (
    DictValue,
    FieldValue,
    RecordValue,
    SetValue,
    VariantValue,
)


class EvalError(Exception):
    """A runtime error during interpretation, with the offending expression."""

    def __init__(self, message: str, expr: Expr | None = None):
        if expr is not None:
            message = f"{message}\n  in: {pretty(expr)}"
        super().__init__(message)


@dataclass
class EvalStats:
    """Counts of interpreter work, for optimization micro-benchmarks."""

    nodes_evaluated: int = 0
    loop_iterations: int = 0
    arithmetic_ops: int = 0


class Interpreter:
    """Evaluates IFAQ expressions in an environment of named values.

    The environment typically binds relation names to ``DictValue``
    instances mapping tuple records to multiplicities (see
    :meth:`repro.db.relation.Relation.to_value`).
    """

    def __init__(self, env: Mapping[str, Any] | None = None, max_loop_iterations: int = 1_000_000):
        self.globals: dict[str, Any] = dict(env or {})
        self.max_loop_iterations = max_loop_iterations
        self.stats = EvalStats()

    # -- public API ---------------------------------------------------

    def evaluate(self, e: Expr, local_env: Mapping[str, Any] | None = None) -> Any:
        """Evaluate an expression; ``local_env`` shadows the globals."""
        env = dict(self.globals)
        if local_env:
            env.update(local_env)
        return self._eval(e, env)

    def run_program(self, p: Program) -> Any:
        """Run a top-level program to completion and return the final state."""
        env = dict(self.globals)
        for name, expr in p.inits:
            env[name] = self._eval(expr, env)
        state = self._eval(p.init, env)
        iterations = 0
        while True:
            env[p.state] = state
            if not truthy(self._eval(p.cond, env)):
                break
            iterations += 1
            if iterations > self.max_loop_iterations:
                raise EvalError(
                    f"loop exceeded {self.max_loop_iterations} iterations "
                    "(missing convergence?)"
                )
            state = self._eval(p.body, env)
            self.stats.loop_iterations += 1
        return state

    # -- evaluation ---------------------------------------------------

    def _eval(self, e: Expr, env: dict[str, Any]) -> Any:
        self.stats.nodes_evaluated += 1

        if isinstance(e, Const):
            return e.value
        if isinstance(e, FieldLit):
            return FieldValue(e.name)
        if isinstance(e, Var):
            try:
                return env[e.name]
            except KeyError:
                raise EvalError(f"unbound variable {e.name!r}", e) from None

        if isinstance(e, Add):
            self.stats.arithmetic_ops += 1
            return v_add(self._eval(e.left, env), self._eval(e.right, env))
        if isinstance(e, Mul):
            self.stats.arithmetic_ops += 1
            return v_mul(self._eval(e.left, env), self._eval(e.right, env))
        if isinstance(e, Neg):
            return v_neg(self._eval(e.operand, env))
        if isinstance(e, UnaryOp):
            return self._eval_unary(e, env)
        if isinstance(e, BinOp):
            return self._eval_binop(e, env)
        if isinstance(e, Cmp):
            return self._eval_cmp(e, env)

        if isinstance(e, Sum):
            return self._eval_sum(e, env)
        if isinstance(e, DictBuild):
            return self._eval_dict_build(e, env)
        if isinstance(e, DictLit):
            # Bag semantics: a zero payload means "absent", so {{k → 0}}
            # is the empty dictionary (the ring zero).
            out: dict[Any, Any] = {}
            for k_expr, v_expr in e.entries:
                k = self._eval(k_expr, env)
                v = self._eval(v_expr, env)
                v = v_add(out[k], v) if k in out else v
                if is_zero(v):
                    out.pop(k, None)
                else:
                    out[k] = v
            return DictValue(out)
        if isinstance(e, SetLit):
            return SetValue(self._eval(x, env) for x in e.elems)
        if isinstance(e, Dom):
            d = self._eval(e.operand, env)
            if isinstance(d, DictValue):
                return SetValue(d.keys())
            if isinstance(d, SetValue):
                return d
            raise EvalError(f"dom() of non-dictionary {type(d).__name__}", e)
        if isinstance(e, Lookup):
            d = self._eval(e.dict_expr, env)
            k = self._eval(e.key, env)
            if isinstance(d, DictValue):
                return d.get(k, 0)
            if isinstance(d, RecordValue):
                # Records behave as Field-keyed dictionaries in D-IFAQ.
                key = k.name if isinstance(k, FieldValue) else k
                return d[key]
            raise EvalError(f"lookup on non-dictionary {type(d).__name__}", e)

        if isinstance(e, RecordLit):
            return RecordValue((n, self._eval(v, env)) for n, v in e.fields)
        if isinstance(e, VariantLit):
            return VariantValue(e.tag, self._eval(e.value, env))
        if isinstance(e, FieldAccess):
            rec_value = self._eval(e.record, env)
            return self._access_field(rec_value, e.name, e)
        if isinstance(e, DynFieldAccess):
            rec_value = self._eval(e.record, env)
            key = self._eval(e.key, env)
            name = key.name if isinstance(key, FieldValue) else key
            if not isinstance(name, str):
                raise EvalError(f"dynamic field access with non-field key {key!r}", e)
            return self._access_field(rec_value, name, e)

        if isinstance(e, Let):
            value = self._eval(e.value, env)
            saved = env.get(e.var, _MISSING)
            env[e.var] = value
            try:
                return self._eval(e.body, env)
            finally:
                if saved is _MISSING:
                    del env[e.var]
                else:
                    env[e.var] = saved
        if isinstance(e, If):
            if truthy(self._eval(e.cond, env)):
                return self._eval(e.then_branch, env)
            return self._eval(e.else_branch, env)

        raise EvalError(f"unknown expression node {type(e).__name__}", e)

    def _access_field(self, value: Any, name: str, e: Expr) -> Any:
        if isinstance(value, RecordValue):
            try:
                return value[name]
            except KeyError:
                raise EvalError(f"record has no field {name!r}: {value!r}", e) from None
        if isinstance(value, VariantValue):
            if value.tag != name:
                raise EvalError(f"variant <{value.tag}=...> has no field {name!r}", e)
            return value.value
        raise EvalError(f"field access on non-record {type(value).__name__}", e)

    def _iter_domain(self, domain_value: Any, e: Expr):
        if isinstance(domain_value, SetValue):
            return iter(domain_value)
        if isinstance(domain_value, DictValue):
            return iter(domain_value.keys())
        raise EvalError(
            f"iteration domain must be a set or dictionary, got {type(domain_value).__name__}",
            e,
        )

    def _eval_sum(self, e: Sum, env: dict[str, Any]) -> Any:
        domain_value = self._eval(e.domain, env)
        acc: Any = 0
        saved = env.get(e.var, _MISSING)
        try:
            for elem in self._iter_domain(domain_value, e):
                env[e.var] = elem
                acc = v_add(acc, self._eval(e.body, env))
                self.stats.loop_iterations += 1
        finally:
            if saved is _MISSING:
                env.pop(e.var, None)
            else:
                env[e.var] = saved
        return acc

    def _eval_dict_build(self, e: DictBuild, env: dict[str, Any]) -> Any:
        domain_value = self._eval(e.domain, env)
        out: dict[Any, Any] = {}
        saved = env.get(e.var, _MISSING)
        try:
            for elem in self._iter_domain(domain_value, e):
                env[e.var] = elem
                out[elem] = self._eval(e.body, env)
                self.stats.loop_iterations += 1
        finally:
            if saved is _MISSING:
                env.pop(e.var, None)
            else:
                env[e.var] = saved
        return DictValue(out)

    def _eval_unary(self, e: UnaryOp, env: dict[str, Any]) -> Any:
        v = self._eval(e.operand, env)
        op = e.op
        if op == "not":
            return not truthy(v)
        if op == "abs":
            return abs(v)
        if op == "sqrt":
            return math.sqrt(v)
        if op == "log":
            return math.log(v)
        if op == "exp":
            return math.exp(v)
        if op == "sign":
            return (v > 0) - (v < 0)
        raise EvalError(f"unknown unary operator {op!r}", e)

    def _eval_binop(self, e: BinOp, env: dict[str, Any]) -> Any:
        op = e.op
        if op == "and":
            return truthy(self._eval(e.left, env)) and truthy(self._eval(e.right, env))
        if op == "or":
            return truthy(self._eval(e.left, env)) or truthy(self._eval(e.right, env))
        a = self._eval(e.left, env)
        b = self._eval(e.right, env)
        self.stats.arithmetic_ops += 1
        if op == "div":
            return a / b
        if op == "idiv":
            return a // b
        if op == "pow":
            return a**b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        raise EvalError(f"unknown binary operator {op!r}", e)

    def _eval_cmp(self, e: Cmp, env: dict[str, Any]) -> Any:
        a = self._eval(e.left, env)
        b = self._eval(e.right, env)
        op = e.op
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "in":
            return a in b
        raise EvalError(f"unknown comparison {op!r}", e)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def evaluate(e: Expr, env: Mapping[str, Any] | None = None) -> Any:
    """One-shot expression evaluation (convenience wrapper)."""
    return Interpreter(env).evaluate(e)


def run_program(p: Program, env: Mapping[str, Any] | None = None) -> Any:
    """One-shot program execution (convenience wrapper)."""
    return Interpreter(env).run_program(p)
