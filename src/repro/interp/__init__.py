"""Reference interpreter — the semantic oracle for all compiler passes."""

from repro.interp.interpreter import EvalError, EvalStats, Interpreter, evaluate, run_program

__all__ = ["EvalError", "EvalStats", "Interpreter", "evaluate", "run_program"]
