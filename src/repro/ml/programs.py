"""D-IFAQ program builders for the paper's learning tasks (Section 3).

These functions produce exactly the programs a data scientist would
write in the dynamically-typed front end: the feature-extraction query
and the training loop, unoptimized.  The compiler layers do the rest.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.query import JoinQuery, join_as_ifaq
from repro.db.schema import DatabaseSchema
from repro.ir.builders import dict_lit, dom, fields, fld, sum_over, V
from repro.ir.expr import (
    BinOp,
    Cmp,
    Const,
    DictBuild,
    Expr,
    Lookup,
    Neg,
    RecordLit,
    Var,
)
from repro.ir.program import Program


def linear_regression_bgd(
    db_schema: DatabaseSchema,
    query: JoinQuery,
    feature_names: Sequence[str],
    label: str,
    iterations: int,
    alpha: float = 0.001,
    materialized_q: bool = False,
) -> Program:
    """Batch-gradient-descent linear regression as a D-IFAQ program.

    Mirrors the program in Section 3::

        let F = [[a1, ..., an]] in
        θ ← θ0
        while (not converged) {
          θ = λ_{f1∈F} ( θ(f1) − (α/|Q|) Σ_{x∈dom(Q)} Q(x) *
                         (Σ_{f2∈F} θ(f2)*x[f2] − x[label]) * x[f1] )
        }
        θ

    The loop state is the record ``{theta, iter}`` so convergence can
    be expressed as an iteration bound inside the core language.  ``Q``
    is bound in the inits as the join query over the input relations —
    the *unoptimized* program therefore materializes the join, exactly
    like the mainstream pipeline, until the optimizer rewrites it.

    With ``materialized_q=True`` the ``Q`` init is omitted and ``Q`` is
    taken from the environment instead: the Figure 6 micro-benchmarks
    supply a pre-materialized join and time it as its own bar, exactly
    as the paper plots it.
    """
    if label in feature_names:
        raise ValueError(f"label {label!r} cannot also be a feature")

    q_expr = None if materialized_q else join_as_ifaq(db_schema, query)
    count_expr = sum_over("x_cnt", dom(V("Q")), Lookup(V("Q"), V("x_cnt")))
    scale_expr = BinOp("div", Const(alpha), V("n_Q"))

    theta0 = dict_lit(*((fld(f), Const(0.0)) for f in feature_names))

    theta = V("state").dot("theta")
    x = V("x")

    prediction_error = (
        sum_over("f2", V("F"), Lookup(theta, V("f2")) * x.at(V("f2")))
        + Neg(x.at(fld(label)))
    )
    gradient_f1 = sum_over(
        "x",
        dom(V("Q")),
        Lookup(V("Q"), V("x")) * prediction_error * x.at(V("f1")),
    )
    update = DictBuild(
        "f1",
        V("F"),
        Lookup(theta, V("f1")) + Neg(V("scale") * gradient_f1),
    )

    body = RecordLit(
        (
            ("theta", update),
            ("iter", V("state").dot("iter") + Const(1)),
        )
    )

    return Program(
        inits=(
            ("F", fields(*feature_names)),
            *((("Q", q_expr),) if q_expr is not None else ()),
            ("n_Q", count_expr),
            ("scale", scale_expr),
        ),
        state="state",
        init=RecordLit((("theta", theta0), ("iter", Const(0)))),
        cond=Cmp("<", V("state").dot("iter"), Const(iterations)),
        body=body,
    )


def linear_regression_inner_loop(
    feature_names: Sequence[str],
    q_var: str = "Q",
    theta_var: str = "theta",
) -> Expr:
    """The simplified inner-loop expression of Example 3.1.

    ``λ_{f1∈F}(θ(f1) − Σ_{x∈dom(Q)} Q(x) * (Σ_{f2∈F} θ(f2)*x[f2]) * x[f1])``
    with ``α/|Q| = 1`` and the label term hidden, as in the paper's
    running example.  Used by unit tests that follow Examples 4.1–4.5
    step by step.
    """
    theta = Var(theta_var)
    x = Var("x")
    inner = sum_over("f2", V("F"), Lookup(theta, V("f2")) * x.at(V("f2")))
    grad = sum_over("x", dom(Var(q_var)), Lookup(Var(q_var), V("x")) * inner * x.at(V("f1")))
    return DictBuild("f1", V("F"), Lookup(theta, V("f1")) + Neg(grad))


def covar_matrix_expr(feature_names: Sequence[str], q_var: str = "Q") -> Expr:
    """The covar-matrix aggregate batch of Example 4.4/4.5::

        λ_{f1∈F} λ_{f2∈F} Σ_{x∈dom(Q)} Q(x) * x[f1] * x[f2]

    (with ``F`` inlined as a field-set literal).
    """
    x = Var("x")
    body = sum_over(
        "x",
        dom(Var(q_var)),
        Lookup(Var(q_var), V("x")) * x.at(V("f1")) * x.at(V("f2")),
    )
    return DictBuild("f1", fields(*feature_names), DictBuild("f2", fields(*feature_names), body))


def regression_tree_cost_expr(
    label: str,
    q_var: str = "Q",
    delta_var: str = "delta",
) -> Expr:
    """The CART variance cost of Section 3 for one candidate condition.

    ``delta_var`` names a dictionary mapping tuples to 0/1 indicators of
    the node's path conjunction δ′::

        cost(Q, δ′) = Σ Q(x)·y²·δ′(x) − (Σ Q(x)·y·δ′(x))² / Σ Q(x)·δ′(x)
    """
    x = Var("x")
    q = Var(q_var)
    d = Var(delta_var)
    y = x.at(fld(label))
    weight = Lookup(q, V("x")) * Lookup(d, V("x"))
    sum_sq = sum_over("x", dom(q), weight * y * y)
    sum_y = sum_over("x", dom(q), weight * y)
    sum_1 = sum_over("x", dom(q), weight)
    return sum_sq + Neg(BinOp("div", sum_y * sum_y, sum_1))
