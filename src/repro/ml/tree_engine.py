"""Vectorized factorized engine for CART over joins (the tree "backend").

The paper's regression trees run as generated C++ over the factorized
join (Section 5: "for regression trees ... they still benefit from the
lower level optimizations").  The Python analog of that compiled kernel
is this engine: all per-node work is numpy over *per-relation* arrays —
the join is never materialized.

Layout, built once per ``fit``:

* each relation keeps its attribute columns as arrays over its own rows;
* every relation gets a **fact-aligned row index**: for fact row ``i``,
  ``row_index[rel][i]`` is the joining row of ``rel`` (computed by
  composing foreign-key lookups down the join tree — the snowflake
  ``Census`` hop goes through ``Location``);
* each feature is coded against the sorted distinct values of its
  owning relation's column, so a group-by is one ``np.bincount`` over
  fact-aligned codes.

Per tree node: the δ conditions evaluate on the (tiny) per-relation
value arrays and broadcast to a fact mask through the codes; each
feature's (count, Σy, Σy²) group-by is three bincounts.  The numbers
are bit-identical to :func:`repro.aggregates.engine.compute_groupby`
(tests pin this), so the learned trees match the interpreted engine's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.aggregates.engine import assign_attribute_owners
from repro.aggregates.join_tree import JoinTreeNode, build_join_tree
from repro.db.database import Database
from repro.db.query import JoinQuery


@dataclass
class _FeatureIndex:
    """One feature's coded view: distinct values + fact-aligned codes."""

    values: np.ndarray  # sorted distinct values of the owning column
    codes: np.ndarray   # per fact row: index into ``values``


class VectorizedTreeEngine:
    """Factorized group-by aggregates for CART, vectorized with numpy."""

    def __init__(
        self,
        db: Database,
        query: JoinQuery,
        features: Sequence[str],
        label: str,
    ):
        tree = build_join_tree(db.schema(), query.relations, stats=dict(db.statistics()))
        self.features = list(features)
        self.label = label
        owners = assign_attribute_owners(tree, db, self.features + [label])

        rows, weights, columns = self._load_columns(db, tree)
        row_index = self._fact_row_indices(db, tree, rows, columns)

        self.weights = weights
        self.n_facts = len(weights)

        def fact_column(attr: str) -> np.ndarray:
            rel = owners[attr]
            return columns[rel][attr][row_index[rel]]

        self.y = fact_column(label).astype(float)
        self.y_sq = self.y * self.y
        self.wy = self.weights * self.y
        self.wy_sq = self.weights * self.y_sq

        self.index: dict[str, _FeatureIndex] = {}
        for f in self.features:
            col = fact_column(f)
            values, codes = np.unique(col, return_inverse=True)
            self.index[f] = _FeatureIndex(values=values, codes=codes)

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def _load_columns(db: Database, tree: JoinTreeNode):
        """Per-relation row lists, fact weights, and column arrays."""
        rows: dict[str, list] = {}
        columns: dict[str, dict[str, np.ndarray]] = {}
        weights = None
        for node in tree.walk():
            rel = db.relation(node.relation)
            rel_rows = list(rel.data.items())
            rows[node.relation] = rel_rows
            attr_names = rel.schema.attribute_names()
            columns[node.relation] = {
                a: np.array([rec[a] for rec, _ in rel_rows]) for a in attr_names
            }
            if node is tree:
                weights = np.array([m for _, m in rel_rows], dtype=float)
        return rows, weights, columns

    @staticmethod
    def _fact_row_indices(db, tree: JoinTreeNode, rows, columns):
        """Fact-aligned joining-row index for every relation in the tree."""
        root_rows = rows[tree.relation]
        n = len(root_rows)
        row_index: dict[str, np.ndarray] = {
            tree.relation: np.arange(n, dtype=np.int64)
        }

        def resolve(node: JoinTreeNode, parent: str) -> None:
            key_attrs = node.join_attrs
            lookup = {}
            for i, (rec, _) in enumerate(rows[node.relation]):
                lookup[tuple(rec[a] for a in key_attrs)] = i
            parent_cols = columns[parent]
            parent_to_child = np.empty(len(rows[parent]), dtype=np.int64)
            for i in range(len(rows[parent])):
                key = tuple(parent_cols[a][i] for a in key_attrs)
                parent_to_child[i] = lookup.get(key, -1)
            fact_parent = row_index[parent]
            fact_child = parent_to_child[fact_parent]
            if np.any(fact_child < 0):
                raise ValueError(
                    f"dangling foreign keys: fact rows join no {node.relation} tuple"
                )
            row_index[node.relation] = fact_child
            for child in node.children:
                resolve(child, node.relation)

        for child in tree.children:
            resolve(child, tree.relation)
        return row_index

    # -- per-node operations --------------------------------------------------

    def full_mask(self) -> np.ndarray:
        return np.ones(self.n_facts, dtype=bool)

    def condition_mask(self, feature: str, op: str, threshold: Any) -> np.ndarray:
        """The fact mask of one δ condition, via the feature's value codes."""
        idx = self.index[feature]
        if op == "<=":
            allowed = idx.values <= threshold
        elif op == ">":
            allowed = idx.values > threshold
        else:
            raise ValueError(f"unknown condition operator {op!r}")
        return allowed[idx.codes]

    def groupby(self, feature: str, mask: np.ndarray):
        """Sorted distinct values with (count, Σy, Σy²) per value.

        Groups with zero weight under the mask are dropped, matching the
        interpreted engine's sparse dictionaries.
        """
        idx = self.index[feature]
        codes = idx.codes[mask]
        k = len(idx.values)
        counts = np.bincount(codes, weights=self.weights[mask], minlength=k)
        sums = np.bincount(codes, weights=self.wy[mask], minlength=k)
        sums_sq = np.bincount(codes, weights=self.wy_sq[mask], minlength=k)
        present = counts > 0
        return idx.values[present], counts[present], sums[present], sums_sq[present]
