"""Vectorized factorized engine for CART over joins (the tree "backend").

The paper's regression trees run as generated C++ over the factorized
join (Section 5: "for regression trees ... they still benefit from the
lower level optimizations").  The Python analog of that compiled kernel
is the ``"numpy"`` execution backend; this engine is a thin CART-shaped
shim over it.

The heavy machinery — per-relation column arrays, join-key coding, and
the **fact-aligned row index** (for fact row ``i``, the joining row of
every relation, composed by chaining foreign-key lookups down the join
tree; the snowflake ``Census`` hop goes through ``Location``) — lives
in :class:`repro.backend.numpy_backend.PreparedLayout`, itself a thin
view over the shared per-database
:class:`~repro.backend.column_store.ColumnStore`.  The engine is
resolved through the backend registry and its variance-batch kernel
through the :class:`~repro.backend.cache.KernelCache`, exactly like the
compiler driver resolves batch kernels, so repeated fits over the same
database reuse the kernel, the plan view, *and* the columnar arrays —
which are also the arrays every interpreted group-by kernel over the
same database reads.

What stays here is the CART-specific view: each feature coded against
the sorted distinct values of its fact-aligned column, so a per-node
group-by is three ``np.bincount`` calls over the codes, and δ
conditions broadcast to fact masks through the codes.  The numbers are
bit-identical to :func:`repro.aggregates.engine.compute_groupby` on
exact domains (tests pin this), so the learned trees match the
interpreted engine's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.aggregates.batch import variance_batch
from repro.aggregates.engine import assign_attribute_owners
from repro.aggregates.join_tree import build_join_tree
from repro.backend.cache import KernelCache, default_kernel_cache
from repro.backend.layout import LAYOUT_SORTED
from repro.backend.plan import build_batch_plan
from repro.backend.registry import get_backend
from repro.db.database import Database
from repro.db.query import JoinQuery


@dataclass
class _FeatureIndex:
    """One feature's coded view: distinct values + fact-aligned codes."""

    values: np.ndarray  # sorted distinct values of the owning column
    codes: np.ndarray   # per fact row: index into ``values``


class VectorizedTreeEngine:
    """Factorized group-by aggregates for CART, vectorized with numpy.

    ``backend`` names (or is) an execution backend exposing the
    columnar ``prepared_layout`` protocol — the registered ``"numpy"``
    backend; ``kernel_cache`` defaults to the process-wide cache, so
    repeated fits are kernel-cache hits.
    """

    def __init__(
        self,
        db: Database,
        query: JoinQuery,
        features: Sequence[str],
        label: str,
        backend: Any = "numpy",
        kernel_cache: KernelCache | None = None,
    ):
        resolved = get_backend(backend)
        if not hasattr(resolved, "prepared_layout"):
            raise TypeError(
                f"the vectorized tree engine needs a backend with a columnar "
                f"prepared layout (e.g. 'numpy'); got {resolved.name!r}"
            )
        tree = build_join_tree(db.schema(), query.relations, stats=dict(db.statistics()))
        self.features = list(features)
        self.label = label
        owners = assign_attribute_owners(tree, db, self.features + [label])

        plan = build_batch_plan(db, tree, variance_batch(label))
        cache = kernel_cache if kernel_cache is not None else default_kernel_cache()
        self.kernel = cache.get_or_compile(resolved, plan, LAYOUT_SORTED)
        # Store-backed: the columns/codings below are shared with every
        # other kernel over this database, not private to this engine.
        self.layout = resolved.prepared_layout(self.kernel, db)
        # Fact alignment requires every fact row to join exactly one
        # tuple per relation; validate the whole tree eagerly (not just
        # feature owners) so danglers raise instead of skewing masks.
        for node in plan.root.walk():
            self.layout.fact_index(node.relation)

        def fact_column(attr: str) -> np.ndarray:
            return self.layout.fact_column(owners[attr], attr)

        self.weights = self.layout.root.mult
        self.n_facts = len(self.weights)

        self.y = fact_column(label).astype(float)
        self.y_sq = self.y * self.y
        self.wy = self.weights * self.y
        self.wy_sq = self.weights * self.y_sq

        self.index: dict[str, _FeatureIndex] = {}
        for f in self.features:
            col = fact_column(f)
            values, codes = np.unique(col, return_inverse=True)
            self.index[f] = _FeatureIndex(values=values, codes=codes)

    # -- per-node operations --------------------------------------------------

    def full_mask(self) -> np.ndarray:
        return np.ones(self.n_facts, dtype=bool)

    def condition_mask(self, feature: str, op: str, threshold: Any) -> np.ndarray:
        """The fact mask of one δ condition, via the feature's value codes."""
        idx = self.index[feature]
        if op == "<=":
            allowed = idx.values <= threshold
        elif op == ">":
            allowed = idx.values > threshold
        else:
            raise ValueError(f"unknown condition operator {op!r}")
        return allowed[idx.codes]

    def groupby(self, feature: str, mask: np.ndarray):
        """Sorted distinct values with (count, Σy, Σy²) per value.

        Groups with zero weight under the mask are dropped, matching the
        interpreted engine's sparse dictionaries.
        """
        idx = self.index[feature]
        codes = idx.codes[mask]
        k = len(idx.values)
        counts = np.bincount(codes, weights=self.weights[mask], minlength=k)
        sums = np.bincount(codes, weights=self.wy[mask], minlength=k)
        sums_sq = np.bincount(codes, weights=self.wy_sq[mask], minlength=k)
        present = counts > 0
        return idx.values[present], counts[present], sums[present], sums_sq[present]
