"""Materialize-then-learn baselines (the paper's competitors).

The paper benchmarks scikit-learn, TensorFlow and mlpack, all of which
share one architecture: materialize the feature-extraction join into a
data matrix, then learn over it.  These numpy implementations exercise
exactly that code path, with each competitor's distinguishing behaviour
modelled:

* :class:`ScikitStyleLinearRegression` — ordinary least squares over
  the fully materialized in-memory matrix (scikit's ``LinearRegression``
  is a closed-form solver), with an explicit memory budget: exceeding
  it raises :class:`OutOfMemoryError`, the failure mode scikit showed
  on the large datasets.
* :class:`TensorFlowStyleLinearRegression` — one epoch of minibatch
  SGD over the materialized matrix (the paper runs TF's
  ``LinearRegressor`` for a single epoch at batch size 100k).
* :class:`MLPackStyleLinearRegression` — eagerly copies the matrix to
  build its transpose, doubling resident memory; this is why mlpack
  ran out of memory on as little as 5% of Favorita.
* :class:`BaselineRegressionTree` — exact CART over the materialized
  matrix with the same threshold strategy as the IFAQ tree, so the two
  learn identical trees (the paper: "Scikit-learn and IFAQ learn very
  similar regression trees so the accuracies are very close").

Every baseline separates ``materialize`` and ``learn`` timings the way
Figure 5 plots them (left bar / right bar).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.db.database import Database
from repro.db.query import JoinQuery, materialize_join
from repro.db.relation import Relation


class OutOfMemoryError(MemoryError):
    """The modelled memory budget was exceeded."""


def materialize_to_matrix(
    db: Database,
    query: JoinQuery,
    features: Sequence[str],
    label: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize the join and export the (X, y) training matrix."""
    joined = materialize_join(db, query)
    return relation_to_matrix(joined, features, label)


def relation_to_matrix(
    relation: Relation, features: Sequence[str], label: str
) -> tuple[np.ndarray, np.ndarray]:
    n = relation.tuple_count()
    x = np.empty((n, len(features)))
    y = np.empty(n)
    i = 0
    for rec, mult in relation.data.items():
        row = [rec[f] for f in features]
        for _ in range(mult):
            x[i] = row
            y[i] = rec[label]
            i += 1
    return x, y


def _check_memory(
    x: np.ndarray, budget_bytes: int | None, copies: int = 1
) -> None:
    if budget_bytes is not None and x.nbytes * copies > budget_bytes:
        raise OutOfMemoryError(
            f"training matrix needs {x.nbytes * copies / 1e6:.1f} MB "
            f"({copies} resident cop{'y' if copies == 1 else 'ies'}), "
            f"budget is {budget_bytes / 1e6:.1f} MB"
        )


@dataclass
class ScikitStyleLinearRegression:
    """Closed-form OLS over the materialized matrix."""

    features: Sequence[str]
    label: str
    memory_budget_bytes: int | None = None

    theta_: np.ndarray | None = None

    def learn(self, x: np.ndarray, y: np.ndarray) -> "ScikitStyleLinearRegression":
        _check_memory(x, self.memory_budget_bytes)
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        self.theta_, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    def fit(self, db: Database, query: JoinQuery) -> "ScikitStyleLinearRegression":
        x, y = materialize_to_matrix(db, query, self.features, self.label)
        return self.learn(x, y)

    def predict_many(self, x: np.ndarray) -> np.ndarray:
        assert self.theta_ is not None, "model is not fitted"
        return self.theta_[0] + x @ self.theta_[1:]


@dataclass
class TensorFlowStyleLinearRegression:
    """One epoch of minibatch SGD (TF ``LinearRegressor``-style).

    The paper reports a single epoch at batch size 100,000 as TF's best
    performance/accuracy trade-off, noting the resulting RMSE is a few
    percent worse than IFAQ's fully converged BGD.
    """

    features: Sequence[str]
    label: str
    batch_size: int = 100_000
    learning_rate: float = 0.1
    epochs: int = 1
    memory_budget_bytes: int | None = None
    seed: int = 0

    theta_: np.ndarray | None = None

    def learn(self, x: np.ndarray, y: np.ndarray) -> "TensorFlowStyleLinearRegression":
        _check_memory(x, self.memory_budget_bytes)
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        mu = x.mean(axis=0)
        sigma = x.std(axis=0)
        sigma[sigma == 0.0] = 1.0
        xs = (x - mu) / sigma

        theta = np.zeros(d + 1)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                xb, yb = xs[idx], y[idx]
                preds = theta[0] + xb @ theta[1:]
                err = preds - yb
                theta[0] -= self.learning_rate * err.mean()
                theta[1:] -= self.learning_rate * (xb.T @ err) / len(idx)

        out = np.zeros(d + 1)
        out[1:] = theta[1:] / sigma
        out[0] = theta[0] - float(np.sum(theta[1:] * mu / sigma))
        self.theta_ = out
        return self

    def fit(self, db: Database, query: JoinQuery) -> "TensorFlowStyleLinearRegression":
        x, y = materialize_to_matrix(db, query, self.features, self.label)
        return self.learn(x, y)

    def predict_many(self, x: np.ndarray) -> np.ndarray:
        assert self.theta_ is not None, "model is not fitted"
        return self.theta_[0] + x @ self.theta_[1:]


@dataclass
class MLPackStyleLinearRegression(ScikitStyleLinearRegression):
    """OLS that first copies the matrix for its transpose (mlpack).

    The extra resident copy is what made mlpack fail on every paper
    experiment; with a budget set, this class raises
    :class:`OutOfMemoryError` long before the others do.
    """

    def learn(self, x: np.ndarray, y: np.ndarray) -> "MLPackStyleLinearRegression":
        _check_memory(x, self.memory_budget_bytes, copies=2)
        transposed = np.ascontiguousarray(x.T)  # the eager copy
        design = np.vstack([np.ones(x.shape[0]), transposed]).T
        self.theta_, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self


@dataclass
class BaselineRegressionTree:
    """Exact CART over the materialized matrix (scikit-style).

    Uses the same variance cost and midpoint thresholds as
    :class:`repro.ml.regression_tree.IFAQRegressionTree`, so both
    learners produce the same tree on the same data.
    """

    features: Sequence[str]
    label: str
    max_depth: int = 4
    min_samples_leaf: float = 1.0
    min_improvement: float = 1e-12
    memory_budget_bytes: int | None = None

    root_: "object | None" = None

    def learn(self, x: np.ndarray, y: np.ndarray) -> "BaselineRegressionTree":
        from repro.ml.regression_tree import Condition, TreeNode

        _check_memory(x, self.memory_budget_bytes)

        def build(mask: np.ndarray, depth: int) -> TreeNode:
            ys = y[mask]
            n = len(ys)
            prediction = float(ys.mean())
            node_cost = float(((ys - prediction) ** 2).sum())

            best: tuple[float, Condition] | None = None
            if depth <= self.max_depth:
                for j, feature in enumerate(self.features):
                    xs = x[mask, j]
                    order = np.argsort(xs, kind="stable")
                    xs_sorted = xs[order]
                    ys_sorted = ys[order]
                    cum_n = np.arange(1, n + 1, dtype=float)
                    cum_s = np.cumsum(ys_sorted)
                    cum_ss = np.cumsum(ys_sorted**2)
                    boundaries = np.nonzero(np.diff(xs_sorted))[0]
                    for b in boundaries:
                        ln = cum_n[b]
                        if ln < self.min_samples_leaf or n - ln < self.min_samples_leaf:
                            continue
                        ls, lss = cum_s[b], cum_ss[b]
                        rs, rss = cum_s[-1] - ls, cum_ss[-1] - lss
                        cost = (
                            lss - ls * ls / ln + rss - rs * rs / (n - ln)
                        )
                        if best is None or cost < best[0]:
                            threshold = (xs_sorted[b] + xs_sorted[b + 1]) / 2
                            best = (cost, Condition(feature, "<=", float(threshold)))
            if best is None or node_cost - best[0] <= self.min_improvement:
                return TreeNode(prediction=prediction, count=float(n))
            condition = best[1]
            j = list(self.features).index(condition.feature)
            left_mask = mask.copy()
            left_mask[mask] = x[mask, j] <= condition.threshold
            right_mask = mask & ~left_mask
            return TreeNode(
                prediction=prediction,
                count=float(n),
                condition=condition,
                left=build(left_mask, depth + 1),
                right=build(right_mask, depth + 1),
            )

        self.root_ = build(np.ones(len(y), dtype=bool), 1)
        return self

    def fit(self, db: Database, query: JoinQuery) -> "BaselineRegressionTree":
        x, y = materialize_to_matrix(db, query, self.features, self.label)
        return self.learn(x, y)

    def predict_many(self, x: np.ndarray) -> np.ndarray:
        assert self.root_ is not None, "model is not fitted"
        out = np.empty(x.shape[0])
        cols = list(self.features)
        for i in range(x.shape[0]):
            record = dict(zip(cols, x[i]))
            out[i] = self.root_.predict(record)  # type: ignore[attr-defined]
        return out
