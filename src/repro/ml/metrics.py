"""Evaluation metrics for the learned models."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.db.relation import Relation


def rmse(predictions: Sequence[float], targets: Sequence[float]) -> float:
    """Root-mean-square error."""
    p = np.asarray(predictions, dtype=float)
    t = np.asarray(targets, dtype=float)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    if p.size == 0:
        raise ValueError("rmse of empty prediction set")
    return float(np.sqrt(np.mean((p - t) ** 2)))


def rmse_on_relation(
    predict: Callable[[dict], float], relation: Relation, label: str
) -> float:
    """RMSE of a per-record prediction function over a relation."""
    predictions: list[float] = []
    targets: list[float] = []
    for rec, mult in relation.data.items():
        value = predict(dict(rec))
        for _ in range(mult):
            predictions.append(value)
            targets.append(rec[label])
    return rmse(predictions, targets)
