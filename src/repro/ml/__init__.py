"""Machine learning over factorized joins, plus materialize-then-learn
baselines (paper Sections 3 and 5)."""

from repro.ml.baselines import (
    BaselineRegressionTree,
    MLPackStyleLinearRegression,
    OutOfMemoryError,
    ScikitStyleLinearRegression,
    TensorFlowStyleLinearRegression,
    materialize_to_matrix,
    relation_to_matrix,
)
from repro.ml.linear_regression import IFAQLinearRegression, closed_form_solution
from repro.ml.metrics import rmse, rmse_on_relation
from repro.ml.regression_tree import Condition, IFAQRegressionTree, TreeNode

__all__ = [
    "BaselineRegressionTree", "Condition", "IFAQLinearRegression",
    "IFAQRegressionTree", "MLPackStyleLinearRegression", "OutOfMemoryError",
    "ScikitStyleLinearRegression", "TensorFlowStyleLinearRegression",
    "TreeNode", "closed_form_solution", "materialize_to_matrix",
    "relation_to_matrix", "rmse", "rmse_on_relation",
]
