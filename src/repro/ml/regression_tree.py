"""Regression trees via CART over factorized joins (paper Section 3).

The cost of a candidate condition is the variance expression::

    cost(Q, δ′) = Σ Q(x)·y²·δ′ − (Σ Q(x)·y·δ′)² / Σ Q(x)·δ′

Unlike linear regression the aggregates depend on node-specific
conditions δ and cannot be hoisted; instead, every tree node issues one
*group-by* aggregate batch per feature — ``feature value → (count, Σy,
Σy²)`` — computed factorized over the join with the node's δ conditions
pushed into the scans of their owning relations.  Prefix sums over the
sorted groups then score every threshold of that feature in one pass.

Execution resolves through the backend registry exactly like the
compiler driver: the per-feature group-by plans compile once into
cached kernels, and every subsequent tree node is a
:class:`~repro.backend.cache.KernelCache` hit with only the δ
predicates changing at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.aggregates.batch import variance_batch
from repro.aggregates.engine import Predicates, compute_groupby, compute_groupby_many
from repro.aggregates.join_tree import JoinTreeNode, build_join_tree
from repro.backend.cache import KernelCache
from repro.backend.plan import MultiBatchPlan, build_batch_plan
from repro.backend.registry import get_backend
from repro.db.database import Database
from repro.db.query import JoinQuery


@dataclass(frozen=True)
class Condition:
    """One decision ``x[feature] op threshold`` (op ∈ {"<=", ">"})."""

    feature: str
    op: str
    threshold: float

    def holds(self, record: Mapping[str, Any]) -> bool:
        value = record[self.feature]
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        raise ValueError(f"unknown condition operator {self.op!r}")

    # Conditions are used directly as per-relation predicates, so
    # structure-aware backends (numpy) can evaluate them vectorized
    # while the interpreted engine just calls them per record.
    __call__ = holds

    def __repr__(self) -> str:
        return f"x.{self.feature} {self.op} {self.threshold:g}"


@dataclass
class TreeNode:
    """A regression-tree node: either a split or a leaf prediction."""

    prediction: float
    count: float
    condition: Condition | None = None
    left: "TreeNode | None" = None  # condition holds
    right: "TreeNode | None" = None

    def is_leaf(self) -> bool:
        return self.condition is None

    def predict(self, record: Mapping[str, Any]) -> float:
        node = self
        while node.condition is not None:
            node = node.left if node.condition.holds(record) else node.right
            assert node is not None
        return node.prediction

    def node_count(self) -> int:
        if self.condition is None:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.node_count() + self.right.node_count()

    def depth(self) -> int:
        if self.condition is None:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        if self.condition is None:
            return f"{pad}leaf: {self.prediction:.4f} (n={self.count:g})"
        assert self.left is not None and self.right is not None
        return "\n".join(
            [
                f"{pad}if {self.condition}:",
                self.left.pretty(indent + 2),
                f"{pad}else:",
                self.right.pretty(indent + 2),
            ]
        )


@dataclass
class IFAQRegressionTree:
    """CART regression tree learned factorized, in-database.

    ``max_depth=4`` matches the paper's evaluation ("regression trees up
    to depth four, i.e. max 31 nodes").  ``max_thresholds`` caps the
    candidate-threshold count per feature per node (quantile
    subsampling); ``None`` scores every distinct value boundary.

    ``method`` selects the execution engine for the per-node group-by
    batches: ``"vectorized"`` (default) is the compiled-kernel analog —
    numpy bincounts over per-relation arrays with fact-aligned key codes
    (see :mod:`repro.ml.tree_engine`) — while ``"interpreted"`` issues
    the per-node group-by batches through the backend registry
    (``backend`` picks the executor, default ``"engine"``); the
    per-feature kernels compile once and every later node is a
    kernel-cache hit.  Both methods produce the same tree.

    With ``fuse_node_batches`` (default) the interpreted path submits
    all F feature group-bys of a node as **one fused**
    :class:`~repro.backend.plan.MultiBatchPlan` kernel, so backends
    share work across features — the numpy backend computes δ masks
    once per node and one bottom-up pass per owner relation instead of
    one per feature.  Results are identical either way; the flag exists
    for A/B benchmarking (see ``benchmarks/fig5_trajectory.py``).
    """

    features: Sequence[str]
    label: str
    max_depth: int = 4
    min_samples_leaf: float = 1.0
    min_improvement: float = 1e-12
    max_thresholds: int | None = None
    method: str = "vectorized"
    #: backend name/instance for the group-by batches (``None``: the
    #: method's default — "numpy" vectorized, "engine" interpreted)
    backend: Any = None
    kernel_cache: KernelCache | None = None
    #: submit each node's F feature group-bys as one fused kernel
    fuse_node_batches: bool = True

    root_: TreeNode | None = None
    #: attribute → owning relation, fixed at fit time
    _owners: dict[str, str] = field(default_factory=dict)
    _groupby_plans: dict[str, Any] = field(default_factory=dict, repr=False)
    _multi_plan: Any = field(default=None, repr=False)
    _backend_impl: Any = field(default=None, repr=False)

    def fit(self, db: Database, query: JoinQuery) -> "IFAQRegressionTree":
        if self.method == "vectorized":
            from repro.ml.tree_engine import VectorizedTreeEngine

            engine = VectorizedTreeEngine(
                db,
                query,
                self.features,
                self.label,
                backend=self.backend if self.backend is not None else "numpy",
                kernel_cache=self.kernel_cache,
            )
            self.root_ = self._build_node_vectorized(engine, engine.full_mask(), depth=1)
        elif self.method == "interpreted":
            tree = build_join_tree(
                db.schema(), query.relations, stats=dict(db.statistics())
            )
            self._owners = _attribute_owners(db, tree, list(self.features))
            self._backend_impl = get_backend(
                self.backend if self.backend is not None else "engine"
            )
            # One group-by plan per feature, planned once: every tree
            # node below reuses the compiled kernel through the cache.
            # The distinct-key statistics are shared across the feature
            # plans (each would otherwise rescan the same relations).
            batch = variance_batch(self.label)
            key_stats: dict = {}
            self._groupby_plans = {
                f: build_batch_plan(db, tree, batch, group_attr=f, key_stats=key_stats)
                for f in self.features
            }
            self._multi_plan = (
                MultiBatchPlan([self._groupby_plans[f] for f in self.features])
                if self.fuse_node_batches
                else None
            )
            self.root_ = self._build_node(db, tree, conditions=[], depth=1)
        else:
            raise ValueError(f"unknown tree method {self.method!r}")
        if self.root_ is None:
            raise ValueError("empty training dataset")
        return self

    # -- vectorized construction (compiled-kernel analog) -------------------

    def _build_node_vectorized(self, engine, mask, depth: int) -> TreeNode | None:
        import numpy as np

        node_count = float(engine.weights[mask].sum())
        if node_count <= 0:
            return None
        node_sum = float(engine.wy[mask].sum())
        node_sum_sq = float(engine.wy_sq[mask].sum())
        prediction = node_sum / node_count
        node_cost = node_sum_sq - node_sum * node_sum / node_count

        best: tuple[float, Condition] | None = None
        for feature in self.features:
            values, counts, sums, sums_sq = engine.groupby(feature, mask)
            split = self._best_split_arrays(feature, values, counts, sums, sums_sq)
            if split is not None and (best is None or split[0] < best[0]):
                best = split

        if (
            best is None
            or depth > self.max_depth
            or node_cost - best[0] <= self.min_improvement
        ):
            return TreeNode(prediction=prediction, count=node_count)

        condition = best[1]
        left_mask = mask & engine.condition_mask(condition.feature, "<=", condition.threshold)
        right_mask = mask & ~left_mask
        left = self._build_node_vectorized(engine, left_mask, depth + 1)
        right = self._build_node_vectorized(engine, right_mask, depth + 1)
        if left is None or right is None:
            return TreeNode(prediction=prediction, count=node_count)
        return TreeNode(
            prediction=prediction,
            count=node_count,
            condition=condition,
            left=left,
            right=right,
        )

    def _boundaries(self, n_groups: int) -> list[int]:
        """Candidate boundary indices, shared by both engines."""
        boundaries = list(range(1, n_groups))
        if self.max_thresholds is not None and n_groups - 1 > self.max_thresholds:
            step = (n_groups - 1) / self.max_thresholds
            sampled = sorted({int(round((i + 1) * step)) for i in range(self.max_thresholds)})
            boundaries = [b for b in sampled if 1 <= b < n_groups]
        return boundaries

    def _best_split_arrays(
        self, feature: str, values, counts, sums, sums_sq
    ) -> tuple[float, Condition] | None:
        import numpy as np

        if len(values) < 2:
            return None
        boundaries = np.asarray(self._boundaries(len(values)), dtype=int)
        if boundaries.size == 0:
            return None
        cum_n = np.cumsum(counts)
        cum_s = np.cumsum(sums)
        cum_ss = np.cumsum(sums_sq)
        total_n, total_s, total_ss = cum_n[-1], cum_s[-1], cum_ss[-1]

        left_n = cum_n[boundaries - 1]
        left_s = cum_s[boundaries - 1]
        left_ss = cum_ss[boundaries - 1]
        right_n = total_n - left_n
        right_s = total_s - left_s
        right_ss = total_ss - left_ss

        valid = (left_n >= self.min_samples_leaf) & (right_n >= self.min_samples_leaf)
        if not valid.any():
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            costs = (
                left_ss - left_s * left_s / left_n
                + right_ss - right_s * right_s / right_n
            )
        costs = np.where(valid, costs, np.inf)
        pick = int(np.argmin(costs))  # first minimum — same tie-break as
        b = int(boundaries[pick])     # the sequential strict-< scan
        lo, hi = values[b - 1], values[b]
        threshold = (float(lo) + float(hi)) / 2 if isinstance(lo, (int, float, np.floating, np.integer)) else lo
        return float(costs[pick]), Condition(feature, "<=", float(threshold))

    # -- recursive construction ---------------------------------------------

    def _predicates(self, conditions: Sequence[Condition]) -> Predicates:
        by_relation: dict[str, list] = {}
        for cond in conditions:
            owner = self._owners[cond.feature]
            # Conditions are callable predicates; passing them unwrapped
            # lets the numpy backend evaluate them vectorized.
            by_relation.setdefault(owner, []).append(cond)
        return by_relation

    def _build_node(
        self,
        db: Database,
        tree: JoinTreeNode,
        conditions: list[Condition],
        depth: int,
    ) -> TreeNode | None:
        predicates = self._predicates(conditions)
        batch = variance_batch(self.label)

        best: tuple[float, Condition] | None = None
        node_count = node_sum = node_sum_sq = None

        # The node's F feature batches go out as one fused kernel so
        # the backend shares δ masks and value passes across features;
        # unfused falls back to one compute_groupby call per feature.
        if self._multi_plan is not None:
            node_groups = compute_groupby_many(
                db,
                tree,
                batch,
                list(self.features),
                predicates,
                backend=self._backend_impl,
                kernel_cache=self.kernel_cache,
                multi_plan=self._multi_plan,
            )
        else:
            node_groups = None

        for feature in self.features:
            if node_groups is not None:
                groups = node_groups[feature]
            else:
                groups = compute_groupby(
                    db,
                    tree,
                    batch,
                    feature,
                    predicates,
                    backend=self._backend_impl,
                    kernel_cache=self.kernel_cache,
                    plan=self._groupby_plans.get(feature),
                )
            if not groups:
                return None
            stats = sorted(groups.items())
            total = [sum(g[i] for _, g in stats) for i in range(3)]
            if node_count is None:
                node_count, node_sum, node_sum_sq = total
            split = self._best_split(feature, stats, total)
            if split is not None and (best is None or split[0] < best[0]):
                best = split

        assert node_count is not None and node_sum is not None and node_sum_sq is not None
        if node_count <= 0:
            return None
        prediction = node_sum / node_count
        node_cost = node_sum_sq - node_sum * node_sum / node_count

        # Root has depth 1; splits are allowed while depth ≤ max_depth,
        # giving at most 2^(max_depth+1) − 1 nodes (31 for depth 4).
        if (
            best is None
            or depth > self.max_depth
            or node_cost - best[0] <= self.min_improvement
        ):
            return TreeNode(prediction=prediction, count=node_count)

        condition = best[1]
        negation = Condition(condition.feature, ">", condition.threshold)
        left = self._build_node(db, tree, conditions + [condition], depth + 1)
        right = self._build_node(db, tree, conditions + [negation], depth + 1)
        if left is None or right is None:
            return TreeNode(prediction=prediction, count=node_count)
        return TreeNode(
            prediction=prediction,
            count=node_count,
            condition=condition,
            left=left,
            right=right,
        )

    def _best_split(
        self,
        feature: str,
        stats: list[tuple[Any, list[float]]],
        total: list[float],
    ) -> tuple[float, Condition] | None:
        """Score every threshold of one feature from its group-by stats.

        ``stats`` is sorted by feature value; a prefix sum yields the
        left-side aggregates of each candidate threshold, the
        complement the right side.  Cost is the summed variance
        expression from Section 3.
        """
        if len(stats) < 2:
            return None
        boundaries = self._boundaries(len(stats))

        best: tuple[float, Condition] | None = None
        prefix = [0.0, 0.0, 0.0]
        cursor = 0
        for b in boundaries:
            while cursor < b:
                g = stats[cursor][1]
                prefix[0] += g[0]
                prefix[1] += g[1]
                prefix[2] += g[2]
                cursor += 1
            left_n, left_s, left_ss = prefix
            right_n = total[0] - left_n
            right_s = total[1] - left_s
            right_ss = total[2] - left_ss
            if left_n < self.min_samples_leaf or right_n < self.min_samples_leaf:
                continue
            cost = (
                left_ss - left_s * left_s / left_n
                + right_ss - right_s * right_s / right_n
            )
            if best is None or cost < best[0]:
                lo = stats[b - 1][0]
                hi = stats[b][0]
                threshold = (lo + hi) / 2 if isinstance(lo, (int, float)) else lo
                best = (cost, Condition(feature, "<=", threshold))
        return best

    # -- inference -------------------------------------------------------------

    def predict(self, record: Mapping[str, Any]) -> float:
        if self.root_ is None:
            raise RuntimeError("model is not fitted")
        return self.root_.predict(record)


def _attribute_owners(
    db: Database, tree: JoinTreeNode, attrs: Sequence[str]
) -> dict[str, str]:
    from repro.aggregates.engine import assign_attribute_owners

    return assign_attribute_owners(tree, db, attrs)
