"""Linear regression over factorized joins (paper Sections 3 and 5).

:class:`IFAQLinearRegression` trains with batch gradient descent whose
data-intensive kernel — the non-centred covariance matrix — is computed
*directly over the input database* by the factorized aggregate engines
or the generated kernels, never materializing the join.  The BGD
iterations then run over the (features+2)² covar matrix, so the number
of iterations has negligible cost (the Figure 6 observation).

``fit_via_compiler`` instead pushes the full D-IFAQ program through
:class:`repro.compiler.IFAQCompiler`; it produces the same model and
exists so tests can pin the two paths together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping, Sequence

import numpy as np

from repro.aggregates.batch import AggregateSpec, covar_batch
from repro.aggregates.engine import compute_batch_materialized
from repro.aggregates.join_tree import build_join_tree
from repro.backend.base import ExecutionBackend
from repro.backend.cache import default_kernel_cache
from repro.backend.layout import LAYOUT_SORTED, LayoutOptions
from repro.backend.plan import build_batch_plan
from repro.backend.registry import get_backend
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.ml.programs import linear_regression_bgd


@dataclass
class IFAQLinearRegression:
    """BGD linear regression trained factorized, in-database.

    Parameters mirror the paper's setup: ``iterations`` of batch
    gradient descent at learning rate ``alpha`` over all continuous
    features plus an intercept.  Features are standardized internally
    using moments drawn from the covar batch itself (zero extra passes
    over the data); coefficients are reported in the original scale.
    """

    features: Sequence[str]
    label: str
    iterations: int = 50
    alpha: float = 0.1
    aggregate_mode: Literal["materialized", "pushdown", "merged", "trie"] = "trie"
    backend: str | ExecutionBackend = "python"
    layout: LayoutOptions = field(default_factory=lambda: LAYOUT_SORTED)
    tolerance: float = 1e-10

    #: learned parameters: intercept first, then one per feature
    theta_: np.ndarray | None = None
    covar_: dict[str, float] | None = None
    converged_iterations_: int = 0

    # -- covar computation -------------------------------------------------

    def compute_covar(self, db: Database, query: JoinQuery) -> dict[str, float]:
        """The covar batch over the join, by the configured strategy.

        The backend is resolved through the registry (any registered
        name or :class:`ExecutionBackend` instance), and kernels are
        reused across GD refits via the process-wide kernel cache.
        """
        batch = covar_batch(list(self.features), label=self.label)
        if self.aggregate_mode == "materialized":
            return compute_batch_materialized(db, query, batch)
        tree = build_join_tree(db.schema(), query.relations, stats=dict(db.statistics()))
        plan = build_batch_plan(db, tree, batch)
        backend = get_backend(
            self.backend, aggregate_mode=self.aggregate_mode, query=query
        )
        kernel = default_kernel_cache().get_or_compile(backend, plan, self.layout)
        return backend.execute(kernel, db)

    # -- training ------------------------------------------------------------

    def fit(self, db: Database, query: JoinQuery) -> "IFAQLinearRegression":
        self.covar_ = self.compute_covar(db, query)
        self.theta_ = self._solve_bgd(self.covar_)
        return self

    def _moment(self, covar: Mapping[str, float], *attrs: str) -> float:
        return covar[AggregateSpec.of(*attrs).name]

    def _normal_equations(self, covar: Mapping[str, float]) -> tuple[np.ndarray, np.ndarray, float]:
        """Extended covar matrix ``M`` and correlation vector ``c``.

        Column 0 is the intercept: ``M[0,0] = |Q|``, ``M[0,j] = Σ x_fj``.
        """
        cols = [None] + list(self.features)  # None is the intercept
        d = len(cols)
        m = np.zeros((d, d))
        c = np.zeros(d)
        n = self._moment(covar)
        for i, fi in enumerate(cols):
            for j, fj in enumerate(cols):
                attrs = [a for a in (fi, fj) if a is not None]
                m[i, j] = self._moment(covar, *attrs)
            attrs_c = ([fi] if fi is not None else []) + [self.label]
            c[i] = self._moment(covar, *attrs_c)
        return m, c, n

    def _solve_bgd(self, covar: Mapping[str, float]) -> np.ndarray:
        """BGD over the covar matrix with internal standardization."""
        m, c, n = self._normal_equations(covar)
        d = m.shape[0]
        if n <= 0:
            raise ValueError("empty training dataset")

        # Standardize: x̃ = (x − μ)/σ using moments from the batch.
        mu = m[0, 1:] / n
        var = np.maximum(np.diag(m)[1:] / n - mu**2, 0.0)
        sigma = np.sqrt(var)
        sigma[sigma == 0.0] = 1.0

        # Moments of the standardized design matrix, derived algebraically
        # from the raw moments (no pass over the data).
        ms = np.zeros_like(m)
        cs = np.zeros_like(c)
        ms[0, 0] = n
        for i in range(1, d):
            ms[0, i] = ms[i, 0] = (m[0, i] - n * mu[i - 1]) / sigma[i - 1]
            cs[i] = (c[i] - mu[i - 1] * c[0]) / sigma[i - 1]
        cs[0] = c[0]
        for i in range(1, d):
            for j in range(1, d):
                ms[i, j] = (
                    m[i, j]
                    - mu[j - 1] * m[0, i]
                    - mu[i - 1] * m[0, j]
                    + n * mu[i - 1] * mu[j - 1]
                ) / (sigma[i - 1] * sigma[j - 1])

        # Safe step size: the least-squares gradient map has Lipschitz
        # constant λ_max(Ms/n); any step below 2/λ_max converges.  The
        # eigenvalue comes from the (d×d) covar matrix itself — no pass
        # over the data — so ``alpha`` is a fraction of the safe step.
        lam_max = float(np.linalg.eigvalsh(ms / n)[-1])
        step = self.alpha / max(lam_max, 1e-12)

        theta = np.zeros(d)
        self.converged_iterations_ = self.iterations
        for it in range(self.iterations):
            gradient = (ms @ theta - cs) / n
            theta = theta - step * gradient
            if float(np.linalg.norm(gradient)) < self.tolerance:
                self.converged_iterations_ = it + 1
                break

        # Map back to the original feature scale.
        out = np.zeros(d)
        out[1:] = theta[1:] / sigma
        out[0] = theta[0] - float(np.sum(theta[1:] * mu / sigma))
        return out

    # -- inference -------------------------------------------------------------

    def predict(self, record: Mapping[str, float]) -> float:
        if self.theta_ is None:
            raise RuntimeError("model is not fitted")
        value = float(self.theta_[0])
        for i, f in enumerate(self.features):
            value += float(self.theta_[i + 1]) * record[f]
        return value

    def predict_many(self, x: np.ndarray) -> np.ndarray:
        """Predictions for a design matrix in ``self.features`` order."""
        if self.theta_ is None:
            raise RuntimeError("model is not fitted")
        return self.theta_[0] + x @ self.theta_[1:]

    # -- the full compiler path ---------------------------------------------

    def fit_via_compiler(self, db: Database, query: JoinQuery) -> dict[str, float]:
        """Run the complete D-IFAQ program through the IFAQ compiler.

        Returns the raw θ dictionary produced by the residual program
        (no standardization — pair with small ``alpha`` or pre-scaled
        features).  Exists to pin the compiler path against :meth:`fit`.
        """
        from repro.compiler import IFAQCompiler

        program = linear_regression_bgd(
            db.schema(), query, list(self.features), self.label,
            iterations=self.iterations, alpha=self.alpha,
        )
        compiler = IFAQCompiler(
            db=db, query=query,
            aggregate_mode=self.aggregate_mode if self.aggregate_mode != "materialized" else "trie",
            backend="python" if self.backend == "engine" else self.backend,
            layout=self.layout,
        )
        state = compiler.run(program)
        theta = state["theta"]
        return {name: theta[name] for name in theta.field_names()}


def closed_form_solution(
    covar: Mapping[str, float], features: Sequence[str], label: str
) -> np.ndarray:
    """Least-squares solution from the covar batch (normal equations).

    The accuracy yardstick of Section 5: IFAQ's BGD should land within
    1% RMSE of this.
    """
    model = IFAQLinearRegression(features=list(features), label=label)
    m, c, _ = model._normal_equations(covar)
    theta, *_ = np.linalg.lstsq(m, c, rcond=None)
    return theta
