"""Console reporting for the benchmark harness.

The benchmarks print the paper's rows/series directly (bypassing pytest
capture) so a ``pytest benchmarks/ --benchmark-only`` run leaves the
reproduced tables in the transcript next to pytest-benchmark's timing
table.
"""

from __future__ import annotations

import sys


def emit(line: str = "") -> None:
    """Print to the real stdout, bypassing pytest's capture."""
    print(line, file=sys.__stdout__, flush=True)


def emit_header(title: str) -> None:
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


def emit_row(label: str, value: str) -> None:
    emit(f"  {label:<44s} {value:>20s}")


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
