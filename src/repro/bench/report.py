"""Console reporting for the benchmark harness.

The benchmarks print the paper's rows/series directly (bypassing pytest
capture) so a ``pytest benchmarks/ --benchmark-only`` run leaves the
reproduced tables in the transcript next to pytest-benchmark's timing
table.
"""

from __future__ import annotations

import sys


def emit(line: str = "") -> None:
    """Print to the real stdout, bypassing pytest's capture."""
    print(line, file=sys.__stdout__, flush=True)


def emit_header(title: str) -> None:
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


def emit_row(label: str, value: str) -> None:
    emit(f"  {label:<44s} {value:>20s}")


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def emit_kernel_cache(stats, label: str = "kernel cache") -> None:
    """One line of kernel-cache hit/miss counters.

    ``stats`` is a :class:`repro.backend.cache.CacheStats` (or anything
    with ``hits``/``misses``/``hit_rate``).
    """
    emit_row(
        label,
        f"{stats.hits} hit / {stats.misses} miss ({stats.hit_rate:.0%})",
    )


def emit_shard_timings(shard_seconds, label: str = "shards") -> None:
    """Per-shard wall-clock timings for a sharded execution."""
    if not shard_seconds:
        emit_row(label, "—")
        return
    timings = ", ".join(format_seconds(s) for s in shard_seconds)
    emit_row(f"{label} ({len(shard_seconds)})", timings)


def record_extra_info(benchmark, **info) -> None:
    """Attach key/values to pytest-benchmark's JSON output.

    ``pytest benchmarks/ --benchmark-json=BENCH_<name>.json`` then
    carries kernel-cache hit/miss counts and per-shard timings next to
    the timing statistics, so speedups from caching/sharding are
    tracked across runs.  A no-op when the fixture lacks ``extra_info``
    (e.g. a stub benchmark in plain pytest runs).
    """
    extra = getattr(benchmark, "extra_info", None)
    if extra is not None:
        extra.update(info)
