"""Benchmark-harness helpers (reporting, shared setup)."""

from repro.bench.report import (
    emit,
    emit_header,
    emit_kernel_cache,
    emit_row,
    emit_shard_timings,
    format_seconds,
    record_extra_info,
)

__all__ = [
    "emit", "emit_header", "emit_kernel_cache", "emit_row",
    "emit_shard_timings", "format_seconds", "record_extra_info",
]
