"""Benchmark-harness helpers (reporting, shared setup)."""

from repro.bench.report import emit, emit_header, emit_row, format_seconds

__all__ = ["emit", "emit_header", "emit_row", "format_seconds"]
