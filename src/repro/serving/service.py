"""The async aggregate-serving layer.

:class:`AggregateService` puts the plan → kernel → cache → backend
stack behind an asyncio front end, which is what the ROADMAP's
millions-of-users path needs: many concurrent clients asking for
aggregates over a handful of registered databases, where most of the
traffic repeats a small set of plan fingerprints.

The service exploits that repetition twice:

* **Coalescing** — concurrent requests with the same *(database, plan
  fingerprint, δ predicates)* key execute **once**: the first request
  creates an in-flight entry, every later arrival (queued *or already
  running* — databases are immutable between executions, so joining a
  running execution is safe) awaits the same future, and the single
  kernel run fans its result back out to all waiters.
* **Fusion** — queued group-by requests over the same database with
  the same δ predicates but *different* fingerprints are bundled into
  one :class:`~repro.backend.plan.MultiBatchPlan` when a worker picks
  them up, so backends share predicate masks and (for members with
  equal ``scan_fingerprint``) the bottom-up value pass.  Fusion is
  load-adaptive: an idle service dispatches immediately with no
  batching window, a saturated one drains compatible requests in
  bulk.

Kernel execution is blocking (numpy folds, generated kernels, g++
binaries), so it is offloaded to a bounded worker pool — a
``ThreadPoolExecutor`` by default, or a
:class:`~repro.backend.process_pool.ProcessKernelExecutor` running
kernels in worker *processes* (``executor="process"``, or
``IFAQ_EXECUTOR=process`` in the environment), which is how coalesced
and fused runs for different fingerprints proceed on all cores
concurrently instead of time-slicing one GIL.  On the process path the
parent still compiles (and spills) each kernel once — workers
warm-start from the spilled source — and plans/databases cross the
process boundary once per registration, not per request.  Kernel
compilation goes through the shared
:class:`~repro.backend.cache.KernelCache` (single-flight, so raced
fingerprints compile once) and columnar state through the shared
per-database :class:`~repro.backend.column_store.ColumnStore`.

Long-lived services can additionally cap columnar memory with
``store_budget_bytes`` (or ``IFAQ_STORE_BUDGET_BYTES``): after each
run, if the summed ``approx_bytes`` of every registration's column
stores exceeds the budget, stores are trimmed LRU — δ-filtered copies
first, then whole stores of the least-recently-used databases — and
rebuilt lazily on next touch.

Registered databases also take **streaming ingest**
(:meth:`AggregateService.ingest`): appended rows extend the shared
column store in place and every cached per-fingerprint result — a
maintained materialized view holding backend delta state — is
refreshed by folding only the appended block range when the append is
delta-eligible (pure append to the view's plan root on a
delta-capable backend), falling back to a full recompute otherwise.
A per-database writer barrier keeps readers off the store while it
mutates, and coalescing keys carry the database's relation-version
vector so requests straddling an ingest never share a run.

**Fault tolerance** (see :mod:`repro.serving.policies`): every request
can carry a relative **deadline**, enforced while queued and in flight
(:class:`DeadlineExceeded`); queued units abandoned by all their
waiters are cancelled before dispatch so they never occupy a pool
slot.  Per-database **bounded admission** caps the pending-run queue
(``QueueFull`` backpressure, or parked waits under the ``"wait"``
policy).  Transient executor failures — a worker death mid-run, a
respawn window — are **retried with exponential backoff and seeded
jitter**; kernels are pure, so a retried run is bit-identical to the
clean one.  Repeated failures trip a **circuit breaker** and runs
degrade down the ladder *process → thread → inline*, recovering
through half-open probes; every timeout, rejection, retry, degraded
run and breaker transition is visible in :class:`ServiceStats`.  The
deterministic fault-injection harness driving the tests lives in
:mod:`repro.serving.faults`.
"""

from __future__ import annotations

import asyncio
import os
from collections import deque
from time import perf_counter
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.aggregates.engine import apply_predicates
from repro.aggregates.join_tree import JoinTreeNode, build_join_tree
from repro.backend.cache import KernelCache, default_kernel_cache
from repro.backend.column_store import evict_column_store, peek_column_store
from repro.backend.layout import LAYOUT_SORTED, LayoutOptions
from repro.backend.plan import BatchPlan, MultiBatchPlan, build_batch_plan
from repro.backend.process_pool import (
    ProcessKernelExecutor,
    TaskNotPicklable,
    WorkerError,
    executor_mode_from_env,
)
from repro.backend.registry import get_backend
from repro.db.database import Database
from repro.serving.requests import (
    AggregateRequest,
    GroupByRequest,
    MultiGroupByRequest,
    Request,
    predicate_key,
)
from repro.serving.policies import (
    CircuitBreaker,
    DeadlineExceeded,
    QueueFull,
    RetryPolicy,
    TransientError,
    default_deadline_from_env,
    queue_depth_from_env,
    queue_policy_from_env,
)
from repro.serving.stats import ServiceStats

#: Default worker-pool width: one kernel execution per core.
DEFAULT_SERVICE_WORKERS = max(1, os.cpu_count() or 1)

#: Default ceiling on group-by requests fused into one kernel run.
DEFAULT_MAX_FUSE = 16


#: Ceiling on maintained materialized views per registration.
MAX_VIEWS_PER_DB = 64


class DatabaseNotRegistered(KeyError):
    """The request names a database the service does not know."""


class _WriteBarrier:
    """A readers-writer gate for one registered database.

    Kernel runs are readers: any number proceed concurrently.  An
    ingest is the writer: it closes the gate (new runs queue), waits
    for the running readers to drain, mutates the database and its
    column store, refreshes the maintained views, then reopens the
    gate.  Everything happens on the event loop, so no locks — just
    two events and a counter.
    """

    def __init__(self) -> None:
        self._gate = asyncio.Event()
        self._gate.set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._running = 0

    async def reader_enter(self) -> None:
        # Cancellation-safe: a reader cancelled while parked at the
        # closed gate has mutated nothing, so nothing to unwind.
        while not self._gate.is_set():
            await self._gate.wait()
        self._running += 1
        self._idle.clear()

    def reader_exit(self) -> None:
        self._running -= 1
        if self._running == 0:
            self._idle.set()

    async def writer_enter(self) -> None:
        self._gate.clear()
        try:
            await self._idle.wait()
        except BaseException:
            # A writer cancelled while waiting for readers to drain
            # must reopen the gate, or every later reader *and* writer
            # wedges forever.  Ingests serialize on the registration's
            # write_lock, so no other writer can hold the gate closed.
            self._gate.set()
            raise

    def writer_exit(self) -> None:
        self._gate.set()


@dataclass
class _View:
    """One maintained materialized view: a cached result kept fresh.

    ``state`` is the backend's maintained delta state
    (:class:`~repro.backend.numpy_backend.DeltaVectorState` /
    ``DeltaGroupState``) when the run that produced ``result`` captured
    one; ingest uses it to fold appended rows in instead of
    recomputing.  View objects are replaced wholesale on refresh, so a
    concurrent reader sees either the old or the new view, never a
    half-updated one.
    """

    kind: str  # "plain" | "groupby"
    plan: BatchPlan
    fingerprint: str
    pred_key: tuple
    predicates: Any
    result: Any
    state: Any = None


@dataclass
class _Registration:
    """One registered database: its join tree and plan memos."""

    name: str
    db: Database
    tree: JoinTreeNode
    #: monotonic per-service registration generation.  Part of the
    #: coalescing key: after ``register_database(replace=True)`` a new
    #: request must never join an in-flight execution that is still
    #: running against the replaced database.
    generation: int = 0
    #: shared distinct-key statistics for plan construction
    key_stats: dict = field(default_factory=dict)
    #: (batch, group_attr) → BatchPlan;  (batch, group_attrs) → MultiBatchPlan
    plans: dict = field(default_factory=dict)
    #: predicate key → δ-filtered Database (plain-batch execution path)
    filtered_dbs: dict = field(default_factory=dict)
    #: loop time of the last dispatched run (the store-trim LRU order)
    last_used: float = 0.0
    #: (fingerprint, pred_key) → maintained materialized view
    views: dict[tuple, _View] = field(default_factory=dict)
    #: readers-writer gate serializing ingests against kernel runs
    barrier: _WriteBarrier = field(default_factory=_WriteBarrier)
    #: serializes concurrent ingest() calls for this database
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: pending (queued, not yet dispatched) execution units — the
    #: quantity bounded admission caps per database
    queued: int = 0
    #: submissions parked by the "wait" admission policy, woken FIFO
    #: one per freed slot
    queue_waiters: deque = field(default_factory=deque)

    def drop_view_states(self) -> None:
        """Forget delta states (kept results stay servable).

        Called when this database's column store is evicted: group
        delta states are coded against the store's (possibly extended)
        group coding, which a rebuilt store does not reproduce once
        unseen group values have been appended.  The next ingest falls
        back to one full recompute per view and re-establishes state.
        """
        for key, view in list(self.views.items()):
            if view.state is not None:
                self.views[key] = _View(
                    kind=view.kind,
                    plan=view.plan,
                    fingerprint=view.fingerprint,
                    pred_key=view.pred_key,
                    predicates=view.predicates,
                    result=view.result,
                    state=None,
                )


@dataclass
class _Inflight:
    """One deduplicated unit of work and the waiters attached to it."""

    key: tuple
    kind: str  # "plain" | "groupby" | "multi"
    plan: BatchPlan | MultiBatchPlan
    fingerprint: str
    registration: _Registration
    predicates: Any
    pred_key: tuple
    future: asyncio.Future
    enqueued: float
    #: maintained delta state captured by the run (thread path only;
    #: process-path runs leave it None and ingest re-establishes state)
    view_state: Any = None
    #: waiters currently attached (the creator plus coalesced joiners);
    #: decremented when a waiter's deadline expires or it is cancelled
    waiters: int = 1
    #: True once a dispatcher has taken this entry into a batch
    started: bool = False
    #: True when every waiter left before dispatch: the entry is
    #: discarded by the next _take_batch instead of occupying a slot
    abandoned: bool = False


def _copy_result(kind: str, result):
    """A private copy per waiter, so one client mutating its response
    cannot corrupt another's (values are shared floats — bit-identical)."""
    if kind == "plain":
        return dict(result)
    if kind == "groupby":
        return {k: list(v) for k, v in result.items()}
    return {attr: {k: list(v) for k, v in groups.items()} for attr, groups in result.items()}


class AggregateService:
    """Serve aggregate requests over registered databases, coalesced
    per plan fingerprint.

    Parameters
    ----------
    backend:
        Registered backend name or :class:`ExecutionBackend` instance;
        resolved once at construction (the ``cpp`` → ``python``
        toolchain fallback happens here, never per request).
    kernel_cache:
        Shared :class:`KernelCache`; defaults to the process-wide one.
    layout:
        :class:`LayoutOptions` every kernel is compiled under.
    max_workers:
        Concurrent kernel executions (the bounded worker pool).
    executor:
        ``None`` (pick the mode from ``IFAQ_EXECUTOR``, thread by
        default), the string ``"thread"`` or ``"process"`` (the service
        owns the pool), or a ready
        :class:`concurrent.futures.Executor` /
        :class:`~repro.backend.process_pool.ProcessKernelExecutor`
        instance (shared, not shut down on close).
    store_budget_bytes:
        Optional cap on the summed ``approx_bytes`` of every
        registration's column stores; exceeded budgets trim stores LRU
        after each run (``None``: read ``IFAQ_STORE_BUDGET_BYTES``,
        unset meaning unlimited).
    coalesce / fuse:
        Feature switches, mainly for benchmarks measuring the naive
        per-request path.
    max_fuse:
        Ceiling on group-by requests bundled into one fused run.
    copy_results:
        When True (default) every waiter gets a private copy of the
        result, so one client mutating its response cannot corrupt
        another's.  Trusted read-only clients can turn this off to
        serve large group dictionaries zero-copy.
    default_deadline:
        Service-wide relative deadline in seconds applied to requests
        that carry none of their own (``None``: read
        ``IFAQ_DEADLINE_SECONDS``, unset meaning no deadline).
    max_queue_depth / queue_policy:
        Bounded admission: at most ``max_queue_depth`` pending
        execution units per database (``None``: ``IFAQ_QUEUE_DEPTH``,
        unset meaning unbounded).  Over-cap submissions raise
        :class:`QueueFull` under ``"reject"`` (the default /
        ``IFAQ_QUEUE_POLICY``) or park until a slot frees under
        ``"wait"`` — still subject to the deadline.
    retry_policy:
        Backoff schedule for transient executor failures
        (:class:`~repro.backend.process_pool.WorkerError`,
        :class:`TransientError`); ``None`` reads the
        ``IFAQ_RETRY_*`` variables.  Kernels are pure, so retried runs
        are bit-identical to clean ones.
    breaker / thread_breaker:
        Circuit breakers for the process and thread execution stages
        (``None``: built from ``IFAQ_BREAKER_THRESHOLD`` /
        ``IFAQ_BREAKER_RESET``).  An open process breaker degrades
        runs to the thread stage; an open thread breaker degrades to
        inline execution on the event loop — the last-resort mode that
        still answers requests.
    """

    def __init__(
        self,
        backend: Any = "numpy",
        *,
        kernel_cache: KernelCache | None = None,
        layout: LayoutOptions = LAYOUT_SORTED,
        max_workers: int = DEFAULT_SERVICE_WORKERS,
        executor: Executor | str | None = None,
        store_budget_bytes: int | None = None,
        coalesce: bool = True,
        fuse: bool = True,
        max_fuse: int = DEFAULT_MAX_FUSE,
        copy_results: bool = True,
        default_deadline: float | None = None,
        max_queue_depth: int | None = None,
        queue_policy: str | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        thread_breaker: CircuitBreaker | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_fuse < 1:
            raise ValueError(f"max_fuse must be >= 1, got {max_fuse}")
        self.backend = get_backend(backend)
        self.kernel_cache = kernel_cache if kernel_cache is not None else default_kernel_cache()
        self.layout = layout
        self.coalesce = coalesce
        self.fuse = fuse
        self.max_fuse = max_fuse
        self.copy_results = copy_results
        probe = getattr(self.backend, "supports_delta", None)
        #: whether the backend speaks the maintained/delta-run protocol
        self._delta_backend = bool(callable(probe) and probe())
        self.stats = ServiceStats()
        self.default_deadline = (
            default_deadline if default_deadline is not None
            else default_deadline_from_env()
        )
        self.max_queue_depth = (
            max_queue_depth if max_queue_depth is not None else queue_depth_from_env()
        )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        self.queue_policy = (
            queue_policy if queue_policy is not None else queue_policy_from_env()
        )
        if self.queue_policy not in ("reject", "wait"):
            raise ValueError(
                f"queue_policy must be 'reject' or 'wait', got {self.queue_policy!r}"
            )
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy.from_env()
        )
        self._retry_rng = self.retry_policy.rng()
        #: exception types safe to retry: the run never started or died
        #: mid-flight, and kernels are pure
        self._transient: tuple[type, ...] = (WorkerError, TransientError)
        self._breaker = (
            breaker if breaker is not None else CircuitBreaker.from_env("process")
        )
        self._thread_breaker = (
            thread_breaker
            if thread_breaker is not None
            else CircuitBreaker.from_env("thread")
        )
        for brk in (self._breaker, self._thread_breaker):
            if brk.on_transition is None:
                brk.on_transition = self.stats.note_breaker_transition
        if store_budget_bytes is None:
            raw = os.environ.get("IFAQ_STORE_BUDGET_BYTES")
            store_budget_bytes = int(raw) if raw else None
        self.store_budget_bytes = store_budget_bytes
        if executor is None:
            executor = executor_mode_from_env()
        if isinstance(executor, str):
            if executor == "thread":
                executor = ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix="ifaq-serve"
                )
            elif executor == "process":
                executor = ProcessKernelExecutor()
            else:
                raise ValueError(
                    f"executor must be 'thread' or 'process', got {executor!r}"
                )
            self._own_executor = True
        else:
            self._own_executor = False
        self._executor: Executor = executor
        # Duck-typed so fault-injection wrappers (serving.faults.
        # FaultyExecutor) and future remote executors slot in: anything
        # exposing run_kernel() is driven down the process path.
        self._process_executor = (
            executor if hasattr(executor, "run_kernel") else None
        )
        self._sem = asyncio.Semaphore(max_workers)
        self._dbs: dict[str, _Registration] = {}
        self._generation = 0
        self._inflight: dict[tuple, _Inflight] = {}
        self._pending: deque[_Inflight] = deque()
        self._tasks: set[asyncio.Task] = set()
        self._register_hooks: list[Callable[[str, Database], None]] = []
        self._evict_hooks: list[Callable[[str, Database], None]] = []
        self._closed = False

    # -- database registration / eviction ---------------------------------

    def register_database(
        self,
        name: str,
        db: Database,
        *,
        relations: Sequence[str] | None = None,
        root: str | None = None,
        replace: bool = False,
    ) -> None:
        """Register ``db`` under ``name`` and plan its join tree once.

        ``relations`` restricts the tree to a sub-join (default: every
        relation); ``root`` pins the tree root (default: the largest
        relation, the fact table).  Registered databases are assumed
        immutable while registered — the same contract every prepared
        layout and column store already relies on.  Registration hooks
        (:meth:`add_hooks`) fire after the tree is built.
        """
        existing = self._dbs.get(name)
        if existing is not None and not replace:
            if existing.db is db:
                # Idempotent re-registration: the exact database object
                # is already live — keep its plans, maintained views and
                # delta states rather than rebuilding the registration.
                self.stats.reregistrations += 1
                return
            raise ValueError(
                f"database {name!r} is already registered; pass replace=True"
            )
        tree = build_join_tree(
            db.schema(),
            tuple(relations) if relations is not None else tuple(db.relations),
            root=root,
            stats=dict(db.statistics()),
        )
        self._generation += 1
        self._dbs[name] = _Registration(
            name=name, db=db, tree=tree, generation=self._generation
        )
        for hook in self._register_hooks:
            hook(name, db)

    def evict_database(self, name: str, *, drop_column_store: bool = True) -> bool:
        """Unregister ``name``; returns whether it was registered.

        Drops the registration's plan memos and (by default) the
        database's shared :class:`ColumnStore`, so a long-lived service
        rotating databases does not accumulate dead columnar copies —
        the eager half of the ROADMAP eviction item.  Requests already
        in flight finish against the evicted database; new submissions
        raise :class:`DatabaseNotRegistered`.  Eviction hooks fire
        after the store is dropped.
        """
        reg = self._dbs.pop(name, None)
        if reg is None:
            return False
        if drop_column_store:
            evict_column_store(reg.db)
            for filtered in reg.filtered_dbs.values():
                evict_column_store(filtered)
        if self._process_executor is not None:
            # Workers drop their pickled copy with their next task.
            self._process_executor.evict_database(reg.db)
        for hook in self._evict_hooks:
            hook(name, reg.db)
        return True

    def add_hooks(
        self,
        on_register: Callable[[str, Database], None] | None = None,
        on_evict: Callable[[str, Database], None] | None = None,
    ) -> None:
        """Attach observers for registration/eviction (cache warmers,
        metrics exporters, store pre-builders)."""
        if on_register is not None:
            self._register_hooks.append(on_register)
        if on_evict is not None:
            self._evict_hooks.append(on_evict)

    def databases(self) -> tuple[str, ...]:
        return tuple(self._dbs)

    # -- request submission -------------------------------------------------

    async def submit(self, request: Request, *, deadline: float | None = None):
        """Answer one request; concurrent identical requests coalesce.

        Returns (a private copy of) the backend result:
        ``{name: value}`` for plain batches, ``{group: [values]}`` for
        group-bys, ``{attr: {group: [values]}}`` for multi-group-bys.
        Exceptions raised by planning or execution propagate to every
        coalesced waiter.

        ``deadline`` is a relative budget in seconds covering the whole
        request — admission wait, queueing and execution.  Explicit
        argument > ``request.deadline`` > the service default.  On
        expiry the *waiter* is cancelled with :class:`DeadlineExceeded`
        (coalesced peers keep waiting on their own budgets), and a
        queued unit abandoned by every waiter is cancelled before it
        can occupy a pool slot.  Over-cap submissions raise
        :class:`QueueFull` under the ``"reject"`` admission policy.
        """
        if self._closed:
            raise RuntimeError("AggregateService is closed")
        reg = self._dbs.get(request.database)
        if reg is None:
            raise DatabaseNotRegistered(
                f"database {request.database!r} is not registered "
                f"(registered: {', '.join(self._dbs) or 'none'})"
            )
        loop = asyncio.get_running_loop()
        if deadline is None:
            deadline = getattr(request, "deadline", None)
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = loop.time() + deadline if deadline is not None else None
        kind, plan = self._plan_for(reg, request)
        fingerprint = plan.fingerprint(self.layout, self.backend.kernel_key)
        pred_key = predicate_key(request.predicates)
        # The registration generation keeps requests arriving after a
        # replace/evict+re-register from coalescing onto executions
        # still running against the previous database; the relation
        # version vector does the same across ingests, so stale and
        # fresh requests never share a run.
        key = (reg.name, reg.generation, reg.db.version_vector(), fingerprint, pred_key)

        self.stats.requests += 1
        fp_stats = self.stats.fingerprint(fingerprint)
        fp_stats.requests += 1

        if self.coalesce:
            view = reg.views.get((fingerprint, pred_key))
            if view is not None:
                # Maintained materialized view: ingest refreshes it
                # under the write barrier, so the cached result is the
                # current answer — no kernel run at all.
                self.stats.view_hits += 1
                reg.last_used = loop.time()
                return _copy_result(kind, view.result) if self.copy_results else view.result
            existing = self._inflight.get(key)
            if existing is not None:
                self.stats.coalesced += 1
                fp_stats.coalesced += 1
                existing.waiters += 1
                return await self._await_entry(existing, kind, deadline_at, loop)

        await self._admit(reg, deadline_at, loop)
        entry = _Inflight(
            key=key,
            kind=kind,
            plan=plan,
            fingerprint=fingerprint,
            registration=reg,
            predicates=request.predicates,
            pred_key=pred_key,
            future=loop.create_future(),
            enqueued=loop.time(),
        )
        if self.coalesce:
            self._inflight[key] = entry
        reg.queued += 1
        self._pending.append(entry)
        task = asyncio.ensure_future(self._dispatch())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await self._await_entry(entry, kind, deadline_at, loop)

    async def _await_entry(
        self, entry: _Inflight, kind: str, deadline_at: float | None, loop
    ):
        """Await one unit's future under the waiter's deadline.

        The future is shielded (it is shared by every coalesced
        waiter), so one waiter timing out never cancels the run for the
        others — it just detaches.  When the *last* waiter of a
        still-queued unit detaches, the unit is abandoned and the next
        dispatcher discards it instead of running it.
        """
        try:
            if deadline_at is None:
                result = await asyncio.shield(entry.future)
            else:
                remaining = deadline_at - loop.time()
                result = await asyncio.wait_for(
                    asyncio.shield(entry.future), max(0.0, remaining)
                )
        except (asyncio.TimeoutError, TimeoutError):
            if entry.future.done() and entry.future.exception() is not None:
                # The run itself failed with a TimeoutError-shaped
                # exception: that is an execution error, not our
                # deadline — propagate it untranslated.
                raise
            self._detach_waiter(entry)
            self.stats.deadline_timeouts += 1
            raise DeadlineExceeded(
                f"request exceeded its deadline while "
                f"{'in flight' if entry.started else 'queued'} "
                f"(fingerprint {entry.fingerprint[:12]}…)"
            ) from None
        except asyncio.CancelledError:
            self._detach_waiter(entry)
            raise
        return _copy_result(kind, result) if self.copy_results else result

    def _detach_waiter(self, entry: _Inflight) -> None:
        entry.waiters -= 1
        if entry.waiters <= 0 and not entry.started and not entry.abandoned:
            entry.abandoned = True

    async def _admit(self, reg: _Registration, deadline_at, loop) -> None:
        """Bounded admission: hold the per-database queue under the cap.

        ``"reject"`` answers over-cap submissions immediately with
        :class:`QueueFull` — backpressure the client can act on.
        ``"wait"`` parks the submission until a slot frees (FIFO, one
        wake per freed slot), still bounded by the deadline.
        """
        cap = self.max_queue_depth
        if cap is None or reg.queued < cap:
            return
        if self.queue_policy == "reject":
            self.stats.queue_rejections += 1
            raise QueueFull(
                f"database {reg.name!r} has {reg.queued} queued runs "
                f"(cap {cap}); retry later or raise max_queue_depth"
            )
        while reg.queued >= cap:
            waiter = loop.create_future()
            reg.queue_waiters.append(waiter)
            try:
                if deadline_at is None:
                    await waiter
                else:
                    await asyncio.wait_for(waiter, max(0.0, deadline_at - loop.time()))
            except (asyncio.TimeoutError, TimeoutError):
                self.stats.deadline_timeouts += 1
                raise DeadlineExceeded(
                    f"request exceeded its deadline while parked at "
                    f"database {reg.name!r}'s admission queue (cap {cap})"
                ) from None
            finally:
                if waiter in reg.queue_waiters:
                    reg.queue_waiters.remove(waiter)

    def _queue_release(self, reg: _Registration) -> None:
        """One pending unit left the queue: free the slot and wake the
        first live parked submission, if any."""
        reg.queued -= 1
        while reg.queue_waiters:
            waiter = reg.queue_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                break

    async def submit_many(self, requests: Iterable[Request]) -> list:
        """Submit requests concurrently and gather their results in order."""
        return list(await asyncio.gather(*(self.submit(r) for r in requests)))

    # -- streaming ingest ----------------------------------------------------

    async def ingest(self, database: str, relation: str, rows: Iterable[tuple]) -> dict:
        """Append ``rows`` to ``relation`` of ``database`` and keep every
        maintained view fresh.

        The ingest is a *writer* on the registration's barrier: it
        waits for running kernel executions to drain (queued ones hold
        at the gate), then — off the event loop — appends the rows,
        extends (pure append) or invalidates (key collisions) the
        shared column store, drops the now-stale δ-filtered copies, and
        refreshes every maintained view: incrementally via the
        backend's delta protocol when the appended relation is the
        view's plan root and a delta state exists, by full recompute
        otherwise.  Requests submitted while the writer holds the
        barrier either serve from a view (pre- or post-refresh object,
        never a torn one) or queue until the gate reopens.

        Returns a report dict: ``rows``, ``relation``, ``pure_append``,
        ``delta_runs``, ``full_recomputes``, ``delta_seconds``,
        ``full_seconds``.
        """
        if self._closed:
            raise RuntimeError("AggregateService is closed")
        reg = self._dbs.get(database)
        if reg is None:
            raise DatabaseNotRegistered(
                f"database {database!r} is not registered "
                f"(registered: {', '.join(self._dbs) or 'none'})"
            )
        rows = list(rows)
        loop = asyncio.get_running_loop()
        async with reg.write_lock:
            await reg.barrier.writer_enter()
            try:
                report = await loop.run_in_executor(
                    None, self._apply_ingest, reg, relation, rows
                )
            finally:
                reg.barrier.writer_exit()
        self.stats.ingests += 1
        self.stats.ingest_rows += report["rows"]
        self.stats.delta_runs += report["delta_runs"]
        self.stats.full_recomputes += report["full_recomputes"]
        self.stats.delta_seconds_total += report["delta_seconds"]
        self.stats.full_seconds_total += report["full_seconds"]
        return report

    def _apply_ingest(self, reg: _Registration, relation: str, rows: list) -> dict:
        """Blocking half of :meth:`ingest` (runs off the event loop)."""
        delta = reg.db.append_rows(relation, rows)
        store = peek_column_store(reg.db)
        if store is not None:
            if delta.pure_append:
                store.extend_relation(relation)
            else:
                store.invalidate_relation(relation)
        # δ-filtered copies are snapshots of the pre-ingest data.
        for filtered in reg.filtered_dbs.values():
            evict_column_store(filtered)
        reg.filtered_dbs.clear()
        # Plan memos are kept: plans stay valid under appends, and a
        # stable plan keeps the fingerprint — and with it the view key
        # and every coalescing key — stable across ingests.
        report = {
            "rows": len(rows),
            "relation": relation,
            "pure_append": delta.pure_append,
            "delta_runs": 0,
            "full_recomputes": 0,
            "delta_seconds": 0.0,
            "full_seconds": 0.0,
        }
        self._refresh_views(reg, relation, delta.pure_append, report)
        return report

    def _refresh_views(
        self, reg: _Registration, relation: str, pure_append: bool, report: dict
    ) -> None:
        """Bring every maintained view up to date after an append.

        A view refreshes incrementally when the append was pure, the
        appended relation is the view's plan root (appends to non-root
        relations change join results for *existing* root rows, which
        a root-tail delta cannot express), the backend speaks the delta
        protocol, and the view holds a state.  Anything else — and any
        delta run the backend rejects (state fingerprint mismatch,
        rebuilt store) — falls back to one timed full recompute, which
        also re-establishes the delta state for the next ingest.
        """
        for key, view in list(reg.views.items()):
            kernel = self.kernel_cache.get_or_compile(
                self.backend, view.plan, self.layout
            )
            started = perf_counter()
            refreshed = None
            if (
                pure_append
                and self._delta_backend
                and view.state is not None
                and view.plan.root.relation == relation
            ):
                try:
                    if view.kind == "plain":
                        refreshed = self.backend.run_delta(kernel, reg.db, view.state)
                    else:
                        refreshed = self.backend.run_groupby_delta(
                            kernel, reg.db, view.state, view.predicates
                        )
                except ValueError:
                    refreshed = None  # stale/foreign state: recompute
            if refreshed is not None:
                result, state = refreshed
                report["delta_runs"] += 1
                report["delta_seconds"] += perf_counter() - started
            else:
                result, state = self._full_refresh(kernel, reg, view)
                report["full_recomputes"] += 1
                report["full_seconds"] += perf_counter() - started
            reg.views[key] = _View(
                kind=view.kind,
                plan=view.plan,
                fingerprint=view.fingerprint,
                pred_key=view.pred_key,
                predicates=view.predicates,
                result=result,
                state=state,
            )

    def _full_refresh(self, kernel, reg: _Registration, view: _View):
        """Recompute one view from scratch, capturing fresh delta state
        when the backend supports maintained runs."""
        if self._delta_backend:
            if view.kind == "plain":
                return self.backend.run_maintained(kernel, reg.db)
            return self.backend.run_groupby_maintained(kernel, reg.db, view.predicates)
        if view.kind == "plain":
            return self.backend.execute(kernel, reg.db), None
        return self.backend.run_groupby(kernel, reg.db, view.predicates), None

    def _store_view(self, entry: _Inflight, result) -> None:
        """Cache one completed single-entry run as a maintained view.

        Plain runs with δ predicates execute against a filtered *copy*
        of the database, so they cannot be maintained in place; fused
        and multi runs capture no delta state and are skipped too.
        """
        if not self.coalesce or entry.kind == "multi":
            return
        if entry.kind == "plain" and entry.predicates:
            return
        reg = entry.registration
        key = (entry.fingerprint, entry.pred_key)
        if key not in reg.views and len(reg.views) >= MAX_VIEWS_PER_DB:
            reg.views.pop(next(iter(reg.views)))
        reg.views[key] = _View(
            kind=entry.kind,
            plan=entry.plan,
            fingerprint=entry.fingerprint,
            pred_key=entry.pred_key,
            predicates=entry.predicates,
            result=result,
            state=entry.view_state,
        )

    # -- planning -----------------------------------------------------------

    def _plan_for(self, reg: _Registration, request: Request):
        """Request → (kind, plan), memoized per registration.

        Plans (and the distinct-key statistics ordering their children)
        are built once per (batch, group attribute) and reused by every
        later request, so steady-state submission cost is one
        fingerprint hash, not a planning pass.
        """
        if isinstance(request, AggregateRequest):
            return "plain", self._single_plan(reg, request.batch, None)
        if isinstance(request, GroupByRequest):
            return "groupby", self._single_plan(reg, request.batch, request.group_attr)
        if isinstance(request, MultiGroupByRequest):
            memo_key = (request.batch, request.group_attrs)
            plan = reg.plans.get(memo_key)
            if plan is None:
                plan = MultiBatchPlan(
                    [
                        self._single_plan(reg, request.batch, attr)
                        for attr in request.group_attrs
                    ]
                )
                reg.plans[memo_key] = plan
            return "multi", plan
        raise TypeError(
            f"unsupported request type {type(request).__name__}; expected "
            "AggregateRequest, GroupByRequest or MultiGroupByRequest"
        )

    def _single_plan(
        self, reg: _Registration, batch, group_attr: str | None
    ) -> BatchPlan:
        memo_key = (batch, group_attr)
        plan = reg.plans.get(memo_key)
        if plan is None:
            plan = build_batch_plan(
                reg.db,
                reg.tree,
                batch,
                group_attr=group_attr,
                key_stats=reg.key_stats,
            )
            reg.plans[memo_key] = plan
        return plan

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(self) -> None:
        """Run one unit of queued work under the worker-pool bound."""
        async with self._sem:
            batch = self._take_batch()
            if not batch:
                return  # an earlier dispatcher drained our entry into its fused run
            loop = asyncio.get_running_loop()
            now = loop.time()
            for entry in batch:
                self.stats.record_queue_latency(now - entry.enqueued)
            batch[0].registration.last_used = now
            barrier = batch[0].registration.barrier
            await barrier.reader_enter()
            try:
                if len(batch) == 1:
                    entry = batch[0]
                    results = [await self._execute_entry(loop, entry)]
                    self.stats.fingerprint(entry.fingerprint).runs += 1
                else:
                    mplan = MultiBatchPlan([entry.plan for entry in batch])
                    results = await self._execute_fused_entry(loop, mplan, batch)
                    self.stats.fused_runs += 1
                    self.stats.fused_requests += len(batch)
                    # Fused work is attributed to the member request
                    # fingerprints only: every drained combination has
                    # its own MultiBatchPlan fingerprint, and counting
                    # those would grow per_fingerprint without bound.
                    for entry in batch:
                        self.stats.fingerprint(entry.fingerprint).fused += 1
                self.stats.runs += 1
            except Exception as exc:  # noqa: BLE001 — fan the failure out
                for entry in batch:
                    if not entry.future.done():
                        entry.future.set_exception(exc)
                    if entry.waiters <= 0:
                        # Every waiter already timed out: consume the
                        # exception so the abandoned future doesn't log
                        # "exception was never retrieved" at GC time.
                        entry.future.exception()
                self.stats.errors += len(batch)
            else:
                for entry, result in zip(batch, results):
                    if not entry.future.done():
                        entry.future.set_result(result)
                    if entry.waiters <= 0:
                        # The run finished, but every waiter had already
                        # timed out after it started — wasted work worth
                        # counting (the result still warms caches/views).
                        self.stats.abandoned_runs += 1
                self.stats.completed += len(batch)
                if len(batch) == 1:
                    # Views are stored before reader_exit, so an ingest
                    # waiting on the barrier sees them and keeps them
                    # fresh from its very first append.
                    self._store_view(batch[0], results[0])
            finally:
                barrier.reader_exit()
                for entry in batch:
                    self._inflight.pop(entry.key, None)
                self._maybe_trim_stores()

    def _take_batch(self) -> list[_Inflight]:
        """Pop the oldest live pending entry plus every fusable peer.

        Entries abandoned by all of their waiters (deadline expired
        while queued) are discarded here — they never occupy the pool
        slot this dispatcher holds.  Every entry that leaves the queue,
        whether dispatched or discarded, releases its admission slot.

        Fusable: queued single group-by entries over the same
        registration with the same δ predicates (fingerprints already
        differ — identical ones coalesced at submit).  Under load this
        drains whole bursts into one :class:`MultiBatchPlan` run; when
        idle a batch is just the one entry, with zero added latency.
        """
        first: _Inflight | None = None
        while self._pending:
            candidate = self._pending.popleft()
            if candidate.abandoned:
                self._discard(candidate)
                continue
            first = candidate
            break
        if first is None:
            return []
        first.started = True
        self._queue_release(first.registration)
        batch = [first]
        if self.fuse and first.kind == "groupby":
            keep: deque[_Inflight] = deque()
            for entry in self._pending:
                if entry.abandoned:
                    self._discard(entry)
                elif (
                    len(batch) < self.max_fuse
                    and entry.kind == "groupby"
                    and entry.registration is first.registration
                    and entry.pred_key == first.pred_key
                ):
                    entry.started = True
                    self._queue_release(entry.registration)
                    batch.append(entry)
                else:
                    keep.append(entry)
            self._pending = keep
        return batch

    def _discard(self, entry: _Inflight) -> None:
        """Drop a queued unit whose waiters all left before dispatch."""
        self._queue_release(entry.registration)
        self._inflight.pop(entry.key, None)
        if not entry.future.done():
            entry.future.cancel()
        self.stats.cancelled_queued += 1

    # -- executor selection / resilience ------------------------------------

    def _preferred_level(self) -> str:
        return "process" if self._process_executor is not None else "thread"

    def _select_level(self) -> tuple[str, CircuitBreaker | None]:
        """Pick the highest execution level whose breaker admits a run.

        The degradation ladder is ``process → thread → inline``:
        a tripped process breaker routes runs onto worker threads, a
        tripped thread breaker runs them inline on the event loop (the
        last resort that always answers).  An ``open`` breaker whose
        reset period elapsed half-opens here and lets the run through
        as its recovery probe.
        """
        if self._process_executor is not None and self._breaker.allow():
            return "process", self._breaker
        if self._thread_breaker.allow():
            return "thread", self._thread_breaker
        return "inline", None

    def _thread_target(self):
        """The thread pool for thread-level runs.

        When the service was built with a process executor there is no
        dedicated thread pool, so degraded runs borrow the event loop's
        default executor.
        """
        return None if self._process_executor is not None else self._executor

    async def _run_resilient(self, loop, process_call, blocking_call):
        """Run one unit with retry/backoff, breakers, and degradation.

        ``process_call`` dispatches onto the process executor;
        ``blocking_call`` is the in-process equivalent (bit-identical —
        kernels are pure functions of plan, layout and data).  Only
        *transient* failures (``WorkerError``, ``TransientError``) are
        retried or recorded by breakers; planning errors and bad batches
        propagate immediately on attempt one.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            level, breaker = self._select_level()
            try:
                if level == "process":
                    try:
                        result = await process_call()
                    except TaskNotPicklable:
                        # Unpicklable backend/plan/predicates: run
                        # in-process.  A capability fallback, not a
                        # health-driven degradation — not counted.
                        result = await loop.run_in_executor(None, blocking_call)
                elif level == "thread":
                    result = await loop.run_in_executor(
                        self._thread_target(), blocking_call
                    )
                else:
                    result = blocking_call()
            except self._transient:
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                if attempt >= policy.max_attempts:
                    self.stats.retry_exhausted += 1
                    raise
                self.stats.retries += 1
                delay = policy.delay(attempt, self._retry_rng)
                if delay:
                    await asyncio.sleep(delay)
                continue
            if breaker is not None:
                breaker.record_success()
            if level != self._preferred_level():
                self.stats.degraded_runs += 1
            return result

    async def _execute_entry(self, loop, entry: _Inflight):
        async def process_call():
            result = await self._execute_process(loop, entry.kind, entry.plan, entry)
            if entry.kind == "multi":
                return dict(zip(entry.plan.group_attr, result))
            return result

        return await self._run_resilient(
            loop, process_call, lambda: self._execute_one(entry)
        )

    async def _execute_fused_entry(
        self, loop, mplan: MultiBatchPlan, batch: list[_Inflight]
    ) -> list:
        return await self._run_resilient(
            loop,
            lambda: self._execute_process(loop, "multi", mplan, batch[0]),
            lambda: self._execute_fused(mplan, batch),
        )

    async def _execute_process(self, loop, kind: str, plan, entry: _Inflight):
        """One kernel run on a pool worker process.

        The parent compiles first (off the event loop): for generated
        backends that spills the source under ``IFAQ_KERNEL_CACHE_DIR``,
        which is exactly what the worker's own compile warm-loads — the
        worker re-execs the source instead of regenerating it — and it
        keeps the service's kernel-cache counters meaningful in both
        executor modes.
        """
        await loop.run_in_executor(
            None, self.kernel_cache.get_or_compile, self.backend, plan, self.layout
        )
        future = self._process_executor.run_kernel(
            self.backend,
            entry.registration.db,
            kind,
            plan,
            self.layout,
            predicates=entry.predicates,
            pred_key=entry.pred_key,
        )
        result, _worker_seconds = await asyncio.wrap_future(future)
        return result

    # -- blocking execution (worker threads) --------------------------------

    def _execute_one(self, entry: _Inflight):
        kernel = self.kernel_cache.get_or_compile(self.backend, entry.plan, self.layout)
        reg = entry.registration
        if entry.kind == "plain":
            # execute() takes no predicates: fold δ into the data once
            # (record-local, so equivalent to applying them in-scan).
            # The filtered database is memoized per predicate key so a
            # stream of equal-δ plain requests reuses one filtered copy
            # — and, on columnar backends, one ColumnStore — instead of
            # rebuilding per request.
            db = reg.db
            if entry.predicates:
                db = reg.filtered_dbs.get(entry.pred_key)
                if db is None:
                    db = apply_predicates(reg.db, entry.predicates)
                    while len(reg.filtered_dbs) >= 32:  # bound the memo
                        try:  # worker threads race here; losing is benign
                            old = reg.filtered_dbs.pop(next(iter(reg.filtered_dbs)))
                        except (KeyError, StopIteration):
                            break
                        evict_column_store(old)
                    reg.filtered_dbs[entry.pred_key] = db
                return self.backend.execute(kernel, db)
            if self._delta_backend and self.coalesce:
                result, entry.view_state = self.backend.run_maintained(kernel, db)
                return result
            return self.backend.execute(kernel, db)
        if entry.kind == "groupby":
            if self._delta_backend and self.coalesce:
                result, entry.view_state = self.backend.run_groupby_maintained(
                    kernel, reg.db, entry.predicates
                )
                return result
            return self.backend.run_groupby(kernel, reg.db, entry.predicates)
        results = self.backend.run_groupby_many(kernel, reg.db, entry.predicates)
        return dict(zip(entry.plan.group_attr, results))

    def _execute_fused(self, mplan: MultiBatchPlan, batch: list[_Inflight]) -> list:
        kernel = self.kernel_cache.get_or_compile(self.backend, mplan, self.layout)
        reg = batch[0].registration
        return self.backend.run_groupby_many(kernel, reg.db, batch[0].predicates)

    # -- column-store budget -------------------------------------------------

    def _maybe_trim_stores(self) -> None:
        """Trim column stores LRU when over ``store_budget_bytes``.

        δ-filtered copies go first (coldest registration first), then
        whole stores of every registration but the most recently used.
        Trimmed stores rebuild lazily on the next request touching them
        — the backend's prepared-layout cache revalidates store
        identity, so a trimmed store is never served stale.
        """
        budget = self.store_budget_bytes
        if not budget or not self._dbs:
            return

        def _bytes(db: Database) -> int:
            store = peek_column_store(db)
            return store.stats()["approx_bytes"] if store is not None else 0

        regs = sorted(self._dbs.values(), key=lambda r: r.last_used)
        total = sum(
            _bytes(reg.db) + sum(_bytes(f) for f in reg.filtered_dbs.values())
            for reg in regs
        )
        for reg in regs:  # pass 1: filtered copies, coldest first
            if total <= budget:
                return
            for filtered in reg.filtered_dbs.values():
                freed = _bytes(filtered)
                if evict_column_store(filtered) and freed:
                    total -= freed
                    self.stats.store_trims += 1
            reg.filtered_dbs.clear()
        for reg in regs[:-1]:  # pass 2: whole stores, never the hottest
            if total <= budget:
                return
            freed = _bytes(reg.db)
            if evict_column_store(reg.db) and freed:
                total -= freed
                self.stats.store_trims += 1
                # Group delta states are coded against the evicted
                # store's (possibly extended) group coding; a rebuilt
                # store won't reproduce it once new group values exist.
                reg.drop_view_states()

    # -- reporting / lifecycle ----------------------------------------------

    def stats_dict(self) -> dict:
        """One JSON-friendly report: service counters, kernel-cache
        counters, and per-database column-store size estimates."""
        databases = {}
        for name, reg in self._dbs.items():
            store = peek_column_store(reg.db)
            databases[name] = {
                "relations": len(reg.db.relations),
                "plans": len(reg.plans),
                "views": len(reg.views),
                "column_store": store.stats() if store is not None else None,
            }
        return {
            "service": self.stats.as_dict(),
            "kernel_cache": self.kernel_cache.stats.as_dict(),
            "databases": databases,
            "executor": {
                "kind": "process" if self._process_executor is not None else "thread",
                "workers": getattr(self._process_executor, "workers", None),
            },
            "store_budget_bytes": self.store_budget_bytes,
            "reliability": {
                "default_deadline": self.default_deadline,
                "max_queue_depth": self.max_queue_depth,
                "queue_policy": self.queue_policy,
                "retry": self.retry_policy.as_dict(),
                "breakers": {
                    "process": self._breaker.as_dict(),
                    "thread": self._thread_breaker.as_dict(),
                },
            },
        }

    async def drain(self) -> None:
        """Wait until every queued and running request has resolved."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain in-flight work and release the worker pool."""
        self._closed = True
        await self.drain()
        if self._own_executor:
            self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AggregateService":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()
