"""Serving-layer counters: coalescing, fusion, queue latency, memory.

:class:`ServiceStats` is owned by one :class:`~repro.serving.service.
AggregateService` and mutated only from its event loop, so the counters
need no locking.  ``as_dict`` flattens everything — including the
kernel cache's hit/miss counters and each registered database's
column-store byte estimate — into one JSON-friendly report, which is
what the serving benchmark emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FingerprintStats:
    """Per-plan-fingerprint request accounting."""

    requests: int = 0
    #: requests answered by an execution another request started
    coalesced: int = 0
    #: requests executed as members of a fused multi-plan kernel
    fused: int = 0
    #: kernel executions actually performed for this fingerprint
    runs: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "fused": self.fused,
            "runs": self.runs,
        }


@dataclass
class ServiceStats:
    """Aggregate counters for one :class:`AggregateService`."""

    #: requests submitted
    requests: int = 0
    #: requests answered successfully
    completed: int = 0
    #: requests answered with an exception
    errors: int = 0
    #: requests that piggybacked on an in-flight execution of the same
    #: (database, fingerprint, predicates) key instead of running
    coalesced: int = 0
    #: group-by requests executed as members of a fused multi-plan run
    fused_requests: int = 0
    #: kernel executions performed (every coalesced/fused request above
    #: is a request *not* counted here — the whole point)
    runs: int = 0
    #: runs that executed a fused MultiBatchPlan bundle
    fused_runs: int = 0
    #: column stores evicted by the byte-budget LRU trim policy
    store_trims: int = 0
    #: waiters cancelled with DeadlineExceeded (queued or in flight)
    deadline_timeouts: int = 0
    #: submissions rejected with QueueFull by bounded admission
    queue_rejections: int = 0
    #: queued units cancelled before dispatch because every waiter left
    #: (they never occupied a pool slot)
    cancelled_queued: int = 0
    #: runs that completed after their last waiter had already timed out
    abandoned_runs: int = 0
    #: transient executor failures retried (each backoff sleep counts once)
    retries: int = 0
    #: runs whose retry budget was exhausted (the failure propagated)
    retry_exhausted: int = 0
    #: runs executed below the preferred level (process→thread→inline)
    #: because a circuit breaker was open
    degraded_runs: int = 0
    #: current state of the process-stage circuit breaker
    breaker_state: str = "closed"
    #: current state of the thread-stage circuit breaker
    thread_breaker_state: str = "closed"
    #: every breaker transition, as (breaker name, from state, to state)
    breaker_transitions: list = field(default_factory=list)
    #: requests answered straight from a maintained materialized view
    view_hits: int = 0
    #: ingest batches applied via AggregateService.ingest
    ingests: int = 0
    #: rows appended across all ingests
    ingest_rows: int = 0
    #: maintained views refreshed by an incremental delta run
    delta_runs: int = 0
    #: maintained views refreshed by a full recompute (non-root or
    #: non-pure ingests, or backends without the delta protocol)
    full_recomputes: int = 0
    #: register_database calls absorbed as idempotent re-registrations
    reregistrations: int = 0
    #: wall-clock seconds spent in delta maintenance runs
    delta_seconds_total: float = 0.0
    #: wall-clock seconds spent in ingest-time full recomputes
    full_seconds_total: float = 0.0
    #: seconds requests spent queued before their execution started
    queue_seconds_total: float = 0.0
    queue_seconds_max: float = 0.0
    #: dispatch-side kernel-cache hits observed by the service
    per_fingerprint: dict[str, FingerprintStats] = field(default_factory=dict)

    def fingerprint(self, fp: str) -> FingerprintStats:
        stats = self.per_fingerprint.get(fp)
        if stats is None:
            stats = self.per_fingerprint[fp] = FingerprintStats()
        return stats

    @property
    def coalesce_rate(self) -> float:
        """Fraction of requests that never paid for their own kernel run."""
        if not self.requests:
            return 0.0
        return (self.coalesced + max(0, self.fused_requests - self.fused_runs)) / self.requests

    @property
    def delta_speedup(self) -> float:
        """Mean full-recompute seconds over mean delta-run seconds.

        The ingest-path headline number: how much cheaper maintaining a
        view incrementally is than recomputing it.  0.0 until both
        paths have run at least once.
        """
        if not self.delta_runs or not self.full_recomputes:
            return 0.0
        delta_mean = self.delta_seconds_total / self.delta_runs
        full_mean = self.full_seconds_total / self.full_recomputes
        return full_mean / delta_mean if delta_mean > 0 else 0.0

    def reset(self) -> None:
        """Zero every counter (benchmarks separating warmup from measurement)."""
        self.__init__()

    def record_queue_latency(self, seconds: float) -> None:
        self.queue_seconds_total += seconds
        self.queue_seconds_max = max(self.queue_seconds_max, seconds)

    def note_breaker_transition(self, name: str, previous: str, state: str) -> None:
        """Mirror one circuit-breaker transition into the counters
        (wired as the breakers' ``on_transition`` callback)."""
        self.breaker_transitions.append((name, previous, state))
        if name == "thread":
            self.thread_breaker_state = state
        else:
            self.breaker_state = state

    def as_dict(self) -> dict:
        dispatched = self.completed + self.errors
        return {
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "fused_requests": self.fused_requests,
            "runs": self.runs,
            "fused_runs": self.fused_runs,
            "store_trims": self.store_trims,
            "deadline_timeouts": self.deadline_timeouts,
            "queue_rejections": self.queue_rejections,
            "cancelled_queued": self.cancelled_queued,
            "abandoned_runs": self.abandoned_runs,
            "retries": self.retries,
            "retry_exhausted": self.retry_exhausted,
            "degraded_runs": self.degraded_runs,
            "breaker_state": self.breaker_state,
            "thread_breaker_state": self.thread_breaker_state,
            "breaker_transitions": [list(t) for t in self.breaker_transitions],
            "view_hits": self.view_hits,
            "ingests": self.ingests,
            "ingest_rows": self.ingest_rows,
            "delta_runs": self.delta_runs,
            "full_recomputes": self.full_recomputes,
            "reregistrations": self.reregistrations,
            "delta_seconds_total": round(self.delta_seconds_total, 6),
            "full_seconds_total": round(self.full_seconds_total, 6),
            "delta_speedup": round(self.delta_speedup, 4),
            "coalesce_rate": round(self.coalesce_rate, 4),
            "queue_seconds_total": round(self.queue_seconds_total, 6),
            "queue_seconds_max": round(self.queue_seconds_max, 6),
            "queue_seconds_mean": round(
                self.queue_seconds_total / dispatched, 6
            ) if dispatched else 0.0,
            "per_fingerprint": {
                fp: s.as_dict() for fp, s in self.per_fingerprint.items()
            },
        }
