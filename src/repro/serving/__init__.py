"""Async aggregate serving over the compiled-kernel stack.

Layer map::

    requests.py   AggregateRequest / GroupByRequest / MultiGroupByRequest
                  + predicate_key (the δ half of the coalescing identity)
    stats.py      ServiceStats / FingerprintStats counters
    policies.py   fault-tolerance policies: request deadlines
                  (DeadlineExceeded), bounded admission (QueueFull),
                  RetryPolicy backoff, CircuitBreaker degradation
    faults.py     deterministic fault injection: FaultSchedule plus the
                  FaultyBackend / FaultyExecutor wrappers
    service.py    AggregateService: asyncio front end with per-fingerprint
                  request coalescing, adaptive group-by fusion, a bounded
                  worker pool, database registration/eviction hooks, and
                  streaming ingest maintaining cached results as
                  materialized views (delta folds, not recomputes)

See ``docs/SERVING.md`` for the end-to-end tour (the Reliability
section covers deadlines, admission, retries and breakers),
``examples/serving_tour.py`` for a runnable quickstart, and
``examples/streaming_ingest.py`` for the ingest path.
"""

from repro.serving.faults import (
    CorruptSpill,
    Delay,
    Every,
    Fail,
    FaultSchedule,
    FaultyBackend,
    FaultyExecutor,
    Hold,
    KillWorker,
    Sometimes,
    corrupt_spilled_sources,
)
from repro.serving.policies import (
    CircuitBreaker,
    DeadlineExceeded,
    QueueFull,
    RetryPolicy,
    TransientError,
)
from repro.serving.requests import (
    AggregateRequest,
    GroupByRequest,
    MultiGroupByRequest,
    Request,
    predicate_key,
)
from repro.serving.service import (
    DEFAULT_MAX_FUSE,
    DEFAULT_SERVICE_WORKERS,
    MAX_VIEWS_PER_DB,
    AggregateService,
    DatabaseNotRegistered,
)
from repro.serving.stats import FingerprintStats, ServiceStats

__all__ = [
    "AggregateRequest",
    "AggregateService",
    "CircuitBreaker",
    "CorruptSpill",
    "DEFAULT_MAX_FUSE",
    "DEFAULT_SERVICE_WORKERS",
    "DatabaseNotRegistered",
    "DeadlineExceeded",
    "Delay",
    "Every",
    "Fail",
    "FaultSchedule",
    "FaultyBackend",
    "FaultyExecutor",
    "FingerprintStats",
    "GroupByRequest",
    "Hold",
    "KillWorker",
    "MAX_VIEWS_PER_DB",
    "MultiGroupByRequest",
    "QueueFull",
    "Request",
    "RetryPolicy",
    "ServiceStats",
    "Sometimes",
    "TransientError",
    "corrupt_spilled_sources",
    "predicate_key",
]
