"""Deterministic fault injection for the serving and executor stack.

Testing fault tolerance with real crashes and wall-clock races makes
suites flaky; this module injects faults **on a counted schedule**
instead.  A :class:`FaultSchedule` maps operation names to actions that
fire at specific invocation indices — the 0th ``run_groupby``, every
3rd ``run_kernel`` — so a test (or the ``benchmarks/serving_faults.py``
harness) states exactly which run fails, which worker dies, and which
spilled source is corrupted, and the same seed reproduces the same
fault sequence every time.

Two wrappers apply schedules to the real stack:

* :class:`FaultyBackend` wraps any
  :class:`~repro.backend.base.ExecutionBackend` and consults the
  schedule before each kernel-run entry point (``execute``,
  ``run_groupby``, the maintained/delta variants, …).  Actions can
  raise (:class:`Fail`), stall for a fixed time (:class:`Delay`), or
  block on an event the test controls (:class:`Hold`) — the
  deterministic way to pin "deadline expires while the run is in
  flight".
* :class:`FaultyExecutor` wraps a
  :class:`~repro.backend.process_pool.ProcessKernelExecutor` and
  injects faults into ``run_kernel`` / ``run_blocks``:
  :class:`KillWorker` kills a real pool worker immediately before
  dispatch (the next round-trip raises the organic
  :class:`~repro.backend.process_pool.WorkerError` and the pool
  respawns), :class:`Fail` resolves the returned future with an
  injected exception without touching the pool.

:func:`corrupt_spilled_sources` rounds the harness out by overwriting
spilled kernel sources under ``IFAQ_KERNEL_CACHE_DIR`` with garbage,
exercising the warm-start regeneration path.

Every fired fault is appended to ``schedule.log`` as ``(op, index,
action)`` so tests assert on exactly what was injected.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.backend.base import ExecutionBackend, Kernel
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan
from repro.db.database import Database
from repro.serving.policies import TransientError


# -- actions ----------------------------------------------------------------


@dataclass(frozen=True)
class Fail:
    """Raise (or resolve a future with) an injected exception.

    ``exc`` is an exception *factory* (class or zero-arg callable) so
    every firing produces a fresh instance; defaults to
    :class:`~repro.serving.policies.TransientError`.
    """

    exc: Callable[[], BaseException] = TransientError
    message: str = "injected fault"

    def make(self) -> BaseException:
        try:
            return self.exc(self.message)
        except TypeError:
            return self.exc()


@dataclass(frozen=True)
class Delay:
    """Stall the operation for a fixed number of seconds, then proceed."""

    seconds: float = 0.05


@dataclass(frozen=True)
class Hold:
    """Block the operation until the test sets ``event``.

    The deterministic replacement for sleeps: the test decides exactly
    when the in-flight run resumes.  ``timeout`` bounds the wait so a
    broken test fails loudly instead of wedging the suite.
    """

    event: threading.Event
    timeout: float = 30.0

    def wait(self) -> None:
        if not self.event.wait(self.timeout):
            raise RuntimeError(
                f"Hold fault was never released within {self.timeout}s"
            )


@dataclass(frozen=True)
class KillWorker:
    """Kill one real pool worker immediately before dispatching."""

    index: int = 0


@dataclass(frozen=True)
class CorruptSpill:
    """Overwrite every spilled kernel source with garbage bytes."""


Action = Any  # Fail | Delay | Hold | KillWorker | CorruptSpill


class Sometimes:
    """A seeded Bernoulli index predicate for probabilistic schedules.

    Deterministic: the decision for invocation ``i`` is the ``i``-th
    draw of ``random.Random(seed)``, so a given seed always faults the
    same invocations regardless of timing.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        self.rate = rate
        self._draws: list[bool] = []
        self._rng = random.Random(seed)

    def __call__(self, index: int) -> bool:
        while len(self._draws) <= index:
            self._draws.append(self._rng.random() < self.rate)
        return self._draws[index]


class Every:
    """Fire on every ``n``-th invocation (offset by ``start``)."""

    def __init__(self, n: int, start: int = 0) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n, self.start = n, start

    def __call__(self, index: int) -> bool:
        return index >= self.start and (index - self.start) % self.n == 0


class FaultSchedule:
    """Counter-based fault schedule shared by the wrappers below.

    ``on(op, action, at=...)`` arms ``action`` for operation ``op`` at
    invocation indices ``at`` — an int, an iterable of ints, or a
    predicate ``index -> bool`` (see :class:`Sometimes` /
    :class:`Every`).  ``fire(op)`` advances the op's counter and
    returns the actions armed for the current index.  Counters are
    guarded by a lock because backend ops fire from worker threads.
    """

    def __init__(self) -> None:
        self._rules: dict[str, list[tuple[Any, Action]]] = {}
        self._counts: Counter = Counter()
        self._lock = threading.Lock()
        #: every fired fault, as (op, invocation index, action)
        self.log: list[tuple[str, int, Action]] = []

    def on(self, op: str, action: Action, *, at: Any = 0) -> "FaultSchedule":
        if isinstance(at, int):
            matcher: Any = frozenset((at,))
        elif callable(at):
            matcher = at
        else:
            matcher = frozenset(at)
        self._rules.setdefault(op, []).append((matcher, action))
        return self

    def count(self, op: str) -> int:
        """How many times ``op`` has fired so far."""
        with self._lock:
            return self._counts[op]

    def fire(self, op: str) -> list[Action]:
        with self._lock:
            index = self._counts[op]
            self._counts[op] += 1
            fired = [
                action
                for matcher, action in self._rules.get(op, ())
                if (matcher(index) if callable(matcher) else index in matcher)
            ]
            for action in fired:
                self.log.append((op, index, action))
        return fired


def corrupt_spilled_sources() -> int:
    """Overwrite every spilled kernel source with garbage; returns the
    count corrupted.

    The spill loader validates sources by fingerprint-keyed filename
    only, so a corrupted file is detected at ``exec`` time and the
    backend regenerates from the plan — the recovery path
    ``tests/backend/test_source_spill.py`` pins.
    """
    from repro.backend.cache import kernel_source_dir

    corrupted = 0
    directory = kernel_source_dir()
    if directory.is_dir():
        for path in directory.glob("kernel_*.py"):
            path.write_text("this is not python } {\n")
            corrupted += 1
    return corrupted


def _perform_blocking(actions: list[Action]) -> None:
    """Apply backend-side actions (runs on a worker thread, never the
    event loop): delays sleep, holds block, failures raise."""
    for action in actions:
        if isinstance(action, Delay):
            time.sleep(action.seconds)
        elif isinstance(action, Hold):
            action.wait()
        elif isinstance(action, CorruptSpill):
            corrupt_spilled_sources()
        elif isinstance(action, Fail):
            raise action.make()
        else:
            raise TypeError(f"unsupported backend fault action {action!r}")


# -- backend wrapper --------------------------------------------------------


class FaultyBackend(ExecutionBackend):
    """An :class:`ExecutionBackend` that injects scheduled faults.

    Every kernel-run entry point consults the schedule under its own
    operation name before delegating to ``inner``; everything else
    (block protocols, delta helpers, layout caches) passes straight
    through via ``__getattr__``, so the wrapper is transparent to the
    sharded backend and the column store.

    Holds a ``threading.Event`` when :class:`Hold` actions are armed,
    so it deliberately does **not** cross the process boundary — a
    service handed a ``FaultyBackend`` plus a process executor falls
    back in-process via ``TaskNotPicklable``, which is itself a useful
    configuration to test.
    """

    def __init__(self, inner: ExecutionBackend, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        self._unpicklable = threading.Lock()  # keep it off the pipe on purpose

    # Delegate identity so cached kernels are shared with the clean path.
    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def kernel_key(self) -> str:
        return self.inner.kernel_key

    def __getattr__(self, attr: str):
        return getattr(self.__dict__["inner"], attr)

    def _apply(self, op: str) -> None:
        _perform_blocking(self.schedule.fire(op))

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        self._apply("compile_plan")
        return self.inner.compile_plan(plan, layout)

    def compile_multi(self, mplan, layout: LayoutOptions, members) -> Kernel:
        self._apply("compile_multi")
        return self.inner.compile_multi(mplan, layout, members)

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        self._apply("execute")
        return self.inner.execute(kernel, db)

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        self._apply("run_groupby")
        return self.inner.run_groupby(kernel, db, predicates)

    def run_groupby_many(self, kernel: Kernel, db: Database, predicates=None):
        self._apply("run_groupby_many")
        return self.inner.run_groupby_many(kernel, db, predicates)

    def run_maintained(self, kernel: Kernel, db: Database):
        self._apply("execute")
        return self.inner.run_maintained(kernel, db)

    def run_groupby_maintained(self, kernel: Kernel, db: Database, predicates=None):
        self._apply("run_groupby")
        return self.inner.run_groupby_maintained(kernel, db, predicates)

    def run_delta(self, kernel: Kernel, db: Database, state):
        self._apply("run_delta")
        return self.inner.run_delta(kernel, db, state)

    def run_groupby_delta(self, kernel: Kernel, db: Database, state, predicates=None):
        self._apply("run_groupby_delta")
        return self.inner.run_groupby_delta(kernel, db, state, predicates)

    def supports_delta(self) -> bool:
        probe = getattr(self.inner, "supports_delta", None)
        return callable(probe) and bool(probe())


# -- executor wrapper -------------------------------------------------------


class FaultyExecutor:
    """A fault-injecting wrapper around a process kernel executor.

    Exposes the same ``run_kernel`` / ``run_blocks`` future surface the
    serving layer and sharded backend use, so it drops in wherever a
    :class:`~repro.backend.process_pool.ProcessKernelExecutor` does.
    ``op`` names: ``"run_kernel"`` and ``"run_blocks"``.

    * :class:`KillWorker` — kills a *real* worker of the wrapped pool
      first, then dispatches normally: the task lands on the dead
      worker, the round-trip raises the organic
      :class:`~repro.backend.process_pool.WorkerError`, and the pool
      respawns the worker — exactly the failure retries must absorb.
    * :class:`Fail` — resolves the returned future with the injected
      exception without touching the pool (for breaker tests that must
      not pay respawn costs).

    Slow-kernel scenarios belong on :class:`FaultyBackend` (whose
    delays run on worker threads); ``run_kernel`` is called from the
    event loop, so :class:`Delay`/:class:`Hold` are rejected here.
    """

    def __init__(self, inner, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule

    def __getattr__(self, attr: str):
        return getattr(self.__dict__["inner"], attr)

    def _fault(self, op: str):
        """Returns a pre-failed future, or None to dispatch normally."""
        from concurrent.futures import Future

        for action in self.schedule.fire(op):
            if isinstance(action, Fail):
                future: Future = Future()
                future.set_exception(action.make())
                return future
            if isinstance(action, KillWorker):
                self.inner.kill_worker(action.index)
            elif isinstance(action, CorruptSpill):
                corrupt_spilled_sources()
            else:
                raise TypeError(f"unsupported executor fault action {action!r}")
        return None

    def run_kernel(self, *args, **kwargs):
        return self._fault("run_kernel") or self.inner.run_kernel(*args, **kwargs)

    def run_blocks(self, *args, **kwargs):
        return self._fault("run_blocks") or self.inner.run_blocks(*args, **kwargs)
