"""Request types accepted by the serving layer, and their plan identity.

A request names a *registered database* plus the work to run over it:

* :class:`AggregateRequest` — a plain scalar batch, answered with the
  ``{spec.name: value}`` dictionary ``execute`` returns;
* :class:`GroupByRequest` — one group-by batch, answered with the
  ``{group value: [aggregate values]}`` dictionary ``run_groupby``
  returns;
* :class:`MultiGroupByRequest` — one batch grouped by several
  attributes at once (the regression-tree per-node shape), answered
  with ``{group_attr: {group value: [values]}}``.

Requests carry optional per-relation δ ``predicates`` exactly like the
engines do.  Predicates are *execution-time* state — they are not part
of the kernel identity — but they are part of the **request identity**:
two requests only coalesce when their predicates are provably equal
(see :func:`predicate_key`).

Requests may also carry a ``deadline`` — a *relative* budget in
seconds, measured from submission.  It is serving-time state only
(never part of the kernel or coalescing identity): the service cancels
the waiter with :class:`~repro.serving.policies.DeadlineExceeded` when
the budget expires while the request is queued or in flight.  An
explicit ``deadline=`` argument to ``submit`` overrides it; the
service-wide default (``IFAQ_DEADLINE_SECONDS``) applies when both are
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.aggregates.batch import AggregateBatch


@dataclass(frozen=True)
class AggregateRequest:
    """A plain scalar aggregate batch over a registered database."""

    database: str
    batch: AggregateBatch
    predicates: Mapping[str, Sequence] | None = field(default=None, compare=False)
    deadline: float | None = field(default=None, compare=False)


@dataclass(frozen=True)
class GroupByRequest:
    """One group-by aggregate batch (``{group value: [values]}``)."""

    database: str
    batch: AggregateBatch
    group_attr: str
    predicates: Mapping[str, Sequence] | None = field(default=None, compare=False)
    deadline: float | None = field(default=None, compare=False)


@dataclass(frozen=True)
class MultiGroupByRequest:
    """One batch grouped by several attributes, fused into one kernel."""

    database: str
    batch: AggregateBatch
    group_attrs: tuple[str, ...]
    predicates: Mapping[str, Sequence] | None = field(default=None, compare=False)
    deadline: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_attrs", tuple(self.group_attrs))
        if not self.group_attrs:
            raise ValueError("MultiGroupByRequest needs at least one group attribute")


Request = AggregateRequest | GroupByRequest | MultiGroupByRequest


def predicate_key(predicates: Mapping[str, Sequence] | None) -> tuple:
    """A hashable identity for a δ predicate set, for coalescing.

    Structured conditions exposing ``feature``/``op``/``threshold``
    (the CART learner's :class:`~repro.ml.regression_tree.Condition`)
    compare **structurally**, so two clients asking for the same split
    region coalesce even when they built their own condition objects.
    Opaque callables compare by object identity — conservative, never
    wrong: structurally-equal-but-distinct callables simply don't
    coalesce.
    """
    if not predicates:
        return ()
    parts: list[tuple] = []
    for rel in sorted(predicates):
        preds = predicates[rel]
        if not preds:
            continue
        ids: list[Any] = []
        for p in preds:
            feature = getattr(p, "feature", None)
            op = getattr(p, "op", None)
            threshold = getattr(p, "threshold", None)
            if feature is not None and op is not None:
                ids.append(("cond", feature, op, threshold))
            else:
                ids.append(("id", id(p)))
        parts.append((rel, tuple(sorted(ids, key=repr))))
    return tuple(parts)
