"""Fault-tolerance policies for the serving layer.

The serving stack coalesces, fuses, shards and incrementally maintains
aggregate runs, but until this module existed a single hung worker or
queue pile-up stalled every waiter forever.  Four small, composable
primitives fix that:

* :class:`DeadlineExceeded` / request deadlines — every ``submit`` can
  carry a relative deadline (seconds); it is enforced while the request
  is queued *and* while its run is in flight, and a request abandoned
  by all of its waiters before dispatch is cancelled outright so it
  never occupies a pool slot.
* :class:`QueueFull` / bounded admission — per-database queue caps with
  a policy: ``"reject"`` answers over-cap submissions immediately with
  backpressure, ``"wait"`` parks them until a slot frees (still subject
  to the deadline), so one hot database cannot starve the rest.
* :class:`RetryPolicy` — exponential backoff with **deterministic
  seeded jitter** for transient executor failures (a worker death
  mid-run, a respawn window).  Retrying is safe because kernels are
  pure: a retried run recomputes the same fold over the same data and
  is bit-identical to the clean path.
* :class:`CircuitBreaker` — repeated failures of one execution stage
  trip the breaker and runs degrade down the ladder
  ``process → thread → inline``; after ``reset_seconds`` the breaker
  half-opens and a probe run decides between recovery (``closed``) and
  another ``open`` period.

Everything here is deterministic under test: the retry jitter comes
from a seeded RNG, and the breaker takes an injectable ``clock`` so
tests advance time explicitly instead of sleeping.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable


class DeadlineExceeded(TimeoutError):
    """The request's deadline expired before a result was produced.

    Raised to the waiter only: a run already in flight keeps executing
    (threads cannot be interrupted) and its result feeds any remaining
    waiters, but a run *all* of whose waiters have gone is cancelled
    before dispatch.
    """


class QueueFull(RuntimeError):
    """Admission control rejected the request: the target database's
    pending-run queue is at its cap (``queue_policy="reject"``)."""


class TransientError(RuntimeError):
    """A transient executor failure that is safe to retry.

    Kernels are pure functions of (plan, layout, database), so a rerun
    after a transient fault returns a bit-identical result.  The fault
    harness (:mod:`repro.serving.faults`) raises this to model respawn
    windows and flaky infrastructure;
    :class:`~repro.backend.process_pool.WorkerError` is the organic
    equivalent (a worker died mid-run).
    """


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    value = float(raw)
    return value if value > 0 else None


def _env_int(name: str, default: int | None) -> int | None:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    value = int(raw)
    return value if value > 0 else None


def default_deadline_from_env() -> float | None:
    """``IFAQ_DEADLINE_SECONDS`` as the service-wide default deadline
    (unset or non-positive: no deadline)."""
    return _env_float("IFAQ_DEADLINE_SECONDS", None)


def queue_depth_from_env() -> int | None:
    """``IFAQ_QUEUE_DEPTH`` as the per-database queue cap (unset or
    non-positive: unbounded)."""
    return _env_int("IFAQ_QUEUE_DEPTH", None)


def queue_policy_from_env() -> str:
    """``IFAQ_QUEUE_POLICY`` normalized to ``"reject"`` or ``"wait"``."""
    policy = (os.environ.get("IFAQ_QUEUE_POLICY") or "reject").strip().lower()
    if policy not in ("reject", "wait"):
        raise ValueError(
            f"IFAQ_QUEUE_POLICY must be 'reject' or 'wait', got {policy!r}"
        )
    return policy


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    Attempt ``k`` (1-based) sleeps ``min(max_delay, base_delay *
    2**(k-1))`` scaled by ``1 + jitter * u`` where ``u`` is the next
    draw of a ``random.Random(seed)`` stream — so two services built
    with the same policy back off on the *same* schedule, and tests can
    set ``base_delay=0`` to retry immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered from ``rng``."""
        raw = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        if self.jitter and raw:
            raw *= 1.0 + self.jitter * rng.random()
        return raw

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """``IFAQ_RETRY_ATTEMPTS`` / ``IFAQ_RETRY_BASE`` /
        ``IFAQ_RETRY_MAX_DELAY`` / ``IFAQ_RETRY_JITTER`` overrides."""
        return cls(
            max_attempts=_env_int("IFAQ_RETRY_ATTEMPTS", 3) or 1,
            base_delay=_env_float("IFAQ_RETRY_BASE", 0.05) or 0.0,
            max_delay=_env_float("IFAQ_RETRY_MAX_DELAY", 2.0) or 0.0,
            jitter=_env_float("IFAQ_RETRY_JITTER", 0.25) or 0.0,
        )

    def as_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
        }


@dataclass
class CircuitBreaker:
    """A consecutive-failure circuit breaker with half-open probes.

    States: ``closed`` (normal), ``open`` (the stage is skipped and
    runs degrade to the next level), ``half_open`` (the reset period
    elapsed; the next run probes the stage — success closes the
    breaker, failure reopens it).  Only *transient* failures are
    recorded: a planning error or a bad batch says nothing about the
    health of the executor.

    ``clock`` is injectable so tests drive the reset window explicitly
    instead of sleeping.
    """

    name: str = "process"
    failure_threshold: int = 5
    reset_seconds: float = 30.0
    clock: Callable[[], float] = time.monotonic
    on_transition: Callable[[str, str, str], None] | None = field(
        default=None, repr=False
    )

    state: str = field(default="closed", init=False)
    failures: int = field(default=0, init=False)
    opened_at: float = field(default=0.0, init=False)
    trips: int = field(default=0, init=False)
    recoveries: int = field(default=0, init=False)
    transitions: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )

    @classmethod
    def from_env(cls, name: str = "process", **overrides) -> "CircuitBreaker":
        """``IFAQ_BREAKER_THRESHOLD`` / ``IFAQ_BREAKER_RESET`` overrides."""
        overrides.setdefault(
            "failure_threshold", _env_int("IFAQ_BREAKER_THRESHOLD", 5) or 1
        )
        overrides.setdefault(
            "reset_seconds", _env_float("IFAQ_BREAKER_RESET", 30.0) or 0.0
        )
        return cls(name=name, **overrides)

    def _to(self, state: str) -> None:
        if state == self.state:
            return
        previous, self.state = self.state, state
        self.transitions.append((previous, state))
        if state == "open":
            self.trips += 1
            self.opened_at = self.clock()
        elif state == "closed" and previous in ("open", "half_open"):
            self.recoveries += 1
        if self.on_transition is not None:
            self.on_transition(self.name, previous, state)

    def allow(self) -> bool:
        """Whether the guarded stage may run now.

        An open breaker whose reset period has elapsed transitions to
        ``half_open`` and allows the call through as the probe.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self.opened_at >= self.reset_seconds:
                self._to("half_open")
                return True
            return False
        return True  # half_open: probe

    def record_success(self) -> None:
        self.failures = 0
        if self.state != "closed":
            self._to("closed")

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.failure_threshold:
            self._to("open")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "failure_threshold": self.failure_threshold,
            "reset_seconds": self.reset_seconds,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "transitions": [list(t) for t in self.transitions],
        }
