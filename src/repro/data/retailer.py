"""Synthetic Retailer-shaped dataset (paper Section 5, Table 1).

The real Retailer is a proprietary US-retailer dataset [48] with an
``Inventory`` fact table and dimension tables for store locations,
census statistics of the location's zip code, items, and daily weather.
This generator reproduces its shape — 5 relations, 35 continuous
attributes, a snowflake join (``Census`` joins ``Location`` on ``zip``,
everything else joins the fact on ``locn`` / ``ksn`` / ``(locn,
dateid)``) — at configurable scale.

Attribute counts per relation (continuous only, as the paper uses):

    Inventory  1   (inventoryunits = label)
    Location  12   (area, income, distances to competitors, ...)
    Census    14   (population, demographics, households, ...)
    Item       3   (price, subcategory code, category cluster code)
    Weather    5   (rain, snow, maxtemp, mintemp, meanwind)

for the paper's total of 35.  The label has a planted linear signal
over a handful of them plus noise.  The last ~20% of dateids are the
held-out test split.
"""

from __future__ import annotations

import numpy as np

from repro.data.bundle import DatasetBundle
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.db.relation import Relation
from repro.db.schema import RelationSchema
from repro.ir.types import INT, REAL

LOCATION_FEATURES = [
    "rgn_cd", "clim_zn_nbr", "tot_area_sq_ft", "sell_area_sq_ft", "avghhi",
    "supertargetdistance", "supertargetdrivetime", "targetdistance",
    "targetdrivetime", "walmartdistance", "walmartdrivetime",
    "walmartsupercenterdistance",
]
CENSUS_FEATURES = [
    "population", "white", "asian", "pacific", "blackafrican", "medianage",
    "occupiedhouseunits", "houseunits", "families", "households",
    "husbwife", "males", "females", "householdschildren",
]
ITEM_FEATURES = ["price", "subcategory", "categorycluster"]
WEATHER_FEATURES = ["rain", "snow", "maxtemp", "mintemp", "meanwind"]

FEATURES = LOCATION_FEATURES + CENSUS_FEATURES + ITEM_FEATURES + WEATHER_FEATURES
LABEL = "inventoryunits"

RELATIONS = ("Inventory", "Location", "Census", "Item", "Weather")


def retailer(scale: float = 1.0, seed: int = 1) -> DatasetBundle:
    """Generate the bundle; ``scale=1.0`` ≈ 100k fact tuples."""
    rng = np.random.default_rng(seed)

    n_dates = max(int(50 * min(scale, 1.0) + 15), 20)
    n_locations = max(int(30 * scale**0.5), 5)
    n_items = max(int(300 * scale**0.5), 25)
    n_facts = max(int(100_000 * scale), 500)
    n_zips = max(n_locations * 2 // 3, 2)

    # -- Location / Census snowflake ---------------------------------------
    loc_zip = rng.integers(0, n_zips, n_locations)
    loc_values = {
        "rgn_cd": rng.integers(1, 9, n_locations).astype(float),
        "clim_zn_nbr": rng.integers(1, 6, n_locations).astype(float),
        "tot_area_sq_ft": rng.uniform(30_000, 220_000, n_locations),
        "sell_area_sq_ft": rng.uniform(20_000, 180_000, n_locations),
        "avghhi": rng.uniform(30_000, 140_000, n_locations),
        "supertargetdistance": rng.uniform(0.5, 40, n_locations),
        "supertargetdrivetime": rng.uniform(2, 60, n_locations),
        "targetdistance": rng.uniform(0.5, 30, n_locations),
        "targetdrivetime": rng.uniform(2, 45, n_locations),
        "walmartdistance": rng.uniform(0.2, 25, n_locations),
        "walmartdrivetime": rng.uniform(1, 40, n_locations),
        "walmartsupercenterdistance": rng.uniform(0.2, 35, n_locations),
    }
    location = Relation.from_rows(
        RelationSchema.of(
            "Location",
            [("locn", INT), ("zip", INT)]
            + [(f, REAL) for f in LOCATION_FEATURES],
        ),
        [
            (l, int(loc_zip[l])) + tuple(round(float(loc_values[f][l]), 3) for f in LOCATION_FEATURES)
            for l in range(n_locations)
        ],
    )

    population = rng.uniform(5_000, 90_000, n_zips)
    census_values = {
        "population": population,
        "white": population * rng.uniform(0.4, 0.8, n_zips),
        "asian": population * rng.uniform(0.01, 0.2, n_zips),
        "pacific": population * rng.uniform(0.001, 0.02, n_zips),
        "blackafrican": population * rng.uniform(0.05, 0.3, n_zips),
        "medianage": rng.uniform(25, 48, n_zips),
        "occupiedhouseunits": population * rng.uniform(0.3, 0.45, n_zips),
        "houseunits": population * rng.uniform(0.35, 0.5, n_zips),
        "families": population * rng.uniform(0.2, 0.3, n_zips),
        "households": population * rng.uniform(0.3, 0.4, n_zips),
        "husbwife": population * rng.uniform(0.15, 0.25, n_zips),
        "males": population * rng.uniform(0.47, 0.52, n_zips),
        "females": population * rng.uniform(0.48, 0.53, n_zips),
        "householdschildren": population * rng.uniform(0.1, 0.2, n_zips),
    }
    census = Relation.from_rows(
        RelationSchema.of(
            "Census", [("zip", INT)] + [(f, REAL) for f in CENSUS_FEATURES]
        ),
        [
            (z,) + tuple(round(float(census_values[f][z]), 2) for f in CENSUS_FEATURES)
            for z in range(n_zips)
        ],
    )

    item_price = rng.uniform(1, 80, n_items)
    item = Relation.from_rows(
        RelationSchema.of(
            "Item", [("ksn", INT)] + [(f, REAL) for f in ITEM_FEATURES]
        ),
        [
            (
                k,
                round(float(item_price[k]), 2),
                float(rng.integers(1, 60)),
                float(rng.integers(1, 9)),
            )
            for k in range(n_items)
        ],
    )

    weather_vals = {
        "rain": rng.random((n_dates, n_locations)) < 0.25,
        "snow": rng.random((n_dates, n_locations)) < 0.05,
        "maxtemp": rng.uniform(30, 95, (n_dates, n_locations)),
        "mintemp": rng.uniform(10, 60, (n_dates, n_locations)),
        "meanwind": rng.uniform(0, 25, (n_dates, n_locations)),
    }
    weather = Relation.from_rows(
        RelationSchema.of(
            "Weather",
            [("locn", INT), ("dateid", INT)] + [(f, REAL) for f in WEATHER_FEATURES],
        ),
        [
            (l, d) + tuple(round(float(weather_vals[f][d, l]), 3) for f in WEATHER_FEATURES)
            for d in range(n_dates)
            for l in range(n_locations)
        ],
    )

    # -- Inventory facts with planted signal --------------------------------
    test_start = int(n_dates * 0.8)
    dates = rng.integers(0, n_dates, n_facts)
    locs = rng.integers(0, n_locations, n_facts)
    ksns = rng.integers(0, n_items, n_facts)
    noise = rng.normal(0, 2.0, n_facts)
    units = (
        8.0
        + 0.00004 * loc_values["avghhi"][locs]
        + 0.00005 * population[loc_zip[locs]]
        - 0.06 * item_price[ksns]
        + 1.2 * weather_vals["rain"][dates, locs]
        + 0.02 * weather_vals["maxtemp"][dates, locs]
        + noise
    )
    units = np.maximum(units, 0.0)

    schema = RelationSchema.of(
        "Inventory",
        [("locn", INT), ("dateid", INT), ("ksn", INT), ("inventoryunits", REAL)],
    )
    all_rows = [
        (int(locs[i]), int(dates[i]), int(ksns[i]), round(float(units[i]), 3))
        for i in range(n_facts)
    ]
    train_rows = [r for r in all_rows if r[1] < test_start]
    test_rows = [r for r in all_rows if r[1] >= test_start]
    if not test_rows:
        cut = max(len(all_rows) * 4 // 5, 1)
        train_rows, test_rows = all_rows[:cut], all_rows[cut:]

    dims = [location, census, item, weather]
    db = Database.of(Relation.from_rows(schema, train_rows), *dims)
    test_db = Database.of(Relation.from_rows(schema, test_rows), *dims)

    return DatasetBundle(
        name=f"Retailer(scale={scale:g})",
        db=db,
        test_db=test_db,
        query=JoinQuery(RELATIONS),
        features=list(FEATURES),
        label=LABEL,
    )
