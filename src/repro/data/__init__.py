"""Synthetic datasets shaped like the paper's Retailer and Favorita."""

from repro.data.bundle import DatasetBundle
from repro.data.favorita import favorita
from repro.data.retailer import retailer
from repro.data.synthetic import star_schema

__all__ = ["DatasetBundle", "favorita", "retailer", "star_schema"]
