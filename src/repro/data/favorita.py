"""Synthetic Favorita-shaped dataset (paper Section 5, Table 1).

The real Favorita is a public Kaggle grocery-sales dataset [17] with a
``Sales`` fact table and dimension tables for items, stores, daily
store transactions and the oil price.  This generator reproduces its
*shape* — 5 relations, 6 continuous attributes, star/snowflake join on
``item``, ``store``, ``(date, store)`` and ``date`` — at a configurable
scale, with a planted (mildly nonlinear) signal so the learners have
something to find:

    unit_sales ≈ β₁·perishable + β₂·cluster + β₃·transactions/500
               + β₄·(oilprice−65) + promo boost + noise

The last ~20% of dates form the held-out test split, mirroring the
paper's "sales for the last month" protocol.
"""

from __future__ import annotations

import numpy as np

from repro.data.bundle import DatasetBundle
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.db.relation import Relation
from repro.db.schema import RelationSchema
from repro.ir.types import INT, REAL

#: Continuous attributes at scale 1.0 (paper: 6 for Favorita).
FEATURES = ["onpromotion", "perishable", "cluster", "transactions", "oilprice"]
LABEL = "unit_sales"

RELATIONS = ("Sales", "Items", "Stores", "Transactions", "Oil")


def favorita(scale: float = 1.0, seed: int = 0) -> DatasetBundle:
    """Generate the bundle; ``scale=1.0`` ≈ 100k fact tuples."""
    rng = np.random.default_rng(seed)

    n_dates = max(int(60 * min(scale, 1.0) + 20), 25)
    n_stores = max(int(18 * scale**0.5), 4)
    n_items = max(int(400 * scale**0.5), 30)
    n_sales = max(int(100_000 * scale), 500)

    # -- dimensions ------------------------------------------------------
    perishable = rng.integers(0, 2, n_items).astype(float)
    item_class = rng.integers(1, 40, n_items).astype(float)
    items = Relation.from_rows(
        RelationSchema.of("Items", [("item", INT), ("perishable", REAL)]),
        [(i, perishable[i]) for i in range(n_items)],
    )

    cluster = rng.integers(1, 18, n_stores).astype(float)
    stores = Relation.from_rows(
        RelationSchema.of("Stores", [("store", INT), ("cluster", REAL)]),
        [(s, cluster[s]) for s in range(n_stores)],
    )

    oilprice = np.clip(65 + np.cumsum(rng.normal(0, 1.2, n_dates)), 40, 95)
    oil = Relation.from_rows(
        RelationSchema.of("Oil", [("date", INT), ("oilprice", REAL)]),
        [(d, round(float(oilprice[d]), 2)) for d in range(n_dates)],
    )

    txn = rng.uniform(150, 950, (n_dates, n_stores))
    transactions = Relation.from_rows(
        RelationSchema.of(
            "Transactions", [("date", INT), ("store", INT), ("transactions", REAL)]
        ),
        [
            (d, s, round(float(txn[d, s]), 1))
            for d in range(n_dates)
            for s in range(n_stores)
        ],
    )

    # -- facts with planted signal -----------------------------------------
    test_start = int(n_dates * 0.8)

    def sales_rows(n: int) -> list[tuple]:
        dates = rng.integers(0, n_dates, n)
        store_ids = rng.integers(0, n_stores, n)
        item_ids = rng.integers(0, n_items, n)
        promo = (rng.random(n) < 0.15).astype(float)
        noise = rng.normal(0, 1.0, n)
        units = (
            3.0
            + 2.0 * perishable[item_ids]
            + 0.25 * cluster[store_ids]
            + 0.004 * txn[dates, store_ids]
            - 0.05 * (oilprice[dates] - 65.0)
            + 1.5 * promo
            + 0.3 * promo * perishable[item_ids]  # mild nonlinearity
            + noise
        )
        units = np.maximum(units, 0.0)
        return [
            (int(dates[i]), int(store_ids[i]), int(item_ids[i]),
             float(promo[i]), round(float(units[i]), 3))
            for i in range(n)
        ]

    schema = RelationSchema.of(
        "Sales",
        [("date", INT), ("store", INT), ("item", INT),
         ("onpromotion", REAL), ("unit_sales", REAL)],
    )
    all_rows = sales_rows(n_sales)
    train_rows = [r for r in all_rows if r[0] < test_start]
    test_rows = [r for r in all_rows if r[0] >= test_start]
    if not test_rows:  # tiny scales: split by index instead
        cut = max(len(all_rows) * 4 // 5, 1)
        train_rows, test_rows = all_rows[:cut], all_rows[cut:]

    dims = [items, stores, transactions, oil]
    db = Database.of(Relation.from_rows(schema, train_rows), *dims)
    test_db = Database.of(Relation.from_rows(schema, test_rows), *dims)

    return DatasetBundle(
        name=f"Favorita(scale={scale:g})",
        db=db,
        test_db=test_db,
        query=JoinQuery(RELATIONS),
        features=list(FEATURES),
        label=LABEL,
    )
