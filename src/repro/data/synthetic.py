"""Generic star-schema generator for micro-benchmarks and property tests.

Produces a fact table joined to ``n_dims`` dimension tables on integer
surrogate keys, with a configurable number of continuous attributes per
dimension — the minimal workload shape every paper experiment shares.
"""

from __future__ import annotations

import numpy as np

from repro.data.bundle import DatasetBundle
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.db.relation import Relation
from repro.db.schema import RelationSchema
from repro.ir.types import INT, REAL


def star_schema(
    n_facts: int = 10_000,
    n_dims: int = 2,
    dim_size: int = 50,
    attrs_per_dim: int = 2,
    fact_attrs: int = 1,
    seed: int = 0,
    label: str = "y",
) -> DatasetBundle:
    """A star join: ``Fact(k1..kd, f*, y) ⋈ Dim_i(ki, a_i*)``.

    The label carries a linear signal over the first attribute of every
    dimension plus noise, so learners converge to something non-trivial.
    """
    rng = np.random.default_rng(seed)

    dims: list[Relation] = []
    dim_values: list[np.ndarray] = []
    feature_names: list[str] = []
    for d in range(n_dims):
        values = rng.uniform(-1, 1, (dim_size, attrs_per_dim))
        dim_values.append(values)
        attrs = [(f"a{d}_{j}", REAL) for j in range(attrs_per_dim)]
        feature_names.extend(name for name, _ in attrs)
        dims.append(
            Relation.from_rows(
                RelationSchema.of(f"Dim{d}", [(f"k{d}", INT)] + attrs),
                [
                    (k,) + tuple(round(float(values[k, j]), 4) for j in range(attrs_per_dim))
                    for k in range(dim_size)
                ],
            )
        )

    keys = rng.integers(0, dim_size, (n_facts, n_dims))
    fact_features = rng.uniform(-1, 1, (n_facts, fact_attrs))
    signal = sum(dim_values[d][keys[:, d], 0] for d in range(n_dims))
    if fact_attrs:
        signal = signal + fact_features[:, 0]
    y = signal + rng.normal(0, 0.1, n_facts)

    fact_attr_names = [f"f{j}" for j in range(fact_attrs)]
    feature_names = fact_attr_names + feature_names
    schema = RelationSchema.of(
        "Fact",
        [(f"k{d}", INT) for d in range(n_dims)]
        + [(name, REAL) for name in fact_attr_names]
        + [(label, REAL)],
    )
    rows = [
        tuple(int(keys[i, d]) for d in range(n_dims))
        + tuple(round(float(fact_features[i, j]), 4) for j in range(fact_attrs))
        + (round(float(y[i]), 4),)
        for i in range(n_facts)
    ]
    cut = max(n_facts * 4 // 5, 1)
    db = Database.of(Relation.from_rows(schema, rows[:cut]), *dims)
    test_db = Database.of(Relation.from_rows(schema, rows[cut:] or rows[:1]), *dims)

    return DatasetBundle(
        name=f"Star(facts={n_facts}, dims={n_dims})",
        db=db,
        test_db=test_db,
        query=JoinQuery(("Fact",) + tuple(f"Dim{d}" for d in range(n_dims))),
        features=feature_names,
        label=label,
    )
