"""Dataset bundles: a database, its query, features, and a test split."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.query import JoinQuery, materialize_join
from repro.db.relation import Relation


@dataclass
class DatasetBundle:
    """Everything one experiment needs about a dataset.

    ``db`` holds the training fact table plus dimensions; ``test_db``
    shares the dimensions but carries the held-out fact rows (the
    paper holds out the last month of sales/inventory).
    """

    name: str
    db: Database
    test_db: Database
    query: JoinQuery
    features: list[str]
    label: str

    def test_matrix(self):
        """Materialized held-out join as a (X, y) numpy pair."""
        from repro.ml.baselines import materialize_to_matrix

        return materialize_to_matrix(self.test_db, self.query, self.features, self.label)

    def test_relation(self) -> Relation:
        return materialize_join(self.test_db, self.query)

    def summary(self) -> dict:
        """The Table 1 row for this dataset."""
        joined = materialize_join(self.db, self.query)
        return {
            "dataset": self.name,
            "db_tuples": self.db.total_tuples(),
            "db_bytes": self.db.estimated_size_bytes(),
            "join_tuples": joined.tuple_count(),
            "join_bytes": joined.estimated_size_bytes(),
            "relations": len(list(self.db)),
            "continuous_attrs": len(self.features) + 1,  # + label
        }
