"""Sharded parallel execution of aggregate batches.

:class:`ShardedBackend` wraps any inner :class:`ExecutionBackend` and
partitions the *root* relation of the plan into K shards.  Batch
aggregates are Σ-folds over the root rows (child views only ever join
*towards* the root), so per-shard partial vectors merge exactly with
the ring monoid ``v_add`` from :mod:`repro.runtime.rings` — the merge
law ``Σ_{r ∈ R} f(r) = ⊕_k Σ_{r ∈ R_k} f(r)`` for any partition
``R = ⊎ R_k``.

Two execution paths:

* **Block path** (inner backends exposing the ``prepare`` /
  ``block_ranges`` / ``run_block`` protocol — the generated-Python and
  numpy backends — plus the group-by analog ``prepare_groupby`` /
  ``run_groupby_block`` / ``merge_groupby_blocks`` on numpy): data and
  views are prepared once and shared read-only; worker threads fold
  disjoint row blocks and the partials are merged in canonical block
  order.  Because the block layout depends only on the data — never on
  the shard count — the merged result is **bit-identical** to the
  single-shot result for every K, and no per-shard databases or
  layouts are ever built.
* **Sub-database path** (engine, C++): the root relation is split into
  K contiguous sub-relations and the inner backend runs once per shard
  (the C++ binary in parallel subprocesses that release the GIL).
  Partial dictionaries merge with ``v_add`` in shard order.

Either path can run its shards on **threads** (the default) or on
**worker processes** (``mode="process"``, default taken from the
``IFAQ_EXECUTOR`` environment variable): the block path sends each
shard's ``(canonical block index, range)`` list to a
:class:`~repro.backend.process_pool.ProcessKernelExecutor` worker —
which re-resolves the kernel from the spilled source cache and folds
the same blocks the thread path would — and merges the returned
partials in the same canonical block order, so process-sharded results
stay bit-identical to single-shot for every shard *and* worker count.
Kernels without a block protocol, and tasks that cannot cross the
process boundary (opaque predicate callables, unpicklable inner
backends), silently fall back to the thread path.

Per-shard wall-clock timings are recorded on ``last_shard_seconds`` for
the benchmark reports.

**The shard bit-identity contract** (pinned by
``tests/backend/test_parallel.py`` and
``tests/properties/test_shard_merge.py``): on the block path, the
block layout is a function of *the data and the kernel's block size
only* — never of the shard count or thread schedule — and block
partials are merged left-to-right in canonical block order.  Because
single-shot execution folds the same blocks in the same order, sharded
results are **bit-identical** (``==``, not approximately equal) to
single-shot results for every ``K``.  Backends without the block
protocol get the sub-database path instead, which guarantees the ring
merge law but not bit identity (float folds reassociate across shard
boundaries).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.backend.base import (
    ExecutionBackend,
    Kernel,
    merge_group_results,
    merge_results,
    merge_vectors,
    require_groupby,
    require_plain,
)
from repro.backend.numpy_backend import (
    check_delta_state,
    check_group_coding,
    check_store_current,
    delta_ranges,
    fold_group_state,
    fold_vector_state,
    remap_group_partials,
    serve_group_state,
    serve_vector_state,
)
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan
from repro.db.database import Database
from repro.db.relation import Relation

#: Default shard count: one per core (the hardware-saturation target).
DEFAULT_SHARDS = max(1, os.cpu_count() or 1)


def shard_database(db: Database, root_relation: str, shards: int) -> list[Database]:
    """Split ``root_relation`` into ≤ ``shards`` contiguous sub-relations.

    Every other relation is shared by reference (child views are built
    per shard from the full dimension tables, which is exactly what the
    merge law requires).  Empty shards are dropped, so fewer databases
    than requested may be returned for tiny relations.
    """
    rel = db.relation(root_relation)
    out: list[Database] = []
    for chunk in _chunk(list(rel.data.items()), shards):
        relations = dict(db.relations)
        relations[root_relation] = Relation(rel.schema, dict(chunk))
        out.append(Database(relations))
    return out


def _chunk(seq: list, k: int) -> list[list]:
    """Split ``seq`` into ≤ k contiguous non-empty chunks."""
    if not seq:
        return []
    k = max(1, min(k, len(seq)))
    base, extra = divmod(len(seq), k)
    chunks, start = [], 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append(seq[start:start + size])
            start += size
    return chunks


def default_shard_mode() -> str:
    """Shard execution mode from ``IFAQ_EXECUTOR`` (thread by default)."""
    from repro.backend.process_pool import executor_mode_from_env

    return executor_mode_from_env()


@dataclass
class ShardedBackend(ExecutionBackend):
    """Run any inner backend over K shards of the root relation."""

    inner: str | ExecutionBackend = "python"
    shards: int = DEFAULT_SHARDS
    #: "thread" or "process"; default from ``IFAQ_EXECUTOR``
    mode: str = field(default_factory=default_shard_mode)
    #: process pool override; defaults to the shared process-wide pool
    executor: object | None = field(default=None, repr=False)
    context: dict = field(default_factory=dict)

    #: per-shard WorkerError resubmissions tolerated on the process
    #: block path before the failure propagates
    max_retries: int = 2

    #: wall-clock seconds per shard of the most recent execution
    last_shard_seconds: list[float] = field(default_factory=list, repr=False)
    #: shard resubmissions performed by the most recent scatter
    last_retries: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.mode not in ("thread", "process"):
            raise ValueError(
                f"mode must be 'thread' or 'process', got {self.mode!r}"
            )
        if isinstance(self.inner, str):
            from repro.backend.registry import get_backend

            self.inner = get_backend(self.inner, **self.context)

    def _pool(self):
        if self.executor is not None:
            return self.executor
        from repro.backend.process_pool import shared_process_executor

        return shared_process_executor()

    # -- ExecutionBackend ------------------------------------------------

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"sharded[{self.inner.name}x{self.shards}:{self.mode}]"

    @property
    def kernel_key(self) -> str:
        # Kernels are the inner backend's kernels: cache entries are
        # shared between sharded and single-shot execution.
        return self.inner.kernel_key

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        return self.inner.compile_plan(plan, layout)

    def compile_multi(self, mplan, layout: LayoutOptions, members) -> Kernel:
        # Delegate so the bundle carries the inner backend's fusion
        # metadata (kernel keys are shared, so the same cached multi
        # kernel serves sharded and single-shot execution).
        return self.inner.compile_multi(mplan, layout, members)

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        if self._supports_blocks(kernel):
            if self.mode == "process":
                from repro.backend.process_pool import TaskNotPicklable

                try:
                    return self._execute_blocks_process(kernel, db)
                except TaskNotPicklable:
                    pass  # unpicklable inner backend: threads still work
            return self._execute_blocks(kernel, db)
        return self._execute_subdatabases(kernel, db)

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        """Group-by over K shards of the plan's root relation.

        Inner backends exposing the group-by block protocol
        (``prepare_groupby`` / ``run_groupby_block`` /
        ``merge_groupby_blocks``, i.e. the numpy backend) prepare the
        shared columnar state **once** and fold disjoint root-row
        blocks from worker threads, merging in canonical block order —
        bit-identical to single-shot, with no per-shard databases or
        layouts.  Other backends fall back to the sub-database path:
        each shard contributes the groups its root rows produce, and
        shard partials merge per group value with ``v_add`` in shard
        order.
        """
        if self._supports_groupby_blocks(kernel):
            if self.mode == "process" and self._supports_groupby_merge():
                from repro.backend.process_pool import TaskNotPicklable

                try:
                    return self._groupby_blocks_process(kernel, db, predicates)
                except TaskNotPicklable:
                    pass  # opaque predicate callables: threads still work
            return self._groupby_blocks(kernel, db, predicates)
        shard_dbs = shard_database(db, kernel.plan.root.relation, self.shards)
        if not shard_dbs:
            self.last_shard_seconds = []
            return {}

        def run_shard(shard_db):
            started = time.perf_counter()
            result = self.inner.run_groupby(kernel, shard_db, predicates)
            return result, time.perf_counter() - started

        if len(shard_dbs) == 1:
            shard_outputs = [run_shard(shard_dbs[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(shard_dbs)) as pool:
                shard_outputs = list(pool.map(run_shard, shard_dbs))

        self.last_shard_seconds = [seconds for _, seconds in shard_outputs]
        return merge_group_results([result for result, _ in shard_outputs])

    # -- block path (bit-identical to single-shot) -----------------------

    def _supports_blocks(self, kernel: Kernel) -> bool:
        return bool(kernel.meta.get("supports_blocks")) and all(
            hasattr(self.inner, m) for m in ("prepare", "block_ranges", "run_block")
        )

    def _supports_groupby_blocks(self, kernel: Kernel) -> bool:
        return bool(kernel.meta.get("supports_groupby_blocks")) and all(
            hasattr(self.inner, m)
            for m in ("prepare_groupby", "block_ranges", "run_groupby_block",
                      "merge_groupby_blocks")
        )

    def _groupby_blocks(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        inner = self.inner
        state, n_rows = inner.prepare_groupby(kernel, db, predicates)
        if n_rows == 0:
            self.last_shard_seconds = []
            return inner.merge_groupby_blocks(kernel, state, [])
        ranges = list(enumerate(inner.block_ranges(n_rows)))
        assignments = _chunk(ranges, self.shards)

        def run_shard(blocks):
            started = time.perf_counter()
            partials = [
                (idx, inner.run_groupby_block(kernel, state, lo, hi))
                for idx, (lo, hi) in blocks
            ]
            return partials, time.perf_counter() - started

        if len(assignments) == 1:
            shard_outputs = [run_shard(assignments[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(assignments)) as pool:
                shard_outputs = list(pool.map(run_shard, assignments))

        self.last_shard_seconds = [seconds for _, seconds in shard_outputs]
        by_index = {idx: part for partials, _ in shard_outputs for idx, part in partials}
        ordered = [by_index[idx] for idx, _ in ranges]
        return inner.merge_groupby_blocks(kernel, state, ordered)

    def _execute_blocks(self, kernel: Kernel, db: Database) -> dict[str, float]:
        inner = self.inner
        data, views, n_rows = inner.prepare(kernel, db)
        if n_rows == 0:
            self.last_shard_seconds = []
            return kernel.result_dict([0.0] * kernel.plan.num_aggregates)
        ranges = list(enumerate(inner.block_ranges(n_rows)))
        assignments = _chunk(ranges, self.shards)

        def run_shard(blocks):
            started = time.perf_counter()
            partials = [
                (idx, inner.run_block(kernel, data, views, lo, hi))
                for idx, (lo, hi) in blocks
            ]
            return partials, time.perf_counter() - started

        if len(assignments) == 1:
            shard_outputs = [run_shard(assignments[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(assignments)) as pool:
                shard_outputs = list(pool.map(run_shard, assignments))

        self.last_shard_seconds = [seconds for _, seconds in shard_outputs]
        by_index = {idx: part for partials, _ in shard_outputs for idx, part in partials}
        ordered = [by_index[idx] for idx, _ in ranges]
        return kernel.result_dict(merge_vectors(ordered))

    # -- process path (same blocks, worker processes) ---------------------

    def _supports_groupby_merge(self) -> bool:
        # The parent merges remote group-by partials itself, so the
        # inner backend must expose the key table and the key-based
        # merge (the numpy backend does).
        return all(
            hasattr(self.inner, m)
            for m in ("groupby_group_keys", "merge_groupby_partials")
        )

    def _root_rows(self, kernel: Kernel, db: Database) -> int:
        # Matches what the inner backend's prepare() derives: both the
        # generated-Python and numpy preparations keep one entry per
        # root-relation row.
        return len(db.relation(kernel.plan.root.relation).data)

    def _scatter_blocks(self, kernel: Kernel, db: Database, n_rows: int, **kwargs):
        """Fan shard block-lists out to worker processes; gather partials
        back in canonical block order (the bit-identity contract)."""
        ranges = list(enumerate(self.inner.block_ranges(n_rows)))
        return self._scatter_ranges(kernel, db, ranges, **kwargs)

    def _scatter_ranges(self, kernel: Kernel, db: Database, ranges, **kwargs):
        from repro.backend.process_pool import WorkerError

        assignments = _chunk(ranges, self.shards)
        pool = self._pool()
        futures = [
            pool.run_blocks(
                self.inner, db, kernel.plan, kernel.layout, blocks, **kwargs
            )
            for blocks in assignments
        ]
        self.last_retries = 0
        outputs = []
        for blocks, future in zip(assignments, futures):
            attempts = 0
            while True:
                try:
                    outputs.append(future.result())
                    break
                except WorkerError:
                    # A worker died mid-shard; the pool respawned it in
                    # place.  Resubmitting the same canonical block list
                    # is safe — blocks are a pure function of data and
                    # block size, and the merge below stays in canonical
                    # block order, so the recovered run is bit-identical.
                    attempts += 1
                    if attempts > self.max_retries:
                        raise
                    self.last_retries += 1
                    future = pool.run_blocks(
                        self.inner, db, kernel.plan, kernel.layout, blocks, **kwargs
                    )
        self.last_shard_seconds = [seconds for _, seconds in outputs]
        by_index = {idx: part for partials, _ in outputs for idx, part in partials}
        return [by_index[idx] for idx, _ in ranges]

    def _execute_blocks_process(self, kernel: Kernel, db: Database) -> dict[str, float]:
        n_rows = self._root_rows(kernel, db)
        if n_rows == 0:
            self.last_shard_seconds = []
            return kernel.result_dict([0.0] * kernel.plan.num_aggregates)
        ordered = self._scatter_blocks(kernel, db, n_rows)
        return kernel.result_dict(merge_vectors(ordered))

    def _groupby_blocks_process(
        self, kernel: Kernel, db: Database, predicates=None
    ) -> dict:
        n_rows = self._root_rows(kernel, db)
        if n_rows == 0:
            self.last_shard_seconds = []
            return {}
        from repro.serving.requests import predicate_key

        ordered = self._scatter_blocks(
            kernel,
            db,
            n_rows,
            groupby=True,
            predicates=predicates,
            pred_key=predicate_key(predicates),
        )
        # Codings are deterministic, so the parent-side key table indexes
        # the workers' partials exactly.
        group_keys = self.inner.groupby_group_keys(kernel, db)
        return self.inner.merge_groupby_partials(group_keys, ordered)

    # -- delta maintenance (streaming ingest) -----------------------------

    def supports_delta(self) -> bool:
        """Delta runs need the inner backend's delta block protocol."""
        probe = getattr(self.inner, "supports_delta", None)
        return callable(probe) and bool(probe())

    def _run_indexed(self, indexed, fn):
        """Fold ``(idx, (lo, hi))`` block lists across shard threads and
        return the partials in canonical block order."""
        assignments = _chunk(indexed, self.shards)
        if not assignments:
            self.last_shard_seconds = []
            return []

        def run_shard(blocks):
            started = time.perf_counter()
            partials = [(idx, fn(lo, hi)) for idx, (lo, hi) in blocks]
            return partials, time.perf_counter() - started

        if len(assignments) == 1:
            shard_outputs = [run_shard(assignments[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(assignments)) as pool:
                shard_outputs = list(pool.map(run_shard, assignments))
        self.last_shard_seconds = [seconds for _, seconds in shard_outputs]
        by_index = {idx: part for partials, _ in shard_outputs for idx, part in partials}
        return [by_index[idx] for idx, _ in indexed]

    def _finish_vector(self, kernel, prev, ordered, ranges, n_rows):
        state = fold_vector_state(
            prev, ordered, ranges, n_rows, self.inner.block_size, kernel.fingerprint
        )
        result = kernel.result_dict(
            serve_vector_state(state, kernel.plan.num_aggregates)
        )
        return result, state

    def _finish_group(self, kernel, prev, ordered, ranges, n_rows, group_keys):
        if prev is not None:
            check_group_coding(prev, group_keys)
        state = fold_group_state(
            prev,
            ordered,
            ranges,
            n_rows,
            group_keys,
            kernel.plan.num_aggregates,
            self.inner.block_size,
            kernel.fingerprint,
        )
        return serve_group_state(state, group_keys), state

    def _remap_remote(self, kernel, db, ordered):
        """Re-index worker partials onto the parent's (possibly
        delta-extended) group coding before folding into state."""
        layout = self.inner.prepared_layout(kernel, db)
        canonical = self.inner.groupby_group_keys(kernel, db)
        return remap_group_partials(ordered, canonical, layout.group_keys), layout

    def run_maintained(self, kernel: Kernel, db: Database):
        """Full sharded run that also returns the maintained state."""
        require_plain(kernel)
        inner = self.inner
        if self.mode == "process" and self._supports_blocks(kernel):
            from repro.backend.process_pool import TaskNotPicklable

            try:
                n_rows = self._root_rows(kernel, db)
                ordered = self._scatter_blocks(kernel, db, n_rows)
                return self._finish_vector(
                    kernel, None, ordered, inner.block_ranges(n_rows), n_rows
                )
            except TaskNotPicklable:
                pass
        data, views, n_rows = inner.prepare(kernel, db)
        indexed = list(enumerate(inner.block_ranges(n_rows)))
        ordered = self._run_indexed(
            indexed, lambda lo, hi: inner.run_block(kernel, data, views, lo, hi)
        )
        return self._finish_vector(
            kernel, None, ordered, [r for _, r in indexed], n_rows
        )

    def run_delta(self, kernel: Kernel, db: Database, state):
        """Fold the appended root rows into a maintained plain result,
        sharding the delta blocks like any other run."""
        require_plain(kernel)
        check_delta_state(kernel, state)
        inner = self.inner
        check_store_current(inner.prepared_layout(kernel, db), db)
        new_n = self._root_rows(kernel, db)
        if new_n < state.n_rows:
            raise ValueError("delta state is ahead of the database (rows shrank)")
        ranges = delta_ranges(state.n_rows, new_n, inner.block_size)
        indexed = list(enumerate(ranges))
        if self.mode == "process":
            from repro.backend.process_pool import TaskNotPicklable

            try:
                ordered = self._scatter_ranges(kernel, db, indexed)
                return self._finish_vector(kernel, state, ordered, ranges, new_n)
            except TaskNotPicklable:
                pass
        dstate, _ = inner.prepare_delta(kernel, db, state.n_rows)
        ordered = self._run_indexed(
            indexed, lambda lo, hi: inner.run_delta_block(kernel, dstate, lo, hi)
        )
        return self._finish_vector(kernel, state, ordered, ranges, new_n)

    def run_groupby_maintained(self, kernel: Kernel, db: Database, predicates=None):
        """Full sharded group-by run returning the maintained state."""
        require_groupby(kernel)
        inner = self.inner
        if self.mode == "process" and self._supports_groupby_merge():
            from repro.backend.process_pool import TaskNotPicklable
            from repro.serving.requests import predicate_key

            try:
                n_rows = self._root_rows(kernel, db)
                ordered = self._scatter_blocks(
                    kernel,
                    db,
                    n_rows,
                    groupby=True,
                    predicates=predicates,
                    pred_key=predicate_key(predicates),
                )
                ordered, layout = self._remap_remote(kernel, db, ordered)
                return self._finish_group(
                    kernel,
                    None,
                    ordered,
                    inner.block_ranges(n_rows),
                    n_rows,
                    layout.group_keys,
                )
            except TaskNotPicklable:
                pass
        gb_state, n_rows = inner.prepare_groupby(kernel, db, predicates)
        layout = gb_state[0]
        indexed = list(enumerate(inner.block_ranges(n_rows)))
        ordered = self._run_indexed(
            indexed, lambda lo, hi: inner.run_groupby_block(kernel, gb_state, lo, hi)
        )
        return self._finish_group(
            kernel, None, ordered, [r for _, r in indexed], n_rows, layout.group_keys
        )

    def run_groupby_delta(self, kernel: Kernel, db: Database, state, predicates=None):
        """Fold appended root rows into a maintained group-by result."""
        require_groupby(kernel)
        check_delta_state(kernel, state)
        inner = self.inner
        check_store_current(inner.prepared_layout(kernel, db), db)
        new_n = self._root_rows(kernel, db)
        if new_n < state.n_rows:
            raise ValueError("delta state is ahead of the database (rows shrank)")
        ranges = delta_ranges(state.n_rows, new_n, inner.block_size)
        indexed = list(enumerate(ranges))
        if self.mode == "process" and self._supports_groupby_merge():
            from repro.backend.process_pool import TaskNotPicklable
            from repro.serving.requests import predicate_key

            try:
                ordered = self._scatter_ranges(
                    kernel,
                    db,
                    indexed,
                    groupby=True,
                    predicates=predicates,
                    pred_key=predicate_key(predicates),
                )
                ordered, layout = self._remap_remote(kernel, db, ordered)
                return self._finish_group(
                    kernel, state, ordered, ranges, new_n, layout.group_keys
                )
            except TaskNotPicklable:
                pass
        dstate, _ = inner.prepare_groupby_delta(kernel, db, state.n_rows, predicates)
        layout = dstate[0]
        ordered = self._run_indexed(
            indexed,
            lambda lo, hi: inner.run_groupby_delta_block(kernel, dstate, lo, hi),
        )
        return self._finish_group(
            kernel, state, ordered, ranges, new_n, layout.group_keys
        )

    # -- sub-database path (engine / C++) --------------------------------

    def _execute_subdatabases(self, kernel: Kernel, db: Database) -> dict[str, float]:
        shard_dbs = shard_database(db, kernel.plan.root.relation, self.shards)
        if not shard_dbs:
            self.last_shard_seconds = []
            return kernel.result_dict([0.0] * kernel.plan.num_aggregates)

        def run_shard(shard_db):
            started = time.perf_counter()
            result = self.inner.execute(kernel, shard_db)
            return result, time.perf_counter() - started

        if len(shard_dbs) == 1:
            shard_outputs = [run_shard(shard_dbs[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(shard_dbs)) as pool:
                shard_outputs = list(pool.map(run_shard, shard_dbs))

        self.last_shard_seconds = [seconds for _, seconds in shard_outputs]
        return merge_results([result for result, _ in shard_outputs])
