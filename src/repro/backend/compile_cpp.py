"""Compile and run generated C++ kernels with g++.

Binaries are cached per source hash under a work directory, so repeated
benchmark runs pay the compiler once.  Compile times are recorded —
the paper reports them separately ("Compilation Overhead").

Both toolchain subprocesses (the g++ compile and each kernel binary
run) are bounded by ``IFAQ_CPP_TIMEOUT`` seconds so a wedged compiler
or a runaway binary fails loudly instead of hanging the caller forever.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.backend.codegen_cpp import CppKernel

#: Default seconds before a toolchain subprocess is killed.
DEFAULT_CPP_TIMEOUT = 300.0


def toolchain_timeout() -> float | None:
    """Subprocess timeout from ``IFAQ_CPP_TIMEOUT`` (seconds;
    non-positive disables the bound entirely)."""
    raw = os.environ.get("IFAQ_CPP_TIMEOUT")
    if raw is None or raw.strip() == "":
        return DEFAULT_CPP_TIMEOUT
    value = float(raw)
    return value if value > 0 else None


class CppToolchainError(RuntimeError):
    """g++ is unavailable, compilation failed, or a toolchain
    subprocess exceeded ``IFAQ_CPP_TIMEOUT``."""


def gxx_available() -> bool:
    return shutil.which("g++") is not None


_CACHE_DIR = Path(tempfile.gettempdir()) / "ifaq-cpp-cache"


@dataclass
class CompiledKernel:
    binary_path: Path
    compile_seconds: float
    source: str
    #: True when the binary came from the content-hash cache (no g++ run)
    cached: bool = False

    def run_lines(self, data_path: str | Path) -> tuple[float, list[str]]:
        """Execute the kernel; returns (elapsed seconds, raw output lines).

        The first output line is always the elapsed nanoseconds; the
        remaining lines are kernel-shaped (one value per line for
        scalar batches, ``key v0 … vN`` per line for group-by kernels)
        and are parsed by the caller.
        """
        timeout = toolchain_timeout()
        try:
            proc = subprocess.run(
                [str(self.binary_path), str(data_path)],
                capture_output=True,
                text=True,
                check=False,
                timeout=timeout,
            )
        except subprocess.TimeoutExpired as exc:
            raise CppToolchainError(
                f"kernel run exceeded {timeout}s and was killed "
                f"(raise or disable via IFAQ_CPP_TIMEOUT): {self.binary_path}"
            ) from exc
        if proc.returncode != 0:
            raise CppToolchainError(
                f"kernel run failed (exit {proc.returncode}): {proc.stderr}"
            )
        lines = proc.stdout.strip().splitlines()
        return int(lines[0]) / 1e9, lines[1:]

    def run(self, data_path: str | Path) -> tuple[float, list[float]]:
        """Execute the kernel; returns (elapsed seconds, aggregate values)."""
        elapsed, lines = self.run_lines(data_path)
        return elapsed, [float(x) for x in lines]


def compile_kernel(
    kernel: CppKernel,
    work_dir: str | Path | None = None,
    extra_flags: tuple[str, ...] = (),
) -> CompiledKernel:
    """Compile ``kernel`` with ``g++ -O3`` (cached by source hash)."""
    if not gxx_available():
        raise CppToolchainError("g++ not found on PATH")
    cache = Path(work_dir) if work_dir else _CACHE_DIR
    cache.mkdir(parents=True, exist_ok=True)

    digest = hashlib.sha256(
        (kernel.source + "|".join(extra_flags)).encode()
    ).hexdigest()[:16]
    src_path = cache / f"kernel_{digest}.cpp"
    bin_path = cache / f"kernel_{digest}"

    if bin_path.exists():
        return CompiledKernel(
            binary_path=bin_path, compile_seconds=0.0, source=kernel.source, cached=True
        )

    src_path.write_text(kernel.source)
    cmd = ["g++", "-O3", "-std=c++17", *extra_flags, str(src_path), "-o", str(bin_path)]
    timeout = toolchain_timeout()
    started = time.perf_counter()
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False, timeout=timeout
        )
    except subprocess.TimeoutExpired as exc:
        raise CppToolchainError(
            f"g++ exceeded {timeout}s compiling kernel_{digest}.cpp and was "
            f"killed (raise or disable via IFAQ_CPP_TIMEOUT)"
        ) from exc
    elapsed = time.perf_counter() - started
    if proc.returncode != 0:
        raise CppToolchainError(f"g++ failed:\n{proc.stderr}\n--- source ---\n{kernel.source}")
    return CompiledKernel(binary_path=bin_path, compile_seconds=elapsed, source=kernel.source)


def clear_binary_cache(work_dir: str | Path | None = None) -> int:
    """Remove cached kernel sources/binaries; returns the count removed."""
    cache = Path(work_dir) if work_dir else _CACHE_DIR
    removed = 0
    if cache.is_dir():
        for path in cache.glob("kernel_*"):
            path.unlink(missing_ok=True)
            removed += 1
    return removed
