"""Kernel caching keyed by plan fingerprints.

The kernel generated while compiling a program is the one executed —
and recompiling the same program against the same layout (per-GD-
iteration loops, benchmark repetitions, repeated ``compile()`` calls)
reuses it instead of regenerating from scratch.  Keys come from
:meth:`repro.backend.plan.BatchPlan.fingerprint`, which covers the plan
shape, column orders, layout flags and the backend's kernel key.

A process-wide default cache backs the compiler driver; callers that
need isolation (tests, benchmarks measuring cold compiles) pass their
own :class:`KernelCache`.

Generated *sources* are additionally spilled to disk (next to the C++
content-hash binary cache) keyed by the same fingerprints, so warm
starts in a fresh process skip code generation entirely — see
:func:`load_kernel_source` / :func:`store_kernel_source`.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.backend.base import ExecutionBackend, Kernel
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, MultiBatchPlan


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: lookups that waited on another thread's in-progress compile of
    #: the same fingerprint instead of compiling a duplicate kernel
    coalesced_compiles: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "coalesced_compiles": self.coalesced_compiles,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class KernelCache:
    """An LRU cache of compiled kernels.

    Thread-safe: the sharded executor and the serving layer may resolve
    kernels from worker threads.  ``capacity`` bounds memory held by
    generated modules and C++ binary handles.

    Compilation is *single-flight*: when several threads miss on the
    same fingerprint concurrently, exactly one compiles while the
    others wait on its result — a fan-in of identical serving requests
    never compiles (or runs g++ on) the same kernel twice.
    """

    capacity: int = 64
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: fingerprints currently being compiled → event set on completion
    _pending: dict = field(default_factory=dict, repr=False)

    def get_or_compile(
        self, backend: ExecutionBackend, plan: BatchPlan | MultiBatchPlan, layout: LayoutOptions
    ) -> Kernel:
        """Return the cached kernel for (plan, layout, backend) or build it.

        A :class:`MultiBatchPlan` compiles by resolving each member plan
        through this cache first (members already compiled as single
        plans are reused, and vice versa) and bundling the member
        kernels via the backend's ``compile_multi``.
        """
        key = plan.fingerprint(layout, backend.kernel_key)
        while True:
            with self._lock:
                kernel = self._entries.get(key)
                if kernel is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return kernel
                in_progress = self._pending.get(key)
                if in_progress is None:
                    self._pending[key] = threading.Event()
                    self.stats.misses += 1
                    break
                self.stats.coalesced_compiles += 1
            # Another thread is compiling this fingerprint; wait and
            # re-check.  If its compile failed, the loop retries as the
            # new builder.
            in_progress.wait()
        # Compile outside the lock: C++ kernels take seconds and must
        # not serialize unrelated cache traffic.  Concurrent misses on
        # *this* key wait on the pending event instead of recompiling.
        try:
            if isinstance(plan, MultiBatchPlan):
                members = [self.get_or_compile(backend, p, layout) for p in plan.plans]
                kernel = backend.compile_multi(plan, layout, members)
            else:
                kernel = backend.compile_plan(plan, layout)
            with self._lock:
                self._entries[key] = kernel
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        finally:
            with self._lock:
                event = self._pending.pop(key, None)
            if event is not None:
                event.set()
        return kernel

    def lookup(self, fingerprint: str) -> Kernel | None:
        with self._lock:
            return self._entries.get(fingerprint)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_CACHE = KernelCache()


def default_kernel_cache() -> KernelCache:
    """The process-wide cache used when a compiler isn't given one."""
    return _DEFAULT_CACHE


# -- cross-process source persistence --------------------------------------

#: Bump when a code generator's output changes for the same plan, so
#: stale spilled sources from older versions are never reused.
CODEGEN_TAG = "v2"


def kernel_source_dir() -> Path:
    """Where generated kernel sources are spilled across processes.

    Overridable with ``IFAQ_KERNEL_CACHE_DIR`` (tests point it at a tmp
    directory; deployments can point it at a persistent volume).  The
    default is per-user and created mode 0700: spilled sources are
    ``exec``'d on load, so the directory must not be writable by other
    users.
    """
    override = os.environ.get("IFAQ_KERNEL_CACHE_DIR")
    if override:
        return Path(override)
    uid = getattr(os, "getuid", lambda: "")()
    return Path(tempfile.gettempdir()) / f"ifaq-kernel-cache-{uid}"


def _source_path(fingerprint: str) -> Path:
    return kernel_source_dir() / f"kernel_{CODEGEN_TAG}_{fingerprint}.py"


def _trusted_source_dir() -> Path | None:
    """The spill directory, or ``None`` when it cannot be trusted.

    Spilled sources are ``exec``'d on load, so a pre-existing default
    directory must be owned by us and not writable by group/other (an
    attacker pre-creating the predictable /tmp path must not get code
    execution).  An explicit ``IFAQ_KERNEL_CACHE_DIR`` is the
    operator's responsibility and is trusted as-is.
    """
    directory = kernel_source_dir()
    if os.environ.get("IFAQ_KERNEL_CACHE_DIR"):
        return directory
    try:
        directory.mkdir(parents=True, exist_ok=True, mode=0o700)
        st = directory.stat()
    except OSError:
        return None
    getuid = getattr(os, "getuid", None)
    if getuid is not None and (st.st_uid != getuid() or st.st_mode & 0o022):
        return None
    return directory


def load_kernel_source(fingerprint: str) -> str | None:
    """The spilled source for ``fingerprint``, or ``None`` on a cold start."""
    if _trusted_source_dir() is None:
        return None
    try:
        return _source_path(fingerprint).read_text()
    except OSError:
        return None


def store_kernel_source(fingerprint: str, source: str) -> Path:
    """Spill a generated source; atomic so concurrent processes are safe."""
    directory = _trusted_source_dir()
    if directory is None:
        raise OSError(f"kernel source directory {kernel_source_dir()} is untrusted")
    directory.mkdir(parents=True, exist_ok=True, mode=0o700)
    path = _source_path(fingerprint)
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_text(source)
    os.replace(tmp, path)
    return path


def clear_kernel_sources() -> int:
    """Remove every spilled kernel source; returns the count removed."""
    removed = 0
    directory = kernel_source_dir()
    if directory.is_dir():
        for path in directory.glob("kernel_*.py"):
            path.unlink(missing_ok=True)
            removed += 1
    return removed
