"""Kernel caching keyed by plan fingerprints.

The kernel generated while compiling a program is the one executed —
and recompiling the same program against the same layout (per-GD-
iteration loops, benchmark repetitions, repeated ``compile()`` calls)
reuses it instead of regenerating from scratch.  Keys come from
:meth:`repro.backend.plan.BatchPlan.fingerprint`, which covers the plan
shape, column orders, layout flags and the backend's kernel key.

A process-wide default cache backs the compiler driver; callers that
need isolation (tests, benchmarks measuring cold compiles) pass their
own :class:`KernelCache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.backend.base import ExecutionBackend, Kernel
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class KernelCache:
    """An LRU cache of compiled kernels.

    Thread-safe: the sharded executor may resolve kernels from worker
    threads.  ``capacity`` bounds memory held by generated modules and
    C++ binary handles.
    """

    capacity: int = 64
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def get_or_compile(
        self, backend: ExecutionBackend, plan: BatchPlan, layout: LayoutOptions
    ) -> Kernel:
        """Return the cached kernel for (plan, layout, backend) or build it."""
        key = plan.fingerprint(layout, backend.kernel_key)
        with self._lock:
            kernel = self._entries.get(key)
            if kernel is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return kernel
            self.stats.misses += 1
        # Compile outside the lock: C++ kernels take seconds and must
        # not serialize unrelated cache traffic.
        kernel = backend.compile_plan(plan, layout)
        with self._lock:
            self._entries[key] = kernel
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return kernel

    def lookup(self, fingerprint: str) -> Kernel | None:
        with self._lock:
            return self._entries.get(fingerprint)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_CACHE = KernelCache()


def default_kernel_cache() -> KernelCache:
    """The process-wide cache used when a compiler isn't given one."""
    return _DEFAULT_CACHE
