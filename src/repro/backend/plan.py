"""Physical plans for aggregate-batch kernels.

A :class:`BatchPlan` fixes everything the code generators need to emit
a specialized kernel: the view-tree shape, the column order of every
relation, which columns each aggregate multiplies at each node, and the
join-key column positions.  The same plan drives the Python and the C++
backend, and the data loaders that prepare relation arrays in the
plan's column order.

**The fingerprint contract** (pinned by ``tests/backend/test_cache.py``
and relied on by the kernel cache, the on-disk source spill and the
serving layer's request coalescing):

1. :meth:`BatchPlan.fingerprint` covers *everything the generated code
   depends on* — tree shape, per-relation column orders, join keys,
   per-spec owned columns, aggregate names, the group attribute, the
   layout flags and the backend's kernel key.  Equal fingerprints ⇒
   byte-identical kernels, so a cached kernel may be substituted for a
   fresh compile anywhere, including across processes.
2. δ predicates are **not** part of the fingerprint: they are
   execution-time arguments, which is what lets one cached group-by
   kernel serve every tree node / filtered serving request.
3. :meth:`BatchPlan.scan_fingerprint` drops the group attribute and
   column orders only: equal scan fingerprints ⇒ the same tree walk
   multiplying the same columns, so a fused execution may compute the
   per-row aggregate values once per scan group and fold them under
   each member's own group coding (the numpy backend's
   ``run_groupby_many`` sharing).
4. Any change to a code generator's output for the same plan must bump
   ``repro.backend.cache.CODEGEN_TAG`` — fingerprints deliberately do
   not hash the generator version.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields

from repro.aggregates.batch import AggregateBatch
from repro.aggregates.engine import assign_attribute_owners, _owned_attrs
from repro.aggregates.join_tree import JoinTreeNode
from repro.db.database import Database


@dataclass
class NodePlan:
    """Per-relation physical information."""

    relation: str
    #: join attributes with the parent (empty at root)
    parent_key: tuple[str, ...]
    #: one entry per child: its join attributes, in child order
    child_keys: list[tuple[str, ...]] = field(default_factory=list)
    children: list["NodePlan"] = field(default_factory=list)
    #: column order used for this relation's prepared array
    columns: tuple[str, ...] = ()
    #: per batch spec: the columns this node multiplies (with repeats)
    owned_per_spec: list[tuple[str, ...]] = field(default_factory=list)

    def column_index(self, attr: str) -> int:
        return self.columns.index(attr)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


@dataclass
class BatchPlan:
    """A complete physical plan for one aggregate batch.

    When ``group_attr`` is set the plan is a *group-by* plan: the root
    is the relation owning the grouping attribute (the tree is rerooted
    during planning), the grouping column is part of the root's column
    order, and kernels compiled from the plan produce one aggregate
    vector per group value instead of a single vector.  Group-by plans
    are first-class cacheable kernels: the tree learner's per-node
    batches share one fingerprint per feature, so every node after the
    first is a :class:`~repro.backend.cache.KernelCache` hit.
    """

    root: NodePlan
    batch: AggregateBatch
    #: grouping attribute (``None`` for plain scalar batches)
    group_attr: str | None = None

    @property
    def num_aggregates(self) -> int:
        return len(self.batch.specs)

    @property
    def is_groupby(self) -> bool:
        return self.group_attr is not None

    def fingerprint(self, layout=None, backend: str = "") -> str:
        """A stable identity for kernel caching.

        Covers everything the code generators consume — the tree shape,
        per-relation column orders, join keys, the per-spec owned
        columns, the batch's aggregate names — plus the layout flags and
        the backend's kernel key.  Two plans with equal fingerprints
        generate byte-identical kernels, so the kernel compiled at
        ``IFAQCompiler.compile`` time can be reused for every later
        execution and across repeated compilations.
        """
        parts: list[str] = [backend]
        if self.group_attr is not None:
            parts.append(f"groupby={self.group_attr}")
        if layout is not None:
            parts.append(
                ",".join(f"{f.name}={getattr(layout, f.name)}" for f in fields(layout))
            )
        for node in self.root.walk():
            parts.append(
                "|".join(
                    (
                        node.relation,
                        ",".join(node.parent_key),
                        ";".join(",".join(k) for k in node.child_keys),
                        ",".join(node.columns),
                        ";".join(",".join(o) for o in node.owned_per_spec),
                    )
                )
            )
        for spec in self.batch:
            parts.append(spec.name + ":" + ",".join(spec.attrs))
        digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
        return digest[:16]

    def scan_fingerprint(self) -> str:
        """Identity of the plan's *scan* — everything except the
        grouping attribute and column orders.

        Two group-by plans with equal scan fingerprints walk the same
        tree, multiply the same per-spec columns, and join on the same
        keys; only the grouping column differs.  A fused multi-plan
        execution computes the per-row aggregate values once per scan
        fingerprint and folds them under each member's group coding —
        the static-memoization/code-motion sharing of the paper applied
        across plans of one batch.
        """
        parts: list[str] = []
        for node in self.root.walk():
            parts.append(
                "|".join(
                    (
                        node.relation,
                        ",".join(node.parent_key),
                        ";".join(",".join(k) for k in node.child_keys),
                        ";".join(",".join(o) for o in node.owned_per_spec),
                    )
                )
            )
        for spec in self.batch:
            parts.append(spec.name + ":" + ",".join(spec.attrs))
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]


@dataclass
class MultiBatchPlan:
    """A fused bundle of group-by plans executed as one kernel.

    The tree learner's per-node work is one group-by batch **per
    feature** over the same database with the same δ predicates; a
    :class:`MultiBatchPlan` submits all of them at once so backends can
    share work across members — the NumPy backend shares the columnar
    store, the predicate masks, and (for members with equal
    :meth:`BatchPlan.scan_fingerprint`) the entire bottom-up value
    pass, folding each member with its own group coding.

    Multi-plans are cacheable kernels like any single plan: the
    fingerprint combines the member fingerprints, so the same feature
    set compiles once and every later tree node is a cache hit.
    """

    plans: list[BatchPlan]

    def __post_init__(self) -> None:
        if not self.plans:
            raise ValueError("MultiBatchPlan needs at least one member plan")
        for p in self.plans:
            if not p.is_groupby:
                raise ValueError(
                    "MultiBatchPlan members must be group-by plans; "
                    f"plan for batch {p.batch!r} is plain"
                )

    @property
    def is_groupby(self) -> bool:
        return True

    @property
    def group_attr(self) -> tuple[str, ...]:
        """The member grouping attributes (plural, in member order)."""
        return tuple(p.group_attr for p in self.plans)

    @property
    def num_aggregates(self) -> int:
        return self.plans[0].num_aggregates

    def fingerprint(self, layout=None, backend: str = "") -> str:
        parts = ["multi"] + [p.fingerprint(layout, backend) for p in self.plans]
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]


def build_batch_plan(
    db: Database,
    tree: JoinTreeNode,
    batch: AggregateBatch,
    group_attr: str | None = None,
    key_stats: dict | None = None,
) -> BatchPlan:
    """Derive the physical plan from a join tree and a batch.

    Children are ordered by ascending distinct-key count in the parent,
    so the trie layout groups on the most-shared keys first — the outer
    trie levels amortize child-view lookups and per-aggregate partial
    products over the largest groups (the factorization the
    dictionary-to-trie pass exists for).

    With ``group_attr`` the tree is rerooted at the attribute's owning
    relation (the LMFAO multi-root trick) and the grouping column joins
    the root's column order, producing a group-by plan.

    ``key_stats`` is an optional memo for the per-child distinct-key
    counts, keyed by ``(relation, join_attrs)``.  The counts scan whole
    relations; callers planning many plans over the same database (the
    tree learner plans one group-by per feature) pass a shared dict so
    each (relation, key) pair is counted once instead of once per plan.
    """
    if group_attr is not None:
        from repro.aggregates.join_tree import reroot

        owner = assign_attribute_owners(tree, db, [group_attr])[group_attr]
        if tree.relation != owner:
            tree = reroot(tree, owner, db.schema())
    owners = assign_attribute_owners(tree, db, batch.all_attributes())

    def distinct_keys(parent: JoinTreeNode, child: JoinTreeNode) -> int:
        memo_key = (parent.relation, child.join_attrs)
        if key_stats is not None and memo_key in key_stats:
            return key_stats[memo_key]
        rel = db.relation(parent.relation)
        count = len({
            tuple(rec[a] for a in child.join_attrs) for rec in rel.data
        })
        if key_stats is not None:
            key_stats[memo_key] = count
        return count

    def build(node: JoinTreeNode, is_root: bool = False) -> NodePlan:
        ordered = sorted(node.children, key=lambda c: distinct_keys(node, c))
        node = JoinTreeNode(node.relation, node.join_attrs, ordered)
        children = [build(c) for c in node.children]
        owned = [_owned_attrs(spec, owners, node.relation) for spec in batch]
        needed: dict[str, None] = {}
        for a in node.join_attrs:
            needed.setdefault(a, None)
        for c in node.children:
            for a in c.join_attrs:
                needed.setdefault(a, None)
        for attrs in owned:
            for a in attrs:
                needed.setdefault(a, None)
        if is_root and group_attr is not None:
            needed.setdefault(group_attr, None)
        return NodePlan(
            relation=node.relation,
            parent_key=node.join_attrs,
            child_keys=[c.join_attrs for c in node.children],
            children=children,
            columns=tuple(needed),
            owned_per_spec=owned,
        )

    return BatchPlan(root=build(tree, is_root=True), batch=batch, group_attr=group_attr)


def prepare_arrays(db: Database, plan: BatchPlan) -> dict[str, list[tuple]]:
    """Relations as flat row arrays in plan column order.

    Each row is ``(col0, ..., colk, multiplicity)``.  This is the
    loader for the *Dictionary to Array* layout; the paper does not
    count loading/indexing time, and neither do the benchmarks.
    """
    data: dict[str, list[tuple]] = {}
    for node in plan.root.walk():
        rel = db.relation(node.relation)
        rows = []
        for rec, mult in rel.data.items():
            rows.append(tuple(rec[a] for a in node.columns) + (mult,))
        data[node.relation] = rows
    return data


def prepare_dicts(db: Database, plan: BatchPlan) -> dict[str, dict]:
    """Relations in the canonical dictionary layout (record → mult).

    Records are plain string-keyed dicts so the generated "dictionary
    layout" code pays the hashing/boxing cost the paper's unoptimized
    representation pays.
    """
    data: dict[str, dict] = {}
    for node in plan.root.walk():
        rel = db.relation(node.relation)
        data[node.relation] = {
            tuple(sorted(dict(rec).items())): mult for rec, mult in rel.data.items()
        }
    return data


def prepare_tuple_dicts(db: Database, plan: BatchPlan) -> dict[str, dict]:
    """Relations as dictionaries keyed by positional tuples (static
    records, but still the dictionary collection layout)."""
    data: dict[str, dict] = {}
    for node in plan.root.walk():
        rel = db.relation(node.relation)
        data[node.relation] = {
            tuple(rec[a] for a in node.columns): mult
            for rec, mult in rel.data.items()
        }
    return data


def prepare_data(db: Database, plan: BatchPlan, options) -> dict:
    """Choose the loader matching the layout options."""
    if options.sorted_trie or getattr(options, "hash_trie", False):
        return prepare_sorted(db, plan)
    if options.dict_to_array:
        return prepare_arrays(db, plan)
    if options.static_records:
        return prepare_tuple_dicts(db, plan)
    return prepare_dicts(db, plan)


def prepare_sorted(db: Database, plan: BatchPlan) -> dict[str, list[tuple]]:
    """Array layout with every relation sorted by its join keys.

    The root sorts by the concatenation of its child keys (the trie
    grouping order); other relations sort by their parent key, which
    makes the views they produce naturally ordered for merge lookups.
    """
    data = prepare_arrays(db, plan)
    for node in plan.root.walk():
        if node.parent_key:
            idx = [node.column_index(a) for a in node.parent_key]
        else:
            idx = [
                node.column_index(a)
                for key in node.child_keys
                for a in key
            ]
        if idx:
            data[node.relation].sort(key=lambda row: tuple(row[i] for i in idx))
    return data
