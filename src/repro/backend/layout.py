"""Data-layout synthesis decisions (paper Section 4.4).

Each flag corresponds to one of the paper's layout optimizations; the
code generators consult them to decide what code (and what prepared
data structures) to emit.  The presets at the bottom are the exact
ladder of Figure 7b.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LayoutOptions:
    """Switches for the Section 4.4 optimizations.

    static_records
        Generate positionally-addressed structures (tuples / C structs)
        instead of string-keyed dictionaries for records.
    scalar_replacement
        Unroll per-aggregate payload records into local scalar
        variables inside hot loops; single-field payloads lose their
        record wrapper entirely (Scalar Replacement and
        Single-Field-Record Removal).
    dict_to_array
        Store multiplicity-1 relations as flat arrays rather than
        tuple→multiplicity dictionaries (Dictionary to Array).
    hash_trie
        Group the root relation into a trie on its join attributes and
        look child views up once per trie group through hash
        dictionaries (the Section 4.3 Dictionary-to-Trie layout with
        hash-table dictionaries).
    sorted_trie
        The same trie, sorted: child views become parallel sorted
        arrays accessed with merge cursors / binary search instead of
        hashing (Sorted Dictionary).
    """

    static_records: bool = False
    scalar_replacement: bool = False
    dict_to_array: bool = False
    hash_trie: bool = False
    sorted_trie: bool = False

    def with_(self, **kwargs) -> "LayoutOptions":
        return replace(self, **kwargs)


#: The Figure 7b ladder, least → most optimized.
LAYOUT_BASELINE = LayoutOptions()
LAYOUT_RECORDS = LayoutOptions(static_records=True)
LAYOUT_SCALARIZED = LayoutOptions(static_records=True, scalar_replacement=True)
LAYOUT_ARRAYS = LayoutOptions(
    static_records=True, scalar_replacement=True, dict_to_array=True
)
LAYOUT_HASH_TRIE = LayoutOptions(
    static_records=True, scalar_replacement=True, dict_to_array=True, hash_trie=True
)
LAYOUT_SORTED = LayoutOptions(
    static_records=True, scalar_replacement=True, dict_to_array=True, sorted_trie=True
)

FIGURE_7B_LADDER: tuple[tuple[str, LayoutOptions], ...] = (
    ("compiled baseline", LAYOUT_BASELINE),
    ("record removal", LAYOUT_SCALARIZED),
    ("dict to array", LAYOUT_ARRAYS),
    ("hash trie", LAYOUT_HASH_TRIE),
    ("sorted trie", LAYOUT_SORTED),
)
