"""Per-database shared columnar storage (plan-independent).

The :class:`ColumnStore` holds everything the vectorized NumPy backend
derives from a :class:`~repro.db.database.Database` that does **not**
depend on the batch plan being executed:

* per-relation row lists, multiplicity vectors, and float/raw columns;
* join-key codings — for a relation coded by a key-attribute tuple,
  the dense code of every row plus the code table size, representative
  rows, and uniqueness flag;
* parent→child code maps (for each row of a parent relation, the code
  of the child entry it joins, ``-1`` for dangling keys);
* per-column value codings (the group-by key tables);
* per-relation predicate masks for δ conditions.

This is the IFAQ static-memoization idea applied to the data layer:
the same database is scanned by many kernels — every feature's
group-by plan during tree fitting, every shard of a sharded execution,
every plan of a fused multi-plan batch — and all of them share one
columnar copy instead of rebuilding per (kernel, database) pairs.

**The store-sharing contract** (pinned by
``tests/backend/test_column_store.py`` and relied on by the sharded
executor, the fused multi-plan path and the serving layer):

1. *One store per live database* — :func:`column_store` returns the
   same instance for the same database object, process-wide, keyed by
   identity with a weak-reference guard (id reuse is detected; the
   store is evicted when the database is collected, and eagerly via
   :func:`evict_column_store`).
2. *Immutability* — relations must not be mutated in place while a
   store (or any prepared representation) exists for their database;
   registration with the serving layer states the same contract.
3. *Renumbering invariance* — the dense codes handed out by the
   codings carry no semantic order; every downstream fold
   (``bincount`` views, presence masks, parent gathers) must be
   invariant under code renumbering, so the vectorized (sorted-order)
   and loop (first-seen) codings are interchangeable.
4. *Lazy construction* — only the relations, codings and columns a
   plan actually touches are materialized; :meth:`ColumnStore.stats`
   reports the resulting byte footprint for eviction policies.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

from repro.db.database import Database


@dataclass(frozen=True)
class KeyCoding:
    """A relation's rows coded by one key-attribute tuple.

    The code numbering is an implementation detail: every downstream
    fold (``np.bincount`` views, presence masks, parent gathers) is
    invariant under renumbering, because rows of one code accumulate in
    row order and codes never interact.  The vectorized coding numbers
    keys in sorted order; the loop fallback in first-seen order.
    """

    #: per row: dense code of the row's key tuple
    codes: np.ndarray
    #: number of distinct key tuples (size of the code table)
    n_keys: int
    #: code → a representative row holding that key (last occurrence)
    key_row: np.ndarray
    #: True when every code maps to exactly one row (FK-style join)
    unique: bool
    #: key tuple → code (loop coding; consumed by parent-side code maps)
    table: dict | None = None
    #: sorted packed key values (vectorized coding; parent side uses
    #: ``searchsorted`` against these instead of the table)
    values: np.ndarray | None = None


class ColumnStore:
    """Shared per-relation ndarray columns and key codings for one database.

    All methods memoize: the first call pays the Python tuple-hashing
    loop, every later call — from any kernel, plan view, or fused batch
    member — returns the same arrays.  A lock guards the memo tables so
    sharded preparation from worker threads stays consistent.
    """

    def __init__(self, db: Database):
        # Weak: the registry maps db → store, so a strong edge back
        # would keep every database alive forever and make the
        # registry's weakref eviction dead code.  Columns are built
        # lazily from calls that hold the database anyway.
        self._db_ref = weakref.ref(db)
        self._lock = threading.RLock()
        #: predicate-free subtree evaluation results, keyed by the
        #: numpy backend's structural scan keys — rerooted plans share
        #: most subtrees verbatim, so their bottom-up passes meet here
        self.eval_cache: dict = {}
        self._records: dict[str, list] = {}
        self._mult: dict[str, np.ndarray] = {}
        self._float_cols: dict[tuple[str, str], np.ndarray] = {}
        self._raw_cols: dict[tuple[str, str], np.ndarray] = {}
        self._key_codings: dict[tuple[str, tuple[str, ...]], KeyCoding] = {}
        self._parent_codes: dict[tuple[str, str, tuple[str, ...]], np.ndarray] = {}
        self._column_codings: dict[tuple[str, str], tuple[list, np.ndarray]] = {}

    @property
    def db(self) -> Database:
        db = self._db_ref()
        if db is None:
            raise RuntimeError(
                "the database backing this ColumnStore was garbage-collected"
            )
        return db

    # -- per-relation arrays ----------------------------------------------

    def records(self, relation: str) -> list:
        with self._lock:
            recs = self._records.get(relation)
            if recs is None:
                recs = list(self.db.relation(relation).data)
                self._records[relation] = recs
            return recs

    def n_rows(self, relation: str) -> int:
        return len(self.records(relation))

    def mult(self, relation: str) -> np.ndarray:
        with self._lock:
            arr = self._mult.get(relation)
            if arr is None:
                arr = np.array(
                    list(self.db.relation(relation).data.values()), dtype=np.float64
                )
                self._mult[relation] = arr
            return arr

    def float_col(self, relation: str, attr: str) -> np.ndarray:
        with self._lock:
            col = self._float_cols.get((relation, attr))
            if col is None:
                col = np.array(
                    [rec[attr] for rec in self.records(relation)], dtype=np.float64
                )
                self._float_cols[(relation, attr)] = col
            return col

    def raw_col(self, relation: str, attr: str) -> np.ndarray:
        """Natural-dtype column (ints stay ints; used for coded features)."""
        with self._lock:
            col = self._raw_cols.get((relation, attr))
            if col is None:
                col = np.array([rec[attr] for rec in self.records(relation)])
                self._raw_cols[(relation, attr)] = col
            return col

    # -- join-key codings --------------------------------------------------

    def _packed_key_col(
        self, relation: str, key_attrs: tuple[str, ...]
    ) -> np.ndarray | None:
        """One ndarray carrying the key tuple per row, or ``None``.

        Single-attribute keys are the column itself; two integer
        attributes of moderate range pack collision-free into one int64
        (the C++ backend's packing, here with a range guard so negative
        and large surrogates fall back to the loop coding).
        """
        if len(key_attrs) == 1:
            return self.raw_col(relation, key_attrs[0])
        if len(key_attrs) == 2:
            a = self.raw_col(relation, key_attrs[0])
            b = self.raw_col(relation, key_attrs[1])
            if (
                a.size
                and np.issubdtype(a.dtype, np.integer)
                and np.issubdtype(b.dtype, np.integer)
                and int(np.abs(a).max()) < 2**30
                and int(np.abs(b).max()) < 2**31
            ):
                return a.astype(np.int64) * (1 << 32) + b.astype(np.int64)
        return None

    def key_coding(self, relation: str, key_attrs: tuple[str, ...]) -> KeyCoding:
        """Dense codes of ``relation``'s rows by their ``key_attrs`` tuple.

        Vectorized (``np.unique`` over the packed key column) when the
        key packs into one comparable ndarray; otherwise a first-seen
        Python loop.  Either way the last occurrence of a key is its
        representative row (the bag-join convention the engines share).
        """
        with self._lock:
            coding = self._key_codings.get((relation, key_attrs))
            if coding is not None:
                return coding
            coding = self._vectorized_key_coding(relation, key_attrs)
            if coding is None:
                coding = self._loop_key_coding(relation, key_attrs)
            self._key_codings[(relation, key_attrs)] = coding
            return coding

    def _vectorized_key_coding(
        self, relation: str, key_attrs: tuple[str, ...]
    ) -> KeyCoding | None:
        packed = self._packed_key_col(relation, key_attrs)
        if packed is None:
            return None
        try:
            values, codes = np.unique(packed, return_inverse=True)
        except TypeError:  # incomparable object column
            return None
        codes = codes.astype(np.intp, copy=False)
        key_row = np.empty(len(values), dtype=np.intp)
        # Duplicate fancy indices keep the last write: last occurrence.
        key_row[codes] = np.arange(len(codes), dtype=np.intp)
        return KeyCoding(
            codes=codes,
            n_keys=len(values),
            key_row=key_row,
            unique=len(values) == len(codes),
            values=values,
        )

    def _loop_key_coding(self, relation: str, key_attrs: tuple[str, ...]) -> KeyCoding:
        records = self.records(relation)
        table: dict[tuple, int] = {}
        codes = np.empty(len(records), dtype=np.intp)
        key_row: list[int] = []
        unique = True
        for i, rec in enumerate(records):
            key = tuple(rec[a] for a in key_attrs)
            code = table.get(key)
            if code is None:
                table[key] = code = len(table)
                key_row.append(i)
            else:
                key_row[code] = i  # last occurrence wins (bag join)
                unique = False
            codes[i] = code
        return KeyCoding(
            codes=codes,
            n_keys=len(table),
            key_row=np.array(key_row, dtype=np.intp),
            unique=unique,
            table=table,
        )

    def parent_codes(
        self, parent: str, child: str, key_attrs: tuple[str, ...]
    ) -> np.ndarray:
        """For each ``parent`` row, the child key-table code (-1 dangling)."""
        with self._lock:
            codes = self._parent_codes.get((parent, child, key_attrs))
            if codes is not None:
                return codes
            coding = self.key_coding(child, key_attrs)
            codes = None
            if coding.values is not None:
                packed = self._packed_key_col(parent, key_attrs)
                if packed is not None:
                    try:
                        pos = np.searchsorted(coding.values, packed)
                    except TypeError:
                        pos = None
                    if pos is not None:
                        clipped = np.minimum(pos, max(coding.n_keys - 1, 0))
                        hit = (
                            (coding.values[clipped] == packed)
                            if coding.n_keys
                            else np.zeros(len(packed), dtype=bool)
                        )
                        codes = np.where(hit, clipped, -1).astype(np.intp, copy=False)
            if codes is None:
                table = coding.table
                if table is None:
                    # Vectorized child coding but unpackable parent
                    # side: rebuild a tuple-keyed table from the child
                    # records (codes are per-row, duplicates agree).
                    table = {
                        tuple(rec[a] for a in key_attrs): int(coding.codes[i])
                        for i, rec in enumerate(self.records(child))
                    }
                records = self.records(parent)
                codes = np.empty(len(records), dtype=np.intp)
                for i, rec in enumerate(records):
                    codes[i] = table.get(tuple(rec[a] for a in key_attrs), -1)
            self._parent_codes[(parent, child, key_attrs)] = codes
            return codes

    # -- value codings (group-by key tables) ------------------------------

    def column_coding(self, relation: str, attr: str) -> tuple[list, np.ndarray]:
        """Dense codes for one column (the group-by key tables).

        Vectorized via ``np.unique`` (codes in sorted-value order) with
        a first-seen loop fallback for incomparable object columns; the
        key list always holds native Python values, so group
        dictionaries compare equal to the interpreted engine's.  Code
        numbering is bijection-invariant for every group fold.
        """
        with self._lock:
            coding = self._column_codings.get((relation, attr))
            if coding is not None:
                return coding
            col = self.raw_col(relation, attr)
            try:
                values, codes = np.unique(col, return_inverse=True)
                coding = (values.tolist(), codes.astype(np.intp, copy=False))
            except TypeError:
                records = self.records(relation)
                table: dict[Any, int] = {}
                codes = np.empty(len(records), dtype=np.intp)
                for i, rec in enumerate(records):
                    codes[i] = table.setdefault(rec[attr], len(table))
                coding = (list(table), codes)
            self._column_codings[(relation, attr)] = coding
            return coding

    # -- size accounting ---------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Approximate memory footprint of the store's memo tables.

        ``ndarray_bytes`` sums ``nbytes`` over every materialized
        column, multiplicity vector, key/parent/value coding and cached
        eval-array; ``record_rows`` counts the Python record-list rows
        (shared with the database, so they are reported but not priced
        into the byte estimate).  This is the measurement half of the
        ROADMAP eviction-policy item: long-lived serving processes can
        watch ``approx_bytes`` per database and evict stores (see
        :func:`evict_column_store`) before memos grow unbounded.
        """

        def _nbytes(obj) -> int:
            if isinstance(obj, np.ndarray):
                return obj.nbytes
            if isinstance(obj, (tuple, list)):
                return sum(_nbytes(o) for o in obj)
            if isinstance(obj, dict):
                return sum(_nbytes(o) for o in obj.values())
            return 0

        with self._lock:
            ndarray_bytes = 0
            for arr in self._mult.values():
                ndarray_bytes += arr.nbytes
            for table in (self._float_cols, self._raw_cols, self._parent_codes):
                for arr in table.values():
                    ndarray_bytes += arr.nbytes
            for coding in self._key_codings.values():
                ndarray_bytes += coding.codes.nbytes + coding.key_row.nbytes
                if coding.values is not None:
                    ndarray_bytes += coding.values.nbytes
            for _keys, codes in self._column_codings.values():
                ndarray_bytes += codes.nbytes
            eval_bytes = _nbytes(self.eval_cache)
            return {
                "relations": len(self._records),
                "record_rows": sum(len(r) for r in self._records.values()),
                "key_codings": len(self._key_codings),
                "parent_code_maps": len(self._parent_codes),
                "column_codings": len(self._column_codings),
                "eval_entries": len(self.eval_cache),
                "ndarray_bytes": int(ndarray_bytes),
                "eval_bytes": int(eval_bytes),
                "approx_bytes": int(ndarray_bytes + eval_bytes),
            }

    # -- predicate masks ---------------------------------------------------

    def predicate_masks(
        self, predicates, relations: Iterable[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Per-relation alive masks for δ conditions.

        Structured conditions (objects exposing ``feature``/``op``/
        ``threshold``, i.e. the CART learner's
        :class:`~repro.ml.regression_tree.Condition`) evaluate
        vectorized on the owning relation's column; opaque callables
        fall back to a per-record loop over that relation only.
        ``relations`` restricts the mask set (a plan view passes the
        relations of its tree); predicates on absent relations are
        ignored, matching the per-plan behaviour.
        """
        masks: dict[str, np.ndarray] = {}
        if not predicates:
            return masks
        wanted = set(relations) if relations is not None else None
        for rel_name, preds in predicates.items():
            if not preds or rel_name not in self.db.relations:
                continue
            if wanted is not None and rel_name not in wanted:
                continue
            records = self.records(rel_name)
            mask = np.ones(len(records), dtype=bool)
            for p in preds:
                feature = getattr(p, "feature", None)
                op = getattr(p, "op", None)
                if feature is not None and op in ("<=", ">"):
                    col = self.raw_col(rel_name, feature)
                    threshold = p.threshold
                    mask &= col <= threshold if op == "<=" else col > threshold
                else:
                    mask &= np.fromiter(
                        (bool(p(rec)) for rec in records),
                        dtype=bool,
                        count=len(records),
                    )
            masks[rel_name] = mask
        return masks


# -- process-wide store registry -------------------------------------------


@dataclass
class StoreStats:
    """Build/hit counters for the store registry (benchmark reporting)."""

    builds: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.builds + self.hits
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "builds": self.builds,
            "hits": self.hits,
            "hit_rate": round(self.hit_rate, 4),
        }


_STORES: dict[int, tuple[weakref.ref, ColumnStore]] = {}
_STORES_LOCK = threading.Lock()
_STATS = StoreStats()


def column_store(db: Database) -> ColumnStore:
    """The shared :class:`ColumnStore` for ``db``, built once per database.

    Keyed by database identity; the weak reference both guards against
    id reuse and evicts the store when the database is collected, so
    long-lived processes (the kernel cache outlives databases) do not
    pin dead columnar copies.
    """
    key = id(db)
    with _STORES_LOCK:
        entry = _STORES.get(key)
        if entry is not None:
            db_ref, store = entry
            if db_ref() is db:
                _STATS.hits += 1
                return store
        store = ColumnStore(db)
        _STATS.builds += 1
        _STORES[key] = (weakref.ref(db, lambda _ref: _evict(key)), store)
        return store


def _evict(key: int) -> None:
    stores, lock = _STORES, _STORES_LOCK
    if stores is None or lock is None:  # interpreter shutdown
        return
    with lock:
        stores.pop(key, None)


def peek_column_store(db: Database) -> ColumnStore | None:
    """The cached store for ``db`` if one exists — never builds.

    Monitoring paths (the serving layer's per-database size report)
    use this so asking "how big is the store?" does not itself
    materialize a store for databases that only ever ran on
    non-columnar backends.
    """
    with _STORES_LOCK:
        entry = _STORES.get(id(db))
        if entry is not None:
            db_ref, store = entry
            if db_ref() is db:
                return store
    return None


def evict_column_store(db: Database) -> bool:
    """Drop the cached store for ``db`` (if any); returns whether one existed.

    The registry already evicts stores when their database is
    collected; this is the eager variant for serving processes that
    unregister a database while still holding other references to it.
    """
    key = id(db)
    with _STORES_LOCK:
        entry = _STORES.get(key)
        if entry is None or entry[0]() is not db:
            return False
        del _STORES[key]
        return True


def column_store_stats() -> StoreStats:
    """Process-wide store build/hit counters."""
    return _STATS


def reset_column_store_stats() -> None:
    _STATS.builds = 0
    _STATS.hits = 0


def clear_column_stores() -> int:
    """Drop every cached store (tests / memory pressure); returns count."""
    with _STORES_LOCK:
        n = len(_STORES)
        _STORES.clear()
    return n
