"""Per-database shared columnar storage (plan-independent).

The :class:`ColumnStore` holds everything the vectorized NumPy backend
derives from a :class:`~repro.db.database.Database` that does **not**
depend on the batch plan being executed:

* per-relation row lists, multiplicity vectors, and float/raw columns;
* join-key codings — for a relation coded by a key-attribute tuple,
  the dense code of every row plus the code table size, representative
  rows, and uniqueness flag;
* parent→child code maps (for each row of a parent relation, the code
  of the child entry it joins, ``-1`` for dangling keys);
* per-column value codings (the group-by key tables);
* per-relation predicate masks for δ conditions.

This is the IFAQ static-memoization idea applied to the data layer:
the same database is scanned by many kernels — every feature's
group-by plan during tree fitting, every shard of a sharded execution,
every plan of a fused multi-plan batch — and all of them share one
columnar copy instead of rebuilding per (kernel, database) pairs.

**The store-sharing contract** (pinned by
``tests/backend/test_column_store.py`` and relied on by the sharded
executor, the fused multi-plan path and the serving layer):

1. *One store per live database* — :func:`column_store` returns the
   same instance for the same database object, process-wide, keyed by
   identity with a weak-reference guard (id reuse is detected; the
   store is evicted when the database is collected, and eagerly via
   :func:`evict_column_store`).
2. *Immutability between extensions* — relations must not be mutated
   in place while a store (or any prepared representation) exists for
   their database, **except** through the ingest seam: after
   :meth:`Database.append_rows` the owner calls
   :meth:`ColumnStore.extend_relation` (pure appends — arrays extend
   in place, codes stay stable) or
   :meth:`ColumnStore.invalidate_relation` (multiplicity bumps —
   every memo touching the relation drops and rebuilds lazily).
   Both bump :attr:`ColumnStore.data_version`, which prepared layouts
   revalidate, so stale per-plan wiring is never served.
3. *Renumbering invariance* — the dense codes handed out by the
   codings carry no semantic order; every downstream fold
   (``bincount`` views, presence masks, parent gathers) must be
   invariant under code renumbering, so the vectorized (sorted-order)
   and loop (first-seen) codings are interchangeable.
4. *Lazy construction* — only the relations, codings and columns a
   plan actually touches are materialized; :meth:`ColumnStore.stats`
   reports the resulting byte footprint for eviction policies.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

from repro.db.database import Database


@dataclass(frozen=True)
class KeyCoding:
    """A relation's rows coded by one key-attribute tuple.

    The code numbering is an implementation detail: every downstream
    fold (``np.bincount`` views, presence masks, parent gathers) is
    invariant under renumbering, because rows of one code accumulate in
    row order and codes never interact.  The vectorized coding numbers
    keys in sorted order; the loop fallback in first-seen order.
    """

    #: per row: dense code of the row's key tuple
    codes: np.ndarray
    #: number of distinct key tuples (size of the code table)
    n_keys: int
    #: code → a representative row holding that key (last occurrence)
    key_row: np.ndarray
    #: True when every code maps to exactly one row (FK-style join)
    unique: bool
    #: key tuple → code (loop coding; consumed by parent-side code maps)
    table: dict | None = None
    #: sorted packed key values (vectorized coding; parent side uses
    #: ``searchsorted`` against these instead of the table)
    values: np.ndarray | None = None


class _EvalCache(dict):
    """The eval-cache dict, with a change hook for lazy size accounting.

    Writers (the numpy backend's bottom-up pass) treat it as a plain
    dict; every mutation marks the owning store's cached stats dirty so
    :meth:`ColumnStore.stats` recomputes byte estimates only when
    something actually changed.
    """

    __slots__ = ("_on_change",)

    def __init__(self, on_change):
        super().__init__()
        self._on_change = on_change

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._on_change()

    def __delitem__(self, key):
        super().__delitem__(key)
        self._on_change()

    def pop(self, *args):
        self._on_change()
        return super().pop(*args)

    def clear(self):
        self._on_change()
        super().clear()


class ColumnStore:
    """Shared per-relation ndarray columns and key codings for one database.

    All methods memoize: the first call pays the Python tuple-hashing
    loop, every later call — from any kernel, plan view, or fused batch
    member — returns the same arrays.  A lock guards the memo tables so
    sharded preparation from worker threads stays consistent.
    """

    def __init__(self, db: Database):
        # Weak: the registry maps db → store, so a strong edge back
        # would keep every database alive forever and make the
        # registry's weakref eviction dead code.  Columns are built
        # lazily from calls that hold the database anyway.
        self._db_ref = weakref.ref(db)
        self._lock = threading.RLock()
        #: bumped by every delta extension / invalidation; prepared
        #: layouts snapshot it at construction and rebuild on mismatch,
        #: so per-plan views never serve pre-ingest array snapshots
        self.data_version: int = 0
        #: lazily recomputed stats() payload (dirty-flag invalidation)
        self._stats_cache: dict[str, int] | None = None
        #: predicate-free subtree evaluation results, keyed by the
        #: numpy backend's structural scan keys — rerooted plans share
        #: most subtrees verbatim, so their bottom-up passes meet here
        self.eval_cache: dict = _EvalCache(self._mark_stats_dirty)
        self._records: dict[str, list] = {}
        self._mult: dict[str, np.ndarray] = {}
        self._float_cols: dict[tuple[str, str], np.ndarray] = {}
        self._raw_cols: dict[tuple[str, str], np.ndarray] = {}
        self._key_codings: dict[tuple[str, tuple[str, ...]], KeyCoding] = {}
        self._parent_codes: dict[tuple[str, str, tuple[str, ...]], np.ndarray] = {}
        self._column_codings: dict[tuple[str, str], tuple[list, np.ndarray]] = {}

    def _mark_stats_dirty(self) -> None:
        self._stats_cache = None

    @property
    def db(self) -> Database:
        db = self._db_ref()
        if db is None:
            raise RuntimeError(
                "the database backing this ColumnStore was garbage-collected"
            )
        return db

    # -- per-relation arrays ----------------------------------------------

    def records(self, relation: str) -> list:
        with self._lock:
            recs = self._records.get(relation)
            if recs is None:
                recs = list(self.db.relation(relation).data)
                self._records[relation] = recs
                self._stats_cache = None
            return recs

    def n_rows(self, relation: str) -> int:
        return len(self.records(relation))

    def mult(self, relation: str) -> np.ndarray:
        with self._lock:
            arr = self._mult.get(relation)
            if arr is None:
                arr = np.array(
                    list(self.db.relation(relation).data.values()), dtype=np.float64
                )
                self._mult[relation] = arr
                self._stats_cache = None
            return arr

    def float_col(self, relation: str, attr: str) -> np.ndarray:
        with self._lock:
            col = self._float_cols.get((relation, attr))
            if col is None:
                col = np.array(
                    [rec[attr] for rec in self.records(relation)], dtype=np.float64
                )
                self._float_cols[(relation, attr)] = col
                self._stats_cache = None
            return col

    def raw_col(self, relation: str, attr: str) -> np.ndarray:
        """Natural-dtype column (ints stay ints; used for coded features)."""
        with self._lock:
            col = self._raw_cols.get((relation, attr))
            if col is None:
                col = np.array([rec[attr] for rec in self.records(relation)])
                self._raw_cols[(relation, attr)] = col
                self._stats_cache = None
            return col

    # -- join-key codings --------------------------------------------------

    def _packed_key_col(
        self, relation: str, key_attrs: tuple[str, ...]
    ) -> np.ndarray | None:
        """One ndarray carrying the key tuple per row, or ``None``.

        Single-attribute keys are the column itself; two integer
        attributes of moderate range pack collision-free into one int64
        (the C++ backend's packing, here with a range guard so negative
        and large surrogates fall back to the loop coding).
        """
        if len(key_attrs) == 1:
            return self.raw_col(relation, key_attrs[0])
        if len(key_attrs) == 2:
            a = self.raw_col(relation, key_attrs[0])
            b = self.raw_col(relation, key_attrs[1])
            if (
                a.size
                and np.issubdtype(a.dtype, np.integer)
                and np.issubdtype(b.dtype, np.integer)
                and int(np.abs(a).max()) < 2**30
                and int(np.abs(b).max()) < 2**31
            ):
                return a.astype(np.int64) * (1 << 32) + b.astype(np.int64)
        return None

    def key_coding(self, relation: str, key_attrs: tuple[str, ...]) -> KeyCoding:
        """Dense codes of ``relation``'s rows by their ``key_attrs`` tuple.

        Vectorized (``np.unique`` over the packed key column) when the
        key packs into one comparable ndarray; otherwise a first-seen
        Python loop.  Either way the last occurrence of a key is its
        representative row (the bag-join convention the engines share).
        """
        with self._lock:
            coding = self._key_codings.get((relation, key_attrs))
            if coding is not None:
                return coding
            coding = self._vectorized_key_coding(relation, key_attrs)
            if coding is None:
                coding = self._loop_key_coding(relation, key_attrs)
            self._key_codings[(relation, key_attrs)] = coding
            self._stats_cache = None
            return coding

    def _vectorized_key_coding(
        self, relation: str, key_attrs: tuple[str, ...]
    ) -> KeyCoding | None:
        packed = self._packed_key_col(relation, key_attrs)
        if packed is None:
            return None
        try:
            values, codes = np.unique(packed, return_inverse=True)
        except TypeError:  # incomparable object column
            return None
        codes = codes.astype(np.intp, copy=False)
        key_row = np.empty(len(values), dtype=np.intp)
        # Duplicate fancy indices keep the last write: last occurrence.
        key_row[codes] = np.arange(len(codes), dtype=np.intp)
        return KeyCoding(
            codes=codes,
            n_keys=len(values),
            key_row=key_row,
            unique=len(values) == len(codes),
            values=values,
        )

    def _loop_key_coding(self, relation: str, key_attrs: tuple[str, ...]) -> KeyCoding:
        records = self.records(relation)
        table: dict[tuple, int] = {}
        codes = np.empty(len(records), dtype=np.intp)
        key_row: list[int] = []
        unique = True
        for i, rec in enumerate(records):
            key = tuple(rec[a] for a in key_attrs)
            code = table.get(key)
            if code is None:
                table[key] = code = len(table)
                key_row.append(i)
            else:
                key_row[code] = i  # last occurrence wins (bag join)
                unique = False
            codes[i] = code
        return KeyCoding(
            codes=codes,
            n_keys=len(table),
            key_row=np.array(key_row, dtype=np.intp),
            unique=unique,
            table=table,
        )

    def parent_codes(
        self, parent: str, child: str, key_attrs: tuple[str, ...]
    ) -> np.ndarray:
        """For each ``parent`` row, the child key-table code (-1 dangling)."""
        with self._lock:
            codes = self._parent_codes.get((parent, child, key_attrs))
            if codes is not None:
                return codes
            coding = self.key_coding(child, key_attrs)
            codes = None
            if coding.values is not None:
                packed = self._packed_key_col(parent, key_attrs)
                if packed is not None:
                    try:
                        pos = np.searchsorted(coding.values, packed)
                    except TypeError:
                        pos = None
                    if pos is not None:
                        clipped = np.minimum(pos, max(coding.n_keys - 1, 0))
                        hit = (
                            (coding.values[clipped] == packed)
                            if coding.n_keys
                            else np.zeros(len(packed), dtype=bool)
                        )
                        codes = np.where(hit, clipped, -1).astype(np.intp, copy=False)
            if codes is None:
                table = coding.table
                if table is None:
                    # Vectorized child coding but unpackable parent
                    # side: rebuild a tuple-keyed table from the child
                    # records (codes are per-row, duplicates agree).
                    table = {
                        tuple(rec[a] for a in key_attrs): int(coding.codes[i])
                        for i, rec in enumerate(self.records(child))
                    }
                records = self.records(parent)
                codes = np.empty(len(records), dtype=np.intp)
                for i, rec in enumerate(records):
                    codes[i] = table.get(tuple(rec[a] for a in key_attrs), -1)
            self._parent_codes[(parent, child, key_attrs)] = codes
            self._stats_cache = None
            return codes

    # -- value codings (group-by key tables) ------------------------------

    def column_coding(self, relation: str, attr: str) -> tuple[list, np.ndarray]:
        """Dense codes for one column (the group-by key tables).

        Vectorized via ``np.unique`` (codes in sorted-value order) with
        a first-seen loop fallback for incomparable object columns; the
        key list always holds native Python values, so group
        dictionaries compare equal to the interpreted engine's.  Code
        numbering is bijection-invariant for every group fold.
        """
        with self._lock:
            coding = self._column_codings.get((relation, attr))
            if coding is not None:
                return coding
            col = self.raw_col(relation, attr)
            try:
                values, codes = np.unique(col, return_inverse=True)
                coding = (values.tolist(), codes.astype(np.intp, copy=False))
            except TypeError:
                records = self.records(relation)
                table: dict[Any, int] = {}
                codes = np.empty(len(records), dtype=np.intp)
                for i, rec in enumerate(records):
                    codes[i] = table.setdefault(rec[attr], len(table))
                coding = (list(table), codes)
            self._column_codings[(relation, attr)] = coding
            self._stats_cache = None
            return coding

    # -- streaming ingest: delta extension & invalidation ------------------

    @staticmethod
    def _scan_key_mentions(scan_key: tuple, relation: str) -> bool:
        """Whether a structural scan key's subtree touches ``relation``."""
        rel, _parent_key, _owned, children = scan_key
        if rel == relation:
            return True
        return any(ColumnStore._scan_key_mentions(c, relation) for c in children)

    def _drop_eval_entries(self, relation: str) -> int:
        stale = [k for k in self.eval_cache if self._scan_key_mentions(k, relation)]
        for key in stale:
            del self.eval_cache[key]
        return len(stale)

    def _lookup_codes(
        self, child: str, key_attrs: tuple[str, ...], coding: KeyCoding, records: list
    ) -> np.ndarray:
        """Child key-table codes for a short record list (-1 dangling)."""
        table = coding.table
        if table is None:
            table = {
                tuple(rec[a] for a in key_attrs): int(coding.codes[i])
                for i, rec in enumerate(self.records(child))
            }
        codes = np.empty(len(records), dtype=np.intp)
        for i, rec in enumerate(records):
            codes[i] = table.get(tuple(rec[a] for a in key_attrs), -1)
        return codes

    def extend_relation(self, relation: str) -> int:
        """Extend memos in place after a **pure append** to ``relation``.

        The delta half of the ingest contract: appended records extend
        the relation's record list, multiplicity vector and columns;
        codings keep every existing code stable (new keys/values get
        fresh codes at the end — safe by the renumbering-invariance
        contract) so group dictionaries and cached delta states stay
        addressable.  What cannot be extended is dropped and rebuilds
        lazily:

        * vectorized (sorted-values) key codings of the relation —
          appending would break sortedness;
        * parent→child code maps where the relation is the *child* — a
          previously dangling parent row may join a newly appended key;
        * memoized subtree evaluations whose scan key touches the
          relation (and only those — sibling subtrees stay cached).

        Callers must hold off concurrent readers (the serving layer's
        writer barrier); only call after ``AppendDelta.pure_append``
        ingests — multiplicity bumps need :meth:`invalidate_relation`.
        Returns the number of memo entries invalidated.
        """
        with self._lock:
            db_rel = self.db.relation(relation)
            all_records = list(db_rel.data)
            n_total = len(all_records)
            invalidated = 0

            recs = self._records.get(relation)
            if recs is not None and len(recs) < n_total:
                recs.extend(all_records[len(recs):])

            arr = self._mult.get(relation)
            if arr is not None and len(arr) < n_total:
                tail = list(db_rel.data.values())[len(arr):]
                self._mult[relation] = np.concatenate(
                    [arr, np.array(tail, dtype=np.float64)]
                )

            for (rel, attr), col in list(self._float_cols.items()):
                if rel == relation and len(col) < n_total:
                    tail_vals = np.array(
                        [rec[attr] for rec in all_records[len(col):]],
                        dtype=np.float64,
                    )
                    self._float_cols[(rel, attr)] = np.concatenate([col, tail_vals])
            for (rel, attr), col in list(self._raw_cols.items()):
                if rel == relation and len(col) < n_total:
                    tail_raw = np.array([rec[attr] for rec in all_records[len(col):]])
                    self._raw_cols[(rel, attr)] = np.concatenate([col, tail_raw])

            for (rel, attrs), coding in list(self._key_codings.items()):
                if rel != relation or len(coding.codes) == n_total:
                    continue
                if coding.table is None:
                    # Sorted-values coding: appending breaks sortedness.
                    del self._key_codings[(rel, attrs)]
                    invalidated += 1
                    continue
                tail_records = all_records[len(coding.codes):]
                table = coding.table  # owned by this coding alone
                tail_codes = np.empty(len(tail_records), dtype=np.intp)
                key_row = list(coding.key_row)
                unique = coding.unique
                for j, rec in enumerate(tail_records):
                    key = tuple(rec[a] for a in attrs)
                    code = table.get(key)
                    row = len(coding.codes) + j
                    if code is None:
                        table[key] = code = len(table)
                        key_row.append(row)
                    else:
                        key_row[code] = row  # last occurrence wins (bag join)
                        unique = False
                    tail_codes[j] = code
                self._key_codings[(rel, attrs)] = KeyCoding(
                    codes=np.concatenate([coding.codes, tail_codes]),
                    n_keys=len(table),
                    key_row=np.array(key_row, dtype=np.intp),
                    unique=unique,
                    table=table,
                )

            # Directional parent→child maps: with the relation as the
            # child, previously dangling parent rows may now join — drop;
            # with the relation as the parent, extend with tail lookups.
            for key in [k for k in self._parent_codes if k[1] == relation]:
                del self._parent_codes[key]
                invalidated += 1
            for key in [k for k in self._parent_codes if k[0] == relation]:
                _parent, child, attrs = key
                codes = self._parent_codes[key]
                if len(codes) == n_total:
                    continue
                tail_records = all_records[len(codes):]
                coding = self.key_coding(child, attrs)
                tail_codes = self._lookup_codes(child, attrs, coding, tail_records)
                self._parent_codes[key] = np.concatenate([codes, tail_codes])

            for (rel, attr), (keys, codes) in list(self._column_codings.items()):
                if rel != relation or len(codes) == n_total:
                    continue
                lookup = {v: i for i, v in enumerate(keys)}
                tail_records = all_records[len(codes):]
                tail_codes = np.empty(len(tail_records), dtype=np.intp)
                for i, rec in enumerate(tail_records):
                    value = rec[attr]
                    code = lookup.get(value)
                    if code is None:
                        lookup[value] = code = len(keys)
                        keys.append(value)  # in place: codes stay stable
                    tail_codes[i] = code
                self._column_codings[(rel, attr)] = (
                    keys, np.concatenate([codes, tail_codes])
                )

            invalidated += self._drop_eval_entries(relation)
            self.data_version += 1
            self._stats_cache = None
            _STATS.delta_extends += 1
            _STATS.memo_invalidations += invalidated
            return invalidated

    def invalidate_relation(self, relation: str) -> int:
        """Drop every memo touching ``relation`` (non-pure ingests).

        The fallback half of the ingest contract: a multiplicity bump
        rewrites a pre-existing record in place, so extended arrays
        would carry stale prefixes — everything derived from the
        relation (and every subtree evaluation whose scan key touches
        it) drops and rebuilds lazily on next use.  Returns the number
        of memo entries invalidated.
        """
        with self._lock:
            invalidated = 0
            if self._records.pop(relation, None) is not None:
                invalidated += 1
            if self._mult.pop(relation, None) is not None:
                invalidated += 1
            for memo in (self._float_cols, self._raw_cols, self._column_codings):
                for key in [k for k in memo if k[0] == relation]:
                    del memo[key]
                    invalidated += 1
            for key in [k for k in self._key_codings if k[0] == relation]:
                del self._key_codings[key]
                invalidated += 1
            for key in [k for k in self._parent_codes if relation in k[:2]]:
                del self._parent_codes[key]
                invalidated += 1
            invalidated += self._drop_eval_entries(relation)
            self.data_version += 1
            self._stats_cache = None
            _STATS.memo_invalidations += invalidated
            return invalidated

    # -- size accounting ---------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Approximate memory footprint of the store's memo tables.

        ``ndarray_bytes`` sums ``nbytes`` over every materialized
        column, multiplicity vector, key/parent/value coding and cached
        eval-array; ``record_rows`` counts the Python record-list rows
        (shared with the database, so they are reported but not priced
        into the byte estimate).  This is the measurement half of the
        ROADMAP eviction-policy item: long-lived serving processes can
        watch ``approx_bytes`` per database and evict stores (see
        :func:`evict_column_store`) before memos grow unbounded.

        The walk is recomputed **lazily**: every memo build, delta
        extension and invalidation marks a dirty flag, and a clean call
        returns the cached payload — so byte-budget trimmers polling
        after every run see true sizes (arrays replaced or extended in
        place are re-measured) without paying a full walk per poll.
        """

        def _nbytes(obj) -> int:
            if isinstance(obj, np.ndarray):
                return obj.nbytes
            if isinstance(obj, (tuple, list)):
                return sum(_nbytes(o) for o in obj)
            if isinstance(obj, dict):
                return sum(_nbytes(o) for o in obj.values())
            return 0

        with self._lock:
            if self._stats_cache is not None:
                return dict(self._stats_cache)
            ndarray_bytes = 0
            for arr in self._mult.values():
                ndarray_bytes += arr.nbytes
            for table in (self._float_cols, self._raw_cols, self._parent_codes):
                for arr in table.values():
                    ndarray_bytes += arr.nbytes
            for coding in self._key_codings.values():
                ndarray_bytes += coding.codes.nbytes + coding.key_row.nbytes
                if coding.values is not None:
                    ndarray_bytes += coding.values.nbytes
            for _keys, codes in self._column_codings.values():
                ndarray_bytes += codes.nbytes
            eval_bytes = _nbytes(self.eval_cache)
            self._stats_cache = {
                "relations": len(self._records),
                "record_rows": sum(len(r) for r in self._records.values()),
                "key_codings": len(self._key_codings),
                "parent_code_maps": len(self._parent_codes),
                "column_codings": len(self._column_codings),
                "eval_entries": len(self.eval_cache),
                "ndarray_bytes": int(ndarray_bytes),
                "eval_bytes": int(eval_bytes),
                "approx_bytes": int(ndarray_bytes + eval_bytes),
            }
            return dict(self._stats_cache)

    # -- predicate masks ---------------------------------------------------

    def predicate_masks(
        self, predicates, relations: Iterable[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Per-relation alive masks for δ conditions.

        Structured conditions (objects exposing ``feature``/``op``/
        ``threshold``, i.e. the CART learner's
        :class:`~repro.ml.regression_tree.Condition`) evaluate
        vectorized on the owning relation's column; opaque callables
        fall back to a per-record loop over that relation only.
        ``relations`` restricts the mask set (a plan view passes the
        relations of its tree); predicates on absent relations are
        ignored, matching the per-plan behaviour.
        """
        masks: dict[str, np.ndarray] = {}
        if not predicates:
            return masks
        wanted = set(relations) if relations is not None else None
        for rel_name, preds in predicates.items():
            if not preds or rel_name not in self.db.relations:
                continue
            if wanted is not None and rel_name not in wanted:
                continue
            records = self.records(rel_name)
            mask = np.ones(len(records), dtype=bool)
            for p in preds:
                feature = getattr(p, "feature", None)
                op = getattr(p, "op", None)
                if feature is not None and op in ("<=", ">"):
                    col = self.raw_col(rel_name, feature)
                    threshold = p.threshold
                    mask &= col <= threshold if op == "<=" else col > threshold
                else:
                    mask &= np.fromiter(
                        (bool(p(rec)) for rec in records),
                        dtype=bool,
                        count=len(records),
                    )
            masks[rel_name] = mask
        return masks


# -- process-wide store registry -------------------------------------------


@dataclass
class StoreStats:
    """Build/hit counters for the store registry (benchmark reporting)."""

    builds: int = 0
    hits: int = 0
    #: pure-append delta extensions applied (streaming ingest)
    delta_extends: int = 0
    #: memo entries dropped by delta extension / relation invalidation
    memo_invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.builds + self.hits
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "builds": self.builds,
            "hits": self.hits,
            "hit_rate": round(self.hit_rate, 4),
            "delta_extends": self.delta_extends,
            "memo_invalidations": self.memo_invalidations,
        }


_STORES: dict[int, tuple[weakref.ref, ColumnStore]] = {}
_STORES_LOCK = threading.Lock()
_STATS = StoreStats()


def column_store(db: Database) -> ColumnStore:
    """The shared :class:`ColumnStore` for ``db``, built once per database.

    Keyed by database identity; the weak reference both guards against
    id reuse and evicts the store when the database is collected, so
    long-lived processes (the kernel cache outlives databases) do not
    pin dead columnar copies.
    """
    key = id(db)
    with _STORES_LOCK:
        entry = _STORES.get(key)
        if entry is not None:
            db_ref, store = entry
            if db_ref() is db:
                _STATS.hits += 1
                return store
        store = ColumnStore(db)
        _STATS.builds += 1
        _STORES[key] = (weakref.ref(db, lambda _ref: _evict(key)), store)
        return store


def _evict(key: int) -> None:
    stores, lock = _STORES, _STORES_LOCK
    if stores is None or lock is None:  # interpreter shutdown
        return
    with lock:
        stores.pop(key, None)


def peek_column_store(db: Database) -> ColumnStore | None:
    """The cached store for ``db`` if one exists — never builds.

    Monitoring paths (the serving layer's per-database size report)
    use this so asking "how big is the store?" does not itself
    materialize a store for databases that only ever ran on
    non-columnar backends.
    """
    with _STORES_LOCK:
        entry = _STORES.get(id(db))
        if entry is not None:
            db_ref, store = entry
            if db_ref() is db:
                return store
    return None


def evict_column_store(db: Database) -> bool:
    """Drop the cached store for ``db`` (if any); returns whether one existed.

    The registry already evicts stores when their database is
    collected; this is the eager variant for serving processes that
    unregister a database while still holding other references to it.
    """
    key = id(db)
    with _STORES_LOCK:
        entry = _STORES.get(key)
        if entry is None or entry[0]() is not db:
            return False
        del _STORES[key]
        return True


def column_store_stats() -> StoreStats:
    """Process-wide store build/hit counters."""
    return _STATS


def reset_column_store_stats() -> None:
    _STATS.builds = 0
    _STATS.hits = 0
    _STATS.delta_extends = 0
    _STATS.memo_invalidations = 0


def clear_column_stores() -> int:
    """Drop every cached store (tests / memory pressure); returns count."""
    with _STORES_LOCK:
        n = len(_STORES)
        _STORES.clear()
    return n
