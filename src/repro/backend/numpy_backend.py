"""The vectorized NumPy execution backend (registered as ``"numpy"``).

Lowers a :class:`~repro.backend.plan.BatchPlan` — plain or group-by —
to columnar ndarray operations over per-relation arrays.  The join is
never materialized: exactly like the interpreted engine, child views
flow bottom-up along the join tree, but every per-tuple loop becomes a
vectorized operation:

* each relation's rows become a multiplicity vector plus one float
  column per aggregate attribute, in plan column order;
* join keys are *coded* once per (database, plan): every distinct
  parent-key tuple of a child gets a dense integer code, and each
  parent row stores the code of the child entry it joins (``-1`` for
  dangling keys, which the engine drops as dead rows);
* a child view is one ``np.bincount`` per aggregate over the child's
  key codes; parent rows gather their partials with a single indexed
  load; the root fold (scalar or per-group) is again a ``bincount``.

``np.bincount`` accumulates sequentially in row order — the same
left-to-right addition order as the interpreted engine's scans — and
the per-row products multiply factors in the same order (multiplicity,
then owned attributes, then child partials), so on data where float
addition is exact (integer-valued attributes) the results are
bit-identical to the engine and generated-Python backends, and within
1e-9 otherwise.

The prepared layout also derives **fact-aligned row indices** (for each
relation, the joining row per root tuple, composed down the tree) when
joins are unique-key; the vectorized CART engine
(:class:`repro.ml.tree_engine.VectorizedTreeEngine`) is a thin shim
over this layout.

Layouts are cached on the kernel per database identity, so repeated
executions — per-node group-by batches during tree fitting, benchmark
rounds — skip all Python-loop preparation and run pure ndarray code.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.backend.base import (
    ExecutionBackend,
    Kernel,
    require_groupby,
    require_plain,
)
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, NodePlan
from repro.db.database import Database


def _ordered_sum(values: np.ndarray) -> float:
    """Sequential left-to-right sum (the engines' addition order).

    ``np.sum`` uses pairwise summation, which re-associates float
    additions; a single-bin ``bincount`` accumulates in array order,
    matching the tuple-at-a-time scans bit for bit.
    """
    if values.size == 0:
        return 0.0
    return float(
        np.bincount(np.zeros(values.size, dtype=np.intp), weights=values, minlength=1)[0]
    )


@dataclass
class _NodeArrays:
    """One relation's columnar data plus its join-key coding."""

    plan_node: NodePlan
    records: list
    mult: np.ndarray
    children: list["_NodeArrays"] = field(default_factory=list)
    #: per row: dense code of this node's parent_key tuple (non-root)
    key_codes: np.ndarray | None = None
    #: number of distinct parent_key tuples (size of the code table)
    n_keys: int = 0
    #: code → a representative row holding that key (last occurrence)
    key_row: np.ndarray | None = None
    #: True when every key code maps to exactly one row (FK-style join)
    keys_unique: bool = True
    #: per child: this node's rows → child key-table code (-1 dangling)
    child_codes: list[np.ndarray] = field(default_factory=list)
    _float_cols: dict[str, np.ndarray] = field(default_factory=dict)
    _raw_cols: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def relation(self) -> str:
        return self.plan_node.relation

    @property
    def n_rows(self) -> int:
        return len(self.records)

    def float_col(self, attr: str) -> np.ndarray:
        col = self._float_cols.get(attr)
        if col is None:
            col = np.array([rec[attr] for rec in self.records], dtype=np.float64)
            self._float_cols[attr] = col
        return col

    def raw_col(self, attr: str) -> np.ndarray:
        """Natural-dtype column (ints stay ints; used for coded features)."""
        col = self._raw_cols.get(attr)
        if col is None:
            col = np.array([rec[attr] for rec in self.records])
            self._raw_cols[attr] = col
        return col


class PreparedLayout:
    """Columnar arrays + key codes for one (database, plan) pair.

    Construction is the only part of the backend that loops in Python
    (tuple hashing for the key code tables); everything at execution
    time is ndarray arithmetic.  The paper does not count load/indexing
    time and neither do the benchmarks.
    """

    def __init__(self, db: Database, plan: BatchPlan):
        self.plan = plan
        self.nodes: dict[str, _NodeArrays] = {}
        self._parents: dict[str, tuple[str, int]] = {}
        self._fact_index: dict[str, np.ndarray] = {}
        self.root = self._build(db, plan.root)
        if plan.group_attr is not None:
            self.group_keys, self.group_codes = self._code_column(
                self.root, plan.group_attr
            )

    # -- construction ----------------------------------------------------

    def _build(self, db: Database, plan_node: NodePlan) -> _NodeArrays:
        rel = db.relation(plan_node.relation)
        records = [rec for rec in rel.data]
        mult = np.array(list(rel.data.values()), dtype=np.float64)
        node = _NodeArrays(plan_node=plan_node, records=records, mult=mult)
        self.nodes[plan_node.relation] = node

        for ci, child_plan in enumerate(plan_node.children):
            child = self._build(db, child_plan)
            key_attrs = child_plan.parent_key
            table: dict[tuple, int] = {}
            codes = np.empty(child.n_rows, dtype=np.intp)
            key_row = []
            unique = True
            for i, rec in enumerate(child.records):
                key = tuple(rec[a] for a in key_attrs)
                code = table.get(key)
                if code is None:
                    table[key] = code = len(table)
                    key_row.append(i)
                else:
                    key_row[code] = i  # last occurrence wins (bag join)
                    unique = False
                codes[i] = code
            child.key_codes = codes
            child.n_keys = len(table)
            child.key_row = np.array(key_row, dtype=np.intp)
            child.keys_unique = unique

            parent_codes = np.empty(node.n_rows, dtype=np.intp)
            for i, rec in enumerate(node.records):
                parent_codes[i] = table.get(tuple(rec[a] for a in key_attrs), -1)
            node.child_codes.append(parent_codes)
            node.children.append(child)
            self._parents[child_plan.relation] = (plan_node.relation, ci)
        return node

    @staticmethod
    def _code_column(node: _NodeArrays, attr: str) -> tuple[list, np.ndarray]:
        """Dense codes for one column, first-seen order (raw key values)."""
        table: dict[Any, int] = {}
        codes = np.empty(node.n_rows, dtype=np.intp)
        for i, rec in enumerate(node.records):
            codes[i] = table.setdefault(rec[attr], len(table))
        return list(table), codes

    # -- predicate masks --------------------------------------------------

    def predicate_masks(self, predicates) -> dict[str, np.ndarray]:
        """Per-relation alive masks for δ conditions.

        Structured conditions (objects exposing ``feature``/``op``/
        ``threshold``, i.e. the CART learner's
        :class:`~repro.ml.regression_tree.Condition`) evaluate
        vectorized on the owning relation's column; opaque callables
        fall back to a per-record loop over that relation only.
        """
        masks: dict[str, np.ndarray] = {}
        if not predicates:
            return masks
        for rel_name, preds in predicates.items():
            node = self.nodes.get(rel_name)
            if node is None or not preds:
                continue
            mask = np.ones(node.n_rows, dtype=bool)
            for p in preds:
                feature = getattr(p, "feature", None)
                op = getattr(p, "op", None)
                if feature is not None and op in ("<=", ">"):
                    col = node.raw_col(feature)
                    threshold = p.threshold
                    mask &= col <= threshold if op == "<=" else col > threshold
                else:
                    mask &= np.fromiter(
                        (bool(p(rec)) for rec in node.records),
                        dtype=bool,
                        count=node.n_rows,
                    )
            masks[rel_name] = mask
        return masks

    # -- bottom-up evaluation ---------------------------------------------

    def _node_values(
        self, node: _NodeArrays, masks: Mapping[str, np.ndarray]
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Per-row aggregate value arrays and the alive mask.

        Mirrors the engine's merged scan: value = multiplicity × owned
        attributes × child partials (in that order), dead where a child
        view has no entry for the row's key.
        """
        pred_mask = masks.get(node.relation)
        alive = (
            pred_mask.copy()
            if pred_mask is not None
            else np.ones(node.n_rows, dtype=bool)
        )
        vals: list[np.ndarray] = []
        for owned in node.plan_node.owned_per_spec:
            v = node.mult.copy()
            for a in owned:
                v *= node.float_col(a)
            vals.append(v)

        for ci, child in enumerate(node.children):
            c_vals, c_alive = self._node_values(child, masks)
            codes = node.child_codes[ci]
            if child.n_keys == 0:
                alive[:] = False
                continue
            ckeys = child.key_codes[c_alive]
            present = np.bincount(ckeys, minlength=child.n_keys) > 0
            safe = np.where(codes >= 0, codes, 0)
            alive &= (codes >= 0) & present[safe]
            for i, cv in enumerate(c_vals):
                view = np.bincount(ckeys, weights=cv[c_alive], minlength=child.n_keys)
                vals[i] = vals[i] * view[safe]
        return vals, alive

    def run_totals(self, masks: Mapping[str, np.ndarray] | None = None) -> list[float]:
        vals, alive = self._node_values(self.root, masks or {})
        return [_ordered_sum(v[alive]) for v in vals]

    def run_groups(self, masks: Mapping[str, np.ndarray] | None = None) -> dict:
        vals, alive = self._node_values(self.root, masks or {})
        codes = self.group_codes[alive]
        n_groups = len(self.group_keys)
        if n_groups == 0:
            return {}
        present = np.bincount(codes, minlength=n_groups) > 0
        sums = [
            np.bincount(codes, weights=v[alive], minlength=n_groups) for v in vals
        ]
        return {
            self.group_keys[g]: [float(s[g]) for s in sums]
            for g in np.flatnonzero(present)
        }

    # -- fact-aligned view (the tree learner's representation) -----------

    def fact_index(self, relation: str) -> np.ndarray:
        """For each root (fact) row, the joining row of ``relation``.

        Composed by chaining parent→child key codes down the tree; only
        valid for unique-key (FK-style) joins, and raises on dangling
        keys — a fact row must join exactly one tuple per relation.
        """
        cached = self._fact_index.get(relation)
        if cached is not None:
            return cached
        if relation == self.root.relation:
            index = np.arange(self.root.n_rows, dtype=np.intp)
        else:
            parent_name, ci = self._parents[relation]
            parent = self.nodes[parent_name]
            child = parent.children[ci]
            codes = parent.child_codes[ci][self.fact_index(parent_name)]
            if codes.size and codes.min() < 0:
                raise ValueError(
                    f"dangling foreign keys: fact rows join no {relation} tuple"
                )
            index = child.key_row[codes]
        self._fact_index[relation] = index
        return index

    def fact_column(self, relation: str, attr: str) -> np.ndarray:
        """A column of ``relation`` broadcast to fact-row alignment."""
        return self.nodes[relation].raw_col(attr)[self.fact_index(relation)]


@dataclass
class NumpyBackend(ExecutionBackend):
    """Columnar ndarray evaluation of batch plans.

    The fastest pure-Python path: beats the generated-Python kernels
    without needing a C++ toolchain, and shards under
    :class:`~repro.backend.parallel.ShardedBackend` like any other
    backend (sub-database partials merge with the ring monoid).
    """

    name = "numpy"

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        # The "kernel" is the plan itself: lowering happens against the
        # prepared columnar layout, cached per database on the kernel.
        return Kernel(
            backend=self.name,
            fingerprint=plan.fingerprint(layout, self.kernel_key),
            plan=plan,
            layout=layout,
            source=None,
            entry=None,
            meta={"supports_blocks": False},
        )

    # -- layout cache ------------------------------------------------------

    def prepared_layout(self, kernel: Kernel, db: Database) -> PreparedLayout:
        """The columnar layout for (kernel.plan, db), cached on the kernel.

        Keyed by database identity; the weak reference both guards
        against id reuse and evicts the layout when the database is
        collected, so cached kernels (which outlive databases in the
        process-wide kernel cache) do not pin dead columnar copies.
        The kernel assumes relations are not mutated in place between
        executions, like every prepared representation here.
        """
        slot = kernel.meta.setdefault("numpy_layouts", {})
        entry = slot.get(id(db))
        if entry is not None:
            db_ref, layout = entry
            if db_ref() is db:
                return layout
        layout = PreparedLayout(db, kernel.plan)
        slot.clear()  # keep only the most recent database's layout
        key = id(db)
        slot[key] = (weakref.ref(db, lambda _ref: slot.pop(key, None)), layout)
        return layout

    # -- execution ---------------------------------------------------------

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        require_plain(kernel)
        layout = self.prepared_layout(kernel, db)
        return kernel.result_dict(layout.run_totals())

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        require_groupby(kernel)
        layout = self.prepared_layout(kernel, db)
        return layout.run_groups(layout.predicate_masks(predicates))
