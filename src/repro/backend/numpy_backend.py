"""The vectorized NumPy execution backend (registered as ``"numpy"``).

Lowers a :class:`~repro.backend.plan.BatchPlan` — plain or group-by —
to columnar ndarray operations over per-relation arrays.  The join is
never materialized: exactly like the interpreted engine, child views
flow bottom-up along the join tree, but every per-tuple loop becomes a
vectorized operation:

* each relation's rows become a multiplicity vector plus one float
  column per aggregate attribute, in plan column order;
* join keys are *coded* once per database: every distinct parent-key
  tuple of a child gets a dense integer code, and each parent row
  stores the code of the child entry it joins (``-1`` for dangling
  keys, which the engine drops as dead rows);
* a child view is one ``np.bincount`` per aggregate over the child's
  key codes; parent rows gather their partials with a single indexed
  load; the root fold (scalar or per-group) is again a ``bincount``.

The columnar arrays and key codings live in the **shared, per-database**
:class:`~repro.backend.column_store.ColumnStore`; a
:class:`PreparedLayout` is only a thin per-plan *view* wiring the plan
tree to the store's arrays.  Building F feature kernels over the same
database therefore codes each relation once, not F times.

Execution is **block-structured**: the root fold runs over fixed-size
row blocks whose partials merge in canonical block order (the
``prepare`` / ``block_ranges`` / ``run_block`` protocol, plus the
group-by analog ``prepare_groupby`` / ``run_groupby_block`` /
``merge_groupby_blocks``).  Because single-shot execution folds the
*same* blocks in the *same* order the sharded wrapper does, sharded
numpy results are bit-identical to single-shot for every shard count —
and shard workers reuse the shared store instead of rebuilding layouts
over fresh shard databases.

:meth:`NumpyBackend.run_groupby_many` executes a fused
:class:`~repro.backend.plan.MultiBatchPlan`: predicate masks are
computed once per relation, and members whose plans share a
:meth:`~repro.backend.plan.BatchPlan.scan_fingerprint` (features owned
by the same relation) share one bottom-up value pass, folding each
member under its own group coding — the tree learner's F-feature node
batch runs as one kernel with one pass per owner relation.

``np.bincount`` accumulates sequentially in row order — the same
left-to-right addition order as the interpreted engine's scans — so on
data where float addition is exact (integer-valued attributes) the
results are bit-identical to the engine and generated-Python backends,
and within 1e-9 otherwise.

The prepared layout also derives **fact-aligned row indices** (for each
relation, the joining row per root tuple, composed down the tree) when
joins are unique-key; the vectorized CART engine
(:class:`repro.ml.tree_engine.VectorizedTreeEngine`) is a thin shim
over this layout.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.backend.base import (
    ExecutionBackend,
    Kernel,
    merge_vectors,
    require_groupby,
    require_multi,
    require_plain,
)
from repro.backend.column_store import ColumnStore, column_store
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, MultiBatchPlan, NodePlan
from repro.db.database import Database

#: Root rows per execution block.  Blocks are the unit the sharded
#: executor distributes; single-shot execution folds the same blocks in
#: the same order, which is what makes sharded numpy bit-identical to
#: single-shot.  Larger than the generated-Python block size because
#: each block costs a few array slices regardless of its length.
DEFAULT_NUMPY_BLOCK_SIZE = 16384


def _ordered_sum(values: np.ndarray) -> float:
    """Sequential left-to-right sum (the engines' addition order).

    ``np.sum`` uses pairwise summation, which re-associates float
    additions; a single-bin ``bincount`` accumulates in array order,
    matching the tuple-at-a-time scans bit for bit.
    """
    if values.size == 0:
        return 0.0
    return float(
        np.bincount(np.zeros(values.size, dtype=np.intp), weights=values, minlength=1)[0]
    )


@dataclass
class _NodeView:
    """One plan node's view of the shared columnar store."""

    plan_node: NodePlan
    store: ColumnStore
    children: list["_NodeView"] = field(default_factory=list)
    #: relation names of this node's whole subtree (for mask scoping)
    subtree_relations: frozenset[str] = frozenset()
    #: structural identity of the subtree's evaluation (relation, keys,
    #: owned columns, children) — equal keys produce equal value arrays,
    #: so rerooted plans share subtree results through the store
    scan_key: tuple = ()
    #: per row: dense code of this node's parent_key tuple (non-root)
    key_codes: np.ndarray | None = None
    #: number of distinct parent_key tuples (size of the code table)
    n_keys: int = 0
    #: code → a representative row holding that key (last occurrence)
    key_row: np.ndarray | None = None
    #: True when every key code maps to exactly one row (FK-style join)
    keys_unique: bool = True
    #: per child: this node's rows → child key-table code (-1 dangling)
    child_codes: list[np.ndarray] = field(default_factory=list)

    @property
    def relation(self) -> str:
        return self.plan_node.relation

    @property
    def records(self) -> list:
        return self.store.records(self.plan_node.relation)

    @property
    def n_rows(self) -> int:
        return self.store.n_rows(self.plan_node.relation)

    @property
    def mult(self) -> np.ndarray:
        return self.store.mult(self.plan_node.relation)

    def float_col(self, attr: str) -> np.ndarray:
        return self.store.float_col(self.plan_node.relation, attr)

    def raw_col(self, attr: str) -> np.ndarray:
        """Natural-dtype column (ints stay ints; used for coded features)."""
        return self.store.raw_col(self.plan_node.relation, attr)


class PreparedLayout:
    """A per-plan view over the shared per-database :class:`ColumnStore`.

    Everything heavy — row lists, multiplicity and attribute columns,
    join-key codings, group codings — is memoized in the store and
    shared across every plan over the same database; the view only
    wires the plan tree to those arrays, so construction after the
    first plan is loop-free.  The paper does not count load/indexing
    time and neither do the benchmarks.
    """

    def __init__(self, db: Database, plan: BatchPlan, store: ColumnStore | None = None):
        self.plan = plan
        self.store = store if store is not None else column_store(db)
        self.nodes: dict[str, _NodeView] = {}
        self._parents: dict[str, tuple[str, int]] = {}
        self._fact_index: dict[str, np.ndarray] = {}
        self.root = self._view(plan.root)
        if plan.group_attr is not None:
            self.group_keys, self.group_codes = self.store.column_coding(
                plan.root.relation, plan.group_attr
            )

    # -- construction ----------------------------------------------------

    def _view(self, plan_node: NodePlan) -> _NodeView:
        node = _NodeView(plan_node=plan_node, store=self.store)
        self.nodes[plan_node.relation] = node
        for ci, child_plan in enumerate(plan_node.children):
            child = self._view(child_plan)
            coding = self.store.key_coding(child_plan.relation, child_plan.parent_key)
            child.key_codes = coding.codes
            child.n_keys = coding.n_keys
            child.key_row = coding.key_row
            child.keys_unique = coding.unique
            node.child_codes.append(
                self.store.parent_codes(
                    plan_node.relation, child_plan.relation, child_plan.parent_key
                )
            )
            node.children.append(child)
            self._parents[child_plan.relation] = (plan_node.relation, ci)
        node.subtree_relations = frozenset(
            {plan_node.relation}.union(*(c.subtree_relations for c in node.children))
            if node.children
            else {plan_node.relation}
        )
        node.scan_key = (
            plan_node.relation,
            plan_node.parent_key,
            tuple(plan_node.owned_per_spec),
            tuple(c.scan_key for c in node.children),
        )
        return node

    # -- predicate masks --------------------------------------------------

    def predicate_masks(self, predicates) -> dict[str, np.ndarray]:
        """Per-relation alive masks for δ conditions (see the store)."""
        return self.store.predicate_masks(predicates, self.nodes)

    # -- bottom-up evaluation ---------------------------------------------

    def node_values(
        self,
        masks: Mapping[str, np.ndarray] | None = None,
        shared: dict | None = None,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Per-root-row aggregate value arrays and the alive mask.

        ``shared`` is an optional cross-plan memo (keyed by structural
        scan keys) for evaluations under the *same* masks — the fused
        multi-plan execution passes one dict per call so rerooted
        member plans share the subtrees they have in common.
        """
        return self._node_values(self.root, masks or {}, shared)

    def _node_values(
        self,
        node: _NodeView,
        masks: Mapping[str, np.ndarray],
        shared: dict | None = None,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Per-row aggregate value arrays and the alive mask.

        Mirrors the engine's merged scan: value = multiplicity × owned
        attributes × child partials (in that order), dead where a child
        view has no entry for the row's key.

        Subtrees that no mask touches evaluate to the same arrays on
        every call, so their results are memoized on the **store**,
        keyed structurally — the static-memoization/code-motion pass
        applied at runtime, shared by every plan over the database.
        During tree fitting only the relations on a node's δ path
        re-evaluate; everything else (including the whole tree at the
        unconditioned root node) is a cache hit.  Callers treat the
        returned arrays as read-only, which every fold here does
        (boolean indexing and fresh products only).
        """
        if not any(rel in masks for rel in node.subtree_relations):
            cache = self.store.eval_cache
            cached = cache.get(node.scan_key)
            if cached is None:
                cached = self._eval_node(node, {}, None)
                cache[node.scan_key] = cached
            return cached
        if shared is not None:
            cached = shared.get(node.scan_key)
            if cached is None:
                cached = self._eval_node(node, masks, shared)
                shared[node.scan_key] = cached
            return cached
        return self._eval_node(node, masks, shared)

    def _eval_node(
        self,
        node: _NodeView,
        masks: Mapping[str, np.ndarray],
        shared: dict | None,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        pred_mask = masks.get(node.relation)
        alive = (
            pred_mask.copy()
            if pred_mask is not None
            else np.ones(node.n_rows, dtype=bool)
        )
        vals: list[np.ndarray] = []
        for owned in node.plan_node.owned_per_spec:
            v = node.mult.copy()
            for a in owned:
                v *= node.float_col(a)
            vals.append(v)

        for ci, child in enumerate(node.children):
            c_vals, c_alive = self._node_values(child, masks, shared)
            codes = node.child_codes[ci]
            if child.n_keys == 0:
                alive[:] = False
                continue
            ckeys = child.key_codes[c_alive]
            present = np.bincount(ckeys, minlength=child.n_keys) > 0
            safe = np.where(codes >= 0, codes, 0)
            alive &= (codes >= 0) & present[safe]
            for i, cv in enumerate(c_vals):
                view = np.bincount(ckeys, weights=cv[c_alive], minlength=child.n_keys)
                vals[i] = vals[i] * view[safe]
        return vals, alive

    # -- fact-aligned view (the tree learner's representation) -----------

    def fact_index(self, relation: str) -> np.ndarray:
        """For each root (fact) row, the joining row of ``relation``.

        Composed by chaining parent→child key codes down the tree; only
        valid for unique-key (FK-style) joins, and raises on dangling
        keys — a fact row must join exactly one tuple per relation.
        """
        cached = self._fact_index.get(relation)
        if cached is not None:
            return cached
        if relation == self.root.relation:
            index = np.arange(self.root.n_rows, dtype=np.intp)
        else:
            parent_name, ci = self._parents[relation]
            parent = self.nodes[parent_name]
            child = parent.children[ci]
            codes = parent.child_codes[ci][self.fact_index(parent_name)]
            if codes.size and codes.min() < 0:
                raise ValueError(
                    f"dangling foreign keys: fact rows join no {relation} tuple"
                )
            index = child.key_row[codes]
        self._fact_index[relation] = index
        return index

    def fact_column(self, relation: str, attr: str) -> np.ndarray:
        """A column of ``relation`` broadcast to fact-row alignment."""
        return self.nodes[relation].raw_col(attr)[self.fact_index(relation)]


# -- block-structured group folds -------------------------------------------


def _groupby_block_partial(
    vals: Sequence[np.ndarray],
    alive: np.ndarray,
    group_codes: np.ndarray,
    n_groups: int,
    lo: int,
    hi: int,
) -> tuple[np.ndarray | None, np.ndarray, list[np.ndarray]]:
    """One block's per-group partial: (codes, alive-row counts, sums).

    Dense (codes ``None``; arrays span the full group range) when the
    group count is comparable to the block, **sparse** (arrays indexed
    by the block's own sorted present codes) when the grouping column
    has many more groups than a block has rows — a near-unique CART
    feature must not pay O(blocks × groups) zero-filled bincounts.
    Within a block both shapes accumulate each group's rows in row
    order, and the choice depends only on (n_groups, block length),
    never on the shard count, so the merged results are identical.
    """
    mask = alive[lo:hi]
    codes = group_codes[lo:hi][mask]
    if n_groups <= 4 * (hi - lo):
        counts = np.bincount(codes, minlength=n_groups)
        sums = [
            np.bincount(codes, weights=v[lo:hi][mask], minlength=n_groups)
            for v in vals
        ]
        return None, counts, sums
    present = np.unique(codes)
    compact = np.searchsorted(present, codes)
    counts = np.bincount(compact, minlength=len(present))
    sums = [
        np.bincount(compact, weights=v[lo:hi][mask], minlength=len(present))
        for v in vals
    ]
    return present, counts, sums


def _merge_groupby_partials(
    group_keys: list,
    partials: Sequence[tuple[np.ndarray | None, np.ndarray, list[np.ndarray]]],
) -> dict:
    """Fold block partials in canonical block order into the group dict.

    A group is present when any block saw an alive row for it (matching
    the engine's sparse dictionaries); the fold is strictly
    left-to-right in block order per group, so any execution producing
    the same ordered partial list — single-shot or sharded — merges to
    the same result bit for bit.
    """
    n_groups = len(group_keys)
    if not n_groups or not partials:
        return {}
    counts = np.zeros(n_groups, dtype=np.int64)
    sums: list[np.ndarray] | None = None
    for present, block_counts, block_sums in partials:
        if sums is None:
            sums = [np.zeros(n_groups) for _ in block_sums]
        if present is None:
            counts += block_counts
            for i, s in enumerate(block_sums):
                sums[i] += s
        else:
            counts[present] += block_counts
            for i, s in enumerate(block_sums):
                sums[i][present] += s
    assert sums is not None
    return {
        group_keys[g]: [float(s[g]) for s in sums] for g in np.flatnonzero(counts > 0)
    }


@dataclass
class NumpyBackend(ExecutionBackend):
    """Columnar ndarray evaluation of batch plans.

    The fastest pure-Python path: beats the generated-Python kernels
    without needing a C++ toolchain, and shards under
    :class:`~repro.backend.parallel.ShardedBackend` bit-identically via
    the block protocol (the shared :class:`ColumnStore` is prepared
    once and worker threads fold disjoint root-row blocks).
    """

    block_size: int = DEFAULT_NUMPY_BLOCK_SIZE

    name = "numpy"

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        # The "kernel" is the plan itself: lowering happens against the
        # shared columnar store, viewed per plan and cached per kernel.
        return Kernel(
            backend=self.name,
            fingerprint=plan.fingerprint(layout, self.kernel_key),
            plan=plan,
            layout=layout,
            source=None,
            entry=None,
            meta={
                "supports_blocks": not plan.is_groupby,
                "supports_groupby_blocks": plan.is_groupby,
            },
        )

    def compile_multi(
        self, mplan: MultiBatchPlan, layout: LayoutOptions, members: list[Kernel]
    ) -> Kernel:
        """Bundle member kernels and precompute the scan-sharing groups.

        Members with equal scan fingerprints (features owned by the same
        relation, same batch) are fused: one bottom-up value pass serves
        all of them at execution time.
        """
        kernel = super().compile_multi(mplan, layout, members)
        scan_groups: dict[str, list[int]] = {}
        for i, plan in enumerate(mplan.plans):
            scan_groups.setdefault(plan.scan_fingerprint(), []).append(i)
        kernel.meta["scan_groups"] = list(scan_groups.values())
        return kernel

    # -- layout cache ------------------------------------------------------

    def prepared_layout(self, kernel: Kernel, db: Database) -> PreparedLayout:
        """The per-plan view for (kernel.plan, db), cached on the kernel.

        Keyed by database identity; the weak reference both guards
        against id reuse and evicts the view when the database is
        collected.  The heavy arrays live in the process-wide
        :func:`~repro.backend.column_store.column_store` for the
        database, so even a cache miss here (a fresh kernel over a
        known database) only rebuilds the thin plan wiring.
        """
        slot = kernel.meta.setdefault("numpy_layouts", {})
        entry = slot.get(id(db))
        if entry is not None:
            db_ref, layout = entry
            # The store-identity check keeps eviction honest: after
            # evict_column_store(db) (the serving layer's byte-budget
            # trim) a cached view still pins the dead store's arrays, so
            # rebuild against the database's *current* store instead.
            if db_ref() is db and layout.store is column_store(db):
                return layout
        layout = PreparedLayout(db, kernel.plan)
        key = id(db)
        slot[key] = (weakref.ref(db, lambda _ref: slot.pop(key, None)), layout)
        return layout

    # -- block protocol (consumed by ShardedBackend) ---------------------

    def prepare(self, kernel: Kernel, db: Database):
        """Evaluate the bottom-up pass once; blocks fold the root rows."""
        layout = self.prepared_layout(kernel, db)
        vals, alive = layout.node_values()
        return layout, (vals, alive), layout.root.n_rows

    def block_ranges(self, n_rows: int) -> list[tuple[int, int]]:
        if n_rows <= 0:
            return []
        size = max(1, self.block_size)
        return [(lo, min(lo + size, n_rows)) for lo in range(0, n_rows, size)]

    def run_block(self, kernel: Kernel, data, views, lo: int, hi: int) -> list[float]:
        vals, alive = views
        mask = alive[lo:hi]
        return [_ordered_sum(v[lo:hi][mask]) for v in vals]

    # -- group-by block protocol ------------------------------------------

    def prepare_groupby(self, kernel: Kernel, db: Database, predicates=None):
        """Shared state for block-structured group-by execution."""
        layout = self.prepared_layout(kernel, db)
        vals, alive = layout.node_values(layout.predicate_masks(predicates))
        return (layout, vals, alive), layout.root.n_rows

    def run_groupby_block(self, kernel: Kernel, state, lo: int, hi: int):
        layout, vals, alive = state
        return _groupby_block_partial(
            vals, alive, layout.group_codes, len(layout.group_keys), lo, hi
        )

    def merge_groupby_blocks(self, kernel: Kernel, state, partials) -> dict:
        layout = state[0]
        return _merge_groupby_partials(layout.group_keys, partials)

    # -- cross-process merge hooks ----------------------------------------

    def groupby_group_keys(self, kernel: Kernel, db: Database) -> list:
        """The kernel's group-key table, computed against the *local*
        store.  Column codings are deterministic functions of the data,
        so a worker process folding blocks of its pickled copy produces
        partials indexed by exactly this table — which is what lets the
        parent merge remote partials without shipping key tables back.
        """
        require_groupby(kernel)
        keys, _codes = column_store(db).column_coding(
            kernel.plan.root.relation, kernel.plan.group_attr
        )
        return keys

    def merge_groupby_partials(self, group_keys: list, partials) -> dict:
        """Merge block partials (local or remote) in canonical order."""
        return _merge_groupby_partials(group_keys, partials)

    # -- execution ---------------------------------------------------------

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        require_plain(kernel)
        data, views, n_rows = self.prepare(kernel, db)
        if n_rows == 0:
            return kernel.result_dict([0.0] * kernel.plan.num_aggregates)
        partials = [
            self.run_block(kernel, data, views, lo, hi)
            for lo, hi in self.block_ranges(n_rows)
        ]
        return kernel.result_dict(merge_vectors(partials))

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        require_groupby(kernel)
        state, n_rows = self.prepare_groupby(kernel, db, predicates)
        partials = [
            self.run_groupby_block(kernel, state, lo, hi)
            for lo, hi in self.block_ranges(n_rows)
        ]
        return self.merge_groupby_blocks(kernel, state, partials)

    def run_groupby_many(
        self, kernel: Kernel, db: Database, predicates=None
    ) -> list[dict]:
        """Fused multi-plan group-by: one value pass per scan group.

        Per member the fold is the exact block-structured fold
        :meth:`run_groupby` performs, over the exact arrays the member's
        own layout would produce (scan-sharing is keyed by
        :meth:`~repro.backend.plan.BatchPlan.scan_fingerprint`, which
        pins the value pass), so fused results are element-wise
        identical to issuing the member plans separately.
        """
        require_multi(kernel)
        members: list[Kernel] = kernel.entry
        store = column_store(db)
        relations = {
            node.relation for m in members for node in m.plan.root.walk()
        }
        masks = store.predicate_masks(predicates, relations)
        results: list[dict | None] = [None] * len(members)
        scan_groups = kernel.meta.get(
            "scan_groups", [[i] for i in range(len(members))]
        )
        # Rerooted member plans share most subtrees verbatim; this memo
        # lets their masked evaluations meet across scan groups (the
        # predicate-free ones already meet in the store's eval cache).
        shared: dict = {}
        for group in scan_groups:
            rep_layout = self.prepared_layout(members[group[0]], db)
            vals, alive = rep_layout.node_values(masks, shared)
            ranges = self.block_ranges(rep_layout.root.n_rows)
            for mi in group:
                layout = self.prepared_layout(members[mi], db)
                partials = [
                    _groupby_block_partial(
                        vals, alive, layout.group_codes, len(layout.group_keys), lo, hi
                    )
                    for lo, hi in ranges
                ]
                results[mi] = _merge_groupby_partials(layout.group_keys, partials)
        return results
