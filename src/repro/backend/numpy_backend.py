"""The vectorized NumPy execution backend (registered as ``"numpy"``).

Lowers a :class:`~repro.backend.plan.BatchPlan` — plain or group-by —
to columnar ndarray operations over per-relation arrays.  The join is
never materialized: exactly like the interpreted engine, child views
flow bottom-up along the join tree, but every per-tuple loop becomes a
vectorized operation:

* each relation's rows become a multiplicity vector plus one float
  column per aggregate attribute, in plan column order;
* join keys are *coded* once per database: every distinct parent-key
  tuple of a child gets a dense integer code, and each parent row
  stores the code of the child entry it joins (``-1`` for dangling
  keys, which the engine drops as dead rows);
* a child view is one ``np.bincount`` per aggregate over the child's
  key codes; parent rows gather their partials with a single indexed
  load; the root fold (scalar or per-group) is again a ``bincount``.

The columnar arrays and key codings live in the **shared, per-database**
:class:`~repro.backend.column_store.ColumnStore`; a
:class:`PreparedLayout` is only a thin per-plan *view* wiring the plan
tree to the store's arrays.  Building F feature kernels over the same
database therefore codes each relation once, not F times.

Execution is **block-structured**: the root fold runs over fixed-size
row blocks whose partials merge in canonical block order (the
``prepare`` / ``block_ranges`` / ``run_block`` protocol, plus the
group-by analog ``prepare_groupby`` / ``run_groupby_block`` /
``merge_groupby_blocks``).  Because single-shot execution folds the
*same* blocks in the *same* order the sharded wrapper does, sharded
numpy results are bit-identical to single-shot for every shard count —
and shard workers reuse the shared store instead of rebuilding layouts
over fresh shard databases.

:meth:`NumpyBackend.run_groupby_many` executes a fused
:class:`~repro.backend.plan.MultiBatchPlan`: predicate masks are
computed once per relation, and members whose plans share a
:meth:`~repro.backend.plan.BatchPlan.scan_fingerprint` (features owned
by the same relation) share one bottom-up value pass, folding each
member under its own group coding — the tree learner's F-feature node
batch runs as one kernel with one pass per owner relation.

``np.bincount`` accumulates sequentially in row order — the same
left-to-right addition order as the interpreted engine's scans — so on
data where float addition is exact (integer-valued attributes) the
results are bit-identical to the engine and generated-Python backends,
and within 1e-9 otherwise.

The prepared layout also derives **fact-aligned row indices** (for each
relation, the joining row per root tuple, composed down the tree) when
joins are unique-key; the vectorized CART engine
(:class:`repro.ml.tree_engine.VectorizedTreeEngine`) is a thin shim
over this layout.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.backend.base import (
    ExecutionBackend,
    Kernel,
    merge_vectors,
    require_groupby,
    require_multi,
    require_plain,
)
from repro.backend.column_store import ColumnStore, column_store
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, MultiBatchPlan, NodePlan
from repro.db.database import Database
from repro.runtime.rings import v_add

#: Root rows per execution block.  Blocks are the unit the sharded
#: executor distributes; single-shot execution folds the same blocks in
#: the same order, which is what makes sharded numpy bit-identical to
#: single-shot.  Larger than the generated-Python block size because
#: each block costs a few array slices regardless of its length.
DEFAULT_NUMPY_BLOCK_SIZE = 16384


def _ordered_sum(values: np.ndarray) -> float:
    """Sequential left-to-right sum (the engines' addition order).

    ``np.sum`` uses pairwise summation, which re-associates float
    additions; a single-bin ``bincount`` accumulates in array order,
    matching the tuple-at-a-time scans bit for bit.
    """
    if values.size == 0:
        return 0.0
    return float(
        np.bincount(np.zeros(values.size, dtype=np.intp), weights=values, minlength=1)[0]
    )


@dataclass
class _NodeView:
    """One plan node's view of the shared columnar store."""

    plan_node: NodePlan
    store: ColumnStore
    children: list["_NodeView"] = field(default_factory=list)
    #: relation names of this node's whole subtree (for mask scoping)
    subtree_relations: frozenset[str] = frozenset()
    #: structural identity of the subtree's evaluation (relation, keys,
    #: owned columns, children) — equal keys produce equal value arrays,
    #: so rerooted plans share subtree results through the store
    scan_key: tuple = ()
    #: per row: dense code of this node's parent_key tuple (non-root)
    key_codes: np.ndarray | None = None
    #: number of distinct parent_key tuples (size of the code table)
    n_keys: int = 0
    #: code → a representative row holding that key (last occurrence)
    key_row: np.ndarray | None = None
    #: True when every key code maps to exactly one row (FK-style join)
    keys_unique: bool = True
    #: per child: this node's rows → child key-table code (-1 dangling)
    child_codes: list[np.ndarray] = field(default_factory=list)

    @property
    def relation(self) -> str:
        return self.plan_node.relation

    @property
    def records(self) -> list:
        return self.store.records(self.plan_node.relation)

    @property
    def n_rows(self) -> int:
        return self.store.n_rows(self.plan_node.relation)

    @property
    def mult(self) -> np.ndarray:
        return self.store.mult(self.plan_node.relation)

    def float_col(self, attr: str) -> np.ndarray:
        return self.store.float_col(self.plan_node.relation, attr)

    def raw_col(self, attr: str) -> np.ndarray:
        """Natural-dtype column (ints stay ints; used for coded features)."""
        return self.store.raw_col(self.plan_node.relation, attr)


class PreparedLayout:
    """A per-plan view over the shared per-database :class:`ColumnStore`.

    Everything heavy — row lists, multiplicity and attribute columns,
    join-key codings, group codings — is memoized in the store and
    shared across every plan over the same database; the view only
    wires the plan tree to those arrays, so construction after the
    first plan is loop-free.  The paper does not count load/indexing
    time and neither do the benchmarks.
    """

    def __init__(self, db: Database, plan: BatchPlan, store: ColumnStore | None = None):
        self.plan = plan
        self.store = store if store is not None else column_store(db)
        # Snapshotted wiring (key/child/group code arrays) is only valid
        # for this store version; streaming ingest bumps the version and
        # the layout cache rebuilds the thin view (see prepared_layout).
        self.data_version = self.store.data_version
        self.nodes: dict[str, _NodeView] = {}
        self._parents: dict[str, tuple[str, int]] = {}
        self._fact_index: dict[str, np.ndarray] = {}
        self.root = self._view(plan.root)
        if plan.group_attr is not None:
            self.group_keys, self.group_codes = self.store.column_coding(
                plan.root.relation, plan.group_attr
            )

    # -- construction ----------------------------------------------------

    def _view(self, plan_node: NodePlan) -> _NodeView:
        node = _NodeView(plan_node=plan_node, store=self.store)
        self.nodes[plan_node.relation] = node
        for ci, child_plan in enumerate(plan_node.children):
            child = self._view(child_plan)
            coding = self.store.key_coding(child_plan.relation, child_plan.parent_key)
            child.key_codes = coding.codes
            child.n_keys = coding.n_keys
            child.key_row = coding.key_row
            child.keys_unique = coding.unique
            node.child_codes.append(
                self.store.parent_codes(
                    plan_node.relation, child_plan.relation, child_plan.parent_key
                )
            )
            node.children.append(child)
            self._parents[child_plan.relation] = (plan_node.relation, ci)
        node.subtree_relations = frozenset(
            {plan_node.relation}.union(*(c.subtree_relations for c in node.children))
            if node.children
            else {plan_node.relation}
        )
        node.scan_key = (
            plan_node.relation,
            plan_node.parent_key,
            tuple(plan_node.owned_per_spec),
            tuple(c.scan_key for c in node.children),
        )
        return node

    # -- predicate masks --------------------------------------------------

    def predicate_masks(self, predicates) -> dict[str, np.ndarray]:
        """Per-relation alive masks for δ conditions (see the store)."""
        return self.store.predicate_masks(predicates, self.nodes)

    # -- bottom-up evaluation ---------------------------------------------

    def node_values(
        self,
        masks: Mapping[str, np.ndarray] | None = None,
        shared: dict | None = None,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Per-root-row aggregate value arrays and the alive mask.

        ``shared`` is an optional cross-plan memo (keyed by structural
        scan keys) for evaluations under the *same* masks — the fused
        multi-plan execution passes one dict per call so rerooted
        member plans share the subtrees they have in common.
        """
        return self._node_values(self.root, masks or {}, shared)

    def _node_values(
        self,
        node: _NodeView,
        masks: Mapping[str, np.ndarray],
        shared: dict | None = None,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Per-row aggregate value arrays and the alive mask.

        Mirrors the engine's merged scan: value = multiplicity × owned
        attributes × child partials (in that order), dead where a child
        view has no entry for the row's key.

        Subtrees that no mask touches evaluate to the same arrays on
        every call, so their results are memoized on the **store**,
        keyed structurally — the static-memoization/code-motion pass
        applied at runtime, shared by every plan over the database.
        During tree fitting only the relations on a node's δ path
        re-evaluate; everything else (including the whole tree at the
        unconditioned root node) is a cache hit.  Callers treat the
        returned arrays as read-only, which every fold here does
        (boolean indexing and fresh products only).
        """
        if not any(rel in masks for rel in node.subtree_relations):
            cache = self.store.eval_cache
            cached = cache.get(node.scan_key)
            if cached is None:
                cached = self._eval_node(node, {}, None)
                cache[node.scan_key] = cached
            return cached
        if shared is not None:
            cached = shared.get(node.scan_key)
            if cached is None:
                cached = self._eval_node(node, masks, shared)
                shared[node.scan_key] = cached
            return cached
        return self._eval_node(node, masks, shared)

    def _eval_node(
        self,
        node: _NodeView,
        masks: Mapping[str, np.ndarray],
        shared: dict | None,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        pred_mask = masks.get(node.relation)
        alive = (
            pred_mask.copy()
            if pred_mask is not None
            else np.ones(node.n_rows, dtype=bool)
        )
        vals: list[np.ndarray] = []
        for owned in node.plan_node.owned_per_spec:
            v = node.mult.copy()
            for a in owned:
                v *= node.float_col(a)
            vals.append(v)

        for ci, child in enumerate(node.children):
            c_vals, c_alive = self._node_values(child, masks, shared)
            codes = node.child_codes[ci]
            if child.n_keys == 0:
                alive[:] = False
                continue
            ckeys = child.key_codes[c_alive]
            present = np.bincount(ckeys, minlength=child.n_keys) > 0
            safe = np.where(codes >= 0, codes, 0)
            alive &= (codes >= 0) & present[safe]
            for i, cv in enumerate(c_vals):
                view = np.bincount(ckeys, weights=cv[c_alive], minlength=child.n_keys)
                vals[i] = vals[i] * view[safe]
        return vals, alive

    def node_values_range(
        self,
        lo: int,
        hi: int,
        masks: Mapping[str, np.ndarray] | None = None,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Root-row value arrays restricted to rows ``[lo, hi)``.

        The delta-run workhorse: every root-level operation in
        :meth:`_eval_node` is elementwise along the root axis (copy,
        column products, child-view gathers, alive conjunction), so the
        sliced evaluation is **bitwise equal** to evaluating all rows
        and slicing — which is what makes delta runs bit-identical to
        full recomputes.  Children evaluate in full (they are unchanged
        by a root append and hit the store's eval cache when unmasked).
        """
        masks = masks or {}
        node = self.root
        pred_mask = masks.get(node.relation)
        alive = (
            pred_mask[lo:hi].copy()
            if pred_mask is not None
            else np.ones(hi - lo, dtype=bool)
        )
        vals: list[np.ndarray] = []
        for owned in node.plan_node.owned_per_spec:
            v = node.mult[lo:hi].copy()
            for a in owned:
                v *= node.float_col(a)[lo:hi]
            vals.append(v)
        for ci, child in enumerate(node.children):
            c_vals, c_alive = self._node_values(child, masks, None)
            codes = node.child_codes[ci][lo:hi]
            if child.n_keys == 0:
                alive[:] = False
                continue
            ckeys = child.key_codes[c_alive]
            present = np.bincount(ckeys, minlength=child.n_keys) > 0
            safe = np.where(codes >= 0, codes, 0)
            alive &= (codes >= 0) & present[safe]
            for i, cv in enumerate(c_vals):
                view = np.bincount(ckeys, weights=cv[c_alive], minlength=child.n_keys)
                vals[i] = vals[i] * view[safe]
        return vals, alive

    # -- fact-aligned view (the tree learner's representation) -----------

    def fact_index(self, relation: str) -> np.ndarray:
        """For each root (fact) row, the joining row of ``relation``.

        Composed by chaining parent→child key codes down the tree; only
        valid for unique-key (FK-style) joins, and raises on dangling
        keys — a fact row must join exactly one tuple per relation.
        """
        cached = self._fact_index.get(relation)
        if cached is not None:
            return cached
        if relation == self.root.relation:
            index = np.arange(self.root.n_rows, dtype=np.intp)
        else:
            parent_name, ci = self._parents[relation]
            parent = self.nodes[parent_name]
            child = parent.children[ci]
            codes = parent.child_codes[ci][self.fact_index(parent_name)]
            if codes.size and codes.min() < 0:
                raise ValueError(
                    f"dangling foreign keys: fact rows join no {relation} tuple"
                )
            index = child.key_row[codes]
        self._fact_index[relation] = index
        return index

    def fact_column(self, relation: str, attr: str) -> np.ndarray:
        """A column of ``relation`` broadcast to fact-row alignment."""
        return self.nodes[relation].raw_col(attr)[self.fact_index(relation)]


# -- block-structured group folds -------------------------------------------


def _groupby_block_partial(
    vals: Sequence[np.ndarray],
    alive: np.ndarray,
    group_codes: np.ndarray,
    n_groups: int,
    lo: int,
    hi: int,
) -> tuple[np.ndarray | None, np.ndarray, list[np.ndarray]]:
    """One block's per-group partial: (codes, alive-row counts, sums).

    Dense (codes ``None``; arrays span the full group range) when the
    group count is comparable to the block, **sparse** (arrays indexed
    by the block's own sorted present codes) when the grouping column
    has many more groups than a block has rows — a near-unique CART
    feature must not pay O(blocks × groups) zero-filled bincounts.
    Within a block both shapes accumulate each group's rows in row
    order, and the choice depends only on (n_groups, block length),
    never on the shard count, so the merged results are identical.
    """
    mask = alive[lo:hi]
    codes = group_codes[lo:hi][mask]
    if n_groups <= 4 * (hi - lo):
        counts = np.bincount(codes, minlength=n_groups)
        sums = [
            np.bincount(codes, weights=v[lo:hi][mask], minlength=n_groups)
            for v in vals
        ]
        return None, counts, sums
    present = np.unique(codes)
    compact = np.searchsorted(present, codes)
    counts = np.bincount(compact, minlength=len(present))
    sums = [
        np.bincount(compact, weights=v[lo:hi][mask], minlength=len(present))
        for v in vals
    ]
    return present, counts, sums


def _merge_groupby_partials(
    group_keys: list,
    partials: Sequence[tuple[np.ndarray | None, np.ndarray, list[np.ndarray]]],
) -> dict:
    """Fold block partials in canonical block order into the group dict.

    A group is present when any block saw an alive row for it (matching
    the engine's sparse dictionaries); the fold is strictly
    left-to-right in block order per group, so any execution producing
    the same ordered partial list — single-shot or sharded — merges to
    the same result bit for bit.
    """
    n_groups = len(group_keys)
    if not n_groups or not partials:
        return {}
    counts = np.zeros(n_groups, dtype=np.int64)
    sums: list[np.ndarray] | None = None
    for present, block_counts, block_sums in partials:
        if sums is None:
            sums = [np.zeros(n_groups) for _ in block_sums]
        if present is None:
            counts += block_counts
            for i, s in enumerate(block_sums):
                sums[i] += s
        else:
            counts[present] += block_counts
            for i, s in enumerate(block_sums):
                sums[i][present] += s
    assert sums is not None
    return {
        group_keys[g]: [float(s[g]) for s in sums] for g in np.flatnonzero(counts > 0)
    }


# -- delta maintenance (streaming ingest) -----------------------------------
#
# A maintained result is the block fold *paused before the incomplete
# trailing block*: the fold of all complete-block partials (left to
# right in canonical order) plus the trailing partial kept separate.
# A pure append to the root relation only ever changes rows from the
# aligned base ``(old_n // block) * block`` onward, so a delta run
# re-evaluates exactly those rows, folds the newly completed blocks
# into the stored prefix and replaces the tail — reproducing the float
# association of a full recompute bit for bit (see
# ``PreparedLayout.node_values_range`` for the per-row argument).


@dataclass(frozen=True)
class DeltaVectorState:
    """Maintained state of a plain (scalar-batch) aggregate result."""

    fingerprint: str
    #: root rows covered by this state
    n_rows: int
    #: left-to-right fold of all complete-block partials (None: none yet)
    complete: list[float] | None
    #: the trailing incomplete block's partial (None: n_rows is aligned)
    tail: list[float] | None


@dataclass(frozen=True)
class DeltaGroupState:
    """Maintained state of a group-by aggregate result.

    ``counts``/``sums`` accumulate the complete-block partials exactly
    like :func:`_merge_groupby_partials` does; group codes are stable
    under store extension (new groups get fresh codes at the end), so
    when the group table grows the arrays zero-extend — bitwise
    equivalent to the zero-filled bincounts a full recompute adds.
    """

    fingerprint: str
    n_rows: int
    #: group-table size the arrays span
    n_groups: int
    counts: np.ndarray
    sums: list[np.ndarray]
    #: trailing incomplete block's (present, counts, sums) partial
    tail: tuple[np.ndarray | None, np.ndarray, list[np.ndarray]] | None
    #: the *list object* the arrays are coded against.  Store extension
    #: appends to this same list in place, so identity tracks coding
    #: lineage: a rebuilt store makes a new (sorted) list, and folding
    #: this state against it would scatter groups to wrong slots —
    #: delta runs check identity and refuse (→ full recompute).
    group_keys: list = field(default_factory=list)


def delta_ranges(old_n: int, new_n: int, size: int) -> list[tuple[int, int]]:
    """Canonical block ranges covering ``[aligned_base(old_n), new_n)``.

    These are exactly the trailing ranges of ``block_ranges(new_n)``
    that a pure root append can have touched: the last old block (if it
    was incomplete) plus every new block.
    """
    size = max(1, size)
    base = (old_n // size) * size
    return [(lo, min(lo + size, new_n)) for lo in range(base, new_n, size)]


def fold_vector_state(
    prev: DeltaVectorState | None,
    partials: Sequence[list[float]],
    ranges: Sequence[tuple[int, int]],
    new_n: int,
    size: int,
    fingerprint: str,
) -> DeltaVectorState:
    """Advance (or create) a plain maintained state from block partials.

    ``partials`` must be in canonical block order and cover exactly the
    delta ranges (all blocks when ``prev`` is None); the previous tail
    is discarded — its block is always within the recomputed range.
    """
    complete = list(prev.complete) if prev is not None and prev.complete else None
    tail: list[float] | None = None
    size = max(1, size)
    for (lo, hi), part in zip(ranges, partials):
        if hi - lo == size:
            if complete is None:
                complete = list(part)
            else:
                complete = [v_add(a, b) for a, b in zip(complete, part)]
        else:
            tail = list(part)
    return DeltaVectorState(
        fingerprint=fingerprint, n_rows=new_n, complete=complete, tail=tail
    )


def serve_vector_state(state: DeltaVectorState, num_aggregates: int) -> list[float]:
    """The maintained result: fold the stored prefix with the tail."""
    parts = [p for p in (state.complete, state.tail) if p is not None]
    if not parts:
        return [0.0] * num_aggregates
    return merge_vectors(parts)


def _add_group_partial(
    counts: np.ndarray,
    sums: list[np.ndarray],
    partial: tuple[np.ndarray | None, np.ndarray, list[np.ndarray]],
) -> None:
    present, block_counts, block_sums = partial
    if present is None:
        counts += block_counts
        for i, s in enumerate(block_sums):
            sums[i] += s
    else:
        counts[present] += block_counts
        for i, s in enumerate(block_sums):
            sums[i][present] += s


def fold_group_state(
    prev: DeltaGroupState | None,
    partials: Sequence[tuple],
    ranges: Sequence[tuple[int, int]],
    new_n: int,
    group_keys: list,
    num_aggregates: int,
    size: int,
    fingerprint: str,
) -> DeltaGroupState:
    """Advance (or create) a group-by maintained state from partials."""
    n_groups = len(group_keys)
    if prev is None:
        counts = np.zeros(n_groups, dtype=np.int64)
        sums = [np.zeros(n_groups) for _ in range(num_aggregates)]
    else:
        grow = n_groups - len(prev.counts)
        if grow > 0:
            counts = np.concatenate([prev.counts, np.zeros(grow, dtype=np.int64)])
            sums = [np.concatenate([s, np.zeros(grow)]) for s in prev.sums]
        else:
            counts = prev.counts.copy()
            sums = [s.copy() for s in prev.sums]
    tail = None
    size = max(1, size)
    for (lo, hi), part in zip(ranges, partials):
        if hi - lo == size:
            _add_group_partial(counts, sums, part)
        else:
            tail = part
    return DeltaGroupState(
        fingerprint=fingerprint,
        n_rows=new_n,
        n_groups=n_groups,
        counts=counts,
        sums=sums,
        tail=tail,
        group_keys=group_keys,
    )


def canonical_group_keys(store: ColumnStore, relation: str, attr: str) -> list:
    """The group-key table a **fresh** store build produces.

    Equal to :meth:`ColumnStore.column_coding`'s key list until a delta
    extension appends unseen group values (which get codes at the end
    for state stability, breaking the fresh build's sorted order).
    Worker processes re-pickling a mutated database rebuild their
    stores from scratch, so their partials are indexed by *this* table;
    the parent remaps them (:func:`remap_group_partials`) when its own
    extended coding deviates.
    """
    col = store.raw_col(relation, attr)
    try:
        return np.unique(col).tolist()
    except TypeError:
        table: dict = {}
        for rec in store.records(relation):
            table.setdefault(rec[attr], len(table))
        return list(table)


def remap_group_partials(
    partials: Sequence[tuple],
    source_keys: list,
    target_keys: list,
) -> list[tuple]:
    """Re-index group partials from one code numbering to another.

    A pure permutation scatter: per-group values are untouched (group
    folds are invariant under code renumbering), only their positions
    move, so bit-identity survives the remap.
    """
    if source_keys == target_keys:
        return list(partials)
    index = {k: i for i, k in enumerate(target_keys)}
    perm = np.array([index[k] for k in source_keys], dtype=np.intp)
    n_groups = len(target_keys)
    out: list[tuple] = []
    for present, counts, sums in partials:
        if present is None:
            new_counts = np.zeros(n_groups, dtype=counts.dtype)
            new_counts[perm] = counts
            new_sums = []
            for s in sums:
                a = np.zeros(n_groups, dtype=s.dtype)
                a[perm] = s
                new_sums.append(a)
            out.append((None, new_counts, new_sums))
        else:
            out.append((perm[present], counts, sums))
    return out


def check_delta_state(kernel: Kernel, state) -> None:
    """Guard against folding a maintained state into a foreign kernel."""
    if state.fingerprint != kernel.fingerprint:
        raise ValueError(
            f"delta state belongs to kernel {state.fingerprint}, "
            f"not {kernel.fingerprint}"
        )


def check_store_current(layout, db: Database) -> None:
    """Guard against a delta run over a store the database has outrun.

    ``append_rows`` without a matching ``ColumnStore.extend_relation``
    leaves the store's root-scan snapshot short of the live relation;
    the delta range computed from it would then be empty and the run
    would silently serve the pre-append result.  Refusing makes the
    append contract (db/relation.py → store extension → delta fold)
    loud at the one entry point where the mismatch is detectable.
    """
    root = layout.plan.root.relation
    live = len(db.relation(root).data)
    if layout.root.n_rows != live:
        raise ValueError(
            f"column store is stale for {root!r}: {layout.root.n_rows} rows "
            f"in the store vs {live} in the database — call "
            "ColumnStore.extend_relation after append_rows"
        )


def check_group_coding(state: DeltaGroupState, group_keys: list) -> None:
    """Guard against folding group arrays across a store rebuild.

    The state's arrays are indexed by the group coding of the store
    lineage that built them; extension mutates that key list in place,
    so identity survives appends — but an evicted-and-rebuilt store
    makes a fresh (sorted) list whose codes need not match once unseen
    group values were appended.  Refusing here turns a silent misfold
    into a recoverable error (callers fall back to a full recompute).
    """
    if state.group_keys is not group_keys:
        raise ValueError(
            "delta group state was built against a different group coding "
            "(column store rebuilt?); run a full maintained recompute"
        )


def serve_group_state(state: DeltaGroupState, group_keys: list) -> dict:
    """The maintained group dict: stored arrays plus the tail partial."""
    counts, sums = state.counts, state.sums
    if state.tail is not None:
        counts = counts.copy()
        sums = [s.copy() for s in sums]
        _add_group_partial(counts, sums, state.tail)
    return {
        group_keys[g]: [float(s[g]) for s in sums] for g in np.flatnonzero(counts > 0)
    }


@dataclass
class NumpyBackend(ExecutionBackend):
    """Columnar ndarray evaluation of batch plans.

    The fastest pure-Python path: beats the generated-Python kernels
    without needing a C++ toolchain, and shards under
    :class:`~repro.backend.parallel.ShardedBackend` bit-identically via
    the block protocol (the shared :class:`ColumnStore` is prepared
    once and worker threads fold disjoint root-row blocks).
    """

    block_size: int = DEFAULT_NUMPY_BLOCK_SIZE

    name = "numpy"

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        # The "kernel" is the plan itself: lowering happens against the
        # shared columnar store, viewed per plan and cached per kernel.
        return Kernel(
            backend=self.name,
            fingerprint=plan.fingerprint(layout, self.kernel_key),
            plan=plan,
            layout=layout,
            source=None,
            entry=None,
            meta={
                "supports_blocks": not plan.is_groupby,
                "supports_groupby_blocks": plan.is_groupby,
            },
        )

    def compile_multi(
        self, mplan: MultiBatchPlan, layout: LayoutOptions, members: list[Kernel]
    ) -> Kernel:
        """Bundle member kernels and precompute the scan-sharing groups.

        Members with equal scan fingerprints (features owned by the same
        relation, same batch) are fused: one bottom-up value pass serves
        all of them at execution time.
        """
        kernel = super().compile_multi(mplan, layout, members)
        scan_groups: dict[str, list[int]] = {}
        for i, plan in enumerate(mplan.plans):
            scan_groups.setdefault(plan.scan_fingerprint(), []).append(i)
        kernel.meta["scan_groups"] = list(scan_groups.values())
        return kernel

    # -- layout cache ------------------------------------------------------

    def prepared_layout(self, kernel: Kernel, db: Database) -> PreparedLayout:
        """The per-plan view for (kernel.plan, db), cached on the kernel.

        Keyed by database identity; the weak reference both guards
        against id reuse and evicts the view when the database is
        collected.  The heavy arrays live in the process-wide
        :func:`~repro.backend.column_store.column_store` for the
        database, so even a cache miss here (a fresh kernel over a
        known database) only rebuilds the thin plan wiring.
        """
        slot = kernel.meta.setdefault("numpy_layouts", {})
        entry = slot.get(id(db))
        if entry is not None:
            db_ref, layout = entry
            # The store-identity check keeps eviction honest: after
            # evict_column_store(db) (the serving layer's byte-budget
            # trim) a cached view still pins the dead store's arrays, so
            # rebuild against the database's *current* store instead.
            # The version check keeps ingest honest: delta extension
            # replaces the store's code arrays, so a snapshot taken
            # before the extension wires stale arrays.
            if (
                db_ref() is db
                and layout.store is column_store(db)
                and layout.data_version == layout.store.data_version
            ):
                return layout
        layout = PreparedLayout(db, kernel.plan)
        key = id(db)
        slot[key] = (weakref.ref(db, lambda _ref: slot.pop(key, None)), layout)
        return layout

    # -- block protocol (consumed by ShardedBackend) ---------------------

    def prepare(self, kernel: Kernel, db: Database):
        """Evaluate the bottom-up pass once; blocks fold the root rows."""
        layout = self.prepared_layout(kernel, db)
        vals, alive = layout.node_values()
        return layout, (vals, alive), layout.root.n_rows

    def block_ranges(self, n_rows: int) -> list[tuple[int, int]]:
        if n_rows <= 0:
            return []
        size = max(1, self.block_size)
        return [(lo, min(lo + size, n_rows)) for lo in range(0, n_rows, size)]

    def run_block(self, kernel: Kernel, data, views, lo: int, hi: int) -> list[float]:
        vals, alive = views
        mask = alive[lo:hi]
        return [_ordered_sum(v[lo:hi][mask]) for v in vals]

    # -- group-by block protocol ------------------------------------------

    def prepare_groupby(self, kernel: Kernel, db: Database, predicates=None):
        """Shared state for block-structured group-by execution."""
        layout = self.prepared_layout(kernel, db)
        vals, alive = layout.node_values(layout.predicate_masks(predicates))
        return (layout, vals, alive), layout.root.n_rows

    def run_groupby_block(self, kernel: Kernel, state, lo: int, hi: int):
        layout, vals, alive = state
        return _groupby_block_partial(
            vals, alive, layout.group_codes, len(layout.group_keys), lo, hi
        )

    def merge_groupby_blocks(self, kernel: Kernel, state, partials) -> dict:
        layout = state[0]
        return _merge_groupby_partials(layout.group_keys, partials)

    # -- delta protocol (streaming ingest) --------------------------------

    def supports_delta(self) -> bool:
        return True

    def prepare_delta(self, kernel: Kernel, db: Database, old_n: int):
        """Shared state for plain delta blocks over ``[base, new_n)``.

        ``base`` is the aligned start of ``delta_ranges(old_n, ...)``;
        the returned value arrays are indexed relative to it.
        """
        layout = self.prepared_layout(kernel, db)
        check_store_current(layout, db)
        new_n = layout.root.n_rows
        size = max(1, self.block_size)
        base = min((old_n // size) * size, new_n)
        vals, alive = layout.node_values_range(base, new_n)
        return (base, vals, alive), new_n

    def run_delta_block(self, kernel: Kernel, dstate, lo: int, hi: int) -> list[float]:
        base, vals, alive = dstate
        mask = alive[lo - base:hi - base]
        return [_ordered_sum(v[lo - base:hi - base][mask]) for v in vals]

    def prepare_groupby_delta(self, kernel: Kernel, db: Database, old_n: int, predicates=None):
        layout = self.prepared_layout(kernel, db)
        check_store_current(layout, db)
        new_n = layout.root.n_rows
        size = max(1, self.block_size)
        base = min((old_n // size) * size, new_n)
        masks = layout.predicate_masks(predicates)
        vals, alive = layout.node_values_range(base, new_n, masks)
        return (layout, base, vals, alive), new_n

    def run_groupby_delta_block(self, kernel: Kernel, dstate, lo: int, hi: int):
        layout, base, vals, alive = dstate
        return _groupby_block_partial(
            vals,
            alive,
            layout.group_codes[base:],
            len(layout.group_keys),
            lo - base,
            hi - base,
        )

    def run_maintained(
        self, kernel: Kernel, db: Database
    ) -> tuple[dict[str, float], DeltaVectorState]:
        """Full run that also returns the maintained state for deltas."""
        require_plain(kernel)
        data, views, n_rows = self.prepare(kernel, db)
        ranges = self.block_ranges(n_rows)
        partials = [
            self.run_block(kernel, data, views, lo, hi) for lo, hi in ranges
        ]
        state = fold_vector_state(
            None, partials, ranges, n_rows, self.block_size, kernel.fingerprint
        )
        result = kernel.result_dict(
            serve_vector_state(state, kernel.plan.num_aggregates)
        )
        return result, state

    def run_delta(
        self, kernel: Kernel, db: Database, state: DeltaVectorState
    ) -> tuple[dict[str, float], DeltaVectorState]:
        """Fold the appended root rows into a maintained plain result.

        The caller guarantees the only change since ``state`` was taken
        is a pure append to the plan's root relation (anything else —
        non-root changes, multiplicity bumps — needs a full recompute).
        """
        require_plain(kernel)
        check_delta_state(kernel, state)
        dstate, new_n = self.prepare_delta(kernel, db, state.n_rows)
        if new_n < state.n_rows:
            raise ValueError("delta state is ahead of the database (rows shrank)")
        ranges = delta_ranges(state.n_rows, new_n, self.block_size)
        partials = [
            self.run_delta_block(kernel, dstate, lo, hi) for lo, hi in ranges
        ]
        new_state = fold_vector_state(
            state, partials, ranges, new_n, self.block_size, kernel.fingerprint
        )
        result = kernel.result_dict(
            serve_vector_state(new_state, kernel.plan.num_aggregates)
        )
        return result, new_state

    def run_groupby_maintained(
        self, kernel: Kernel, db: Database, predicates=None
    ) -> tuple[dict, DeltaGroupState]:
        """Full group-by run that also returns the maintained state."""
        require_groupby(kernel)
        gb_state, n_rows = self.prepare_groupby(kernel, db, predicates)
        layout = gb_state[0]
        ranges = self.block_ranges(n_rows)
        partials = [
            self.run_groupby_block(kernel, gb_state, lo, hi) for lo, hi in ranges
        ]
        state = fold_group_state(
            None,
            partials,
            ranges,
            n_rows,
            layout.group_keys,
            kernel.plan.num_aggregates,
            self.block_size,
            kernel.fingerprint,
        )
        return serve_group_state(state, layout.group_keys), state

    def run_groupby_delta(
        self, kernel: Kernel, db: Database, state: DeltaGroupState, predicates=None
    ) -> tuple[dict, DeltaGroupState]:
        """Fold appended root rows into a maintained group-by result."""
        require_groupby(kernel)
        check_delta_state(kernel, state)
        dstate, new_n = self.prepare_groupby_delta(
            kernel, db, state.n_rows, predicates
        )
        if new_n < state.n_rows:
            raise ValueError("delta state is ahead of the database (rows shrank)")
        layout = dstate[0]
        check_group_coding(state, layout.group_keys)
        ranges = delta_ranges(state.n_rows, new_n, self.block_size)
        partials = [
            self.run_groupby_delta_block(kernel, dstate, lo, hi)
            for lo, hi in ranges
        ]
        new_state = fold_group_state(
            state,
            partials,
            ranges,
            new_n,
            layout.group_keys,
            kernel.plan.num_aggregates,
            self.block_size,
            kernel.fingerprint,
        )
        return serve_group_state(new_state, layout.group_keys), new_state

    # -- cross-process merge hooks ----------------------------------------

    def groupby_group_keys(self, kernel: Kernel, db: Database) -> list:
        """The kernel's group-key table, computed against the *local*
        store.  Column codings are deterministic functions of the data,
        so a worker process folding blocks of its pickled copy produces
        partials indexed by exactly this table — which is what lets the
        parent merge remote partials without shipping key tables back.
        The *canonical* (fresh-build) table is returned, not the local
        store's possibly delta-extended one: workers rebuild their
        stores from scratch after an ingest re-pickles the database.
        """
        require_groupby(kernel)
        return canonical_group_keys(
            column_store(db), kernel.plan.root.relation, kernel.plan.group_attr
        )

    def merge_groupby_partials(self, group_keys: list, partials) -> dict:
        """Merge block partials (local or remote) in canonical order."""
        return _merge_groupby_partials(group_keys, partials)

    # -- execution ---------------------------------------------------------

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        require_plain(kernel)
        data, views, n_rows = self.prepare(kernel, db)
        if n_rows == 0:
            return kernel.result_dict([0.0] * kernel.plan.num_aggregates)
        partials = [
            self.run_block(kernel, data, views, lo, hi)
            for lo, hi in self.block_ranges(n_rows)
        ]
        return kernel.result_dict(merge_vectors(partials))

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        require_groupby(kernel)
        state, n_rows = self.prepare_groupby(kernel, db, predicates)
        partials = [
            self.run_groupby_block(kernel, state, lo, hi)
            for lo, hi in self.block_ranges(n_rows)
        ]
        return self.merge_groupby_blocks(kernel, state, partials)

    def run_groupby_many(
        self, kernel: Kernel, db: Database, predicates=None
    ) -> list[dict]:
        """Fused multi-plan group-by: one value pass per scan group.

        Per member the fold is the exact block-structured fold
        :meth:`run_groupby` performs, over the exact arrays the member's
        own layout would produce (scan-sharing is keyed by
        :meth:`~repro.backend.plan.BatchPlan.scan_fingerprint`, which
        pins the value pass), so fused results are element-wise
        identical to issuing the member plans separately.
        """
        require_multi(kernel)
        members: list[Kernel] = kernel.entry
        store = column_store(db)
        relations = {
            node.relation for m in members for node in m.plan.root.walk()
        }
        masks = store.predicate_masks(predicates, relations)
        results: list[dict | None] = [None] * len(members)
        scan_groups = kernel.meta.get(
            "scan_groups", [[i] for i in range(len(members))]
        )
        # Rerooted member plans share most subtrees verbatim; this memo
        # lets their masked evaluations meet across scan groups (the
        # predicate-free ones already meet in the store's eval cache).
        shared: dict = {}
        for group in scan_groups:
            rep_layout = self.prepared_layout(members[group[0]], db)
            vals, alive = rep_layout.node_values(masks, shared)
            ranges = self.block_ranges(rep_layout.root.n_rows)
            for mi in group:
                layout = self.prepared_layout(members[mi], db)
                partials = [
                    _groupby_block_partial(
                        vals, alive, layout.group_codes, len(layout.group_keys), lo, hi
                    )
                    for lo, hi in ranges
                ]
                results[mi] = _merge_groupby_partials(layout.group_keys, partials)
        return results
