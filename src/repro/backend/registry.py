"""The execution-backend registry.

Backends are registered under short names and resolved once per
compiler instance — including environment-dependent decisions such as
"``cpp`` requested but no g++ on PATH → generated Python", which used
to be re-probed at every call site.  Callers can pass either a
registered name or a ready :class:`ExecutionBackend` instance anywhere
a backend is accepted.

Factories receive the resolution context as keyword arguments (the
driver passes ``aggregate_mode`` and ``query``); each factory picks the
keys it understands and ignores the rest, so one ``get_backend`` call
site serves every backend.
"""

from __future__ import annotations

from typing import Callable

from repro.backend.base import ExecutionBackend
from repro.backend.compile_cpp import gxx_available
from repro.backend.executors import (
    DEFAULT_BLOCK_SIZE,
    CppKernelBackend,
    EngineBackend,
    PythonKernelBackend,
)


class BackendResolutionError(KeyError):
    """No backend is registered under the requested name."""


_REGISTRY: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    *,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name requires ``replace=True`` so typos
    don't silently shadow built-ins.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_backend(spec: str | ExecutionBackend, **context) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    This is the single place environment fallbacks are decided: the
    returned instance never re-probes the toolchain at execution time.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"backend must be a name or an ExecutionBackend, got {type(spec).__name__}"
        )
    try:
        factory = _REGISTRY[spec]
    except KeyError:
        raise BackendResolutionError(
            f"unknown backend {spec!r}; registered: {', '.join(available_backends())}"
        ) from None
    return factory(**context)


# -- built-ins ------------------------------------------------------------


def _engine_factory(**context) -> ExecutionBackend:
    return EngineBackend(
        aggregate_mode=context.get("aggregate_mode", "trie"),
        query=context.get("query"),
    )


def _python_factory(**context) -> ExecutionBackend:
    return PythonKernelBackend(
        block_size=context.get("block_size", DEFAULT_BLOCK_SIZE)
    )


def _cpp_factory(**context) -> ExecutionBackend:
    # The C++ → Python fallback is decided here, exactly once per
    # resolution, instead of at every compile/execute call site.
    if gxx_available():
        return CppKernelBackend()
    return _python_factory(**context)


def _sharded_factory(**context) -> ExecutionBackend:
    from repro.backend.parallel import (
        DEFAULT_SHARDS,
        ShardedBackend,
        default_shard_mode,
    )

    own = ("inner", "shards", "mode", "executor")
    return ShardedBackend(
        inner=context.get("inner", "python"),
        shards=context.get("shards", DEFAULT_SHARDS),
        mode=context.get("mode", default_shard_mode()),
        executor=context.get("executor"),
        context={k: v for k, v in context.items() if k not in own},
    )


def _numpy_factory(**context) -> ExecutionBackend:
    from repro.backend.numpy_backend import DEFAULT_NUMPY_BLOCK_SIZE, NumpyBackend

    return NumpyBackend(
        block_size=context.get("block_size", DEFAULT_NUMPY_BLOCK_SIZE)
    )


register_backend("engine", _engine_factory)
register_backend("python", _python_factory)
register_backend("cpp", _cpp_factory)
register_backend("sharded", _sharded_factory)
register_backend("numpy", _numpy_factory)
