"""C++ code generation for aggregate-batch kernels (paper Section 4.4).

The final IFAQ layer: the physical plan is emitted as a self-contained
C++ program, compiled with ``g++ -O3`` and run as a subprocess.  The
program reads the prepared relations from a binary file (loading is
untimed, matching the paper's "we do not consider the time to load the
database into RAM"), computes the batch, and prints the elapsed
nanoseconds followed by the aggregate values.

Layout options map to representations:

* hash layout (default) — relations as ``std::unordered_map<int64_t,
  Row>`` keyed by a surrogate row id (the "dictionary from records to
  multiplicity" representation), views as ``std::unordered_map``;
* ``dict_to_array`` — relations as ``std::vector<Row>``;
* ``hash_trie`` — the root relation iterated in trie-group order with
  one hash-map view probe per group (Section 4.3's dictionary-to-trie
  with hash-table dictionaries);
* ``sorted_trie`` — the same trie with sorted views: parallel sorted
  key/payload vectors probed with merge cursors and
  ``std::lower_bound`` instead of hashing (Sorted Dictionary).

Join keys are integer attributes (the paper's datasets are likewise
indexed by integer surrogate keys); composite keys of up to two
attributes pack into a single int64 (Favorita's ``(date, store)`` and
Retailer's ``(locn, dateid)``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, NodePlan
from repro.db.database import Database


class CppBackendError(RuntimeError):
    """The plan cannot be lowered to the C++ backend."""


def _key_columns(node: NodePlan) -> set[str]:
    cols = set(node.parent_key)
    for key in node.child_keys:
        cols.update(key)
    return cols


def _check_plan(plan: BatchPlan) -> None:
    for node in plan.root.walk():
        if len(node.parent_key) > 2 or any(len(k) > 2 for k in node.child_keys):
            raise CppBackendError(
                f"C++ backend supports at most two-attribute join keys "
                f"(packed into one int64); {node.relation} violates this"
            )


def write_binary_data(db: Database, plan: BatchPlan, path: str, options: LayoutOptions) -> None:
    """Serialize relations in plan column order for the generated reader.

    Per relation: ``int64 n_rows`` then row-major values — ``int64`` for
    join-key columns, ``double`` otherwise, ``int64`` multiplicity last.
    Sorted layouts are sorted here, at (untimed) load time.
    """
    _check_plan(plan)
    with open(path, "wb") as fh:
        for node in plan.root.walk():
            keys = _key_columns(node)
            rel = db.relation(node.relation)
            rows = []
            for rec, mult in rel.data.items():
                rows.append(tuple(rec[a] for a in node.columns) + (mult,))
            if options.sorted_trie or options.hash_trie:
                if node.parent_key:
                    idx = [node.column_index(a) for a in node.parent_key]
                else:
                    idx = [
                        node.column_index(a)
                        for key in node.child_keys
                        for a in key
                    ]
                rows.sort(key=lambda r: tuple(r[i] for i in idx))
            fh.write(struct.pack("<q", len(rows)))
            fmt = "<" + "".join(
                "q" if col in keys else "d" for col in node.columns
            ) + "q"
            for row in rows:
                packed = [
                    int(v) if col in keys else float(v)
                    for v, col in zip(row[:-1], node.columns)
                ] + [int(row[-1])]
                fh.write(struct.pack(fmt, *packed))


def group_attr_is_key(plan: BatchPlan) -> bool:
    """Whether the group attribute travels as an int64 key column."""
    return plan.group_attr in _key_columns(plan.root)


@dataclass
class CppKernel:
    source: str


def generate_cpp_kernel(
    plan: BatchPlan,
    options: LayoutOptions,
    repetitions: int = 1,
    fingerprint: str | None = None,
) -> CppKernel:
    """Emit the C++ program for ``plan`` under ``options``.

    ``fingerprint`` (the plan's cache key) is embedded as a header
    comment so cached sources/binaries under the work directory can be
    traced back to the plan that produced them.
    """
    _check_plan(plan)
    gen = _CppGen(plan, options, repetitions, fingerprint)
    return CppKernel(source=gen.emit())


class _CppGen:
    def __init__(
        self,
        plan: BatchPlan,
        options: LayoutOptions,
        repetitions: int,
        fingerprint: str | None = None,
    ):
        self.plan = plan
        self.options = options
        self.repetitions = repetitions
        self.fingerprint = fingerprint
        self.lines: list[str] = []
        self.indent = 0
        self._view_counter = 0

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line)

    @property
    def trie_mode(self) -> bool:
        return self.options.sorted_trie or self.options.hash_trie

    # -- top level -------------------------------------------------------

    @property
    def groupby(self) -> bool:
        return self.plan.is_groupby

    def _group_is_key(self) -> bool:
        return group_attr_is_key(self.plan)

    def emit(self) -> str:
        ns = self.plan.num_aggregates
        self.w("// Generated by repro.backend.codegen_cpp — do not edit.")
        if self.fingerprint:
            self.w(f"// plan fingerprint: {self.fingerprint}")
        self.w("#include <cstdio>")
        self.w("#include <cstdint>")
        self.w("#include <cstddef>")
        self.w("#include <vector>")
        self.w("#include <array>")
        self.w("#include <unordered_map>")
        self.w("#include <algorithm>")
        self.w("#include <chrono>")
        self.w()
        self.w(f"static constexpr int NS = {ns};")
        self.w("using Payload = std::array<double, NS>;")
        if self.groupby:
            # Sorted-run/vector accumulator: per-group output buffers in
            # first-seen order with an unordered index, plus a last-slot
            # shortcut so runs of equal group keys (the trie scan visits
            # sorted row groups) skip the hash probe entirely.  Output
            # is sorted at print time, so the emitted lines stay
            # deterministic (the former std::map behaviour) without
            # paying a tree rebalance per accumulated row.
            gtype = "int64_t" if self._group_is_key() else "double"
            self.w(f"using GroupKey = {gtype};")
            self.w("struct Groups {")
            self.w("    std::vector<GroupKey> keys;")
            self.w("    std::vector<Payload> vals;")
            self.w("    std::unordered_map<GroupKey, size_t> index;")
            self.w("    GroupKey last_key{};")
            self.w("    size_t last_slot = (size_t)-1;")
            self.w("    Payload& slot(GroupKey k) {")
            self.w("        if (last_slot != (size_t)-1 && last_key == k) return vals[last_slot];")
            self.w("        auto it = index.find(k);")
            self.w("        size_t s;")
            self.w("        if (it == index.end()) {")
            self.w("            s = keys.size();")
            self.w("            index.emplace(k, s);")
            self.w("            keys.push_back(k);")
            self.w("            vals.push_back(Payload{});")
            self.w("        } else {")
            self.w("            s = it->second;")
            self.w("        }")
            self.w("        last_key = k;")
            self.w("        last_slot = s;")
            self.w("        return vals[s];")
            self.w("    }")
            self.w("};")
        self.w()
        for node in self.plan.root.walk():
            self._emit_row_struct(node)
        self.w("static int64_t read_i64(FILE* f) { int64_t v; fread(&v, 8, 1, f); return v; }")
        self.w("static double read_f64(FILE* f) { double v; fread(&v, 8, 1, f); return v; }")
        self.w()
        self._emit_readers()
        self._emit_kernel()
        self._emit_main()
        return "\n".join(self.lines) + "\n"

    def _struct_name(self, node: NodePlan) -> str:
        return f"Row_{node.relation}"

    def _emit_row_struct(self, node: NodePlan) -> None:
        keys = _key_columns(node)
        self.w(f"struct {self._struct_name(node)} {{")
        for col in node.columns:
            ctype = "int64_t" if col in keys else "double"
            self.w(f"    {ctype} {col};")
        self.w("    int64_t mult;")
        self.w("};")
        self.w()

    def _container(self, node: NodePlan) -> str:
        s = self._struct_name(node)
        if self.options.dict_to_array or self.trie_mode:
            return f"std::vector<{s}>"
        return f"std::unordered_map<int64_t, {s}>"

    def _emit_readers(self) -> None:
        for node in self.plan.root.walk():
            s = self._struct_name(node)
            keys = _key_columns(node)
            self.w(f"static {self._container(node)} read_{node.relation}(FILE* f) {{")
            self.indent += 1
            self.w("int64_t n = read_i64(f);")
            self.w(f"{self._container(node)} out;")
            if self.options.dict_to_array or self.trie_mode:
                self.w("out.reserve(n);")
            else:
                self.w("out.reserve(n * 2);")
            self.w("for (int64_t r = 0; r < n; ++r) {")
            self.indent += 1
            self.w(f"{s} row;")
            for col in node.columns:
                reader = "read_i64" if col in keys else "read_f64"
                self.w(f"row.{col} = {reader}(f);")
            self.w("row.mult = read_i64(f);")
            if self.options.dict_to_array or self.trie_mode:
                self.w("out.push_back(row);")
            else:
                self.w("out.emplace(r, row);")
            self.indent -= 1
            self.w("}")
            self.w("return out;")
            self.indent -= 1
            self.w("}")
            self.w()

    # -- kernel -----------------------------------------------------------

    def _row_loop(self, node: NodePlan, var: str) -> str:
        if self.options.dict_to_array or self.trie_mode:
            return f"for (const auto& {var} : data_{node.relation}) {{"
        return (
            f"for (const auto& _kv_{var} : data_{node.relation}) {{"
        )

    def _row_prelude(self, node: NodePlan, var: str) -> list[str]:
        if self.options.dict_to_array or self.trie_mode:
            return []
        return [f"const auto& {var} = _kv_{var}.second;"]

    def _emit_kernel(self) -> None:
        args = ", ".join(
            f"const {self._container(node)}& data_{node.relation}"
            for node in self.plan.root.walk()
        )
        ret = "Groups" if self.groupby else "std::array<double, NS>"
        self.w(f"static {ret} kernel({args}) {{")
        self.indent += 1
        root = self.plan.root
        views = [self._emit_view(c) for c in root.children]
        if self.trie_mode and root.children:
            self._emit_root_trie(root, views)
        else:
            self._emit_root_flat(root, views)
        self.indent -= 1
        self.w("}")
        self.w()

    def _key_cpp(self, attrs: tuple[str, ...], row: str) -> str:
        """A join key as one int64 (two-attribute keys pack 31+31 bits).

        Key attributes are surrogate ids well below 2³¹, so packing is
        collision-free and preserves lexicographic order (the loader
        sorts by the attribute tuple, which matches the packed order).
        """
        if len(attrs) == 1:
            return f"{row}.{attrs[0]}"
        a, b = attrs
        return f"(({row}.{a} << 31) | {row}.{b})"

    def _emit_view(self, node: NodePlan) -> str:
        child_views = [self._emit_view(c) for c in node.children]
        name = f"view_{node.relation}_{self._view_counter}"
        self._view_counter += 1
        ns = self.plan.num_aggregates
        key_expr = self._key_cpp(node.parent_key, "row")

        if self.options.sorted_trie:
            # Input sorted by parent key → build parallel sorted arrays.
            self.w(f"std::vector<int64_t> {name}_keys;")
            self.w(f"std::vector<Payload> {name}_vals;")
            self.w(self._row_loop(node, "row"))
            self.indent += 1
            for stmt in self._row_prelude(node, "row"):
                self.w(stmt)
            partials = self._emit_child_lookups_hash(node, child_views)
            self.w(f"int64_t _vkey = {key_expr};")
            self.w(f"if ({name}_keys.empty() || {name}_keys.back() != _vkey) {{")
            self.w(f"    {name}_keys.push_back(_vkey);")
            self.w(f"    {name}_vals.push_back(Payload{{}});")
            self.w("}")
            self.w(f"Payload& acc = {name}_vals.back();")
            for i in range(ns):
                self.w(f"acc[{i}] += {self._spec_product(node, i, partials, 'row')};")
            self.indent -= 1
            self.w("}")
            return name

        self.w(f"std::unordered_map<int64_t, Payload> {name};")
        self.w(self._row_loop(node, "row"))
        self.indent += 1
        for stmt in self._row_prelude(node, "row"):
            self.w(stmt)
        partials = self._emit_child_lookups_hash(node, child_views)
        self.w(f"Payload& acc = {name}[{key_expr}];")
        for i in range(ns):
            self.w(f"acc[{i}] += {self._spec_product(node, i, partials, 'row')};")
        self.indent -= 1
        self.w("}")
        return name

    def _emit_child_lookups_hash(self, node: NodePlan, child_views: list[str]) -> list[str]:
        """Look up child payloads (hash or sorted binary search)."""
        out: list[str] = []
        for idx, (view, key_attrs) in enumerate(zip(child_views, node.child_keys)):
            key = self._key_cpp(key_attrs, "row")
            w = f"w{idx}"
            if self.options.sorted_trie:
                self.w(
                    f"auto it_{w} = std::lower_bound({view}_keys.begin(), {view}_keys.end(), {key});"
                )
                self.w(
                    f"if (it_{w} == {view}_keys.end() || *it_{w} != {key}) continue;"
                )
                self.w(
                    f"const Payload& {w} = {view}_vals[it_{w} - {view}_keys.begin()];"
                )
            else:
                self.w(f"auto it_{w} = {view}.find({key});")
                self.w(f"if (it_{w} == {view}.end()) continue;")
                self.w(f"const Payload& {w} = it_{w}->second;")
            out.append(w)
        return out

    def _spec_product(self, node: NodePlan, i: int, partials: list[str], row: str) -> str:
        factors = [f"(double){row}.mult"]
        for attr in node.owned_per_spec[i]:
            factors.append(f"{row}.{attr}")
        for w in partials:
            factors.append(f"{w}[{i}]")
        return " * ".join(factors)

    def _emit_root_flat(self, node: NodePlan, views: list[str]) -> None:
        ns = self.plan.num_aggregates
        if self.groupby:
            self.w("Groups groups;")
        else:
            self.w("std::array<double, NS> totals{};")
        self.w(self._row_loop(node, "row"))
        self.indent += 1
        for stmt in self._row_prelude(node, "row"):
            self.w(stmt)
        partials = self._emit_child_lookups_hash(node, views)
        if self.groupby:
            self.w(f"Payload& gacc = groups.slot(row.{self.plan.group_attr});")
        for i in range(ns):
            target = f"gacc[{i}]" if self.groupby else f"totals[{i}]"
            self.w(f"{target} += {self._spec_product(node, i, partials, 'row')};")
        self.indent -= 1
        self.w("}")
        self.w("return groups;" if self.groupby else "return totals;")

    def _emit_root_trie(self, node: NodePlan, views: list[str]) -> None:
        ns = self.plan.num_aggregates
        if self.groupby:
            self.w("Groups groups;")
        else:
            self.w("std::array<double, NS> totals{};")
        self.w(f"const auto& rows = data_{node.relation};")
        self.w("size_t n = rows.size();")
        self.w("size_t cursor0 = 0;")
        self._emit_trie_level(node, views, 0, "0", "n")
        self.w("return groups;" if self.groupby else "return totals;")

    def _emit_trie_level(
        self, node: NodePlan, views: list[str], level: int, lo: str, hi: str
    ) -> None:
        ns = self.plan.num_aggregates
        key_attrs = node.child_keys[level]
        i = f"i{level}"
        self.w(f"size_t {i} = {lo};")
        self.w(f"while ({i} < {hi}) {{")
        self.indent += 1
        self.w(f"int64_t k{level} = {self._key_cpp(key_attrs, f'rows[{i}]')};")
        self.w(f"size_t end{level} = {i} + 1;")
        self.w(
            f"while (end{level} < {hi} && "
            f"{self._key_cpp(key_attrs, f'rows[end{level}]')} == k{level}) ++end{level};"
        )
        view = views[level]
        if self.options.hash_trie:
            self.w(f"auto it{level} = {view}.find(k{level});")
            self.w(f"if (it{level} == {view}.end()) {{ {i} = end{level}; continue; }}")
            self.w(f"const Payload& w{level} = it{level}->second;")
        elif level == 0:
            self.w(f"while (cursor0 < {view}_keys.size() && {view}_keys[cursor0] < k0) ++cursor0;")
            self.w(f"if (cursor0 >= {view}_keys.size() || {view}_keys[cursor0] != k0) {{ {i} = end0; continue; }}")
            self.w(f"const Payload& w0 = {view}_vals[cursor0];")
        else:
            self.w(
                f"auto pos{level} = std::lower_bound({view}_keys.begin(), {view}_keys.end(), k{level});"
            )
            self.w(
                f"if (pos{level} == {view}_keys.end() || *pos{level} != k{level}) {{ {i} = end{level}; continue; }}"
            )
            self.w(f"const Payload& w{level} = {view}_vals[pos{level} - {view}_keys.begin()];")
        self.w(f"Payload p{level};")
        if level == 0:
            self.w(f"for (int a = 0; a < NS; ++a) p0[a] = w0[a];")
        else:
            self.w(f"for (int a = 0; a < NS; ++a) p{level}[a] = p{level - 1}[a] * w{level}[a];")
        if level + 1 < len(node.children):
            self._emit_trie_level(node, views, level + 1, i, f"end{level}")
        else:
            self.w(f"for (size_t j = {i}; j < end{level}; ++j) {{")
            self.indent += 1
            self.w("const auto& row = rows[j];")
            if self.groupby:
                self.w(f"Payload& gacc = groups.slot(row.{self.plan.group_attr});")
            for a in range(ns):
                owned = node.owned_per_spec[a]
                factors = ["(double)row.mult"] + [f"row.{attr}" for attr in owned] + [f"p{level}[{a}]"]
                target = f"gacc[{a}]" if self.groupby else f"totals[{a}]"
                self.w(f"{target} += {' * '.join(factors)};")
            self.indent -= 1
            self.w("}")
        self.w(f"{i} = end{level};")
        self.indent -= 1
        self.w("}")

    # -- main -------------------------------------------------------------

    def _emit_main(self) -> None:
        self.w("int main(int argc, char** argv) {")
        self.indent += 1
        self.w('if (argc < 2) { fprintf(stderr, "usage: kernel <data-file>\\n"); return 1; }')
        self.w('FILE* f = fopen(argv[1], "rb");')
        self.w('if (!f) { fprintf(stderr, "cannot open data file\\n"); return 1; }')
        for node in self.plan.root.walk():
            self.w(f"auto data_{node.relation} = read_{node.relation}(f);")
        self.w("fclose(f);")
        args = ", ".join(f"data_{n.relation}" for n in self.plan.root.walk())
        self.w("auto t0 = std::chrono::steady_clock::now();")
        if self.groupby:
            self.w("Groups result;")
        else:
            self.w("std::array<double, NS> result{};")
        self.w(f"for (int rep = 0; rep < {self.repetitions}; ++rep) {{")
        self.w(f"    result = kernel({args});")
        self.w("}")
        self.w("auto t1 = std::chrono::steady_clock::now();")
        self.w(
            "long long ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();"
        )
        self.w(f'printf("%lld\\n", ns / {self.repetitions});')
        if self.groupby:
            # One line per group, sorted by key (the accumulator keeps
            # first-seen order; sorting here preserves the deterministic
            # output contract of the former std::map).
            key_fmt = "%lld" if self._group_is_key() else "%.17g"
            key_arg = (
                "(long long)result.keys[oi]" if self._group_is_key() else "result.keys[oi]"
            )
            self.w("std::vector<size_t> order(result.keys.size());")
            self.w("for (size_t i = 0; i < order.size(); ++i) order[i] = i;")
            self.w(
                "std::sort(order.begin(), order.end(), "
                "[&](size_t a, size_t b) { return result.keys[a] < result.keys[b]; });"
            )
            self.w("for (size_t oi : order) {")
            self.w(f'    printf("{key_fmt}", {key_arg});')
            self.w('    for (int a = 0; a < NS; ++a) printf(" %.17g", result.vals[oi][a]);')
            self.w('    printf("\\n");')
            self.w("}")
        else:
            self.w("for (int a = 0; a < NS; ++a) printf(\"%.17g\\n\", result[a]);")
        self.w("return 0;")
        self.indent -= 1
        self.w("}")
