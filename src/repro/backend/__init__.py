"""Data-layout synthesis, code generation and pluggable execution.

Layer map::

    plan.py            physical plans, incl. group-by + fused multi-plan
                       bundles (MultiBatchPlan) and their fingerprints
    layout.py          Section 4.4 layout switches
    codegen_python.py  specialized Python kernels (views / root-scan split)
    codegen_cpp.py     specialized C++ kernels
    compile_cpp.py     g++ driver with content-hash binary caching
    base.py            the ExecutionBackend protocol and Kernel artifact
    executors.py       EngineBackend / PythonKernelBackend / CppKernelBackend
    column_store.py    ColumnStore: shared per-database columnar arrays
    numpy_backend.py   NumpyBackend: columnar ndarray evaluation
    registry.py        name → backend resolution (cpp→python fallback)
    cache.py           KernelCache + on-disk kernel-source persistence
    parallel.py        ShardedBackend: K-way sharded evaluation
"""

from repro.backend.base import (
    ExecutionBackend,
    Kernel,
    merge_group_results,
    merge_results,
    merge_vectors,
)
from repro.backend.cache import (
    CacheStats,
    KernelCache,
    clear_kernel_sources,
    default_kernel_cache,
    kernel_source_dir,
    load_kernel_source,
    store_kernel_source,
)
from repro.backend.executors import (
    DEFAULT_BLOCK_SIZE,
    CppKernelBackend,
    EngineBackend,
    PythonKernelBackend,
    tree_from_plan,
)
from repro.backend.layout import (
    FIGURE_7B_LADDER,
    LAYOUT_ARRAYS,
    LAYOUT_BASELINE,
    LAYOUT_HASH_TRIE,
    LAYOUT_RECORDS,
    LAYOUT_SCALARIZED,
    LAYOUT_SORTED,
    LayoutOptions,
)
from repro.backend.column_store import (
    ColumnStore,
    clear_column_stores,
    column_store,
    column_store_stats,
    evict_column_store,
    peek_column_store,
    reset_column_store_stats,
)
from repro.backend.numpy_backend import (
    DeltaGroupState,
    DeltaVectorState,
    NumpyBackend,
    PreparedLayout,
    canonical_group_keys,
    check_delta_state,
    check_group_coding,
    check_store_current,
    delta_ranges,
    fold_group_state,
    fold_vector_state,
    remap_group_partials,
    serve_group_state,
    serve_vector_state,
)
from repro.backend.parallel import DEFAULT_SHARDS, ShardedBackend, shard_database
from repro.backend.process_pool import (
    DEFAULT_PROCESS_WORKERS,
    ProcessKernelExecutor,
    TaskNotPicklable,
    WorkerError,
    default_process_workers,
    executor_mode_from_env,
    shared_process_executor,
)
from repro.backend.plan import (
    BatchPlan,
    MultiBatchPlan,
    NodePlan,
    build_batch_plan,
    prepare_data,
)
from repro.backend.registry import (
    BackendResolutionError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)

__all__ = [
    "BackendResolutionError", "BatchPlan", "CacheStats", "ColumnStore",
    "CppKernelBackend", "DEFAULT_BLOCK_SIZE", "DEFAULT_PROCESS_WORKERS",
    "DEFAULT_SHARDS", "DeltaGroupState", "DeltaVectorState",
    "EngineBackend", "ExecutionBackend",
    "FIGURE_7B_LADDER", "Kernel", "KernelCache", "LAYOUT_ARRAYS",
    "LAYOUT_BASELINE", "LAYOUT_HASH_TRIE", "LAYOUT_RECORDS",
    "LAYOUT_SCALARIZED", "LAYOUT_SORTED", "LayoutOptions",
    "MultiBatchPlan", "NodePlan", "NumpyBackend", "PreparedLayout",
    "ProcessKernelExecutor", "PythonKernelBackend", "ShardedBackend",
    "TaskNotPicklable", "WorkerError", "available_backends",
    "build_batch_plan", "canonical_group_keys", "check_delta_state",
    "check_group_coding", "check_store_current", "clear_column_stores", "clear_kernel_sources",
    "column_store", "column_store_stats", "default_kernel_cache",
    "default_process_workers", "delta_ranges", "evict_column_store",
    "executor_mode_from_env", "fold_group_state", "fold_vector_state",
    "get_backend", "kernel_source_dir",
    "load_kernel_source", "merge_group_results", "merge_results",
    "merge_vectors", "peek_column_store", "prepare_data",
    "register_backend", "remap_group_partials",
    "reset_column_store_stats", "serve_group_state",
    "serve_vector_state", "shard_database",
    "shared_process_executor", "store_kernel_source", "tree_from_plan",
    "unregister_backend",
]
