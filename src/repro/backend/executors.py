"""Concrete execution backends: engine, generated Python, C++.

These are the three physical strategies the :class:`IFAQCompiler`
previously dispatched to through string comparisons; each is now a
first-class :class:`~repro.backend.base.ExecutionBackend` so it can be
registered, cached, wrapped (sharded) and swapped without touching the
driver.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.aggregates.engine import (
    apply_predicates,
    compute_batch_mode,
    compute_groupby_tree,
)
from repro.aggregates.join_tree import JoinTreeNode
from repro.backend.base import (
    ExecutionBackend,
    Kernel,
    merge_vectors,
    require_groupby,
    require_multi,
    require_plain,
)
from repro.backend.codegen_cpp import (
    generate_cpp_kernel,
    group_attr_is_key,
    write_binary_data,
)
from repro.backend.codegen_python import GeneratedKernel, generate_python_kernel
from repro.backend.compile_cpp import compile_kernel
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, prepare_data
from repro.db.database import Database
from repro.db.query import JoinQuery

#: Root rows per execution block of the Python backend.  Blocks are the
#: unit the sharded executor distributes; keeping the block structure
#: identical in single-shot and sharded runs makes their results
#: bit-identical (same partials, same merge order).
DEFAULT_BLOCK_SIZE = 4096


def tree_from_plan(plan: BatchPlan) -> JoinTreeNode:
    """Reconstruct the logical join tree a physical plan was built from."""

    def build(node) -> JoinTreeNode:
        return JoinTreeNode(
            node.relation,
            join_attrs=node.parent_key,
            children=[build(c) for c in node.children],
        )

    return build(plan.root)


@dataclass
class EngineBackend(ExecutionBackend):
    """Interpret the view tree in Python (Section 4.3 engines).

    ``aggregate_mode`` picks the strategy ladder rung; ``query`` (when
    known) preserves the caller's join order for the materialized mode.
    """

    aggregate_mode: str = "trie"
    query: JoinQuery | None = None

    name = "engine"

    @property
    def kernel_key(self) -> str:
        return f"engine:{self.aggregate_mode}"

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        return Kernel(
            backend=self.name,
            fingerprint=plan.fingerprint(layout, self.kernel_key),
            plan=plan,
            layout=layout,
            source=None,
            entry=tree_from_plan(plan),
        )

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        require_plain(kernel)
        return compute_batch_mode(
            db, kernel.entry, kernel.plan.batch, self.aggregate_mode, query=self.query
        )

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        require_groupby(kernel)
        # The kernel's tree is already rooted at the group attribute's
        # owner (planning rerooted it), so this is a straight scan.
        return compute_groupby_tree(
            db, kernel.entry, kernel.plan.batch, kernel.plan.group_attr, predicates
        )


@dataclass
class PythonKernelBackend(ExecutionBackend):
    """Execute the generated specialized Python kernel.

    Execution is block-structured: views are built once, then the root
    relation is folded in fixed-size row blocks whose partial vectors
    are merged left-to-right with the ring monoid.  The block layout
    depends only on the data (never on worker count), so the sharded
    wrapper can farm blocks out to threads and still reproduce the
    single-shot result bit for bit.
    """

    block_size: int = DEFAULT_BLOCK_SIZE

    name = "python"

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        from repro.backend.cache import load_kernel_source, store_kernel_source

        fingerprint = plan.fingerprint(layout, self.kernel_key)
        source = load_kernel_source(fingerprint)
        warm = source is not None
        if warm:
            try:
                namespace = GeneratedKernel(source=source).compile_module()
            except Exception:
                warm = False  # corrupt spill: fall through and regenerate
        if not warm:
            source = generate_python_kernel(plan, layout).source
            try:
                store_kernel_source(fingerprint, source)
            except OSError:
                pass  # read-only temp dir: persistence is best-effort
            namespace = GeneratedKernel(source=source).compile_module()
        return Kernel(
            backend=self.name,
            fingerprint=fingerprint,
            plan=plan,
            layout=layout,
            source=source,
            entry=namespace,
            meta={"supports_blocks": not plan.is_groupby, "source_cached": warm},
        )

    # -- block protocol (consumed by ShardedBackend) ---------------------

    def prepare(self, kernel: Kernel, db: Database):
        """Load the data in plan layout and build the views once."""
        data = prepare_data(db, kernel.plan, kernel.layout)
        views = kernel.entry["build_views"](data)
        n_rows = len(data[kernel.plan.root.relation])
        return data, views, n_rows

    def block_ranges(self, n_rows: int) -> list[tuple[int, int]]:
        if n_rows <= 0:
            return []
        size = max(1, self.block_size)
        return [(lo, min(lo + size, n_rows)) for lo in range(0, n_rows, size)]

    def run_block(self, kernel: Kernel, data, views, lo: int, hi: int) -> list[float]:
        return kernel.entry["scan_root"](data, views, lo, hi)

    # -- single-shot execution -------------------------------------------

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        require_plain(kernel)
        data, views, n_rows = self.prepare(kernel, db)
        if n_rows == 0:
            return kernel.result_dict([0.0] * kernel.plan.num_aggregates)
        partials = [
            self.run_block(kernel, data, views, lo, hi)
            for lo, hi in self.block_ranges(n_rows)
        ]
        return kernel.result_dict(merge_vectors(partials))

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        require_groupby(kernel)
        # δ conditions are per-relation and record-local, so filtering
        # the input relations is equivalent to predicates in the scans
        # (and keeps the generated kernel predicate-free and cacheable).
        db = apply_predicates(db, predicates)
        data = prepare_data(db, kernel.plan, kernel.layout)
        views = kernel.entry["build_views"](data)
        return kernel.entry["scan_root"](data, views)

    def run_groupby_many(
        self, kernel: Kernel, db: Database, predicates=None
    ) -> list[dict]:
        # Fused bundles share the δ-filtered database across members —
        # the record-level predicate scan runs once, not once per plan.
        require_multi(kernel)
        db = apply_predicates(db, predicates)
        return [self.run_groupby(member, db) for member in kernel.entry]


@dataclass
class CppKernelBackend(ExecutionBackend):
    """Compile the generated C++ with ``g++ -O3`` and run the binary.

    Compilation happens in :meth:`compile_plan` (content-hash cached by
    :mod:`repro.backend.compile_cpp` on top of the kernel cache), so
    execution only pays data serialization and the subprocess.
    """

    name = "cpp"

    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        fingerprint = plan.fingerprint(layout, self.kernel_key)
        generated = generate_cpp_kernel(plan, layout, fingerprint=fingerprint)
        compiled = compile_kernel(generated)
        return Kernel(
            backend=self.name,
            fingerprint=fingerprint,
            plan=plan,
            layout=layout,
            source=generated.source,
            entry=compiled,
            compile_seconds=compiled.compile_seconds,
            meta={
                "binary_cached": compiled.cached,
                "group_is_key": plan.is_groupby and group_attr_is_key(plan),
            },
        )

    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        require_plain(kernel)
        with tempfile.TemporaryDirectory() as tmp:
            data_path = Path(tmp) / "data.bin"
            write_binary_data(db, kernel.plan, data_path, kernel.layout)
            _, values = kernel.entry.run(data_path)
        return kernel.result_dict(values)

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        require_groupby(kernel)
        db = apply_predicates(db, predicates)
        with tempfile.TemporaryDirectory() as tmp:
            data_path = Path(tmp) / "data.bin"
            write_binary_data(db, kernel.plan, data_path, kernel.layout)
            _, lines = kernel.entry.run_lines(data_path)
        # Key columns travel as int64; everything else as double.
        group_is_key = kernel.meta.get("group_is_key", False)
        key_of = int if group_is_key else float
        groups: dict = {}
        for line in lines:
            parts = line.split()
            groups[key_of(parts[0])] = [float(v) for v in parts[1:]]
        return groups

    def run_groupby_many(
        self, kernel: Kernel, db: Database, predicates=None
    ) -> list[dict]:
        # One δ-filter pass shared by every member binary invocation.
        require_multi(kernel)
        db = apply_predicates(db, predicates)
        return [self.run_groupby(member, db) for member in kernel.entry]
