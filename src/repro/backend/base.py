"""The execution-backend protocol (the RACO-style pluggable algebra).

Execution of an aggregate batch is split into two phases behind one
small interface:

* :meth:`ExecutionBackend.compile_plan` lowers a :class:`BatchPlan`
  under a :class:`LayoutOptions` into a :class:`Kernel` — a reusable,
  cacheable artifact (generated source, compiled binary, interpreter
  closure, …);
* :meth:`ExecutionBackend.execute` runs a kernel against a database and
  returns the aggregate vector as a ``{spec.name: value}`` dictionary.

Keeping the two phases separate is what makes the kernel cache
(:mod:`repro.backend.cache`) and the sharded wrapper
(:mod:`repro.backend.parallel`) possible: a kernel compiled once can be
executed many times, against many (sub-)databases, from many threads.

Concrete backends live in :mod:`repro.backend.executors`; they are
looked up by name through :mod:`repro.backend.registry`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, MultiBatchPlan
from repro.db.database import Database
from repro.runtime.rings import v_add


@dataclass
class Kernel:
    """A compiled execution artifact for one (plan, layout, backend).

    ``entry`` is backend-specific: the generated-Python module
    namespace, a :class:`~repro.backend.compile_cpp.CompiledKernel`
    handle, or the engine's reconstructed join tree.  For multi-plan
    kernels (``plan`` is a :class:`MultiBatchPlan`) ``entry`` is the
    list of member kernels, in member order.  ``source`` is the
    generated source text when the backend generates code (``None`` for
    interpreting backends).
    """

    backend: str
    fingerprint: str
    plan: BatchPlan | MultiBatchPlan
    layout: LayoutOptions
    source: str | None = None
    entry: Any = None
    compile_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    def result_dict(self, values: list[float]) -> dict[str, float]:
        """Map a positional aggregate vector back to spec names."""
        return {spec.name: values[i] for i, spec in enumerate(self.plan.batch)}


class ExecutionBackend(ABC):
    """One physical evaluation strategy for aggregate batches."""

    #: registry name of the backend (class attribute on subclasses)
    name: str = "abstract"

    @property
    def kernel_key(self) -> str:
        """The component of the kernel-cache key owned by this backend.

        Backends whose kernels are interchangeable (e.g. a sharded
        wrapper around an inner backend) share the inner key so cached
        kernels are shared too.
        """
        return self.name

    @abstractmethod
    def compile_plan(self, plan: BatchPlan, layout: LayoutOptions) -> Kernel:
        """Lower the plan to a reusable kernel."""

    @abstractmethod
    def execute(self, kernel: Kernel, db: Database) -> dict[str, float]:
        """Run the kernel over ``db`` and return ``{name: value}``."""

    def run_groupby(self, kernel: Kernel, db: Database, predicates=None) -> dict:
        """Run a group-by kernel: ``{group value: [aggregate values]}``.

        ``predicates`` are per-relation δ conditions applied at
        execution time (they are not part of the kernel identity, so
        one cached kernel serves every tree node).  Backends that can
        lower group-by plans override this.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support group-by plans"
        )

    # -- fused multi-plan group-by ----------------------------------------

    def compile_multi(
        self, mplan: MultiBatchPlan, layout: LayoutOptions, members: list[Kernel]
    ) -> Kernel:
        """Bundle precompiled member kernels into one multi-plan kernel.

        ``members`` come from the kernel cache (one per member plan, in
        member order), so a feature whose single-plan kernel was already
        compiled is not compiled again.  Backends with a genuinely fused
        execution override this to attach their sharing metadata; the
        default bundle simply executes members one by one.
        """
        return Kernel(
            backend=self.name,
            fingerprint=mplan.fingerprint(layout, self.kernel_key),
            plan=mplan,
            layout=layout,
            entry=list(members),
            meta={"multi": True},
        )

    def run_groupby_many(
        self, kernel: Kernel, db: Database, predicates=None
    ) -> list[dict]:
        """Run a multi-plan kernel: one group dictionary per member plan.

        The default runs each member kernel through :meth:`run_groupby`
        — correct for every backend (and exactly equivalent to issuing
        the plans separately).  Backends that can share work across
        members (one data pass, shared predicate masks) override this.
        """
        require_multi(kernel)
        return [self.run_groupby(member, db, predicates) for member in kernel.entry]


def require_plain(kernel: Kernel) -> None:
    """Reject group-by kernels where a scalar batch is expected."""
    if kernel.plan.is_groupby:
        raise ValueError(
            f"kernel {kernel.fingerprint} is a group-by kernel "
            f"(group_attr={kernel.plan.group_attr!r}); use run_groupby"
        )


def require_groupby(kernel: Kernel) -> None:
    """Reject scalar kernels where a group-by batch is expected."""
    if not kernel.plan.is_groupby:
        raise ValueError(
            f"kernel {kernel.fingerprint} is not a group-by kernel; use execute"
        )
    if isinstance(kernel.plan, MultiBatchPlan):
        raise ValueError(
            f"kernel {kernel.fingerprint} is a multi-plan kernel; use run_groupby_many"
        )


def require_multi(kernel: Kernel) -> None:
    """Reject single-plan kernels where a multi-plan bundle is expected."""
    if not isinstance(kernel.plan, MultiBatchPlan):
        raise ValueError(
            f"kernel {kernel.fingerprint} is not a multi-plan kernel; "
            f"use execute/run_groupby"
        )


def merge_vectors(partials: list[list[float]]) -> list[float]:
    """Fold partial aggregate vectors with the ring monoid ``v_add``.

    The fold is strictly left-to-right in list order.  Both the
    single-shot Python backend and the sharded wrapper reduce the *same*
    ordered list of per-block partials through this function, which is
    what makes sharded results bit-identical to single-shot results.
    """
    if not partials:
        return []
    acc = list(partials[0])
    for part in partials[1:]:
        for i, v in enumerate(part):
            acc[i] = v_add(acc[i], v)
    return acc


def merge_results(partials: list[dict[str, float]]) -> dict[str, float]:
    """Merge named partial results with ``v_add`` (shard order)."""
    if not partials:
        return {}
    acc = dict(partials[0])
    for part in partials[1:]:
        for k, v in part.items():
            acc[k] = v_add(acc.get(k, 0.0), v)
    return acc


def merge_group_results(partials: list[dict]) -> dict:
    """Merge per-shard group-by results with ``v_add`` (shard order).

    Each partial maps ``group value → [aggregate values]``; a group
    seen by several shards has its vectors folded component-wise, so a
    partition of the group-by plan's root relation merges exactly like
    scalar batches do.
    """
    acc: dict = {}
    for part in partials:
        for key, vec in part.items():
            cur = acc.get(key)
            if cur is None:
                acc[key] = list(vec)
            else:
                for i, v in enumerate(vec):
                    cur[i] = v_add(cur[i], v)
    return acc
