"""Process-pool kernel execution: escaping the GIL.

Every other layer of the stack — generated kernels, the numpy folds,
the sharded block merge, the serving coalescer — runs inside one Python
process, so a 16-core host serves aggregates no faster than a 1-core
one.  :class:`ProcessKernelExecutor` is the missing layer: a pool of
long-lived worker *processes* that execute compiled kernels (whole runs
for the serving layer, per-shard block ranges for
:class:`~repro.backend.parallel.ShardedBackend`) while the parent only
plans, batches and merges.

**What crosses the process boundary, and when**

* *Once per (worker, object):* the backend instance and each database —
  workers keep them registered by token, so steady-state traffic never
  re-pickles a database.  Tokens are weakly keyed by database identity
  exactly like the :func:`~repro.backend.column_store.column_store`
  registry; when the parent's database is collected, an eviction rides
  along with the next task so workers drop their copy too.
* *Once per (worker, fingerprint):* the kernel.  Workers do **not**
  receive compiled kernels (generated modules don't pickle); they
  receive the :class:`~repro.backend.plan.BatchPlan` and re-resolve it
  through their own :class:`~repro.backend.cache.KernelCache`.  For the
  generated-Python backend that compile warm-starts from the source the
  parent spilled under ``IFAQ_KERNEL_CACHE_DIR`` (see
  :func:`~repro.backend.cache.load_kernel_source`) — the worker
  *re-execs the spilled source* instead of regenerating it, which is
  the whole worker-bootstrap contract.  The parent's current spill
  directory travels with every task so per-test overrides propagate.
* *Per task:* a fingerprint-sized descriptor (plan reference, shard
  block ranges, δ predicates) and the result vector coming back.

**Bit identity.**  A worker executes the *same* prepared fold over the
*same* block ranges the parent would have executed single-shot: data
arrays are rebuilt deterministically from the pickled database (dict
order is preserved by pickle, codings are deterministic), blocks are a
function of data and block size only, and the parent merges partials in
canonical block order.  Process-sharded results are therefore
bit-identical to single-shot for every shard and worker count — the
same contract the thread path pins.

**When threads still win.**  Process execution pays pickling (one-time
per database), per-task pipe round-trips, and worker-side re-prepare of
columnar state.  For micro-batches over small databases, or for
backends that already escape the GIL on their own (the C++ backend runs
subprocess binaries), the thread executor is faster; processes win when
kernels are CPU-bound Python/numpy work that saturates the GIL.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import pickle
import queue
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from typing import Any, Sequence

from repro.backend.base import ExecutionBackend
from repro.backend.cache import KernelCache
from repro.backend.layout import LayoutOptions
from repro.backend.plan import BatchPlan, MultiBatchPlan
from repro.db.database import Database

#: Default pool width: one kernel-executing process per core.
DEFAULT_PROCESS_WORKERS = max(1, os.cpu_count() or 1)


def default_process_workers() -> int:
    """Pool width from ``IFAQ_PROC_WORKERS``, defaulting to the core count."""
    raw = os.environ.get("IFAQ_PROC_WORKERS")
    if not raw:
        return DEFAULT_PROCESS_WORKERS
    workers = int(raw)
    if workers < 1:
        raise ValueError(f"IFAQ_PROC_WORKERS must be >= 1, got {workers}")
    return workers


#: Default seconds a shutdown waits for workers to exit cleanly before
#: escalating to terminate()/kill().
DEFAULT_SHUTDOWN_GRACE = 5.0


def default_shutdown_grace() -> float:
    """Shutdown grace period from ``IFAQ_SHUTDOWN_GRACE`` (seconds;
    non-positive means escalate immediately)."""
    raw = os.environ.get("IFAQ_SHUTDOWN_GRACE")
    if not raw:
        return DEFAULT_SHUTDOWN_GRACE
    return max(0.0, float(raw))


def _start_method() -> str:
    """``IFAQ_PROC_START`` override, else fork where available.

    Fork is preferred because workers inherit the imported stack (numpy,
    the codegen modules) instead of re-importing it, making worker
    startup milliseconds instead of seconds.
    """
    override = os.environ.get("IFAQ_PROC_START")
    if override:
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class TaskNotPicklable(TypeError):
    """The task (backend, database or plan) cannot cross the process
    boundary; callers fall back to in-process execution."""


class WorkerError(RuntimeError):
    """Carries a worker-side traceback; the original exception is
    re-raised in the parent with this as its ``__cause__``."""


# -- worker side ------------------------------------------------------------


class _WorkerState:
    """Everything one worker process keeps between tasks."""

    def __init__(self) -> None:
        self.backends: dict[int, ExecutionBackend] = {}
        self.dbs: dict[int, Database] = {}
        self.kernels = KernelCache(capacity=64)
        #: (db_token, fingerprint, pred_key) → prepared block state
        self.prepared: OrderedDict = OrderedDict()
        #: (db_token, pred_key) → δ-filtered Database
        self.filtered: OrderedDict = OrderedDict()

    def drop_database(self, token: int) -> None:
        self.dbs.pop(token, None)
        for memo in (self.prepared, self.filtered):
            for key in [k for k in memo if k[0] == token]:
                memo.pop(key, None)

    def memo_put(self, memo: OrderedDict, key, value, cap: int = 16) -> None:
        memo[key] = value
        while len(memo) > cap:
            memo.popitem(last=False)


def _reset_forked_globals() -> None:
    """Re-arm process-wide state a forked child inherited mid-flight.

    Module-level locks (the column-store registry, the default kernel
    cache) may have been held by a parent thread at fork time; a child
    touching them would deadlock.  The child never shares this state
    with the parent anyway, so replace it wholesale.
    """
    import importlib

    # importlib, not ``from repro.backend import column_store``: the
    # package re-exports a function under the submodule's name.
    cs = importlib.import_module("repro.backend.column_store")
    cache_mod = importlib.import_module("repro.backend.cache")
    cs._STORES_LOCK = threading.Lock()
    cs._STORES.clear()
    cache_mod._DEFAULT_CACHE = KernelCache()


def _set_kernel_dir(kernel_dir: str | None) -> None:
    if kernel_dir is None:
        os.environ.pop("IFAQ_KERNEL_CACHE_DIR", None)
    else:
        os.environ["IFAQ_KERNEL_CACHE_DIR"] = kernel_dir


def _filtered_db(state: _WorkerState, token: int, predicates, pred_key):
    from repro.aggregates.engine import apply_predicates

    db = state.dbs[token]
    if not predicates:
        return db
    key = (token, pred_key)
    filtered = state.filtered.get(key)
    if filtered is None:
        filtered = apply_predicates(db, predicates)
        state.memo_put(state.filtered, key, filtered)
    return filtered


def _run_task(state: _WorkerState, task: tuple) -> Any:
    kind, btok, dtok, plan, layout = task[:5]
    backend = state.backends[btok]
    db = state.dbs[dtok]
    kernel = state.kernels.get_or_compile(backend, plan, layout)

    if kind == "plain":
        predicates, pred_key = task[5:]
        return backend.execute(kernel, _filtered_db(state, dtok, predicates, pred_key))
    if kind == "groupby":
        (predicates,) = task[5:]
        return backend.run_groupby(kernel, db, predicates)
    if kind == "multi":
        (predicates,) = task[5:]
        return backend.run_groupby_many(kernel, db, predicates)

    if kind == "blocks":
        (blocks,) = task[5:]
        memo_key = (dtok, kernel.fingerprint, None)
        prepared = state.prepared.get(memo_key)
        if prepared is None:
            prepared = backend.prepare(kernel, db)
            state.memo_put(state.prepared, memo_key, prepared)
        data, views, _n_rows = prepared
        return [
            (idx, backend.run_block(kernel, data, views, lo, hi))
            for idx, (lo, hi) in blocks
        ]
    if kind == "groupby_blocks":
        predicates, pred_key, blocks = task[5:]
        memo_key = (dtok, kernel.fingerprint, pred_key)
        prepared = state.prepared.get(memo_key)
        if prepared is None:
            prepared = backend.prepare_groupby(kernel, db, predicates)
            state.memo_put(state.prepared, memo_key, prepared)
        block_state, _n_rows = prepared
        return [
            (idx, backend.run_groupby_block(kernel, block_state, lo, hi))
            for idx, (lo, hi) in blocks
        ]
    raise ValueError(f"unknown process task kind {kind!r}")


def _worker_main(conn, forked: bool) -> None:
    if forked:
        _reset_forked_globals()
    state = _WorkerState()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        except Exception as exc:  # noqa: BLE001 — undecodable message
            # The bytes were fully consumed before unpickling failed
            # (e.g. a class the worker's snapshot predates), so the
            # pipe is still in sync: report and keep serving.
            try:
                conn.send(
                    ("err", None, f"{type(exc).__name__}: {exc}",
                     traceback.format_exc())
                )
                continue
            except (BrokenPipeError, OSError):
                break
        if msg[0] == "shutdown":
            break
        _msg_kind, kernel_dir, registrations, task = msg
        started = time.perf_counter()
        try:
            _set_kernel_dir(kernel_dir)
            for reg in registrations:
                if reg[0] == "db":
                    state.dbs[reg[1]] = reg[2]
                elif reg[0] == "backend":
                    state.backends[reg[1]] = reg[2]
                elif reg[0] == "evict_db":
                    state.drop_database(reg[1])
            result = _run_task(state, task)
            reply = ("ok", result, time.perf_counter() - started)
        except BaseException as exc:  # noqa: BLE001 — everything goes back
            tb = traceback.format_exc()
            try:
                payload = pickle.dumps(exc)
            except Exception:
                payload = None
            reply = ("err", payload, f"{type(exc).__name__}: {exc}", tb)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# -- parent side ------------------------------------------------------------


class _WorkerHandle:
    """One worker process plus what the parent knows it has registered."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.dbs: set[int] = set()
        self.backends: set[int] = set()


class ProcessKernelExecutor(Executor):
    """A pool of kernel-executing worker processes.

    Not a generic :class:`~concurrent.futures.Executor` — arbitrary
    callables don't pickle, so :meth:`submit` raises.  The real surface
    is :meth:`run_kernel` (whole runs, the serving layer's unit) and
    :meth:`run_blocks` (per-shard block ranges, the sharded backend's
    unit); both return futures resolved by a parent proxy thread doing
    one pipe round-trip per task.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        start_method: str | None = None,
        shutdown_grace: float | None = None,
    ) -> None:
        self.workers = workers if workers is not None else default_process_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.shutdown_grace = (
            shutdown_grace if shutdown_grace is not None else default_shutdown_grace()
        )
        self._method = start_method or _start_method()
        self._ctx = mp.get_context(self._method)
        self._handles: list[_WorkerHandle] = []
        # Spawn eagerly, before callers start worker threads: forking a
        # process while sibling threads hold locks is how GIL-escape
        # projects deadlock.
        for i in range(self.workers):
            self._handles.append(self._spawn(f"ifaq-kernel-worker-{i}"))
        self._free: queue.Queue[_WorkerHandle] = queue.Queue()
        for handle in self._handles:
            self._free.put(handle)
        self._proxy = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="ifaq-proc-proxy"
        )
        # Reentrant: database weakref callbacks fire from whatever
        # thread triggers collection, possibly one already holding it.
        self._lock = threading.RLock()
        self._next_token = 0
        #: id(db) → (weakref, token, version vector); weakly keyed like
        #: the column store, retired when the version vector moves
        self._db_tokens: dict[int, tuple[weakref.ref, int, tuple]] = {}
        #: id(backend) → (backend, token); strong — backends are tiny
        self._backend_tokens: dict[int, tuple[ExecutionBackend, int]] = {}
        #: tokens of collected databases not yet evicted from every worker
        self._dead_tokens: set[int] = set()
        self._closed = False

    def _spawn(self, name: str) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._method == "fork"),
            daemon=True,
            name=name,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker in place so one crash doesn't shrink
        the pool; the fresh process re-registers lazily on first use."""
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        fresh = self._spawn(handle.process.name)
        handle.process = fresh.process
        handle.conn = fresh.conn
        handle.dbs = set()
        handle.backends = set()

    def kill_worker(self, index: int = 0) -> None:
        """Kill one worker process outright (SIGKILL) — the fault-
        injection surface :class:`~repro.serving.faults.KillWorker`
        uses.

        The dead worker is *not* respawned here: the next task routed
        to its handle observes the broken pipe, raises the organic
        :class:`WorkerError`, and respawns it — exactly the crash
        sequence retry logic must absorb.
        """
        if not self._handles:
            return
        handle = self._handles[index % len(self._handles)]
        handle.process.kill()
        handle.process.join(timeout=5)

    # -- registration tokens ----------------------------------------------

    def _token(self) -> int:
        self._next_token += 1
        return self._next_token

    def db_token(self, db: Database) -> int:
        """The pool-wide token for ``db``; registered lazily per worker.

        Tokens are **version-aware**: a registration remembers the
        database's ingest version vector, so after ``append_rows`` the
        stale worker pickles are retired and the next task ships the
        mutated database under a fresh token — streaming ingest
        propagates to workers without explicit eviction calls.
        """
        with self._lock:
            entry = self._db_tokens.get(id(db))
            version = db.version_vector()
            if entry is not None and entry[0]() is db:
                if entry[2] == version:
                    return entry[1]
                # Same object, new data: retire the old worker copies.
                if any(entry[1] in h.dbs for h in self._handles):
                    self._dead_tokens.add(entry[1])
            token = self._token()
            key = id(db)

            def _on_collect(_ref, *, _self=weakref.ref(self), _key=key, _token=token):
                self_ = _self()
                if self_ is None:
                    return
                with self_._lock:
                    self_._db_tokens.pop(_key, None)
                    self_._dead_tokens.add(_token)

            self._db_tokens[key] = (weakref.ref(db, _on_collect), token, version)
            return token

    def _backend_token(self, backend: ExecutionBackend) -> int:
        with self._lock:
            entry = self._backend_tokens.get(id(backend))
            if entry is not None:
                return entry[1]
            token = self._token()
            self._backend_tokens[id(backend)] = (backend, token)
            return token

    def evict_database(self, db: Database) -> None:
        """Queue worker-side eviction of ``db``'s pickled copy.

        The eviction rides along with each worker's next task (workers
        are single-threaded message loops; there is no out-of-band
        signal worth a dedicated pipe round-trip)."""
        with self._lock:
            entry = self._db_tokens.pop(id(db), None)
            if entry is not None and any(entry[1] in h.dbs for h in self._handles):
                self._dead_tokens.add(entry[1])

    # -- task submission ---------------------------------------------------

    def run_kernel(
        self,
        backend: ExecutionBackend,
        db: Database,
        kind: str,
        plan: BatchPlan | MultiBatchPlan,
        layout: LayoutOptions,
        predicates=None,
        pred_key: tuple = (),
    ) -> Future:
        """One whole kernel run (``plain`` | ``groupby`` | ``multi``) on a
        worker.  Resolves to ``(result, worker_seconds)``."""
        if kind == "plain":
            tail = (predicates, pred_key)
        elif kind in ("groupby", "multi"):
            tail = (predicates,)
        else:
            raise ValueError(f"unknown kernel-run kind {kind!r}")
        return self._submit(backend, db, kind, plan, layout, tail)

    def run_blocks(
        self,
        backend: ExecutionBackend,
        db: Database,
        plan: BatchPlan,
        layout: LayoutOptions,
        blocks: Sequence[tuple[int, tuple[int, int]]],
        *,
        groupby: bool = False,
        predicates=None,
        pred_key: tuple = (),
    ) -> Future:
        """One shard's block ranges on a worker.

        ``blocks`` is ``[(canonical_index, (lo, hi)), ...]``; resolves
        to ``([(canonical_index, partial), ...], worker_seconds)`` so
        the caller can merge every shard's partials in canonical block
        order — the bit-identity contract."""
        if groupby:
            tail = (predicates, pred_key, tuple(blocks))
            kind = "groupby_blocks"
        else:
            tail = (tuple(blocks),)
            kind = "blocks"
        return self._submit(backend, db, kind, plan, layout, tail)

    def _submit(self, backend, db, kind, plan, layout, tail) -> Future:
        if self._closed:
            raise RuntimeError("ProcessKernelExecutor is closed")
        btok = self._backend_token(backend)
        dtok = self.db_token(db)
        task = (kind, btok, dtok, plan, layout, *tail)
        return self._proxy.submit(self._round_trip, btok, backend, dtok, db, task)

    def _round_trip(self, btok, backend, dtok, db, task):
        handle = self._free.get()
        try:
            registrations: list[tuple] = []
            with self._lock:
                for token in sorted(self._dead_tokens & handle.dbs):
                    registrations.append(("evict_db", token))
                    handle.dbs.discard(token)
                    if not any(token in h.dbs for h in self._handles):
                        self._dead_tokens.discard(token)
            if btok not in handle.backends:
                registrations.append(("backend", btok, backend))
            if dtok not in handle.dbs:
                registrations.append(("db", dtok, db))
            kernel_dir = os.environ.get("IFAQ_KERNEL_CACHE_DIR")
            try:
                handle.conn.send(("run", kernel_dir, registrations, task))
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                # Connection.send pickles before writing, so nothing hit
                # the pipe: the worker is still in sync and the caller
                # can fall back to in-process execution.
                raise TaskNotPicklable(
                    f"task cannot cross the process boundary: {exc}"
                ) from exc
            reply = handle.conn.recv()
            handle.backends.add(btok)
            handle.dbs.add(dtok)
        except (EOFError, OSError, BrokenPipeError) as exc:
            exitcode = handle.process.exitcode
            if not self._closed:
                self._respawn(handle)
            raise WorkerError(
                f"kernel worker {handle.process.name} died mid-task "
                f"(exitcode {exitcode})"
            ) from exc
        finally:
            self._free.put(handle)
        if reply[0] == "err":
            _tag, payload, summary, tb = reply
            cause = WorkerError(f"in kernel worker:\n{tb}")
            if payload is not None:
                try:
                    exc = pickle.loads(payload)
                except Exception:
                    exc = None
                if isinstance(exc, BaseException):
                    raise exc from cause
            raise WorkerError(summary) from cause
        _tag, result, seconds = reply
        return result, seconds

    # -- Executor interface -------------------------------------------------

    def submit(self, fn, /, *args, **kwargs):  # noqa: D102 — deliberate
        raise NotImplementedError(
            "ProcessKernelExecutor does not run arbitrary callables; "
            "use run_kernel()/run_blocks()"
        )

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Stop the pool, escalating until every worker is reclaimed.

        Workers get a cooperative shutdown message and ``shutdown_grace``
        seconds (``IFAQ_SHUTDOWN_GRACE``) to exit; survivors are
        ``terminate()``d, then ``kill()``ed, each with a short re-join.
        Workers are reaped *before* the proxy pool is shut down: a proxy
        thread blocked in ``conn.recv()`` on a hung worker only unblocks
        once that worker dies, so the old order (proxy first) could wait
        forever.  ``close()`` therefore always reclaims its workers.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        grace = self.shutdown_grace if wait else 0.0
        deadline = time.monotonic() + grace
        for handle in self._handles:
            if grace:
                handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for handle in self._handles:  # escalation 1: SIGTERM
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self._handles:
            if handle.process.is_alive():
                handle.process.join(timeout=1.0)
        for handle in self._handles:  # escalation 2: SIGKILL
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
        for handle in self._handles:
            try:
                handle.conn.close()
            except OSError:
                pass
        self._proxy.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __del__(self) -> None:  # best-effort: daemon workers die anyway
        try:
            if not self._closed:
                self.shutdown(wait=False)
        except Exception:
            pass


# -- shared pool / env selection --------------------------------------------

_SHARED: ProcessKernelExecutor | None = None
_SHARED_LOCK = threading.Lock()


def shared_process_executor() -> ProcessKernelExecutor:
    """The process-wide pool (lazily spawned, reaped at exit).

    Sharded backends share this one pool instead of each spawning their
    own — pools of pools oversubscribe the host.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None or _SHARED._closed:
            _SHARED = ProcessKernelExecutor()
        return _SHARED


@atexit.register
def _shutdown_shared() -> None:
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is not None:
            _SHARED.shutdown(wait=False)
            _SHARED = None


def executor_mode_from_env() -> str:
    """``IFAQ_EXECUTOR`` normalized to ``"thread"`` or ``"process"``."""
    mode = (os.environ.get("IFAQ_EXECUTOR") or "thread").strip().lower()
    if mode in ("", "thread", "threads"):
        return "thread"
    if mode in ("process", "processes"):
        return "process"
    raise ValueError(f"IFAQ_EXECUTOR must be 'thread' or 'process', got {mode!r}")
