"""IFAQ core intermediate representation (paper Figure 2).

Exports the expression AST, the type system, traversal utilities, the
builder DSL and the pretty printer.
"""

from repro.ir.expr import (
    Add,
    BinOp,
    Cmp,
    Const,
    DictBuild,
    DictLit,
    Dom,
    DynFieldAccess,
    Expr,
    FieldAccess,
    FieldLit,
    If,
    Let,
    Lookup,
    Mul,
    Neg,
    RecordLit,
    SetLit,
    Sum,
    UnaryOp,
    Var,
    VariantLit,
)
from repro.ir.program import Program, straight_line
from repro.ir.traversal import (
    children,
    count_nodes,
    free_vars,
    fresh_name,
    rebuild_exact,
    subexpressions,
    substitute,
    transform_bottom_up,
    transform_top_down,
)

__all__ = [
    "Add", "BinOp", "Cmp", "Const", "DictBuild", "DictLit", "Dom",
    "DynFieldAccess", "Expr", "FieldAccess", "FieldLit", "If", "Let",
    "Lookup", "Mul", "Neg", "RecordLit", "SetLit", "Sum", "UnaryOp",
    "Var", "VariantLit",
    "Program", "straight_line",
    "children", "count_nodes", "free_vars", "fresh_name", "rebuild_exact",
    "subexpressions", "substitute", "transform_bottom_up", "transform_top_down",
]
