"""Top-level IFAQ programs (paper Figure 2, production ``p``).

A program is a sequence of let-style initializations followed by an
iterative loop over a single piece of state::

    p ::= e  |  x ← e ; while (e) { x ← e } ; x

This shape is exactly what batch gradient descent needs: the state is
the parameter dictionary ``θ``, the condition tests convergence, and
the body produces the next parameter value.  Loop-invariant code motion
(Figure 4e, second rule) hoists lets out of the loop body into the
initialization section.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.expr import Expr, Let, Var
from repro.ir.traversal import free_vars


@dataclass(frozen=True)
class Program:
    """``inits; state ← init; while (cond) { state ← body }; state``.

    ``inits`` are ordered ``(name, expr)`` bindings visible to everything
    after them.  ``cond`` and ``body`` may refer to ``state`` and to any
    init.  The program's value is the final state.

    A non-iterative program (grammar production ``p ::= e``) is encoded
    with ``cond = Const(False)`` so the loop never runs and the value is
    ``init``; :func:`straight_line` builds this.
    """

    inits: tuple[tuple[str, Expr], ...]
    state: str
    init: Expr
    cond: Expr
    body: Expr

    def with_inits(self, inits: tuple[tuple[str, Expr], ...]) -> "Program":
        return replace(self, inits=inits)

    def free_vars(self) -> frozenset[str]:
        """Variables the program needs from its environment (relations)."""
        bound: set[str] = set()
        result: set[str] = set()
        for name, e in self.inits:
            result |= free_vars(e) - bound
            bound.add(name)
        result |= free_vars(self.init) - bound
        bound.add(self.state)
        result |= free_vars(self.cond) - bound
        result |= free_vars(self.body) - bound
        return frozenset(result)

    def as_expr(self) -> Expr:
        """The loop-free part of the program as one nested-let expression.

        Useful for passes (and tests) that operate on plain expressions:
        wraps ``init`` in the ``inits`` bindings.  The loop itself is not
        expressible as a core expression, by design.
        """
        result: Expr = self.init
        for name, value in reversed(self.inits):
            result = Let(name, value, result)
        return result


def straight_line(e: Expr, state: str = "__result") -> Program:
    """Wrap a plain expression as a degenerate (non-looping) program."""
    from repro.ir.expr import Const

    return Program(inits=(), state=state, init=e, cond=Const(False), body=Var(state))
