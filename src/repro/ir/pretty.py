"""Pretty printer for IFAQ expressions and programs.

The output mirrors the paper's notation as closely as plain text
allows: ``Σ{x ∈ e1} e2`` for summation, ``λ{x ∈ e1} e2`` for dictionary
construction, ``{{k → v}}`` for dictionary literals and ``[[a, b]]``
for sets.  Used by error messages, ``--dump-ir`` style debugging and
the compiler's per-stage artifacts.
"""

from __future__ import annotations

from repro.ir.expr import (
    Add,
    BinOp,
    Cmp,
    Const,
    DictBuild,
    DictLit,
    Dom,
    DynFieldAccess,
    Expr,
    FieldAccess,
    FieldLit,
    If,
    Let,
    Lookup,
    Mul,
    Neg,
    RecordLit,
    SetLit,
    Sum,
    UnaryOp,
    Var,
    VariantLit,
)
from repro.ir.program import Program

_BINOP_SYMBOLS = {"div": "/", "pow": "^", "min": "min", "max": "max", "and": "&&", "or": "||"}


def pretty(e: Expr, indent: int = 0) -> str:
    """Render ``e`` as a single-line (nested) string."""
    return _pp(e)


def _pp(e: Expr) -> str:
    if isinstance(e, Const):
        return repr(e.value) if isinstance(e.value, str) else str(e.value)
    if isinstance(e, FieldLit):
        return f"'{e.name}'"
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Add):
        right = _pp(e.right)
        if isinstance(e.right, Neg):
            return f"({_pp(e.left)} - {_pp(e.right.operand)})"
        return f"({_pp(e.left)} + {right})"
    if isinstance(e, Mul):
        return f"{_pp_atom(e.left)} * {_pp_atom(e.right)}"
    if isinstance(e, Neg):
        return f"-{_pp_atom(e.operand)}"
    if isinstance(e, UnaryOp):
        return f"{e.op}({_pp(e.operand)})"
    if isinstance(e, BinOp):
        sym = _BINOP_SYMBOLS.get(e.op, e.op)
        if sym.isalpha():
            return f"{sym}({_pp(e.left)}, {_pp(e.right)})"
        return f"({_pp(e.left)} {sym} {_pp(e.right)})"
    if isinstance(e, Cmp):
        return f"({_pp(e.left)} {e.op} {_pp(e.right)})"
    if isinstance(e, Sum):
        return f"Σ{{{e.var} ∈ {_pp(e.domain)}}} {_pp_atom(e.body)}"
    if isinstance(e, DictBuild):
        return f"λ{{{e.var} ∈ {_pp(e.domain)}}} {_pp_atom(e.body)}"
    if isinstance(e, DictLit):
        inner = ", ".join(f"{_pp(k)} → {_pp(v)}" for k, v in e.entries)
        return "{{" + inner + "}}"
    if isinstance(e, SetLit):
        return "[[" + ", ".join(_pp(x) for x in e.elems) + "]]"
    if isinstance(e, Dom):
        return f"dom({_pp(e.operand)})"
    if isinstance(e, Lookup):
        return f"{_pp_atom(e.dict_expr)}({_pp(e.key)})"
    if isinstance(e, RecordLit):
        inner = ", ".join(f"{n} = {_pp(v)}" for n, v in e.fields)
        return "{" + inner + "}"
    if isinstance(e, VariantLit):
        return f"<{e.tag} = {_pp(e.value)}>"
    if isinstance(e, FieldAccess):
        return f"{_pp_atom(e.record)}.{e.name}"
    if isinstance(e, DynFieldAccess):
        return f"{_pp_atom(e.record)}[{_pp(e.key)}]"
    if isinstance(e, Let):
        return f"let {e.var} = {_pp(e.value)} in {_pp(e.body)}"
    if isinstance(e, If):
        return f"if {_pp(e.cond)} then {_pp(e.then_branch)} else {_pp(e.else_branch)}"
    raise TypeError(f"unknown expression node: {type(e).__name__}")


def _pp_atom(e: Expr) -> str:
    """Parenthesize low-precedence forms when used as an operand."""
    s = _pp(e)
    if isinstance(e, (Sum, DictBuild, Let, If)):
        return f"({s})"
    return s


def pretty_program(p: Program) -> str:
    """Multi-line rendering of a top-level program."""
    lines = []
    for name, value in p.inits:
        lines.append(f"let {name} = {_pp(value)} in")
    lines.append(f"{p.state} ← {_pp(p.init)}")
    lines.append(f"while ({_pp(p.cond)}) {{")
    lines.append(f"  {p.state} ← {_pp(p.body)}")
    lines.append("}")
    lines.append(p.state)
    return "\n".join(lines)
