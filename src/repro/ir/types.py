"""Type system of the IFAQ core language (paper Figure 2, right column).

The grammar distinguishes scalar types ``S`` (numeric ``B`` and
categorical ``C``), record and variant types, and collection types
(dictionaries and sets).  D-IFAQ programs are dynamically typed and use
:data:`DYN` wherever a static type is unknown; schema specialization
(Section 4.2) refines ``DYN`` into concrete S-IFAQ types.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Type:
    """Base class of all IFAQ types.

    Types are immutable and compared structurally.  Concrete subclasses
    are frozen dataclasses, so equality and hashing come for free.
    """

    def is_numeric(self) -> bool:
        return False

    def is_categorical(self) -> bool:
        return False


@dataclass(frozen=True)
class DynType(Type):
    """The unknown type used by the dynamically-typed D-IFAQ layer."""

    def __repr__(self) -> str:
        return "dyn"


#: Singleton instance of the dynamic type.
DYN = DynType()


@dataclass(frozen=True)
class IntType(Type):
    """Machine integers (``Z`` in the grammar)."""

    def is_numeric(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "int"


@dataclass(frozen=True)
class RealType(Type):
    """Real numbers (``R`` in the grammar)."""

    def is_numeric(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "real"


@dataclass(frozen=True)
class BoolType(Type):
    """Booleans.  Categorical in the grammar; usable as 0/1 in rings."""

    def is_categorical(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class StringType(Type):
    """Strings (categorical)."""

    def is_categorical(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "string"


@dataclass(frozen=True)
class FieldType(Type):
    """The type of field names themselves (``Field`` in the grammar).

    Field values are first-class in D-IFAQ: the feature set
    ``F = [['i', 's', 'c', 'p']]`` is a set of *fields*, and dynamic
    accesses ``x[f]`` index records by field values.  Schema
    specialization eliminates this type entirely.
    """

    def is_categorical(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "field"


@dataclass(frozen=True)
class EnumType(Type):
    """A custom finite categorical type with a named domain."""

    name: str
    values: tuple[str, ...] = ()

    def is_categorical(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"enum<{self.name}>"


@dataclass(frozen=True)
class OneHotType(Type):
    """One-hot encoding ``R^n_T`` of a categorical type ``T``.

    A value of this type is an array of ``dim`` reals, one per element
    of the domain of ``base``.  Unlike an indicator vector, arbitrary
    reals are allowed at each position (the paper uses this for the
    parameters associated with a categorical feature).
    """

    dim: int
    base: Type

    def is_numeric(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"R^{self.dim}[{self.base!r}]"


@dataclass(frozen=True)
class RecordType(Type):
    """A record ``{x1: T1, ..., xn: Tn}`` with named, ordered fields."""

    fields: tuple[tuple[str, Type], ...] = field(default=())

    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def field_type(self, name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(f"record type has no field {name!r}: {self!r}")

    def has_field(self, name: str) -> bool:
        return any(fname == name for fname, _ in self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {t!r}" for n, t in self.fields)
        return "{" + inner + "}"


@dataclass(frozen=True)
class VariantType(Type):
    """A variant ``<x1: T1, ..., xn: Tn>`` — a partial record.

    A variant value carries exactly one of the declared fields.
    """

    fields: tuple[tuple[str, Type], ...] = field(default=())

    def field_type(self, name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(f"variant type has no field {name!r}: {self!r}")

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {t!r}" for n, t in self.fields)
        return "<" + inner + ">"


@dataclass(frozen=True)
class DictType(Type):
    """A dictionary ``Map[K, V]``.

    Database relations are dictionaries from tuple-records to integer
    multiplicities (bag semantics).
    """

    key: Type
    value: Type

    def __repr__(self) -> str:
        return f"Map[{self.key!r}, {self.value!r}]"


@dataclass(frozen=True)
class SetType(Type):
    """An (ordered) set ``Set[T]``."""

    elem: Type

    def __repr__(self) -> str:
        return f"Set[{self.elem!r}]"


#: Convenience singletons mirroring the grammar's base types.
INT = IntType()
REAL = RealType()
BOOL = BoolType()
STRING = StringType()
FIELD = FieldType()


def relation_type(schema: tuple[tuple[str, Type], ...]) -> DictType:
    """The S-IFAQ type of a relation with the given attribute schema.

    Relations map tuples (records over the schema) to their integer
    multiplicity, i.e. ``Map[{a1: T1, ...}, int]``.
    """
    return DictType(RecordType(tuple(schema)), INT)


def is_collection(t: Type) -> bool:
    """True for dictionary and set types (the ``x̄`` variables)."""
    return isinstance(t, (DictType, SetType))
