"""Generic traversal, reconstruction and substitution for IFAQ ASTs.

These helpers are the backbone of every optimization pass: rules only
have to say what happens at the node they care about, and the rewriter
uses :func:`children` / :func:`rebuild` to walk the rest of the tree.
Substitution is capture-avoiding; binders are alpha-renamed on demand
via :func:`fresh_name`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator

from repro.ir.expr import (
    Add,
    BinOp,
    Cmp,
    Const,
    DictBuild,
    DictLit,
    Dom,
    DynFieldAccess,
    Expr,
    FieldAccess,
    FieldLit,
    If,
    Let,
    Lookup,
    Mul,
    Neg,
    RecordLit,
    SetLit,
    Sum,
    UnaryOp,
    Var,
    VariantLit,
)

_counter = itertools.count()


def fresh_name(hint: str, avoid: Iterable[str] = ()) -> str:
    """A new variable name derived from ``hint`` not present in ``avoid``."""
    avoid = set(avoid)
    candidate = f"{hint}_{next(_counter)}"
    while candidate in avoid:
        candidate = f"{hint}_{next(_counter)}"
    return candidate


def children(e: Expr) -> tuple[Expr, ...]:
    """The direct sub-expressions of ``e`` in a canonical order."""
    if isinstance(e, (Const, FieldLit, Var)):
        return ()
    if isinstance(e, (Add, Mul)):
        return (e.left, e.right)
    if isinstance(e, (Neg, Dom, UnaryOp)):
        return (e.operand,)
    if isinstance(e, (BinOp, Cmp)):
        return (e.left, e.right)
    if isinstance(e, (Sum, DictBuild)):
        return (e.domain, e.body)
    if isinstance(e, DictLit):
        return tuple(x for kv in e.entries for x in kv)
    if isinstance(e, SetLit):
        return e.elems
    if isinstance(e, Lookup):
        return (e.dict_expr, e.key)
    if isinstance(e, RecordLit):
        return tuple(fe for _, fe in e.fields)
    if isinstance(e, VariantLit):
        return (e.value,)
    if isinstance(e, FieldAccess):
        return (e.record,)
    if isinstance(e, DynFieldAccess):
        return (e.record, e.key)
    if isinstance(e, Let):
        return (e.value, e.body)
    if isinstance(e, If):
        return (e.cond, e.then_branch, e.else_branch)
    raise TypeError(f"unknown expression node: {type(e).__name__}")


def rebuild(e: Expr, new_children: tuple[Expr, ...]) -> Expr:
    """Reconstruct ``e`` with replaced children (same order as `children`)."""
    if isinstance(e, (Const, FieldLit, Var)):
        assert not new_children
        return e
    if isinstance(e, Add):
        return Add(*new_children)
    if isinstance(e, Mul):
        return Mul(*new_children)
    if isinstance(e, Neg):
        return Neg(new_children[0])
    if isinstance(e, Dom):
        return Dom(new_children[0])
    if isinstance(e, UnaryOp):
        return UnaryOp(e.op, new_children[0])
    if isinstance(e, BinOp):
        return BinOp(e.op, *new_children)
    if isinstance(e, Cmp):
        return Cmp(e.op, *new_children)
    if isinstance(e, Sum):
        return Sum(e.var, new_children[0], new_children[1])
    if isinstance(e, DictBuild):
        return DictBuild(e.var, new_children[0], new_children[1])
    if isinstance(e, DictLit):
        it = iter(new_children)
        return DictLit(tuple((k, next(it)) for k in it))
    if isinstance(e, SetLit):
        return SetLit(tuple(new_children))
    if isinstance(e, Lookup):
        return Lookup(*new_children)
    if isinstance(e, RecordLit):
        names = e.field_names()
        return RecordLit(tuple(zip(names, new_children)))
    if isinstance(e, VariantLit):
        return VariantLit(e.tag, new_children[0])
    if isinstance(e, FieldAccess):
        return FieldAccess(new_children[0], e.name)
    if isinstance(e, DynFieldAccess):
        return DynFieldAccess(*new_children)
    if isinstance(e, Let):
        return Let(e.var, new_children[0], new_children[1])
    if isinstance(e, If):
        return If(*new_children)
    raise TypeError(f"unknown expression node: {type(e).__name__}")


def _dictlit_rebuild_pairs(e: DictLit, flat: tuple[Expr, ...]) -> DictLit:
    pairs = []
    for i in range(0, len(flat), 2):
        pairs.append((flat[i], flat[i + 1]))
    return DictLit(tuple(pairs))


# DictLit's children/rebuild above interleave keys and values; rebuild
# needs the flat list re-paired, so specialize it here.
def rebuild_exact(e: Expr, new_children: tuple[Expr, ...]) -> Expr:
    if isinstance(e, DictLit):
        return _dictlit_rebuild_pairs(e, new_children)
    return rebuild(e, new_children)


def subexpressions(e: Expr) -> Iterator[Expr]:
    """All sub-expressions of ``e`` (pre-order, including ``e`` itself)."""
    stack = [e]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def count_nodes(e: Expr) -> int:
    """Number of AST nodes in ``e`` (used as a rewrite-size guard)."""
    return sum(1 for _ in subexpressions(e))


def bound_var(e: Expr) -> str | None:
    """The variable bound by ``e``, if ``e`` is a binder node."""
    if isinstance(e, (Sum, DictBuild, Let)):
        return e.var
    return None


def free_vars(e: Expr) -> frozenset[str]:
    """The free variables of ``e`` (paper notation ``fvs(e)``)."""
    if isinstance(e, Var):
        return frozenset({e.name})
    if isinstance(e, (Const, FieldLit)):
        return frozenset()
    if isinstance(e, (Sum, DictBuild)):
        return free_vars(e.domain) | (free_vars(e.body) - {e.var})
    if isinstance(e, Let):
        return free_vars(e.value) | (free_vars(e.body) - {e.var})
    result: frozenset[str] = frozenset()
    for c in children(e):
        result |= free_vars(c)
    return result


def all_var_names(e: Expr) -> frozenset[str]:
    """Every variable name occurring in ``e``, bound or free."""
    names: set[str] = set()
    for node in subexpressions(e):
        if isinstance(node, Var):
            names.add(node.name)
        bv = bound_var(node)
        if bv is not None:
            names.add(bv)
    return frozenset(names)


def rename_binder(e: Expr, new_name: str) -> Expr:
    """Alpha-rename the binder node ``e`` to bind ``new_name``."""
    if isinstance(e, Sum):
        return Sum(new_name, e.domain, substitute(e.body, e.var, Var(new_name)))
    if isinstance(e, DictBuild):
        return DictBuild(new_name, e.domain, substitute(e.body, e.var, Var(new_name)))
    if isinstance(e, Let):
        return Let(new_name, e.value, substitute(e.body, e.var, Var(new_name)))
    raise TypeError(f"not a binder: {type(e).__name__}")


def substitute(e: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-avoiding substitution ``e[name := replacement]``."""
    if isinstance(e, Var):
        return replacement if e.name == name else e
    if isinstance(e, (Const, FieldLit)):
        return e

    if isinstance(e, (Sum, DictBuild)):
        domain = substitute(e.domain, name, replacement)
        var, body = e.var, e.body
        if var != name:
            if var in free_vars(replacement) and name in free_vars(body):
                new_var = fresh_name(var, free_vars(replacement) | free_vars(body))
                body = substitute(body, var, Var(new_var))
                var = new_var
            body = substitute(body, name, replacement)
        node_ctor = Sum if isinstance(e, Sum) else DictBuild
        return node_ctor(var, domain, body)

    if isinstance(e, Let):
        value = substitute(e.value, name, replacement)
        var, body = e.var, e.body
        if var != name:
            if var in free_vars(replacement) and name in free_vars(body):
                new_var = fresh_name(var, free_vars(replacement) | free_vars(body))
                body = substitute(body, var, Var(new_var))
                var = new_var
            body = substitute(body, name, replacement)
        return Let(var, value, body)

    new_children = tuple(substitute(c, name, replacement) for c in children(e))
    return rebuild_exact(e, new_children)


def transform_bottom_up(e: Expr, f: Callable[[Expr], Expr]) -> Expr:
    """Apply ``f`` to every node, children first."""
    new_children = tuple(transform_bottom_up(c, f) for c in children(e))
    return f(rebuild_exact(e, new_children))


def transform_top_down(e: Expr, f: Callable[[Expr], Expr]) -> Expr:
    """Apply ``f`` to every node, parents first.

    ``f`` is re-applied to its own output's children, so a rule that
    produces new redexes below itself still gets them visited.
    """
    e = f(e)
    new_children = tuple(transform_top_down(c, f) for c in children(e))
    return rebuild_exact(e, new_children)


def contains(e: Expr, needle: Expr) -> bool:
    """Structural containment test."""
    return any(node == needle for node in subexpressions(e))


def replace_subexpr(e: Expr, needle: Expr, replacement: Expr) -> Expr:
    """Replace every structural occurrence of ``needle`` in ``e``.

    Purely structural (no scope awareness): callers must ensure the
    replacement is scope-correct, which holds for the memoization pass
    where the needle's free variables stay bound by the same binders.
    """

    def visit(node: Expr) -> Expr:
        if node == needle:
            return replacement
        new_children = tuple(visit(c) for c in children(node))
        return rebuild_exact(node, new_children)

    return visit(e)
