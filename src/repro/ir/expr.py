"""Expression AST of the IFAQ core language (paper Figure 2).

All nodes are immutable frozen dataclasses.  Structural equality and
hashing are derived, which the optimizer relies on for common
subexpression detection and memoization tables.

The binder-introducing nodes are :class:`Sum` (``Σ_{x∈e1} e2``),
:class:`DictBuild` (``λ_{x∈e1} e2``) and :class:`Let`; their bound
variable scopes only over ``body``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.ir.types import DYN, Type

#: Python payloads allowed inside :class:`Const`.
ConstValue = Union[int, float, bool, str]


class Expr:
    """Base class of all IFAQ expressions."""

    __slots__ = ()

    # Operator sugar so tests and program builders read like the paper.
    def __add__(self, other: "Expr") -> "Expr":
        return Add(self, _as_expr(other))

    def __radd__(self, other) -> "Expr":
        return Add(_as_expr(other), self)

    def __mul__(self, other) -> "Expr":
        return Mul(self, _as_expr(other))

    def __rmul__(self, other) -> "Expr":
        return Mul(_as_expr(other), self)

    def __sub__(self, other) -> "Expr":
        return Add(self, Neg(_as_expr(other)))

    def __rsub__(self, other) -> "Expr":
        return Add(_as_expr(other), Neg(self))

    def __neg__(self) -> "Expr":
        return Neg(self)

    def dot(self, name: str) -> "Expr":
        """Static field access ``self.name`` (grammar: ``e.x``)."""
        return FieldAccess(self, name)

    def at(self, key: "Expr") -> "Expr":
        """Dynamic field access ``self[key]`` (grammar: ``e[e]``)."""
        return DynFieldAccess(self, _as_expr(key))

    def __call__(self, key: "Expr") -> "Expr":
        """Dictionary lookup ``self(key)`` (grammar: ``e(e)``)."""
        return Lookup(self, _as_expr(key))

    def eq(self, other) -> "Expr":
        return Cmp("==", self, _as_expr(other))


def _as_expr(v) -> Expr:
    if isinstance(v, Expr):
        return v
    if isinstance(v, (bool, int, float, str)):
        return Const(v)
    raise TypeError(f"cannot coerce {v!r} into an IFAQ expression")


@dataclass(frozen=True, eq=True)
class Const(Expr):
    """A literal: number, boolean, or string (grammar ``c``)."""

    value: ConstValue
    type: Type = DYN

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True, eq=True)
class FieldLit(Expr):
    """A field-name literal ``‘id‘`` — a first-class value of type Field."""

    name: str

    def __repr__(self) -> str:
        return f"FieldLit({self.name!r})"


@dataclass(frozen=True, eq=True)
class Var(Expr):
    """A variable reference."""

    name: str

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True, eq=True)
class Add(Expr):
    """Ring addition ``e + e`` (numbers, records, dictionaries, sets)."""

    left: Expr
    right: Expr


@dataclass(frozen=True, eq=True)
class Mul(Expr):
    """Ring multiplication ``e * e`` (scalar scaling of collections)."""

    left: Expr
    right: Expr


@dataclass(frozen=True, eq=True)
class Neg(Expr):
    """Additive inverse ``-e``."""

    operand: Expr


@dataclass(frozen=True, eq=True)
class UnaryOp(Expr):
    """A named unary operation ``uop(e)`` (not, abs, sqrt, log, exp, sign)."""

    op: str
    operand: Expr


@dataclass(frozen=True, eq=True)
class BinOp(Expr):
    """A named binary operation ``e bop e`` (div, pow, min, max, and, or)."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=True)
class Cmp(Expr):
    """A comparison producing a boolean (``==, !=, <, <=, >, >=, in``).

    Comparisons are multiplied into ring expressions as 0/1 indicators;
    the join condition ``(xs.i == xi.i)`` in Example 4.7 is a `Cmp`.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=True)
class Sum(Expr):
    """``Σ_{var ∈ domain} body`` — iterate a collection, fold with ring ``+``.

    ``domain`` may be a set (iterating elements) or a dictionary
    (iterating keys — identical to ``Σ_{x ∈ dom(d)}``).  The fold uses
    the monoid addition of the body's type, so a `Sum` may produce a
    number, a record, a dictionary, or a set.
    """

    var: str
    domain: Expr
    body: Expr


@dataclass(frozen=True, eq=True)
class DictBuild(Expr):
    """``λ_{var ∈ domain} body`` — build a dictionary keyed by ``domain``.

    For each element ``k`` of ``domain`` the result maps ``k`` to
    ``body[var := k]``.
    """

    var: str
    domain: Expr
    body: Expr


@dataclass(frozen=True, eq=True)
class DictLit(Expr):
    """A dictionary literal ``{{k1 → v1, ..., kn → vn}}``."""

    entries: tuple[tuple[Expr, Expr], ...]


@dataclass(frozen=True, eq=True)
class SetLit(Expr):
    """An ordered-set literal ``[[e1, ..., en]]``."""

    elems: tuple[Expr, ...]


@dataclass(frozen=True, eq=True)
class Dom(Expr):
    """``dom(e)`` — the key set of a dictionary."""

    operand: Expr


@dataclass(frozen=True, eq=True)
class Lookup(Expr):
    """``e0(e1)`` — the value associated with key ``e1`` in dict ``e0``.

    Missing keys yield the ring zero (bag semantics: multiplicity 0).
    """

    dict_expr: Expr
    key: Expr


@dataclass(frozen=True, eq=True)
class RecordLit(Expr):
    """A record constructor ``{x1 = e1, ..., xn = en}``."""

    fields: tuple[tuple[str, Expr], ...]

    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def field_expr(self, name: str) -> Expr:
        for fname, fexpr in self.fields:
            if fname == name:
                return fexpr
        raise KeyError(f"record literal has no field {name!r}")


@dataclass(frozen=True, eq=True)
class VariantLit(Expr):
    """A variant constructor ``<x = e>`` — a partial record."""

    tag: str
    value: Expr


@dataclass(frozen=True, eq=True)
class FieldAccess(Expr):
    """Static field access ``e.x`` on a record or variant."""

    record: Expr
    name: str


@dataclass(frozen=True, eq=True)
class DynFieldAccess(Expr):
    """Dynamic field access ``e[e]`` — the key is computed at runtime.

    Schema specialization rewrites ``e1[‘f‘]`` into ``e1.f``
    (Figure 4g, first rule).
    """

    record: Expr
    key: Expr


@dataclass(frozen=True, eq=True)
class Let(Expr):
    """``let var = value in body``."""

    var: str
    value: Expr
    body: Expr


@dataclass(frozen=True, eq=True)
class If(Expr):
    """``if cond then then_branch else else_branch``."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr


#: Nodes that introduce a bound variable scoping over their last child.
BINDERS = (Sum, DictBuild, Let)
