"""Convenience constructors for writing IFAQ programs in Python.

These helpers make D-IFAQ programs in tests and in :mod:`repro.ml.programs`
read close to the paper's notation, e.g.::

    sum_over('x', dom(V('Q')), V('Q')(V('x')) * V('x').at(V('f')))

is ``Σ_{x ∈ dom(Q)} Q(x) * x[f]``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ir.expr import (
    BinOp,
    Cmp,
    Const,
    DictBuild,
    DictLit,
    Dom,
    Expr,
    FieldLit,
    If,
    Let,
    Mul,
    RecordLit,
    SetLit,
    Sum,
    UnaryOp,
    Var,
    VariantLit,
    _as_expr,
)


def V(name: str) -> Var:
    """A variable reference."""
    return Var(name)


def C(value) -> Const:
    """A scalar constant."""
    return Const(value)


def fld(name: str) -> FieldLit:
    """A field literal ``‘name‘``."""
    return FieldLit(name)


def fields(*names: str) -> SetLit:
    """The set literal ``[[‘a‘, ‘b‘, ...]]`` of field names."""
    return SetLit(tuple(FieldLit(n) for n in names))


def sum_over(var: str, domain: Expr, body) -> Sum:
    """``Σ_{var ∈ domain} body``."""
    return Sum(var, domain, _as_expr(body))


def dict_build(var: str, domain: Expr, body) -> DictBuild:
    """``λ_{var ∈ domain} body``."""
    return DictBuild(var, domain, _as_expr(body))


def dict_lit(*entries: tuple) -> DictLit:
    """``{{k1 → v1, ...}}`` from (key, value) pairs."""
    return DictLit(tuple((_as_expr(k), _as_expr(v)) for k, v in entries))


def set_lit(*elems) -> SetLit:
    """``[[e1, ..., en]]``."""
    return SetLit(tuple(_as_expr(e) for e in elems))


def dom(e: Expr) -> Dom:
    """``dom(e)``."""
    return Dom(e)


def rec(**field_exprs) -> RecordLit:
    """A record literal ``{name = expr, ...}`` (keyword-argument form)."""
    return RecordLit(tuple((name, _as_expr(e)) for name, e in field_exprs.items()))


def record(pairs: Iterable[tuple[str, Expr]]) -> RecordLit:
    """A record literal from explicit (name, expr) pairs.

    Unlike :func:`rec`, allows field names that are not valid Python
    identifiers (e.g. generated aggregate names like ``m_c_p``).
    """
    return RecordLit(tuple((name, _as_expr(e)) for name, e in pairs))


def variant(tag: str, value) -> VariantLit:
    """A variant ``<tag = value>``."""
    return VariantLit(tag, _as_expr(value))


def let(var: str, value, body) -> Let:
    """``let var = value in body``."""
    return Let(var, _as_expr(value), _as_expr(body))


def let_star(bindings: Sequence[tuple[str, Expr]], body: Expr) -> Expr:
    """Nested lets: ``let x1 = e1 in ... let xn = en in body``."""
    result = body
    for name, value in reversed(list(bindings)):
        result = Let(name, value, result)
    return result


def if_(cond, then_branch, else_branch) -> If:
    """``if cond then e1 else e2``."""
    return If(_as_expr(cond), _as_expr(then_branch), _as_expr(else_branch))


def cmp(op: str, left, right) -> Cmp:
    """A comparison indicator (evaluates to 0/1 inside ring arithmetic)."""
    return Cmp(op, _as_expr(left), _as_expr(right))


def eq(left, right) -> Cmp:
    return cmp("==", left, right)


def div(left, right) -> BinOp:
    return BinOp("div", _as_expr(left), _as_expr(right))


def sq(e) -> Expr:
    """``e * e`` — squaring, used in loss/variance expressions."""
    e = _as_expr(e)
    return Mul(e, e)


def not_(e) -> UnaryOp:
    return UnaryOp("not", _as_expr(e))


def product(factors: Sequence[Expr]) -> Expr:
    """Left-nested product of ``factors`` (``1`` if empty)."""
    factors = list(factors)
    if not factors:
        return Const(1)
    result = factors[0]
    for f in factors[1:]:
        result = Mul(result, f)
    return result


def add_all(terms: Sequence[Expr]) -> Expr:
    """Left-nested sum of ``terms`` (``0`` if empty)."""
    terms = list(terms)
    if not terms:
        return Const(0)
    result = terms[0]
    for t in terms[1:]:
        result = result + t
    return result
