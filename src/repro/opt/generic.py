"""Generic cleanup rules (paper Figure 4i) plus constant folding.

* inline ``let``s whose value is trivial or used at most once,
* drop dead ``let``s,
* flatten ``let``-of-``let``,
* unify syntactically identical adjacent ``let``s (local CSE),
* fold constants and algebraic identities (``e*1``, ``e+0``, ``e*0``).

These run between the structural passes to keep expressions small; they
are deliberately conservative (inlining never duplicates non-trivial
work into more than one use site).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import Add, Const, Expr, FieldLit, Let, Mul, Neg, Var
from repro.ir.traversal import free_vars, substitute
from repro.opt.rewriter import rule


def _use_count(body: Expr, name: str) -> int:
    count = 0
    stack = [(body, False)]
    # Scope-aware count: stop at binders that shadow `name`.
    from repro.ir.traversal import bound_var, children

    def visit(e: Expr) -> None:
        nonlocal count
        if isinstance(e, Var):
            if e.name == name:
                count += 1
            return
        bv = bound_var(e)
        if bv == name:
            # The domain/value child is still in our scope.
            first_child = children(e)[0]
            visit(first_child)
            return
        for c in children(e):
            visit(c)

    visit(body)
    return count


@rule("generic/inline-trivial-let")
def inline_trivial_let(e: Expr) -> Optional[Expr]:
    """``let x = v in body → body[x := v]`` for variable/constant values."""
    if isinstance(e, Let) and isinstance(e.value, (Var, Const, FieldLit)):
        return substitute(e.body, e.var, e.value)
    return None


@rule("generic/dead-let")
def dead_let(e: Expr) -> Optional[Expr]:
    """``let x = e0 in e1 → e1`` when ``x ∉ fvs(e1)``."""
    if isinstance(e, Let) and e.var not in free_vars(e.body):
        return e.body
    return None


@rule("generic/inline-single-use-let")
def inline_single_use_let(e: Expr) -> Optional[Expr]:
    """Inline a let whose variable occurs exactly once in the body."""
    if not isinstance(e, Let):
        return None
    if _use_count(e.body, e.var) == 1:
        return substitute(e.body, e.var, e.value)
    return None


@rule("generic/flatten-let")
def flatten_let(e: Expr) -> Optional[Expr]:
    """``let x = (let y = e0 in e1) in e2 → let y = e0 in let x = e1 in e2``."""
    if not (isinstance(e, Let) and isinstance(e.value, Let)):
        return None
    inner = e.value
    if inner.var in free_vars(e.body) or inner.var == e.var:
        from repro.ir.traversal import fresh_name

        new_var = fresh_name(inner.var, free_vars(e.body) | free_vars(inner.body) | {e.var})
        renamed_body = substitute(inner.body, inner.var, Var(new_var))
        return Let(new_var, inner.value, Let(e.var, renamed_body, e.body))
    return Let(inner.var, inner.value, Let(e.var, inner.body, e.body))


@rule("generic/cse-adjacent-lets")
def cse_adjacent_lets(e: Expr) -> Optional[Expr]:
    """``let x = e0 in let y = e0 in Γ(x,y) → let x = e0 in Γ(x,x)``."""
    if not (isinstance(e, Let) and isinstance(e.body, Let)):
        return None
    inner = e.body
    if inner.value == e.value and e.var != inner.var:
        return Let(e.var, e.value, substitute(inner.body, inner.var, Var(e.var)))
    return None


@rule("generic/fold-constants")
def fold_constants(e: Expr) -> Optional[Expr]:
    """Arithmetic on literals and the usual ring identities."""
    if isinstance(e, Add):
        lv = e.left.value if isinstance(e.left, Const) else None
        rv = e.right.value if isinstance(e.right, Const) else None
        if lv is not None and rv is not None and _numeric(lv) and _numeric(rv):
            return Const(lv + rv)
        if lv == 0:
            return e.right
        if rv == 0:
            return e.left
    if isinstance(e, Mul):
        lv = e.left.value if isinstance(e.left, Const) else None
        rv = e.right.value if isinstance(e.right, Const) else None
        if lv is not None and rv is not None and _numeric(lv) and _numeric(rv):
            return Const(lv * rv)
        if lv == 1:
            return e.right
        if rv == 1:
            return e.left
        if lv == 0 or rv == 0:
            return Const(0)
    if isinstance(e, Neg) and isinstance(e.operand, Const) and _numeric(e.operand.value):
        return Const(-e.operand.value)
    if isinstance(e, Neg) and isinstance(e.operand, Neg):
        return e.operand.operand
    return None


def _numeric(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


GENERIC_RULES = (
    inline_trivial_let,
    dead_let,
    flatten_let,
    cse_adjacent_lets,
    fold_constants,
)

#: Cleanup including single-use inlining (not always wanted: the
#: memoized covar let is single-use inside the loop but must survive).
AGGRESSIVE_GENERIC_RULES = GENERIC_RULES + (inline_single_use_let,)
