"""Cardinality estimation for the loop-scheduling cost model (Fig. 4b).

Loop scheduling reorders nested summations so the outer loop iterates
over the smaller collection.  Deciding "smaller" needs sizes:

* set literals have an exact static size,
* ``dom(R)`` for a relation variable ``R`` uses database statistics,
* everything else is unknown (treated as very large).

The estimator is deliberately simple — the paper assumes the join order
"is given as input" and uses standard optimizer statistics; what
matters here is distinguishing tiny static field sets from data-sized
domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.ir.expr import Dom, Expr, SetLit, Var

#: Size assumed for unknown domains — larger than any static field set.
UNKNOWN_LARGE = 10**12


@dataclass
class CardinalityEstimator:
    """Estimates iteration-domain sizes from static shape and statistics.

    ``stats`` maps variable names (relations, materialized views) to
    their tuple counts; ``let_sizes`` is filled in by passes that know
    the sizes of let-bound collections (e.g. the feature set ``F``).
    """

    stats: Mapping[str, int] = field(default_factory=dict)
    let_sizes: dict[str, int] = field(default_factory=dict)

    def estimate(self, domain: Expr) -> Optional[int]:
        """Estimated element count of ``domain``, or None if unknown."""
        if isinstance(domain, SetLit):
            return len(domain.elems)
        if isinstance(domain, Dom):
            return self.estimate(domain.operand)
        if isinstance(domain, Var):
            if domain.name in self.let_sizes:
                return self.let_sizes[domain.name]
            if domain.name in self.stats:
                return self.stats[domain.name]
        return None

    def estimate_or_large(self, domain: Expr) -> int:
        est = self.estimate(domain)
        return UNKNOWN_LARGE if est is None else est

    def is_static_domain(self, domain: Expr) -> bool:
        """Is this a statically-known finite domain (Fig. 4d side condition)?

        Static domains are set literals or variables let-bound to set
        literals — the feature set ``F`` is the canonical case.
        """
        if isinstance(domain, SetLit):
            return True
        if isinstance(domain, Var):
            return domain.name in self.let_sizes
        return False
