"""Normalization rules (paper Figure 4a).

Brings expressions into sum-of-products form: distributes products over
additions, pushes multiplications inside summations, and floats
negations outward through products and summations.  Normalization is a
preprocessing step for loop scheduling and factorization — products
must sit inside the loops before factorization can pull the invariant
parts back out in the right place.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import Add, Expr, Mul, Neg, Sum
from repro.ir.traversal import free_vars, fresh_name, rename_binder
from repro.opt.rewriter import rule


@rule("normalize/distribute-mul-over-add")
def distribute_mul_over_add(e: Expr) -> Optional[Expr]:
    """``e1 * (e2 + e3) → e1*e2 + e1*e3`` (both operand orders)."""
    if not isinstance(e, Mul):
        return None
    if isinstance(e.right, Add):
        return Add(Mul(e.left, e.right.left), Mul(e.left, e.right.right))
    if isinstance(e.left, Add):
        return Add(Mul(e.left.left, e.right), Mul(e.left.right, e.right))
    return None


@rule("normalize/push-mul-into-sum")
def push_mul_into_sum(e: Expr) -> Optional[Expr]:
    """``e1 * Σ_{x∈e2} e3 → Σ_{x∈e2} (e1 * e3)`` (capture-avoiding)."""
    if not isinstance(e, Mul):
        return None
    if isinstance(e.right, Sum):
        s, other, left_side = e.right, e.left, True
    elif isinstance(e.left, Sum):
        s, other, left_side = e.left, e.right, False
    else:
        return None
    if s.var in free_vars(other):
        s = rename_binder(s, fresh_name(s.var, free_vars(other)))
        assert isinstance(s, Sum)
    body = Mul(other, s.body) if left_side else Mul(s.body, other)
    return Sum(s.var, s.domain, body)


@rule("normalize/mul-neg")
def mul_neg(e: Expr) -> Optional[Expr]:
    """``e1 * (-e2) → -(e1 * e2)`` (both operand orders)."""
    if not isinstance(e, Mul):
        return None
    if isinstance(e.right, Neg):
        return Neg(Mul(e.left, e.right.operand))
    if isinstance(e.left, Neg):
        return Neg(Mul(e.left.operand, e.right))
    return None


@rule("normalize/neg-sum")
def neg_sum(e: Expr) -> Optional[Expr]:
    """``-Σ_{x∈e2} e3 → Σ_{x∈e2} -e3``."""
    if isinstance(e, Neg) and isinstance(e.operand, Sum):
        s = e.operand
        return Sum(s.var, s.domain, Neg(s.body))
    return None


@rule("normalize/split-sum-over-add")
def split_sum_over_add(e: Expr) -> Optional[Expr]:
    """``Σ_{x∈d}(e1 + e2) → Σ_{x∈d} e1 + Σ_{x∈d} e2``.

    Σ is an additive homomorphism; splitting exposes each addend as its
    own summation so loop scheduling and factorization can treat them
    independently (the sum-of-products normal form).  Multi-aggregate
    iteration (Figure 4h) later re-fuses loops that survive to the
    aggregate layer.
    """
    if isinstance(e, Sum) and isinstance(e.body, Add):
        return Add(
            Sum(e.var, e.domain, e.body.left),
            Sum(e.var, e.domain, e.body.right),
        )
    return None


NORMALIZATION_RULES = (
    distribute_mul_over_add,
    push_mul_into_sum,
    mul_neg,
    neg_sum,
    split_sum_over_add,
)
