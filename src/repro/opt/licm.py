"""Loop-invariant code motion (paper Figure 4e).

Two levels:

* **Expression level** — a ``let`` inside a summation (or dictionary
  construction) whose value does not mention the loop variable moves
  outside the loop::

      Σ_{x∈e1} (let y = e2 in e3) → let y = e2 in Σ_{x∈e1} e3   (x ∉ fvs(e2))

* **Program level** — a ``let`` inside a ``while`` body whose value does
  not mention the loop state moves into the program's initialization
  section, so it is computed once instead of once per iteration.  This
  is the step that finally lifts the memoized covar matrix out of the
  gradient-descent loop (Example 4.5).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import DictBuild, Expr, Let, Sum
from repro.ir.program import Program
from repro.ir.traversal import free_vars, fresh_name, substitute
from repro.ir.expr import Var
from repro.opt.rewriter import rule


@rule("licm/let-out-of-loop")
def let_out_of_loop(e: Expr) -> Optional[Expr]:
    """Hoist an invariant ``let`` out of ``Σ`` / ``λ``."""
    if not isinstance(e, (Sum, DictBuild)):
        return None
    if not isinstance(e.body, Let):
        return None
    inner = e.body
    if e.var in free_vars(inner.value):
        return None
    # Keep the binding's name from capturing anything in the domain.
    var = inner.var
    body = inner.body
    if var in free_vars(e.domain):
        new_var = fresh_name(var, free_vars(e.domain) | free_vars(body))
        body = substitute(body, var, Var(new_var))
        var = new_var
    loop_ctor = Sum if isinstance(e, Sum) else DictBuild
    return Let(var, inner.value, loop_ctor(e.var, e.domain, body))


@rule("licm/float-let-upward")
def float_let_upward(e: Expr) -> Optional[Expr]:
    """Float a ``let`` out of any non-binding, non-branching context:
    ``Γ(let y = v in b) → let y = v in Γ(b)``.

    Needed to connect the expression-level and program-level rules of
    Figure 4e: the memoized covar table is born inside a record
    constructor (the loop state carries θ and the iteration counter)
    and must surface to the top of the while body before it can move to
    the initialization section.  ``if`` branches are left alone — code
    in an untaken branch must stay unevaluated — and binder bodies are
    handled by the invariance-checked rule above.
    """
    from repro.ir.expr import If
    from repro.ir.traversal import children, rebuild_exact

    if isinstance(e, (Let, Sum, DictBuild, If)) or not isinstance(e, Expr):
        return None
    kids = children(e)
    for idx, child in enumerate(kids):
        if isinstance(child, Let):
            inner = child
            others = kids[:idx] + kids[idx + 1:]
            var, body = inner.var, inner.body
            if any(var in free_vars(o) for o in others):
                new_var = fresh_name(var, set().union(*(free_vars(o) for o in others)) | free_vars(body))
                body = substitute(body, var, Var(new_var))
                var = new_var
            new_kids = kids[:idx] + (body,) + kids[idx + 1:]
            return Let(var, inner.value, rebuild_exact(e, new_kids))
    return None


LICM_RULES = (let_out_of_loop, float_let_upward)


def hoist_loop_invariants(program: Program) -> Program:
    """Figure 4e, second rule: move invariant lets from the while body
    to the initialization section.

    Repeats while the body is a ``let`` whose value mentions neither the
    loop state nor any name that would collide with existing inits.
    """
    inits = list(program.inits)
    body = program.body
    taken = {name for name, _ in inits} | {program.state}

    while isinstance(body, Let) and program.state not in free_vars(body.value):
        var, value, rest = body.var, body.value, body.body
        if var in taken:
            new_var = fresh_name(var, taken | free_vars(rest))
            rest = substitute(rest, var, Var(new_var))
            var = new_var
        inits.append((var, value))
        taken.add(var)
        body = rest

    if body is program.body:
        return program
    return Program(
        inits=tuple(inits),
        state=program.state,
        init=program.init,
        cond=program.cond,
        body=body,
    )
