"""The high-level optimization pipeline (paper Section 4.1).

Order matters and mirrors the paper:

1. **normalization** — sum-of-products form (products inside loops),
2. **loop scheduling** — smaller collections to the outer loops,
3. **factorization** — loop-independent factors back out of loops,
4. **static memoization** — tabulate feature-indexed aggregates,
5. **loop-invariant code motion** — float the tables upward, and at
   the program level move invariant lets out of the ``while`` loop,
6. **generic cleanup** — dead/trivial lets, constant folding.

Normalization and factorization are mutually inverse rule families, so
each family runs to its own fixpoint; they are never mixed in one set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.ir.expr import Expr, SetLit
from repro.ir.program import Program
from repro.opt.cardinality import CardinalityEstimator
from repro.opt.factorization import FACTORIZATION_RULES
from repro.opt.generic import GENERIC_RULES, fold_constants
from repro.opt.licm import LICM_RULES, hoist_loop_invariants
from repro.opt.loop_scheduling import make_loop_scheduling_rule
from repro.opt.memoization import apply_static_memoization
from repro.opt.normalization import NORMALIZATION_RULES
from repro.opt.rewriter import RewriteLog, rewrite_fixpoint


@dataclass
class HighLevelOptimizer:
    """Applies the Section 4.1 stack to expressions and programs.

    ``stats`` supplies relation/view cardinalities for the
    loop-scheduling cost model.  Set literals bound by program inits
    (the feature set ``F``) are registered as static domains
    automatically.
    """

    stats: Mapping[str, int] = field(default_factory=dict)
    log: RewriteLog = field(default_factory=RewriteLog)

    def __post_init__(self) -> None:
        self.estimator = CardinalityEstimator(stats=dict(self.stats))

    # -- individual stages (exposed for the Figure 6 micro-benchmarks) --

    def normalize(self, e: Expr) -> Expr:
        return rewrite_fixpoint(e, NORMALIZATION_RULES + (fold_constants,), self.log)

    def schedule_loops(self, e: Expr) -> Expr:
        rule = make_loop_scheduling_rule(self.estimator)
        return rewrite_fixpoint(e, (rule,), self.log)

    def factorize(self, e: Expr) -> Expr:
        return rewrite_fixpoint(e, FACTORIZATION_RULES, self.log)

    def memoize(self, e: Expr) -> Expr:
        return apply_static_memoization(e, self.estimator)

    def code_motion(self, e: Expr) -> Expr:
        return rewrite_fixpoint(e, LICM_RULES + GENERIC_RULES, self.log)

    def optimize_expr(self, e: Expr) -> Expr:
        """The full expression-level stack."""
        e = self.normalize(e)
        e = self.schedule_loops(e)
        e = self.factorize(e)
        e = self.memoize(e)
        e = self.code_motion(e)
        return e

    # -- program level ---------------------------------------------------

    def optimize_program(self, program: Program) -> Program:
        """Optimize every component, then hoist invariants out of the loop."""
        self._register_static_lets(program)

        inits = tuple(
            (name, self.optimize_expr(value)) for name, value in program.inits
        )
        init = self.optimize_expr(program.init)
        cond = self.optimize_expr(program.cond)
        body = self.optimize_expr(program.body)

        optimized = Program(
            inits=inits, state=program.state, init=init, cond=cond, body=body
        )
        return hoist_loop_invariants(optimized)

    def _register_static_lets(self, program: Program) -> None:
        for name, value in program.inits:
            if isinstance(value, SetLit):
                self.estimator.let_sizes[name] = len(value.elems)


def high_level_optimize(
    program: Program, stats: Mapping[str, int] | None = None
) -> Program:
    """One-shot convenience wrapper around :class:`HighLevelOptimizer`."""
    return HighLevelOptimizer(stats=stats or {}).optimize_program(program)
