"""High-level optimizations on D-IFAQ (paper Section 4.1 / Figure 4)."""

from repro.opt.cardinality import CardinalityEstimator
from repro.opt.factorization import FACTORIZATION_RULES
from repro.opt.generic import AGGRESSIVE_GENERIC_RULES, GENERIC_RULES
from repro.opt.licm import LICM_RULES, hoist_loop_invariants
from repro.opt.loop_scheduling import make_loop_scheduling_rule
from repro.opt.memoization import apply_static_memoization
from repro.opt.normalization import NORMALIZATION_RULES
from repro.opt.pipeline import HighLevelOptimizer, high_level_optimize
from repro.opt.rewriter import (
    RewriteBudgetExceeded,
    RewriteLog,
    Rule,
    rewrite_fixpoint,
    rewrite_once,
    rule,
)

__all__ = [
    "AGGRESSIVE_GENERIC_RULES", "CardinalityEstimator", "FACTORIZATION_RULES",
    "GENERIC_RULES", "HighLevelOptimizer", "LICM_RULES", "NORMALIZATION_RULES",
    "RewriteBudgetExceeded", "RewriteLog", "Rule", "apply_static_memoization",
    "high_level_optimize", "hoist_loop_invariants", "make_loop_scheduling_rule",
    "rewrite_fixpoint", "rewrite_once", "rule",
]
