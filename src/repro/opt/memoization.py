"""Static memoization (paper Figure 4d).

Inside loops over *statically-known finite domains* (the feature set
``F``), repeated expensive computations cannot be hoisted directly
because they mention the loop variables.  Static memoization tabulates
them instead: an inner summation ``Σ_{y∈big} e`` whose only
loop-dependences are static binders ``f1, ..., fk`` becomes a
dictionary ``z = λ_{f1∈F1} ... λ_{fk∈Fk} Σ_{y∈big} e`` built once, with
the original occurrence replaced by the lookups ``z(f1)...(fk)``.

For linear regression this manufactures the covariance matrix ``M``
(Example 4.4); loop-invariant code motion then hoists the ``let`` out
of the gradient-descent loop (Example 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import DictBuild, Expr, Let, Lookup, Sum, Var
from repro.ir.traversal import (
    bound_var,
    children,
    count_nodes,
    free_vars,
    fresh_name,
    rebuild_exact,
    replace_subexpr,
)
from repro.opt.cardinality import CardinalityEstimator


@dataclass
class _Candidate:
    """An inner summation worth tabulating."""

    target: Sum
    #: static binders the target mentions, outermost first, with domains
    dep_binders: list[tuple[str, Expr]]


def _find_candidate(
    body: Expr,
    chain: list[tuple[str, Expr]],
    estimator: CardinalityEstimator,
) -> _Candidate | None:
    """Scope-aware search for a memoizable summation under ``chain``.

    The chain of static binders extends through any further static
    binders met during the search (e.g. ``Σ_{f2∈F}`` nested inside
    ``λ_{f1∈F}``).  A ``Sum`` over a non-static domain qualifies when
    the chain *head* is free in it and no non-static locally bound
    variable leaks into it.  The largest qualifying subexpression wins.
    """
    head = chain[0][0]
    best: _Candidate | None = None

    def visit(
        node: Expr,
        inner_chain: list[tuple[str, Expr]],
        locally_bound: frozenset[str],
    ) -> None:
        nonlocal best
        if isinstance(node, (Sum, DictBuild)) and estimator.is_static_domain(node.domain):
            visit(node.domain, inner_chain, locally_bound)
            visit(node.body, inner_chain + [(node.var, node.domain)], locally_bound)
            return
        if isinstance(node, Sum):  # non-static domain
            fv = free_vars(node)
            if head in fv and not (fv & locally_bound):
                full_chain = chain + inner_chain
                deps = [(v, d) for v, d in full_chain if v in fv]
                if best is None or count_nodes(node) > count_nodes(best.target):
                    best = _Candidate(target=node, dep_binders=deps)
                return  # maximal subexpression: don't descend
            visit(node.domain, inner_chain, locally_bound)
            visit(node.body, inner_chain, locally_bound | {node.var})
            return
        bv = bound_var(node)
        if bv is not None:
            first, second = children(node)
            visit(first, inner_chain, locally_bound)
            visit(second, inner_chain, locally_bound | {bv})
            return
        for c in children(node):
            visit(c, inner_chain, locally_bound)

    visit(body, [], frozenset())
    return best


def apply_static_memoization(e: Expr, estimator: CardinalityEstimator) -> Expr:
    """Apply Figure 4d throughout ``e``.

    Walks the expression; at each static binder whose body contains
    eligible inner summations (with this binder as their outermost
    dependence), the summations are tabulated into ``let``-bound
    dictionaries placed immediately above the binder — the position
    from which loop-invariant code motion can hoist them further.
    """

    def visit(node: Expr) -> Expr:
        if isinstance(node, (Sum, DictBuild)) and estimator.is_static_domain(node.domain):
            # Memoize top-down: candidates mentioning THIS binder are
            # tabulated against the full static chain below it, so the
            # outermost binder claims the deepest-chained aggregates
            # (the covar matrix gets λf1 λf2, not |F| per-f1 tables).
            current: Sum | DictBuild = node
            pending: list[tuple[str, Expr]] = []
            while True:
                candidate = _find_candidate(
                    current.body, [(current.var, current.domain)], estimator
                )
                if candidate is None:
                    break
                current, binding = _memoize(current, candidate)
                pending.append(binding)

            # Recurse into the residual body for independent deeper
            # regions (candidates not mentioning this binder).  The
            # generated tables are final: revisiting them would re-find
            # the very summations they tabulate.
            body = visit(current.body)
            rebuilt = rebuild_exact(current, (current.domain, body))

            result: Expr = rebuilt
            for memo_var, table in reversed(pending):
                result = Let(memo_var, table, result)
            return result

        new_children = tuple(visit(c) for c in children(node))
        return rebuild_exact(node, new_children)

    return visit(e)


def _memoize(
    binder: Sum | DictBuild,
    candidate: _Candidate,
) -> tuple[Sum | DictBuild, tuple[str, Expr]]:
    """Tabulate ``candidate`` and replace its occurrences in ``binder``.

    Returns the rewritten binder and the ``(memo_var, table)`` binding
    to be placed above it.
    """
    target = candidate.target

    table: Expr = target
    for v, d in reversed(candidate.dep_binders):
        table = DictBuild(v, d, table)

    avoid = free_vars(target) | {v for v, _ in candidate.dep_binders}
    memo_var = fresh_name("memo", avoid)
    replacement: Expr = Var(memo_var)
    for v, _ in candidate.dep_binders:
        replacement = Lookup(replacement, Var(v))

    new_body = replace_subexpr(binder.body, target, replacement)
    rebuilt = rebuild_exact(binder, (binder.domain, new_body))
    assert isinstance(rebuilt, (Sum, DictBuild))
    return rebuilt, (memo_var, table)
