"""Factorization rules (paper Figure 4c).

The inverse of distribution, applied where it saves work:

* ``e1*e2 + e1*e3 → e1*(e2 + e3)`` — collect a common factor,
* ``Σ_{x∈e2}(e1*e3) → e1 * Σ_{x∈e2} e3`` if ``x ∉ fvs(e1)`` — hoist
  loop-independent factors out of a summation.

Products are treated as flattened factor lists, so a factor buried in
``a * b * c`` is found regardless of association order.  The ring
multiplication is commutative for all value domains IFAQ uses, which is
what licenses the reordering (paper footnote 1: "ring-based operations").
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import Add, Expr, Mul, Sum
from repro.ir.traversal import free_vars
from repro.opt.rewriter import rule


def flatten_product(e: Expr) -> list[Expr]:
    """The maximal factor list of a nested multiplication.

    A negation contributes a literal ``-1`` factor, so signs do not
    block factor matching or hoisting.
    """
    from repro.ir.expr import Const, Neg

    if isinstance(e, Mul):
        return flatten_product(e.left) + flatten_product(e.right)
    if isinstance(e, Neg):
        return [Const(-1)] + flatten_product(e.operand)
    return [e]


def build_product(factors: list[Expr]) -> Expr:
    """Rebuild a left-nested product; empty products are the literal 1."""
    from repro.ir.expr import Const

    if not factors:
        return Const(1)
    result = factors[0]
    for f in factors[1:]:
        result = Mul(result, f)
    return result


@rule("factorize/common-factor-in-add")
def factor_common_add(e: Expr) -> Optional[Expr]:
    """``e1*e2 + e1*e3 → e1*(e2+e3)`` with factor-list matching."""
    if not isinstance(e, Add):
        return None
    left_factors = flatten_product(e.left)
    right_factors = flatten_product(e.right)
    if len(left_factors) < 2 and len(right_factors) < 2:
        return None
    for i, f in enumerate(left_factors):
        if f in right_factors:
            remaining_left = left_factors[:i] + left_factors[i + 1:]
            j = right_factors.index(f)
            remaining_right = right_factors[:j] + right_factors[j + 1:]
            if not remaining_left or not remaining_right:
                continue
            return Mul(
                f,
                Add(build_product(remaining_left), build_product(remaining_right)),
            )
    return None


@rule("factorize/hoist-from-sum")
def hoist_from_sum(e: Expr) -> Optional[Expr]:
    """``Σ_{x∈d}(e1*e3) → e1 * Σ_{x∈d} e3`` for every x-independent factor."""
    if not isinstance(e, Sum):
        return None
    factors = flatten_product(e.body)
    if len(factors) < 2:
        return None
    independent = [f for f in factors if e.var not in free_vars(f)]
    dependent = [f for f in factors if e.var in free_vars(f)]
    if not independent or not dependent:
        return None
    return Mul(
        build_product(independent),
        Sum(e.var, e.domain, build_product(dependent)),
    )


FACTORIZATION_RULES = (
    factor_common_add,
    hoist_from_sum,
)
