"""Loop scheduling (paper Figure 4b).

Reorders directly nested summations so that the outer loop ranges over
the smaller collection::

    Σ_{x∈e1} Σ_{y∈e2} e3  →  Σ_{y∈e2} Σ_{x∈e1} e3      if |e1| > |e2|

Pushing the larger loop inside lets factorization hoist computations
that depend only on the (small) outer variable out of the expensive
inner loop.  In the linear-regression example this is what moves
``Σ_{x∈dom(Q)}`` inside ``Σ_{f2∈F}`` (Example 4.2), enabling the covar
matrix to be memoized.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import Expr, Sum
from repro.ir.traversal import free_vars
from repro.opt.cardinality import CardinalityEstimator
from repro.opt.rewriter import Rule


def make_loop_scheduling_rule(estimator: CardinalityEstimator) -> Rule:
    """Build the swap rule for a given cardinality estimator."""

    def swap_sums(e: Expr) -> Optional[Expr]:
        if not (isinstance(e, Sum) and isinstance(e.body, Sum)):
            return None
        outer, inner = e, e.body
        if outer.var == inner.var:
            return None
        # The swap must not move a loop inside its own dependency:
        # neither domain may mention the other loop's variable.
        if outer.var in free_vars(inner.domain):
            return None
        if inner.var in free_vars(outer.domain):
            return None
        outer_size = estimator.estimate_or_large(outer.domain)
        inner_size = estimator.estimate_or_large(inner.domain)
        if outer_size > inner_size:
            return Sum(inner.var, inner.domain, Sum(outer.var, outer.domain, inner.body))
        return None

    return Rule("loop-scheduling/swap-sums", swap_sums)
