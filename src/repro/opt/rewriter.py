"""The rewrite engine driving all Figure-4 rule families.

A :class:`Rule` is a partial function on expressions: it returns the
rewritten node, or ``None`` when it does not apply.  The engine applies
a rule set bottom-up across the tree until fixpoint, with step and size
guards so a misbehaving rule pair cannot loop forever.  Every applied
rule is recorded in a :class:`RewriteLog`, which the tests and the
compiler's ``explain`` output use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.ir.expr import Expr
from repro.ir.traversal import children, count_nodes, rebuild_exact

RuleFn = Callable[[Expr], Optional[Expr]]


@dataclass(frozen=True)
class Rule:
    """A named rewrite rule."""

    name: str
    fn: RuleFn

    def __call__(self, e: Expr) -> Optional[Expr]:
        return self.fn(e)


def rule(name: str):
    """Decorator turning a function into a named :class:`Rule`."""

    def wrap(fn: RuleFn) -> Rule:
        return Rule(name, fn)

    return wrap


@dataclass
class RewriteLog:
    """Chronological record of rule applications."""

    applications: list[str] = field(default_factory=list)

    def record(self, rule_name: str) -> None:
        self.applications.append(rule_name)

    def count(self, rule_name: str) -> int:
        return sum(1 for n in self.applications if n == rule_name)

    def __len__(self) -> int:
        return len(self.applications)


class RewriteBudgetExceeded(Exception):
    """Raised when a rule set fails to reach fixpoint within its budget."""


def rewrite_once(e: Expr, rules: Sequence[Rule], log: RewriteLog | None = None) -> tuple[Expr, bool]:
    """One bottom-up sweep; returns (new expression, anything changed?)."""
    changed = False

    def visit(node: Expr) -> Expr:
        nonlocal changed
        new_children = tuple(visit(c) for c in children(node))
        node = rebuild_exact(node, new_children)
        for r in rules:
            result = r(node)
            if result is not None and result != node:
                changed = True
                if log is not None:
                    log.record(r.name)
                node = result
        return node

    return visit(e), changed


def rewrite_fixpoint(
    e: Expr,
    rules: Sequence[Rule],
    log: RewriteLog | None = None,
    max_sweeps: int = 100,
    max_growth: int = 200,
) -> Expr:
    """Apply ``rules`` bottom-up until nothing changes.

    ``max_growth`` bounds how many times the expression may grow past
    its original size, which catches accidentally diverging rule pairs
    (e.g. running distribution and factoring in the same set).
    """
    initial_size = count_nodes(e)
    for _ in range(max_sweeps):
        e, changed = rewrite_once(e, rules, log)
        if not changed:
            return e
        if count_nodes(e) > max_growth * max(initial_size, 16):
            raise RewriteBudgetExceeded(
                f"expression grew beyond {max_growth}x its input size; "
                f"rules: {[r.name for r in rules]}"
            )
    raise RewriteBudgetExceeded(
        f"no fixpoint after {max_sweeps} sweeps; rules: {[r.name for r in rules]}"
    )
