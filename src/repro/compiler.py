"""The end-to-end IFAQ compiler driver (paper Figures 1 and 3).

Chains the layers::

    D-IFAQ program
      → high-level optimizations            (Section 4.1)
      → schema specialization + typecheck   (Section 4.2)
      → aggregate extraction + join tree    (Section 4.3)
      → batch evaluation                    (engine, generated Python, or C++)
      → residual program execution

Every stage's artifact is kept on :class:`CompilationArtifacts` so the
micro-benchmarks can time any stage's output in isolation and tests can
inspect intermediate programs.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Literal

from repro.aggregates.batch import AggregateBatch
from repro.aggregates.engine import (
    compute_batch_materialized,
    compute_batch_merged,
    compute_batch_pushdown,
    compute_batch_trie,
)
from repro.aggregates.extract import extract_program_aggregates
from repro.aggregates.join_tree import JoinTreeNode, build_join_tree
from repro.backend.codegen_cpp import generate_cpp_kernel, write_binary_data
from repro.backend.codegen_python import generate_python_kernel
from repro.backend.compile_cpp import compile_kernel, gxx_available
from repro.backend.layout import LAYOUT_SORTED, LayoutOptions
from repro.backend.plan import BatchPlan, build_batch_plan, prepare_data
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.interp.interpreter import Interpreter
from repro.ir.program import Program
from repro.opt.pipeline import HighLevelOptimizer
from repro.runtime.values import RecordValue
from repro.typing.specialize import schema_specialize
from repro.typing.typecheck import typecheck_program

AggregateMode = Literal["materialized", "pushdown", "merged", "trie"]
Backend = Literal["engine", "python", "cpp"]


@dataclass
class CompilationArtifacts:
    """Per-stage outputs of one compilation."""

    source: Program
    optimized: Program
    specialized: Program
    residual: Program
    batch: AggregateBatch
    join_tree: JoinTreeNode | None
    plan: BatchPlan | None
    kernel_source: str | None = None
    compile_seconds: float = 0.0
    state_type: Any = None


@dataclass
class IFAQCompiler:
    """Compiles and runs IFAQ programs against a database.

    Parameters
    ----------
    db, query
        The input database and the feature-extraction join query.
    aggregate_mode
        Which Section 4.3 strategy evaluates the extracted batch.
    backend
        ``engine`` interprets the view tree in Python; ``python``
        executes a generated specialized kernel; ``cpp`` compiles the
        generated C++ with g++ (falls back to ``python`` when no
        toolchain is available).
    layout
        Data-layout options for the generated kernels (Section 4.4).
    """

    db: Database
    query: JoinQuery
    aggregate_mode: AggregateMode = "trie"
    backend: Backend = "python"
    layout: LayoutOptions = field(default_factory=lambda: LAYOUT_SORTED)
    q_var: str = "Q"

    # -- compilation -----------------------------------------------------

    def compile(self, program: Program) -> CompilationArtifacts:
        optimizer = HighLevelOptimizer(stats=dict(self.db.statistics()))
        optimized = optimizer.optimize_program(program)

        relation_types = {
            rel.name: rel.schema.ifaq_type() for rel in self.db
        }
        specialized = schema_specialize(optimized, relation_types)
        state_type = typecheck_program(specialized, relation_types)

        residual, batch = extract_program_aggregates(specialized, q_var=self.q_var)

        join_tree = None
        plan = None
        kernel_source = None
        if len(batch):
            join_tree = build_join_tree(
                self.db.schema(), self.query.relations, stats=dict(self.db.statistics())
            )
            plan = build_batch_plan(self.db, join_tree, batch)
            if self.backend in ("python", "cpp"):
                kernel_source = self._kernel_source(plan)

        return CompilationArtifacts(
            source=program,
            optimized=optimized,
            specialized=specialized,
            residual=residual,
            batch=batch,
            join_tree=join_tree,
            plan=plan,
            kernel_source=kernel_source,
            state_type=state_type,
        )

    def _kernel_source(self, plan: BatchPlan) -> str:
        if self.backend == "cpp" and gxx_available():
            return generate_cpp_kernel(plan, self.layout).source
        return generate_python_kernel(plan, self.layout).source

    # -- execution ---------------------------------------------------------

    def compute_batch(self, artifacts: CompilationArtifacts) -> dict[str, float]:
        """Evaluate the extracted batch directly over the database."""
        batch = artifacts.batch
        if not len(batch):
            return {}
        if self.backend == "engine" or artifacts.plan is None:
            return self._engine_batch(artifacts)
        if self.backend == "cpp" and gxx_available():
            return self._cpp_batch(artifacts)
        return self._python_batch(artifacts)

    def _engine_batch(self, artifacts: CompilationArtifacts) -> dict[str, float]:
        batch, tree = artifacts.batch, artifacts.join_tree
        if self.aggregate_mode == "materialized" or tree is None:
            return compute_batch_materialized(self.db, self.query, batch)
        if self.aggregate_mode == "pushdown":
            return compute_batch_pushdown(self.db, tree, batch)
        if self.aggregate_mode == "merged":
            return compute_batch_merged(self.db, tree, batch)
        return compute_batch_trie(self.db, tree, batch)

    def _python_batch(self, artifacts: CompilationArtifacts) -> dict[str, float]:
        assert artifacts.plan is not None
        kernel = generate_python_kernel(artifacts.plan, self.layout)
        fn = kernel.compile()
        data = prepare_data(self.db, artifacts.plan, self.layout)
        values = fn(data)
        return {
            spec.name: values[i] for i, spec in enumerate(artifacts.batch)
        }

    def _cpp_batch(self, artifacts: CompilationArtifacts) -> dict[str, float]:
        assert artifacts.plan is not None
        kernel = generate_cpp_kernel(artifacts.plan, self.layout)
        compiled = compile_kernel(kernel)
        artifacts.compile_seconds = compiled.compile_seconds
        with tempfile.TemporaryDirectory() as tmp:
            data_path = Path(tmp) / "data.bin"
            write_binary_data(self.db, artifacts.plan, data_path, self.layout)
            _, values = compiled.run(data_path)
        return {
            spec.name: values[i] for i, spec in enumerate(artifacts.batch)
        }

    def run(self, program: Program) -> Any:
        """Compile, evaluate the batch, and execute the residual program."""
        artifacts = self.compile(program)
        return self.run_artifacts(artifacts)

    def run_artifacts(self, artifacts: CompilationArtifacts) -> Any:
        aggs = self.compute_batch(artifacts)
        env = self.db.to_env()
        if aggs:
            env["__aggs"] = RecordValue(aggs)
        interp = Interpreter(env)
        return interp.run_program(artifacts.residual)
