"""The end-to-end IFAQ compiler driver (paper Figures 1 and 3).

Chains the layers::

    D-IFAQ program
      → high-level optimizations            (Section 4.1)
      → schema specialization + typecheck   (Section 4.2)
      → aggregate extraction + join tree    (Section 4.3)
      → physical plan + kernel compilation  (backend registry + cache)
      → batch execution                     (engine / Python / C++ / sharded)
      → residual program execution

Every stage's artifact is kept on :class:`CompilationArtifacts` so the
micro-benchmarks can time any stage's output in isolation and tests can
inspect intermediate programs.

Execution is delegated to a pluggable
:class:`~repro.backend.base.ExecutionBackend` resolved once through
:mod:`repro.backend.registry` — ``backend`` accepts a registered name
(``"engine"``, ``"python"``, ``"cpp"``, ``"numpy"``, ``"sharded"``) or
a ready instance (e.g. ``ShardedBackend(inner="cpp", shards=8)``).  The kernel
built during :meth:`IFAQCompiler.compile` is stored on the artifacts
and is the kernel executed; repeated compilations of the same program
and layout hit the :class:`~repro.backend.cache.KernelCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Literal

from repro.aggregates.batch import AggregateBatch
from repro.aggregates.engine import compute_batch_materialized
from repro.aggregates.extract import extract_program_aggregates
from repro.aggregates.join_tree import JoinTreeNode, build_join_tree
from repro.backend.base import ExecutionBackend, Kernel
from repro.backend.cache import KernelCache, default_kernel_cache
from repro.backend.layout import LAYOUT_SORTED, LayoutOptions
from repro.backend.plan import BatchPlan, build_batch_plan
from repro.backend.registry import get_backend
from repro.db.database import Database
from repro.db.query import JoinQuery
from repro.interp.interpreter import Interpreter
from repro.ir.program import Program
from repro.opt.pipeline import HighLevelOptimizer
from repro.runtime.values import RecordValue
from repro.typing.specialize import schema_specialize
from repro.typing.typecheck import typecheck_program

AggregateMode = Literal["materialized", "pushdown", "merged", "trie"]
#: kept for backwards compatibility; any registered name now works
Backend = Literal["engine", "python", "cpp", "numpy", "sharded"]


@dataclass
class CompilationArtifacts:
    """Per-stage outputs of one compilation."""

    source: Program
    optimized: Program
    specialized: Program
    residual: Program
    batch: AggregateBatch
    join_tree: JoinTreeNode | None
    plan: BatchPlan | None
    kernel_source: str | None = None
    compile_seconds: float = 0.0
    state_type: Any = None
    #: the compiled execution artifact — the exact kernel ``compute_batch``
    #: runs (no regeneration between compile and execute)
    kernel: Kernel | None = None


@dataclass
class IFAQCompiler:
    """Compiles and runs IFAQ programs against a database.

    Parameters
    ----------
    db, query
        The input database and the feature-extraction join query.
    aggregate_mode
        Which Section 4.3 strategy the engine backend uses.
    backend
        A registered backend name — ``engine`` interprets the view
        tree, ``python`` executes a generated specialized kernel,
        ``cpp`` compiles the generated C++ with g++ (resolving to the
        Python backend when no toolchain is available), ``numpy``
        lowers the plan to columnar ndarray operations, ``sharded``
        wraps an inner backend over K root shards — or any
        :class:`ExecutionBackend` instance.
    layout
        Data-layout options for the generated kernels (Section 4.4).
    kernel_cache
        Where compiled kernels are looked up; defaults to the
        process-wide cache.
    """

    db: Database
    query: JoinQuery
    aggregate_mode: AggregateMode = "trie"
    backend: str | ExecutionBackend = "python"
    layout: LayoutOptions = field(default_factory=lambda: LAYOUT_SORTED)
    q_var: str = "Q"
    kernel_cache: KernelCache | None = None

    _backend_impl: ExecutionBackend | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- backend resolution ----------------------------------------------

    @property
    def backend_impl(self) -> ExecutionBackend:
        """The resolved execution backend (resolved exactly once)."""
        if self._backend_impl is None:
            self._backend_impl = get_backend(
                self.backend, aggregate_mode=self.aggregate_mode, query=self.query
            )
        return self._backend_impl

    def _cache(self) -> KernelCache:
        return self.kernel_cache if self.kernel_cache is not None else default_kernel_cache()

    # -- compilation -----------------------------------------------------

    def compile(self, program: Program) -> CompilationArtifacts:
        optimizer = HighLevelOptimizer(stats=dict(self.db.statistics()))
        optimized = optimizer.optimize_program(program)

        relation_types = {
            rel.name: rel.schema.ifaq_type() for rel in self.db
        }
        specialized = schema_specialize(optimized, relation_types)
        state_type = typecheck_program(specialized, relation_types)

        residual, batch = extract_program_aggregates(specialized, q_var=self.q_var)

        join_tree = None
        plan = None
        kernel = None
        if len(batch):
            join_tree = build_join_tree(
                self.db.schema(), self.query.relations, stats=dict(self.db.statistics())
            )
            plan = build_batch_plan(self.db, join_tree, batch)
            kernel = self._cache().get_or_compile(self.backend_impl, plan, self.layout)

        return CompilationArtifacts(
            source=program,
            optimized=optimized,
            specialized=specialized,
            residual=residual,
            batch=batch,
            join_tree=join_tree,
            plan=plan,
            kernel_source=kernel.source if kernel else None,
            compile_seconds=kernel.compile_seconds if kernel else 0.0,
            state_type=state_type,
            kernel=kernel,
        )

    # -- execution ---------------------------------------------------------

    def compute_batch(self, artifacts: CompilationArtifacts) -> dict[str, float]:
        """Evaluate the extracted batch directly over the database."""
        batch = artifacts.batch
        if not len(batch):
            return {}
        if artifacts.plan is None:
            # No join tree (e.g. a batch over a single relation outside
            # the query): fall back to the materializing oracle.
            return compute_batch_materialized(self.db, self.query, batch)
        kernel = artifacts.kernel
        expected = artifacts.plan.fingerprint(self.layout, self.backend_impl.kernel_key)
        if kernel is None or kernel.fingerprint != expected:
            # Artifacts compiled elsewhere (or under another backend):
            # resolve the right kernel through the cache.
            kernel = self._cache().get_or_compile(
                self.backend_impl, artifacts.plan, self.layout
            )
            artifacts.kernel = kernel
            artifacts.kernel_source = kernel.source
            artifacts.compile_seconds = kernel.compile_seconds
        return self.backend_impl.execute(kernel, self.db)

    def run(self, program: Program) -> Any:
        """Compile, evaluate the batch, and execute the residual program."""
        artifacts = self.compile(program)
        return self.run_artifacts(artifacts)

    def run_artifacts(self, artifacts: CompilationArtifacts) -> Any:
        aggs = self.compute_batch(artifacts)
        env = self.db.to_env()
        if aggs:
            env["__aggs"] = RecordValue(aggs)
        interp = Interpreter(env)
        return interp.run_program(artifacts.residual)
