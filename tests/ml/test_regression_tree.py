"""IFAQ regression tree: identical to the materialized CART baseline."""

import math

import numpy as np
import pytest

from repro.data import star_schema
from repro.ml import (
    BaselineRegressionTree,
    Condition,
    IFAQRegressionTree,
    materialize_to_matrix,
    rmse,
)


@pytest.fixture(scope="module")
def dataset():
    return star_schema(n_facts=1200, n_dims=2, dim_size=12, attrs_per_dim=1, seed=6)


def trees_equal(a, b) -> bool:
    if a.is_leaf() != b.is_leaf():
        return False
    if a.is_leaf():
        return math.isclose(a.prediction, b.prediction, rel_tol=1e-9) and math.isclose(
            a.count, b.count
        )
    if a.condition.feature != b.condition.feature:
        return False
    if not math.isclose(a.condition.threshold, b.condition.threshold, rel_tol=1e-9):
        return False
    return trees_equal(a.left, b.left) and trees_equal(a.right, b.right)


class TestAgainstBaseline:
    def test_identical_tree_to_materialized_cart(self, dataset):
        """The paper: 'Scikit-learn and IFAQ learn very similar regression
        trees' — with a shared threshold strategy, ours are identical."""
        ds = dataset
        ifaq = IFAQRegressionTree(ds.features, ds.label, max_depth=3).fit(ds.db, ds.query)
        base = BaselineRegressionTree(ds.features, ds.label, max_depth=3).fit(ds.db, ds.query)
        assert trees_equal(ifaq.root_, base.root_)

    def test_depth_and_node_bounds(self, dataset):
        ds = dataset
        tree = IFAQRegressionTree(ds.features, ds.label, max_depth=4).fit(ds.db, ds.query)
        assert tree.root_.depth() <= 5  # 4 split levels + leaves
        assert tree.root_.node_count() <= 31

    def test_predictions_reduce_rmse_vs_mean(self, dataset):
        ds = dataset
        tree = IFAQRegressionTree(ds.features, ds.label, max_depth=4).fit(ds.db, ds.query)
        xt, yt = ds.test_matrix()
        preds = [
            tree.predict(dict(zip(ds.features, row))) for row in xt
        ]
        baseline_rmse = rmse(np.full_like(yt, yt.mean()), yt)
        assert rmse(preds, yt) < baseline_rmse

    def test_deeper_tree_fits_training_better(self, dataset):
        ds = dataset
        x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)

        def train_rmse(depth):
            t = IFAQRegressionTree(ds.features, ds.label, max_depth=depth).fit(
                ds.db, ds.query
            )
            preds = [t.predict(dict(zip(ds.features, row))) for row in x]
            return rmse(preds, y)

        assert train_rmse(3) <= train_rmse(1) + 1e-12


class TestRegistryPath:
    """Tree training resolves group-by execution through the backend
    registry; per-node batches are kernel-cache hits after the first."""

    @pytest.mark.parametrize("backend", ["engine", "numpy"])
    def test_interpreted_backends_learn_identical_trees(self, dataset, backend):
        ds = dataset
        vec = IFAQRegressionTree(ds.features, ds.label, max_depth=3).fit(
            ds.db, ds.query
        )
        interp = IFAQRegressionTree(
            ds.features, ds.label, max_depth=3, method="interpreted", backend=backend
        ).fit(ds.db, ds.query)
        assert trees_equal(vec.root_, interp.root_)

    def test_per_node_groupbys_hit_kernel_cache(self, dataset):
        from repro.backend import KernelCache

        ds = dataset
        cache = KernelCache()
        tree = IFAQRegressionTree(
            ds.features,
            ds.label,
            max_depth=3,
            method="interpreted",
            backend="numpy",
            kernel_cache=cache,
        ).fit(ds.db, ds.query)
        # One compile per feature plus the fused bundle; every further
        # tree node reuses the bundle through the cache.
        assert cache.stats.misses == len(ds.features) + 1
        internal = tree.root_.node_count() - 1
        assert cache.stats.hits >= internal  # ≥ one hit per extra node visit
        assert cache.stats.hits > cache.stats.misses

    def test_vectorized_engine_kernel_is_cached(self, dataset):
        from repro.backend import KernelCache

        ds = dataset
        cache = KernelCache()
        for _ in range(2):
            IFAQRegressionTree(
                ds.features, ds.label, max_depth=2, kernel_cache=cache
            ).fit(ds.db, ds.query)
        assert cache.stats.misses == 1 and cache.stats.hits == 1


class TestMechanics:
    def test_condition_semantics(self):
        c = Condition("a", "<=", 1.5)
        assert c.holds({"a": 1.5})
        assert not c.holds({"a": 2.0})
        assert Condition("a", ">", 1.5).holds({"a": 2.0})

    def test_condition_is_callable_predicate(self):
        c = Condition("a", "<=", 1.5)
        assert c({"a": 1.0}) and not c({"a": 2.0})

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            Condition("a", "~", 1.0).holds({"a": 1.0})

    def test_max_thresholds_subsampling(self, dataset):
        ds = dataset
        full = IFAQRegressionTree(ds.features, ds.label, max_depth=2).fit(ds.db, ds.query)
        sub = IFAQRegressionTree(
            ds.features, ds.label, max_depth=2, max_thresholds=4
        ).fit(ds.db, ds.query)
        # subsampled tree is still a valid tree of bounded depth
        assert sub.root_.depth() <= 3
        assert sub.root_.node_count() <= full.root_.node_count() + 6

    def test_min_samples_leaf_respected(self, dataset):
        ds = dataset

        def check(node, minimum):
            if node.is_leaf():
                assert node.count >= minimum
            else:
                check(node.left, minimum)
                check(node.right, minimum)

        tree = IFAQRegressionTree(
            ds.features, ds.label, max_depth=4, min_samples_leaf=50
        ).fit(ds.db, ds.query)
        check(tree.root_, 50)

    def test_pretty_renders(self, dataset):
        ds = dataset
        tree = IFAQRegressionTree(ds.features, ds.label, max_depth=1).fit(ds.db, ds.query)
        text = tree.root_.pretty()
        assert "if" in text or "leaf" in text

    def test_unfitted_predict_raises(self, dataset):
        with pytest.raises(RuntimeError):
            IFAQRegressionTree(dataset.features, dataset.label).predict({})
