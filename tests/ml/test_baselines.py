"""Materialize-then-learn baselines and their failure models."""

import numpy as np
import pytest

from repro.data import star_schema
from repro.ml import (
    MLPackStyleLinearRegression,
    OutOfMemoryError,
    ScikitStyleLinearRegression,
    TensorFlowStyleLinearRegression,
    materialize_to_matrix,
    rmse,
)


@pytest.fixture(scope="module")
def dataset():
    return star_schema(n_facts=2500, n_dims=2, dim_size=20, attrs_per_dim=1, seed=8)


class TestScikitStyle:
    def test_ols_fits(self, dataset):
        ds = dataset
        model = ScikitStyleLinearRegression(ds.features, ds.label).fit(ds.db, ds.query)
        xt, yt = ds.test_matrix()
        assert rmse(model.predict_many(xt), yt) < rmse(np.full_like(yt, yt.mean()), yt)

    def test_memory_budget_raises(self, dataset):
        ds = dataset
        model = ScikitStyleLinearRegression(
            ds.features, ds.label, memory_budget_bytes=1000
        )
        with pytest.raises(OutOfMemoryError):
            model.fit(ds.db, ds.query)


class TestTensorFlowStyle:
    def test_one_epoch_worse_than_ols(self, dataset):
        """Paper: TF's single epoch has higher RMSE than converged IFAQ/OLS."""
        ds = dataset
        ols = ScikitStyleLinearRegression(ds.features, ds.label).fit(ds.db, ds.query)
        tf = TensorFlowStyleLinearRegression(
            ds.features, ds.label, batch_size=250, learning_rate=0.05
        ).fit(ds.db, ds.query)
        xt, yt = ds.test_matrix()
        assert rmse(tf.predict_many(xt), yt) >= rmse(ols.predict_many(xt), yt) - 1e-9

    def test_more_epochs_approach_ols(self, dataset):
        ds = dataset
        x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
        one = TensorFlowStyleLinearRegression(
            ds.features, ds.label, batch_size=250, epochs=1
        ).learn(x, y)
        many = TensorFlowStyleLinearRegression(
            ds.features, ds.label, batch_size=250, epochs=30
        ).learn(x, y)
        ols = ScikitStyleLinearRegression(ds.features, ds.label).learn(x, y)
        xt, yt = ds.test_matrix()
        gap_one = rmse(one.predict_many(xt), yt) - rmse(ols.predict_many(xt), yt)
        gap_many = rmse(many.predict_many(xt), yt) - rmse(ols.predict_many(xt), yt)
        assert gap_many <= gap_one + 1e-9

    def test_deterministic_given_seed(self, dataset):
        ds = dataset
        x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
        a = TensorFlowStyleLinearRegression(ds.features, ds.label, seed=4).learn(x, y)
        b = TensorFlowStyleLinearRegression(ds.features, ds.label, seed=4).learn(x, y)
        assert np.allclose(a.theta_, b.theta_)


class TestMLPackStyle:
    def test_fails_at_half_the_budget(self, dataset):
        """The transpose copy doubles memory: mlpack dies first."""
        ds = dataset
        x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
        budget = int(x.nbytes * 1.5)
        ScikitStyleLinearRegression(
            ds.features, ds.label, memory_budget_bytes=budget
        ).learn(x, y)  # scikit fits
        with pytest.raises(OutOfMemoryError):
            MLPackStyleLinearRegression(
                ds.features, ds.label, memory_budget_bytes=budget
            ).learn(x, y)

    def test_same_solution_as_scikit_when_it_fits(self, dataset):
        ds = dataset
        x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
        a = ScikitStyleLinearRegression(ds.features, ds.label).learn(x, y)
        b = MLPackStyleLinearRegression(ds.features, ds.label).learn(x, y)
        assert np.allclose(a.theta_, b.theta_)


class TestMaterialization:
    def test_matrix_shape(self, dataset):
        ds = dataset
        x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
        from repro.db.query import materialize_join

        assert x.shape == (materialize_join(ds.db, ds.query).tuple_count(), len(ds.features))
        assert y.shape == (x.shape[0],)

    def test_multiplicity_expansion(self):
        from repro.db import Database, JoinQuery, Relation, RelationSchema
        from repro.ir.types import INT, REAL
        from repro.ml.baselines import relation_to_matrix

        r = Relation.from_rows(
            RelationSchema.of("T", [("a", REAL), ("y", REAL)]),
            [(1.0, 2.0), (1.0, 2.0)],
        )
        x, y = relation_to_matrix(r, ["a"], "y")
        assert x.shape == (2, 1)
