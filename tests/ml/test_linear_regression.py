"""IFAQ linear regression: correctness against closed form and baselines."""

import math

import numpy as np
import pytest

from repro.data import star_schema
from repro.ml import (
    IFAQLinearRegression,
    ScikitStyleLinearRegression,
    closed_form_solution,
    materialize_to_matrix,
    rmse,
)


@pytest.fixture(scope="module")
def dataset():
    return star_schema(n_facts=3000, n_dims=2, dim_size=25, attrs_per_dim=2, seed=3)


class TestFit:
    def test_converges_to_closed_form(self, dataset):
        ds = dataset
        model = IFAQLinearRegression(
            ds.features, ds.label, iterations=800, alpha=1.0, backend="python"
        ).fit(ds.db, ds.query)
        covar = model.covar_
        assert covar is not None
        exact = closed_form_solution(covar, ds.features, ds.label)
        assert np.allclose(model.theta_, exact, atol=1e-4)

    def test_rmse_within_one_percent_of_ols(self, dataset):
        """The Section 5 accuracy claim."""
        ds = dataset
        model = IFAQLinearRegression(
            ds.features, ds.label, iterations=800, alpha=1.0
        ).fit(ds.db, ds.query)
        sk = ScikitStyleLinearRegression(ds.features, ds.label).fit(ds.db, ds.query)
        xt, yt = ds.test_matrix()
        r_ifaq = rmse(model.predict_many(xt), yt)
        r_ols = rmse(sk.predict_many(xt), yt)
        assert r_ifaq <= r_ols * 1.01

    def test_recovers_planted_coefficients(self, dataset):
        ds = dataset
        model = IFAQLinearRegression(
            ds.features, ds.label, iterations=800, alpha=1.0
        ).fit(ds.db, ds.query)
        named = dict(zip(["intercept"] + list(ds.features), model.theta_))
        # the generator plants coefficient 1.0 on f0, a0_0 and a1_0
        assert math.isclose(named["f0"], 1.0, abs_tol=0.05)
        assert math.isclose(named["a0_0"], 1.0, abs_tol=0.08)
        assert math.isclose(named["a1_0"], 1.0, abs_tol=0.08)

    def test_predict_single_record(self, dataset):
        ds = dataset
        model = IFAQLinearRegression(ds.features, ds.label, iterations=50).fit(
            ds.db, ds.query
        )
        rec = {f: 0.0 for f in ds.features}
        assert math.isclose(model.predict(rec), model.theta_[0])

    def test_unfitted_predict_raises(self, dataset):
        model = IFAQLinearRegression(dataset.features, dataset.label)
        with pytest.raises(RuntimeError):
            model.predict({})


class TestBackendsAgree:
    @pytest.mark.parametrize("mode", ["materialized", "pushdown", "merged", "trie"])
    def test_engine_modes_same_covar(self, dataset, mode):
        ds = dataset
        ref = IFAQLinearRegression(
            ds.features, ds.label, aggregate_mode="trie", backend="engine"
        ).compute_covar(ds.db, ds.query)
        got = IFAQLinearRegression(
            ds.features, ds.label, aggregate_mode=mode, backend="engine"
        ).compute_covar(ds.db, ds.query)
        for k in ref:
            assert math.isclose(got[k], ref[k], rel_tol=1e-9), k

    def test_python_backend_matches_engine(self, dataset):
        ds = dataset
        a = IFAQLinearRegression(ds.features, ds.label, backend="engine").compute_covar(
            ds.db, ds.query
        )
        b = IFAQLinearRegression(ds.features, ds.label, backend="python").compute_covar(
            ds.db, ds.query
        )
        for k in a:
            assert math.isclose(a[k], b[k], rel_tol=1e-9), k

    @pytest.mark.cpp
    def test_cpp_backend_matches_engine(self, dataset):
        ds = dataset
        a = IFAQLinearRegression(ds.features, ds.label, backend="engine").compute_covar(
            ds.db, ds.query
        )
        b = IFAQLinearRegression(ds.features, ds.label, backend="cpp").compute_covar(
            ds.db, ds.query
        )
        for k in a:
            assert math.isclose(a[k], b[k], rel_tol=1e-9), k


class TestCompilerPathAgreement:
    def test_fit_via_compiler_matches_interpreter(self):
        from repro.interp import Interpreter
        from repro.ml.programs import linear_regression_bgd

        ds = star_schema(n_facts=400, n_dims=2, dim_size=10, attrs_per_dim=1, seed=9)
        model = IFAQLinearRegression(ds.features, ds.label, iterations=15, alpha=0.05)
        theta_compiled = model.fit_via_compiler(ds.db, ds.query)

        prog = linear_regression_bgd(
            ds.db.schema(), ds.query, ds.features, ds.label, iterations=15, alpha=0.05
        )
        state = Interpreter(ds.db.to_env()).run_program(prog)
        theta_interp = {k.name: v for k, v in state["theta"].items()}
        assert set(theta_compiled) == set(theta_interp)
        for k in theta_interp:
            assert math.isclose(theta_compiled[k], theta_interp[k], rel_tol=1e-8), k
