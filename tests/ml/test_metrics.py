"""Metrics."""

import math

import pytest

from repro.db import Relation, RelationSchema
from repro.ir.types import REAL
from repro.ml import rmse, rmse_on_relation


def test_rmse_zero_for_perfect():
    assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0


def test_rmse_known_value():
    assert math.isclose(rmse([0.0, 0.0], [3.0, 4.0]), math.sqrt(12.5))


def test_rmse_shape_mismatch():
    with pytest.raises(ValueError):
        rmse([1.0], [1.0, 2.0])


def test_rmse_empty():
    with pytest.raises(ValueError):
        rmse([], [])


def test_rmse_on_relation_respects_multiplicity():
    r = Relation.from_rows(
        RelationSchema.of("T", [("a", REAL), ("y", REAL)]),
        [(1.0, 1.0), (1.0, 1.0), (2.0, 4.0)],
    )
    # predictor: y_hat = 2a → errors (1, 1, 0) with mult (2 on first)
    value = rmse_on_relation(lambda rec: 2 * rec["a"], r, "y")
    assert math.isclose(value, math.sqrt((1 + 1 + 0) / 3))
