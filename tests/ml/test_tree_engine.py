"""The vectorized tree engine vs the interpreted factorized engine."""

import math

import numpy as np
import pytest

from repro.aggregates import build_join_tree, compute_groupby, variance_batch
from repro.data import retailer, star_schema
from repro.ml import IFAQRegressionTree
from repro.ml.regression_tree import Condition
from repro.ml.tree_engine import VectorizedTreeEngine


@pytest.fixture(scope="module")
def star():
    return star_schema(n_facts=900, n_dims=2, dim_size=10, attrs_per_dim=1, seed=5)


@pytest.fixture(scope="module")
def engine(star):
    return VectorizedTreeEngine(star.db, star.query, star.features, star.label)


class TestGroupby:
    def test_matches_interpreted_engine(self, star, engine):
        tree = build_join_tree(
            star.db.schema(), star.query.relations, stats=star.db.statistics()
        )
        batch = variance_batch(star.label)
        for feature in star.features:
            expected = compute_groupby(star.db, tree, batch, feature)
            values, counts, sums, sums_sq = engine.groupby(feature, engine.full_mask())
            assert list(values) == sorted(expected)
            for v, c, s, ss in zip(values, counts, sums, sums_sq):
                want = expected[v]
                assert math.isclose(c, want[0], rel_tol=1e-9)
                assert math.isclose(s, want[1], rel_tol=1e-9)
                assert math.isclose(ss, want[2], rel_tol=1e-9)

    def test_respects_conditions(self, star, engine):
        f0 = star.features[0]
        f1 = star.features[1]
        threshold = float(np.median(engine.index[f1].values))
        mask = engine.full_mask() & engine.condition_mask(f1, "<=", threshold)

        tree = build_join_tree(
            star.db.schema(), star.query.relations, stats=star.db.statistics()
        )
        predicates = {
            # the condition applies on whichever relation owns f1
            rel: [lambda rec: rec[f1] <= threshold]
            for rel in star.db.relations
            if star.db.relation(rel).schema.has_attribute(f1)
        }
        expected = compute_groupby(
            star.db, tree, variance_batch(star.label), f0, predicates
        )
        values, counts, sums, _ = engine.groupby(f0, mask)
        assert list(values) == sorted(expected)
        for v, c, s in zip(values, counts, sums):
            assert math.isclose(c, expected[v][0], rel_tol=1e-9)
            assert math.isclose(s, expected[v][1], rel_tol=1e-9)

    def test_empty_mask_gives_no_groups(self, star, engine):
        mask = np.zeros(engine.n_facts, dtype=bool)
        values, counts, sums, sums_sq = engine.groupby(star.features[0], mask)
        assert len(values) == 0


class TestConditionMask:
    def test_le_and_gt_partition(self, star, engine):
        f = star.features[0]
        t = float(np.median(engine.index[f].values))
        le = engine.condition_mask(f, "<=", t)
        gt = engine.condition_mask(f, ">", t)
        assert np.array_equal(le, ~gt)

    def test_unknown_op_raises(self, star, engine):
        with pytest.raises(ValueError):
            engine.condition_mask(star.features[0], "~", 0.0)


class TestDanglingKeys:
    def test_raises_even_for_featureless_relations(self):
        """Fact alignment validates every tree relation eagerly: a
        dangler in a relation hosting no feature still raises instead
        of silently skewing node masks."""
        from repro.db import Database, JoinQuery, Relation, RelationSchema
        from repro.ir.types import INT, REAL

        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("j", INT), ("y", REAL)]),
            [(0, 0, 1.0), (1, 9, 2.0)],  # j=9 dangles into D2
        )
        d1 = Relation.from_rows(
            RelationSchema.of("D1", [("k", INT), ("a", REAL)]), [(0, 1.0), (1, 2.0)]
        )
        d2 = Relation.from_rows(
            RelationSchema.of("D2", [("j", INT), ("b", REAL)]), [(0, 5.0)]
        )
        db = Database.of(fact, d1, d2)
        with pytest.raises(ValueError, match="dangling"):
            VectorizedTreeEngine(db, JoinQuery(("F", "D1", "D2")), ["a"], "y")


class TestSnowflake:
    def test_census_hop_resolves(self):
        """Retailer's Census is two joins from the fact table."""
        ds = retailer(scale=0.01, seed=4)
        engine = VectorizedTreeEngine(ds.db, ds.query, ["population"], ds.label)
        values, counts, _, _ = engine.groupby("population", engine.full_mask())
        assert counts.sum() == ds.db.relation("Inventory").tuple_count()

    def test_composite_key_weather_resolves(self):
        ds = retailer(scale=0.01, seed=4)
        engine = VectorizedTreeEngine(ds.db, ds.query, ["maxtemp"], ds.label)
        _, counts, _, _ = engine.groupby("maxtemp", engine.full_mask())
        assert counts.sum() == ds.db.relation("Inventory").tuple_count()


class TestEngineEquivalence:
    def test_vectorized_and_interpreted_learn_identical_trees(self, star):
        from tests.ml.test_regression_tree import trees_equal

        vec = IFAQRegressionTree(
            star.features, star.label, max_depth=3, method="vectorized"
        ).fit(star.db, star.query)
        interp = IFAQRegressionTree(
            star.features, star.label, max_depth=3, method="interpreted"
        ).fit(star.db, star.query)
        assert trees_equal(vec.root_, interp.root_)

    def test_max_thresholds_consistency(self, star):
        from tests.ml.test_regression_tree import trees_equal

        vec = IFAQRegressionTree(
            star.features, star.label, max_depth=2, max_thresholds=4
        ).fit(star.db, star.query)
        interp = IFAQRegressionTree(
            star.features, star.label, max_depth=2, max_thresholds=4,
            method="interpreted",
        ).fit(star.db, star.query)
        assert trees_equal(vec.root_, interp.root_)

    def test_unknown_method_raises(self, star):
        with pytest.raises(ValueError):
            IFAQRegressionTree(star.features, star.label, method="wat").fit(
                star.db, star.query
            )
