"""Property: factorized engines equal the materialized oracle on random
star schemas, batches and predicates."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import (
    AggregateBatch,
    AggregateSpec,
    build_join_tree,
    compute_batch_materialized,
    compute_batch_merged,
    compute_batch_pushdown,
    compute_batch_trie,
    compute_groupby,
)
from repro.backend.codegen_python import generate_python_kernel
from repro.backend.layout import LAYOUT_ARRAYS, LAYOUT_BASELINE, LAYOUT_SORTED
from repro.backend.plan import build_batch_plan, prepare_data
from repro.db import Database, JoinQuery, Relation, RelationSchema, materialize_join
from repro.ir.types import INT, REAL

values = st.floats(min_value=-4, max_value=4, allow_nan=False, allow_infinity=False)


@st.composite
def star_instances(draw):
    n_keys = draw(st.integers(1, 5))
    dim_rows = [(k, round(draw(values), 3)) for k in range(n_keys)]
    n_facts = draw(st.integers(0, 25))
    fact_rows = [
        (draw(st.integers(0, n_keys - 1)), round(draw(values), 3))
        for _ in range(n_facts)
    ]
    fact = Relation.from_rows(
        RelationSchema.of("F", [("k", INT), ("y", REAL)]), fact_rows
    )
    dim = Relation.from_rows(
        RelationSchema.of("D", [("k", INT), ("a", REAL)]), dim_rows
    )
    return Database.of(fact, dim)


@st.composite
def batches(draw):
    attrs = ("y", "a")
    specs = [AggregateSpec.of()]
    n = draw(st.integers(1, 4))
    for _ in range(n):
        degree = draw(st.integers(1, 3))
        specs.append(
            AggregateSpec.of(*(draw(st.sampled_from(attrs)) for _ in range(degree)))
        )
    return AggregateBatch.of(specs)


@settings(max_examples=60, deadline=None)
@given(db=star_instances(), batch=batches())
def test_engines_match_oracle(db, batch):
    query = JoinQuery(("F", "D"))
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    oracle = compute_batch_materialized(db, query, batch)
    for engine in (compute_batch_pushdown, compute_batch_merged, compute_batch_trie):
        result = engine(db, tree, batch)
        for name in oracle:
            assert math.isclose(
                result[name], oracle[name], rel_tol=1e-9, abs_tol=1e-9
            ), (engine.__name__, name)


@settings(max_examples=40, deadline=None)
@given(db=star_instances(), batch=batches(), threshold=values)
def test_engines_match_oracle_under_predicates(db, batch, threshold):
    query = JoinQuery(("F", "D"))
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    predicates = {"D": [lambda rec: rec["a"] <= threshold]}
    oracle = compute_batch_materialized(db, query, batch, predicates)
    result = compute_batch_merged(db, tree, batch, predicates)
    for name in oracle:
        assert math.isclose(result[name], oracle[name], rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(db=star_instances(), batch=batches())
def test_generated_python_kernels_match_oracle(db, batch):
    query = JoinQuery(("F", "D"))
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    oracle = compute_batch_materialized(db, query, batch)
    plan = build_batch_plan(db, tree, batch)
    for layout in (LAYOUT_BASELINE, LAYOUT_ARRAYS, LAYOUT_SORTED):
        fn = generate_python_kernel(plan, layout).compile()
        out = fn(prepare_data(db, plan, layout))
        for i, spec in enumerate(batch):
            assert math.isclose(
                out[i], oracle[spec.name], rel_tol=1e-9, abs_tol=1e-9
            ), spec.name


@settings(max_examples=40, deadline=None)
@given(db=star_instances())
def test_groupby_matches_manual(db):
    query = JoinQuery(("F", "D"))
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    batch = AggregateBatch.of([AggregateSpec.of(), AggregateSpec.of("y")])
    groups = compute_groupby(db, tree, batch, "a")
    joined = materialize_join(db, query)
    manual: dict = {}
    for rec, mult in joined.data.items():
        acc = manual.setdefault(rec["a"], [0.0, 0.0])
        acc[0] += mult
        acc[1] += mult * rec["y"]
    assert set(groups) == set(manual)
    for k in groups:
        for got, want in zip(groups[k], manual[k]):
            assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)
