"""Property: every optimization stage preserves interpreter semantics.

Hypothesis generates random well-scoped D-IFAQ expressions over a fixed
environment (a relation ``Q``, a feature set ``F``, a parameter
dictionary ``theta`` and scalar variables), runs each optimizer stage,
and checks the value is unchanged up to floating-point reassociation.
This is the repository's strongest guarantee that Figure 4's rules are
sound beyond the hand-written examples.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import Interpreter
from repro.ir.builders import V, dom, fields, sum_over
from repro.ir.expr import Add, Const, Expr, Lookup, Mul, Neg, Sum, Var
from repro.opt.pipeline import HighLevelOptimizer
from repro.runtime.compare import values_close
from repro.runtime.values import DictValue, FieldValue, RecordValue

FIELD_NAMES = ("u", "v")


def make_env(q_rows: list[tuple[float, float]], a: float, b: float):
    q = {}
    for u, v in q_rows:
        rec = RecordValue({"u": u, "v": v})
        q[rec] = q.get(rec, 0) + 1
    return {
        "Q": DictValue(q),
        "F": __import__("repro.interp", fromlist=["evaluate"]).evaluate(
            fields(*FIELD_NAMES)
        ),
        "theta": DictValue({FieldValue(n): 0.5 for n in FIELD_NAMES}),
        "a": a,
        "b": b,
    }


small_floats = st.floats(min_value=-8, max_value=8, allow_nan=False, allow_infinity=False)


@st.composite
def scalar_exprs(draw, depth: int, scope: tuple[str, ...]) -> Expr:
    """A random scalar expression over the fixed environment."""
    if depth <= 0:
        leaf = draw(st.sampled_from(["const", "var"]))
        if leaf == "const" or not scope:
            return Const(draw(small_floats))
        return _leaf_for(draw, scope)
    kind = draw(
        st.sampled_from(["add", "mul", "neg", "sum_q", "sum_f", "leaf"])
    )
    if kind == "add":
        return Add(
            draw(scalar_exprs(depth - 1, scope)), draw(scalar_exprs(depth - 1, scope))
        )
    if kind == "mul":
        return Mul(
            draw(scalar_exprs(depth - 1, scope)), draw(scalar_exprs(depth - 1, scope))
        )
    if kind == "neg":
        return Neg(draw(scalar_exprs(depth - 1, scope)))
    if kind == "sum_q":
        var = f"x{depth}"
        body_scope = scope + (f"rec:{var}",)
        body = draw(scalar_exprs(depth - 1, body_scope))
        return Sum(var, dom(V("Q")), Mul(Lookup(V("Q"), Var(var)), body))
    if kind == "sum_f":
        var = f"f{depth}"
        body_scope = scope + (f"field:{var}",)
        body = draw(scalar_exprs(depth - 1, body_scope))
        return Sum(var, V("F"), body)
    return draw(scalar_exprs(0, scope))


def _leaf_for(draw, scope: tuple[str, ...]) -> Expr:
    choice = draw(st.sampled_from(scope + ("a", "b")))
    if choice in ("a", "b"):
        return Var(choice)
    tag, var = choice.split(":")
    if tag == "rec":
        attr = draw(st.sampled_from(FIELD_NAMES))
        return Var(var).dot(attr)
    # a bound field variable: look it up in theta
    return Lookup(Var("theta"), Var(var))


q_rows_strategy = st.lists(
    st.tuples(small_floats, small_floats), min_size=0, max_size=5
)


@settings(max_examples=60, deadline=None)
@given(
    expr=scalar_exprs(3, ()),
    rows=q_rows_strategy,
    a=small_floats,
    b=small_floats,
)
def test_full_pipeline_preserves_semantics(expr, rows, a, b):
    env = make_env(rows, a, b)
    optimizer = HighLevelOptimizer(stats={"Q": len(rows)})
    optimizer.estimator.let_sizes["F"] = len(FIELD_NAMES)

    before = Interpreter(env).evaluate(expr)
    optimized = optimizer.optimize_expr(expr)
    after = Interpreter(env).evaluate(optimized)
    assert values_close(before, after, rel_tol=1e-6, abs_tol=1e-6)


@settings(max_examples=60, deadline=None)
@given(
    expr=scalar_exprs(3, ()),
    rows=q_rows_strategy,
    a=small_floats,
    b=small_floats,
)
def test_each_stage_preserves_semantics(expr, rows, a, b):
    env = make_env(rows, a, b)
    optimizer = HighLevelOptimizer(stats={"Q": len(rows)})
    optimizer.estimator.let_sizes["F"] = len(FIELD_NAMES)

    current = expr
    reference = Interpreter(env).evaluate(expr)
    for stage in (
        optimizer.normalize,
        optimizer.schedule_loops,
        optimizer.factorize,
        optimizer.memoize,
        optimizer.code_motion,
    ):
        current = stage(current)
        value = Interpreter(env).evaluate(current)
        assert values_close(reference, value, rel_tol=1e-6, abs_tol=1e-6), stage.__name__


@settings(max_examples=40, deadline=None)
@given(
    expr=scalar_exprs(2, ()),
    rows=q_rows_strategy,
    a=small_floats,
    b=small_floats,
)
def test_specialization_preserves_semantics(expr, rows, a, b):
    """Partial evaluation + specialization leave values unchanged.

    theta stays a dictionary keyed by field values here, so only
    expressions whose θ-lookups get fully unrolled specialize away —
    either way the value must not change.
    """
    from repro.typing.specialize import specialize_expr

    env = make_env(rows, a, b)
    before = Interpreter(env).evaluate(expr)

    # Inline F so loops over it unroll (the program driver does this).
    from repro.ir.traversal import substitute

    inlined = substitute(expr, "F", fields(*FIELD_NAMES))
    specialized = specialize_expr(inlined, {})
    after = Interpreter(env).evaluate(specialized)
    assert values_close(before, after, rel_tol=1e-6, abs_tol=1e-6)
