"""Property: sharded evaluation equals single-shot evaluation.

Batch aggregates are Σ-folds, so for any partition of the root relation
the ring-monoid merge of per-shard partials equals the unpartitioned
result (the merge law).  Two layers of the property are checked on
random star instances:

* **Python backend, exact**: the block-structured executor guarantees
  bit-identical results for every shard count — asserted with ``==``.
* **Engine backends, all aggregate modes**: the sub-database path
  re-associates float additions, so equality is up to 1e-9; with
  integer-valued attributes (products stay well inside 2⁵³) float
  arithmetic is exact and ``==`` holds for every mode and shard count.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import AggregateBatch, AggregateSpec, build_join_tree
from repro.backend import (
    EngineBackend,
    PythonKernelBackend,
    ShardedBackend,
    build_batch_plan,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.db import Database, JoinQuery, Relation, RelationSchema
from repro.ir.types import INT, REAL

SHARD_COUNTS = (1, 2, 4, 7)
MODES = ("materialized", "pushdown", "merged", "trie")

float_values = st.floats(min_value=-4, max_value=4, allow_nan=False, allow_infinity=False)
int_values = st.integers(-9, 9)


def _star(draw, value_strategy):
    n_keys = draw(st.integers(1, 5))
    dim_rows = [(k, draw(value_strategy)) for k in range(n_keys)]
    n_facts = draw(st.integers(0, 30))
    fact_rows = [
        (draw(st.integers(0, n_keys - 1)), draw(value_strategy))
        for _ in range(n_facts)
    ]
    fact = Relation.from_rows(
        RelationSchema.of("F", [("k", INT), ("y", REAL)]), fact_rows
    )
    dim = Relation.from_rows(
        RelationSchema.of("D", [("k", INT), ("a", REAL)]), dim_rows
    )
    return Database.of(fact, dim)


@st.composite
def float_stars(draw):
    return _star(draw, st.builds(lambda v: round(v, 3), float_values))


@st.composite
def int_stars(draw):
    # Integer-valued REAL attributes: every product and sum is exactly
    # representable, so float addition is associative on this domain.
    return _star(draw, st.builds(float, int_values))


@st.composite
def batches(draw):
    attrs = ("y", "a")
    specs = [AggregateSpec.of()]
    for _ in range(draw(st.integers(1, 4))):
        degree = draw(st.integers(1, 3))
        specs.append(
            AggregateSpec.of(*(draw(st.sampled_from(attrs)) for _ in range(degree)))
        )
    return AggregateBatch.of(specs)


def make_plan(db, batch):
    tree = build_join_tree(db.schema(), ("F", "D"), stats=dict(db.statistics()))
    return build_batch_plan(db, tree, batch)


@settings(max_examples=40, deadline=None)
@given(db=float_stars(), batch=batches())
def test_sharded_python_bit_identical(db, batch):
    """Merge law, strongest form: floats, every K, exact equality."""
    plan = make_plan(db, batch)
    inner = PythonKernelBackend(block_size=4)
    kernel = inner.compile_plan(plan, LAYOUT_SORTED)
    single = inner.execute(kernel, db)
    for shards in SHARD_COUNTS:
        sharded = ShardedBackend(inner=inner, shards=shards).execute(kernel, db)
        assert sharded == single, shards


@settings(max_examples=25, deadline=None)
@given(db=int_stars(), batch=batches())
def test_sharded_engine_exact_on_integer_domain(db, batch):
    """Merge law over all aggregate modes, exact on the integer domain."""
    plan = make_plan(db, batch)
    for mode in MODES:
        inner = EngineBackend(aggregate_mode=mode, query=JoinQuery(("F", "D")))
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, db)
        for shards in SHARD_COUNTS:
            sharded = ShardedBackend(inner=inner, shards=shards).execute(kernel, db)
            assert sharded == single, (mode, shards)


@settings(max_examples=25, deadline=None)
@given(db=float_stars(), batch=batches())
def test_sharded_engine_close_on_float_domain(db, batch):
    """Merge law over all aggregate modes, 1e-9-close on floats."""
    plan = make_plan(db, batch)
    for mode in MODES:
        inner = EngineBackend(aggregate_mode=mode, query=JoinQuery(("F", "D")))
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, db)
        for shards in SHARD_COUNTS:
            sharded = ShardedBackend(inner=inner, shards=shards).execute(kernel, db)
            for name, value in single.items():
                assert math.isclose(
                    sharded[name], value, rel_tol=1e-9, abs_tol=1e-9
                ), (mode, shards, name)
