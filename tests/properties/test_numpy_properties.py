"""Property: the numpy backend equals the engine and generated-Python
backends on randomized snowflake schemas.

Instances are three-level snowflakes ``F(k1,y) ⋈ D1(k1,k2,a) ⋈
D2(k2,b)`` with random bags — duplicate dimension keys and dangling
fact keys included — so the vectorized view path is exercised on
exactly the cases fact-aligned shortcuts cannot handle.

On the integer-valued domain every product and sum is exactly
representable, so float arithmetic is associative there and the three
backends must agree **bit for bit** (``==``), for plain batches, for
group-by batches, and under :class:`ShardedBackend` for several shard
counts.  On the float domain agreement is up to 1e-9.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import (
    AggregateBatch,
    AggregateSpec,
    build_join_tree,
    compute_groupby,
    compute_groupby_many,
    compute_groupby_tree,
)
from repro.backend import (
    EngineBackend,
    KernelCache,
    MultiBatchPlan,
    NumpyBackend,
    PythonKernelBackend,
    ShardedBackend,
    build_batch_plan,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.db import Database, Relation, RelationSchema
from repro.ir.types import INT, REAL

SHARD_COUNTS = (1, 2, 3)

float_values = st.floats(min_value=-4, max_value=4, allow_nan=False, allow_infinity=False)
int_values = st.integers(-9, 9)


def _snowflake(draw, value_strategy):
    n_k1 = draw(st.integers(1, 4))
    n_k2 = draw(st.integers(1, 3))
    # D1 may repeat k1 (bag join), D2 may repeat k2; fact keys may dangle.
    d1_rows = [
        (draw(st.integers(0, n_k1)), draw(st.integers(0, n_k2 - 1)), draw(value_strategy))
        for _ in range(draw(st.integers(1, 8)))
    ]
    d2_rows = [
        (draw(st.integers(0, n_k2 - 1)), draw(value_strategy))
        for _ in range(draw(st.integers(1, 5)))
    ]
    fact_rows = [
        (draw(st.integers(0, n_k1)), draw(value_strategy))
        for _ in range(draw(st.integers(0, 25)))
    ]
    fact = Relation.from_rows(
        RelationSchema.of("F", [("k1", INT), ("y", REAL)]), fact_rows
    )
    d1 = Relation.from_rows(
        RelationSchema.of("D1", [("k1", INT), ("k2", INT), ("a", REAL)]), d1_rows
    )
    d2 = Relation.from_rows(
        RelationSchema.of("D2", [("k2", INT), ("b", REAL)]), d2_rows
    )
    return Database.of(fact, d1, d2)


@st.composite
def float_snowflakes(draw):
    return _snowflake(draw, st.builds(lambda v: round(v, 3), float_values))


@st.composite
def int_snowflakes(draw):
    return _snowflake(draw, st.builds(float, int_values))


@st.composite
def batches(draw):
    attrs = ("y", "a", "b")
    specs = [AggregateSpec.of()]
    for _ in range(draw(st.integers(1, 4))):
        degree = draw(st.integers(1, 3))
        specs.append(
            AggregateSpec.of(*(draw(st.sampled_from(attrs)) for _ in range(degree)))
        )
    return AggregateBatch.of(specs)


def _backends():
    return (
        EngineBackend(aggregate_mode="merged"),
        PythonKernelBackend(),
        NumpyBackend(),
    )


def _plain_results(db, batch):
    tree = build_join_tree(db.schema(), ("F", "D1", "D2"), stats=dict(db.statistics()))
    plan = build_batch_plan(db, tree, batch)
    out = []
    for backend in _backends():
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        out.append((backend, kernel, backend.execute(kernel, db)))
    return plan, out


@settings(max_examples=30, deadline=None)
@given(db=int_snowflakes(), batch=batches())
def test_plain_bit_identical_on_integer_domain(db, batch):
    _, results = _plain_results(db, batch)
    _, _, reference = results[0]
    for backend, _, got in results[1:]:
        assert got == reference, backend.name


@settings(max_examples=20, deadline=None)
@given(db=float_snowflakes(), batch=batches())
def test_plain_close_on_float_domain(db, batch):
    _, results = _plain_results(db, batch)
    _, _, reference = results[0]
    for backend, _, got in results[1:]:
        for name, value in reference.items():
            assert math.isclose(got[name], value, rel_tol=1e-9, abs_tol=1e-9), (
                backend.name,
                name,
            )


@settings(max_examples=25, deadline=None)
@given(db=int_snowflakes(), batch=batches(), group_attr=st.sampled_from(("y", "a", "b")))
def test_groupby_bit_identical_on_integer_domain(db, batch, group_attr):
    tree = build_join_tree(db.schema(), ("F", "D1", "D2"), stats=dict(db.statistics()))
    plan = build_batch_plan(db, tree, batch, group_attr=group_attr)
    reference = compute_groupby_tree(db, tree, batch, group_attr)
    for backend in _backends():
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        assert backend.run_groupby(kernel, db) == reference, backend.name


#: all three grouping attributes at once — owned by F, D1 and D2, so
#: the fused bundle spans three differently-rerooted member plans
FUSED_ATTRS = ("y", "a", "b")


@settings(max_examples=25, deadline=None)
@given(db=int_snowflakes(), batch=batches(), threshold=int_values)
def test_fused_groupby_many_matches_per_plan(db, batch, threshold):
    """Fused run_groupby_many ≡ per-plan compute_groupby, bit for bit.

    Bags and dangling fact keys are included by construction, so the
    fused path is exercised exactly where fact-aligned shortcuts would
    be wrong; every backend (interpreted, generated Python, numpy) must
    agree element-wise with its own per-plan results, with and without
    δ predicates (the tree learner's structured conditions).
    """
    from repro.ml.regression_tree import Condition

    tree = build_join_tree(db.schema(), ("F", "D1", "D2"), stats=dict(db.statistics()))
    for predicates in (None, {"D1": [Condition("a", "<=", float(threshold))]}):
        for backend in _backends():
            cache = KernelCache()
            fused = compute_groupby_many(
                db, tree, batch, FUSED_ATTRS, predicates,
                backend=backend, kernel_cache=cache,
            )
            for attr in FUSED_ATTRS:
                separate = compute_groupby(
                    db, tree, batch, attr, predicates,
                    backend=backend, kernel_cache=cache,
                )
                assert fused[attr] == separate, (backend.name, attr)


@settings(max_examples=15, deadline=None)
@given(db=int_snowflakes(), batch=batches())
def test_fused_groupby_many_sharded_bit_identical(db, batch):
    """The fused bundle under ShardedBackend equals single-shot numpy."""
    tree = build_join_tree(db.schema(), ("F", "D1", "D2"), stats=dict(db.statistics()))
    plans = [
        build_batch_plan(db, tree, batch, group_attr=attr) for attr in FUSED_ATTRS
    ]
    mplan = MultiBatchPlan(plans)
    numpy_backend = NumpyBackend()
    kernel = KernelCache().get_or_compile(numpy_backend, mplan, LAYOUT_SORTED)
    reference = numpy_backend.run_groupby_many(kernel, db)
    for shards in SHARD_COUNTS:
        sharded = ShardedBackend(inner=numpy_backend, shards=shards)
        assert sharded.run_groupby_many(kernel, db) == reference, shards


@settings(max_examples=15, deadline=None)
@given(db=int_snowflakes(), batch=batches(), group_attr=st.sampled_from(("y", "b")))
def test_sharded_bit_identical_on_integer_domain(db, batch, group_attr):
    """Every inner backend, several shard counts, plain and group-by."""
    tree = build_join_tree(db.schema(), ("F", "D1", "D2"), stats=dict(db.statistics()))
    plain = build_batch_plan(db, tree, batch)
    grouped = build_batch_plan(db, tree, batch, group_attr=group_attr)
    plain_ref = None
    group_ref = None
    for backend in _backends():
        plain_kernel = backend.compile_plan(plain, LAYOUT_SORTED)
        group_kernel = backend.compile_plan(grouped, LAYOUT_SORTED)
        for shards in SHARD_COUNTS:
            sharded = ShardedBackend(inner=backend, shards=shards)
            got_plain = sharded.execute(plain_kernel, db)
            got_group = sharded.run_groupby(group_kernel, db)
            if plain_ref is None:
                plain_ref, group_ref = got_plain, got_group
            else:
                assert got_plain == plain_ref, (backend.name, shards)
                assert got_group == group_ref, (backend.name, shards)
