"""Algebraic laws of the runtime ring, property-checked with hypothesis.

Σ folds with ``v_add`` and factorization commutes ``v_mul``, so the
optimizer's correctness rests on these laws holding across the whole
value domain (numbers, records, dictionaries).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.compare import values_close
from repro.runtime.rings import is_zero, v_add, v_mul, v_neg
from repro.runtime.values import DictValue, RecordValue

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
scalars = st.one_of(st.integers(min_value=-1000, max_value=1000), finite_floats)

FIELD_NAMES = ("u", "v")


@st.composite
def records(draw):
    return RecordValue({name: draw(finite_floats) for name in FIELD_NAMES})


@st.composite
def dicts(draw):
    keys = draw(st.lists(st.integers(0, 6), max_size=4, unique=True))
    return DictValue({k: draw(finite_floats) for k in keys})


same_domain_pairs = st.one_of(
    st.tuples(scalars, scalars),
    st.tuples(records(), records()),
    st.tuples(dicts(), dicts()),
)

same_domain_triples = st.one_of(
    st.tuples(scalars, scalars, scalars),
    st.tuples(records(), records(), records()),
    st.tuples(dicts(), dicts(), dicts()),
)


@given(same_domain_pairs)
def test_addition_commutative(pair):
    a, b = pair
    assert values_close(v_add(a, b), v_add(b, a), rel_tol=1e-9, abs_tol=1e-6)


@given(same_domain_triples)
def test_addition_associative(triple):
    a, b, c = triple
    assert values_close(
        v_add(v_add(a, b), c), v_add(a, v_add(b, c)), rel_tol=1e-6, abs_tol=1e-4
    )


@given(same_domain_pairs)
def test_zero_is_identity(pair):
    a, _ = pair
    assert values_close(v_add(a, 0), a)
    assert values_close(v_add(0, a), a)


@given(same_domain_pairs)
def test_additive_inverse(pair):
    a, _ = pair
    assert is_zero(v_add(a, v_neg(a))) or values_close(
        v_add(a, v_neg(a)), 0, abs_tol=1e-6
    )


@given(scalars, same_domain_pairs)
def test_scalar_distributes_over_addition(s, pair):
    a, b = pair
    left = v_mul(s, v_add(a, b))
    right = v_add(v_mul(s, a), v_mul(s, b))
    assert values_close(left, right, rel_tol=1e-6, abs_tol=1e-3)


@given(scalars, scalars, same_domain_pairs)
def test_scalar_multiplication_associative(s, t, pair):
    a, _ = pair
    assert values_close(
        v_mul(s, v_mul(t, a)), v_mul(s * t, a), rel_tol=1e-6, abs_tol=1e-3
    )


@given(same_domain_pairs)
def test_multiplication_commutative(pair):
    a, b = pair
    assert values_close(v_mul(a, b), v_mul(b, a), rel_tol=1e-9, abs_tol=1e-6)


@given(dicts(), dicts(), dicts())
def test_dict_multiplication_distributes(a, b, c):
    left = v_mul(a, v_add(b, c))
    right = v_add(v_mul(a, b), v_mul(a, c))
    assert values_close(left, right, rel_tol=1e-6, abs_tol=1e-3)
