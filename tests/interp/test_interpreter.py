"""Unit tests for the reference interpreter, construct by construct."""

import math

import pytest

from repro.interp import EvalError, Interpreter, evaluate, run_program
from repro.ir.builders import (
    V,
    dict_build,
    dict_lit,
    dom,
    fields,
    fld,
    if_,
    let,
    rec,
    set_lit,
    sum_over,
    variant,
)
from repro.ir.expr import BinOp, Cmp, Const, Neg, UnaryOp, Var
from repro.ir.program import Program
from repro.runtime.values import DictValue, FieldValue, RecordValue, SetValue


class TestScalars:
    def test_const(self):
        assert evaluate(Const(42)) == 42

    def test_arith(self):
        assert evaluate(Const(2) + Const(3) * Const(4)) == 14
        assert evaluate(Const(2) - Const(5)) == -3
        assert evaluate(Neg(Const(2))) == -2

    def test_unary_ops(self):
        assert evaluate(UnaryOp("abs", Const(-3))) == 3
        assert math.isclose(evaluate(UnaryOp("sqrt", Const(9.0))), 3.0)
        assert evaluate(UnaryOp("sign", Const(-5))) == -1
        assert evaluate(UnaryOp("not", Const(False))) is True

    def test_binops(self):
        assert evaluate(BinOp("div", Const(7), Const(2))) == 3.5
        assert evaluate(BinOp("idiv", Const(7), Const(2))) == 3
        assert evaluate(BinOp("min", Const(7), Const(2))) == 2
        assert evaluate(BinOp("max", Const(7), Const(2))) == 7
        assert evaluate(BinOp("pow", Const(2), Const(10))) == 1024
        assert evaluate(BinOp("and", Const(True), Const(False))) is False
        assert evaluate(BinOp("or", Const(True), Const(False))) is True

    def test_cmp(self):
        assert evaluate(Cmp("<", Const(1), Const(2))) is True
        assert evaluate(Cmp(">=", Const(1), Const(2))) is False
        assert evaluate(Cmp("!=", Const("a"), Const("b"))) is True
        assert evaluate(Cmp("in", Const(1), set_lit(1, 2)))

    def test_unknown_ops_raise(self):
        with pytest.raises(EvalError):
            evaluate(UnaryOp("wat", Const(1)))
        with pytest.raises(EvalError):
            evaluate(BinOp("wat", Const(1), Const(2)))
        with pytest.raises(EvalError):
            evaluate(Cmp("wat", Const(1), Const(2)))


class TestVariablesAndScoping:
    def test_env_lookup(self):
        assert evaluate(V("a"), {"a": 5}) == 5

    def test_unbound_raises(self):
        with pytest.raises(EvalError, match="unbound variable"):
            evaluate(V("nope"))

    def test_let_scoping_restores_outer(self):
        e = let("x", Const(1), V("x")) + V("x")
        assert evaluate(e, {"x": 100}) == 101

    def test_let_shadows(self):
        assert evaluate(let("x", Const(1), let("x", Const(2), V("x")))) == 2

    def test_sum_variable_restored_after_loop(self):
        e = sum_over("x", set_lit(1, 2, 3), V("x")) + V("x")
        assert evaluate(e, {"x": 10}) == 16


class TestCollections:
    def test_set_literal(self):
        assert evaluate(set_lit(1, 2, 2)) == SetValue([1, 2])

    def test_dict_literal(self):
        d = evaluate(dict_lit(("k", 1), ("j", 2)))
        assert d == DictValue({"k": 1, "j": 2})

    def test_dict_literal_combines_duplicate_keys(self):
        assert evaluate(dict_lit(("k", 1), ("k", 2))) == DictValue({"k": 3})

    def test_dict_literal_drops_zero_payloads(self):
        assert evaluate(dict_lit(("k", 0))) == DictValue({})

    def test_dom_of_dict(self):
        d = dict_lit(("a", 1), ("b", 2))
        assert evaluate(dom(d)) == SetValue(["a", "b"])

    def test_dom_of_set_is_identity(self):
        assert evaluate(dom(set_lit(1, 2))) == SetValue([1, 2])

    def test_lookup_present_and_missing(self):
        d = dict_lit(("a", 5))
        assert evaluate(d(Const("a"))) == 5
        assert evaluate(d(Const("zzz"))) == 0  # ring zero

    def test_lookup_on_record_by_field_value(self):
        e = rec(price=Const(9.0))(fld("price"))
        assert evaluate(e) == 9.0


class TestSumAndDictBuild:
    def test_sum_over_set(self):
        assert evaluate(sum_over("x", set_lit(1, 2, 3), V("x") * V("x"))) == 14

    def test_sum_over_dict_iterates_keys(self):
        d = dict_lit(("a", 2), ("b", 3))
        e = sum_over("k", d, d(V("k")))
        assert evaluate(e) == 5

    def test_empty_sum_is_scalar_zero(self):
        assert evaluate(sum_over("x", set_lit(), V("x"))) == 0

    def test_sum_of_dicts_merges(self):
        e = sum_over("x", set_lit(1, 2), dict_lit((V("x"), Const(1))))
        assert evaluate(e) == DictValue({1: 1, 2: 1})

    def test_dict_build(self):
        e = dict_build("x", set_lit(1, 2), V("x") * 10)
        assert evaluate(e) == DictValue({1: 10, 2: 20})

    def test_sum_over_non_collection_raises(self):
        with pytest.raises(EvalError):
            evaluate(sum_over("x", Const(3), V("x")))


class TestRecordsAndVariants:
    def test_record_field_access(self):
        assert evaluate(rec(a=Const(1)).dot("a")) == 1

    def test_record_missing_field_raises(self):
        with pytest.raises(EvalError):
            evaluate(rec(a=Const(1)).dot("b"))

    def test_dynamic_access_with_field_value(self):
        e = rec(price=Const(3.0)).at(fld("price"))
        assert evaluate(e) == 3.0

    def test_dynamic_access_with_string(self):
        e = rec(price=Const(3.0)).at(Const("price"))
        assert evaluate(e) == 3.0

    def test_variant(self):
        assert evaluate(variant("left", Const(1)).dot("left")) == 1
        with pytest.raises(EvalError):
            evaluate(variant("left", Const(1)).dot("right"))

    def test_field_access_on_scalar_raises(self):
        with pytest.raises(EvalError):
            evaluate(Const(1).dot("x"))


class TestIfAndPrograms:
    def test_if(self):
        assert evaluate(if_(Cmp("<", Const(1), Const(2)), "yes", "no")) == "yes"

    def test_if_evaluates_only_taken_branch(self):
        # untaken branch would raise if evaluated
        e = if_(Const(True), Const(1), V("unbound"))
        assert evaluate(e) == 1

    def test_program_loop(self):
        p = Program(
            inits=(("step", Const(3)),),
            state="acc",
            init=Const(0),
            cond=Cmp("<", V("acc"), Const(10)),
            body=V("acc") + V("step"),
        )
        assert run_program(p) == 12

    def test_program_iteration_guard(self):
        p = Program(
            inits=(),
            state="x",
            init=Const(0),
            cond=Const(True),
            body=V("x"),
        )
        interp = Interpreter(max_loop_iterations=10)
        with pytest.raises(EvalError, match="exceeded"):
            interp.run_program(p)

    def test_stats_counting(self):
        interp = Interpreter()
        interp.evaluate(sum_over("x", set_lit(1, 2, 3), V("x") + 1))
        assert interp.stats.loop_iterations == 3
        assert interp.stats.nodes_evaluated > 5
        assert interp.stats.arithmetic_ops == 3


class TestFieldLiterals:
    def test_field_literal_evaluates_to_field_value(self):
        assert evaluate(fld("price")) == FieldValue("price")

    def test_fields_set(self):
        assert evaluate(fields("i", "s")) == SetValue(
            [FieldValue("i"), FieldValue("s")]
        )
