"""The paper's running example (Example 3.1/4.7) under the interpreter."""

import math

from repro.db import join_as_ifaq, materialize_join
from repro.interp import Interpreter, evaluate
from repro.ir.builders import V, dom, sum_over
from repro.ml.programs import covar_matrix_expr, linear_regression_inner_loop
from repro.runtime.values import DictValue, FieldValue


def test_example_47_join_expression_matches_hash_join(paper_db, paper_query):
    expr = join_as_ifaq(paper_db.schema(), paper_query)
    value = evaluate(expr, paper_db.to_env())
    assert value == materialize_join(paper_db, paper_query).to_value()


def test_join_cardinality(paper_db, paper_query):
    joined = materialize_join(paper_db, paper_query)
    # every Sales row finds exactly one store and one item
    assert joined.tuple_count() == paper_db.relation("S").tuple_count()


def test_covar_matrix_expr_symmetry(paper_db, paper_query):
    env = paper_db.to_env()
    env["Q"] = evaluate(join_as_ifaq(paper_db.schema(), paper_query), env)
    m = evaluate(covar_matrix_expr(["cityf", "price"]), env)
    c_p = m[FieldValue("cityf")][FieldValue("price")]
    p_c = m[FieldValue("price")][FieldValue("cityf")]
    assert math.isclose(c_p, p_c)


def test_covar_matrix_against_manual_sum(paper_db, paper_query):
    env = paper_db.to_env()
    q = evaluate(join_as_ifaq(paper_db.schema(), paper_query), env)
    env["Q"] = q
    m = evaluate(covar_matrix_expr(["cityf", "price"]), env)
    manual = sum(
        mult * rec["cityf"] * rec["price"] for rec, mult in q.items()
    )
    assert math.isclose(m[FieldValue("cityf")][FieldValue("price")], manual)


def test_inner_loop_expression_one_step(paper_db, paper_query):
    """One BGD step of the Example 3.1 inner loop, checked by hand."""
    env = paper_db.to_env()
    env["Q"] = evaluate(join_as_ifaq(paper_db.schema(), paper_query), env)
    env["F"] = evaluate(
        __import__("repro.ir.builders", fromlist=["fields"]).fields("cityf", "price"),
        {},
    )
    theta0 = DictValue({FieldValue("cityf"): 0.5, FieldValue("price"): 0.1})
    env["theta"] = theta0

    result = evaluate(linear_regression_inner_loop(["cityf", "price"]), env)

    # manual: θ'(f1) = θ(f1) − Σ_x Q(x)·(Σ_f2 θ(f2)·x[f2])·x[f1]
    q = env["Q"]
    for f1 in ("cityf", "price"):
        grad = 0.0
        for rec, mult in q.items():
            inner = 0.5 * rec["cityf"] + 0.1 * rec["price"]
            grad += mult * inner * rec[f1]
        expected = theta0[FieldValue(f1)] - grad
        assert math.isclose(result[FieldValue(f1)], expected)
