"""S-IFAQ type inference and strict checking."""

import pytest

from repro.ir.builders import (
    V,
    dict_build,
    dict_lit,
    dom,
    fields,
    fld,
    if_,
    let,
    rec,
    set_lit,
    sum_over,
)
from repro.ir.expr import BinOp, Cmp, Const, Neg, UnaryOp
from repro.ir.types import (
    BOOL,
    DYN,
    INT,
    REAL,
    STRING,
    DictType,
    RecordType,
    SetType,
    relation_type,
)
from repro.typing.typecheck import IFAQTypeError, infer_type, typecheck


class TestInference:
    def test_constants(self):
        assert infer_type(Const(1)) == INT
        assert infer_type(Const(1.5)) == REAL
        assert infer_type(Const(True)) == BOOL
        assert infer_type(Const("s")) == STRING

    def test_arith_promotion(self):
        assert infer_type(Const(1) + Const(2)) == INT
        assert infer_type(Const(1) + Const(2.0)) == REAL
        assert infer_type(Neg(Const(2.0))) == REAL

    def test_scalar_scales_collection(self):
        d = dict_lit(("k", 1.0))
        assert isinstance(infer_type(Const(2) * d), DictType)

    def test_cmp_is_bool(self):
        assert infer_type(Cmp("<", Const(1), Const(2))) == BOOL

    def test_div_is_real(self):
        assert infer_type(BinOp("div", Const(1), Const(2))) == REAL

    def test_record(self):
        t = infer_type(rec(a=Const(1), b=Const(2.0)))
        assert t == RecordType((("a", INT), ("b", REAL)))

    def test_field_access(self):
        assert infer_type(rec(a=Const(1.5)).dot("a")) == REAL

    def test_set_and_dict_literals(self):
        assert infer_type(set_lit(1, 2)) == SetType(INT)
        assert infer_type(dict_lit(("k", 1.0))) == DictType(STRING, REAL)

    def test_sum_over_relation(self):
        rel_t = relation_type((("a", REAL),))
        e = sum_over("x", dom(V("R")), V("R")(V("x")) * V("x").dot("a"))
        assert infer_type(e, {"R": rel_t}) == REAL

    def test_dict_build(self):
        e = dict_build("x", set_lit(1, 2), Const(1.0))
        assert infer_type(e) == DictType(INT, REAL)

    def test_let_and_if(self):
        assert infer_type(let("x", Const(1), V("x") + 1)) == INT
        assert infer_type(if_(Const(True), Const(1), Const(2))) == INT

    def test_lenient_mode_gives_dyn_for_unknowns(self):
        assert infer_type(V("unknown")) == DYN


class TestStrictErrors:
    def test_unbound_variable(self):
        with pytest.raises(IFAQTypeError, match="unbound"):
            typecheck(V("nope"))

    def test_field_literal_is_rejected(self):
        with pytest.raises(IFAQTypeError, match="field literal"):
            typecheck(fld("a"))

    def test_dynamic_access_is_rejected(self):
        with pytest.raises(IFAQTypeError, match="dynamic field access"):
            typecheck(rec(a=Const(1)).at(Const("a")))

    def test_record_lookup_is_rejected(self):
        with pytest.raises(IFAQTypeError, match="lookup on a record"):
            typecheck(rec(a=Const(1))(Const("a")))

    def test_missing_field(self):
        with pytest.raises(IFAQTypeError, match="no field"):
            typecheck(rec(a=Const(1)).dot("b"))

    def test_heterogeneous_set_rejected(self):
        with pytest.raises(IFAQTypeError, match="unify"):
            typecheck(set_lit(1, "a"))

    def test_iteration_over_scalar_rejected(self):
        with pytest.raises(IFAQTypeError, match="non-collection"):
            typecheck(sum_over("x", Const(1), V("x")))

    def test_record_mismatch_in_add(self):
        with pytest.raises(IFAQTypeError, match="field mismatch"):
            typecheck(rec(a=Const(1)) + rec(b=Const(1)))

    def test_error_message_includes_expression(self):
        with pytest.raises(IFAQTypeError, match="in:"):
            typecheck(V("nope"))


class TestProgramChecking:
    def test_program_state_type(self):
        from repro.ir.expr import Cmp
        from repro.ir.program import Program
        from repro.typing.typecheck import typecheck_program

        p = Program(
            inits=(("k", Const(2)),),
            state="s",
            init=Const(0),
            cond=Cmp("<", V("s"), Const(10)),
            body=V("s") + V("k"),
        )
        assert typecheck_program(p) == INT

    def test_program_body_must_match_state(self):
        from repro.ir.program import Program
        from repro.typing.typecheck import typecheck_program

        p = Program(
            inits=(),
            state="s",
            init=Const(0),
            cond=Const(True),
            body=rec(a=Const(1)),
        )
        with pytest.raises(IFAQTypeError):
            typecheck_program(p)
