"""Partial evaluation rules (Figure 4f)."""

from repro.interp import evaluate
from repro.ir.builders import V, dict_build, dict_lit, fields, fld, set_lit, sum_over
from repro.ir.expr import Add, Const, DictLit, FieldLit
from repro.opt.rewriter import rewrite_fixpoint
from repro.runtime.compare import values_close
from repro.typing.partial_eval import (
    MAX_UNROLL,
    PARTIAL_EVAL_RULES,
    merge_dict_lits,
    unroll_dict_build,
    unroll_sum,
)


class TestUnrollSum:
    def test_unrolls_static_set(self):
        e = sum_over("x", set_lit(1, 2, 3), V("x") * V("k"))
        out = unroll_sum(e)
        assert out == Add(
            Add(Const(1) * V("k"), Const(2) * V("k")), Const(3) * V("k")
        )

    def test_does_not_unroll_dynamic_domain(self):
        from repro.ir.builders import dom

        assert unroll_sum(sum_over("x", dom(V("Q")), V("x"))) is None

    def test_respects_max_unroll(self):
        big = set_lit(*range(MAX_UNROLL + 1))
        assert unroll_sum(sum_over("x", big, V("x"))) is None

    def test_semantics(self):
        e = sum_over("x", set_lit(1.0, 2.0, 4.0), V("x") * V("x"))
        out = rewrite_fixpoint(e, PARTIAL_EVAL_RULES)
        assert evaluate(out) == evaluate(e) == 21.0


class TestUnrollDictBuild:
    def test_unrolls_to_dict_literal(self):
        e = dict_build("f", fields("a", "b"), V("f"))
        out = unroll_dict_build(e)
        assert isinstance(out, DictLit)
        assert out.entries[0][0] == FieldLit("a")

    def test_substitutes_bound_var(self):
        e = dict_build("f", set_lit(1, 2), V("f") * 10)
        out = unroll_dict_build(e)
        assert out == DictLit(
            ((Const(1), Const(1) * Const(10)), (Const(2), Const(2) * Const(10)))
        )

    def test_semantics(self):
        e = dict_build("f", set_lit("a", "b"), Const(5))
        out = unroll_dict_build(e)
        assert values_close(evaluate(e), evaluate(out))


class TestMergeDictLits:
    def test_same_key_payloads_add(self):
        e = Add(dict_lit(("k", 1)), dict_lit(("k", 2)))
        out = merge_dict_lits(e)
        assert out == DictLit(((Const("k"), Add(Const(1), Const(2))),))

    def test_distinct_keys_concatenate(self):
        e = Add(dict_lit(("k", 1)), dict_lit(("j", 2)))
        out = merge_dict_lits(e)
        assert isinstance(out, DictLit)
        assert len(out.entries) == 2

    def test_field_keys(self):
        e = Add(dict_lit((fld("i"), 1)), dict_lit((fld("i"), 2)))
        out = merge_dict_lits(e)
        assert isinstance(out, DictLit)
        assert len(out.entries) == 1

    def test_semantics(self):
        e = Add(dict_lit(("k", 1), ("j", 5)), dict_lit(("k", 2)))
        out = rewrite_fixpoint(e, PARTIAL_EVAL_RULES)
        assert values_close(evaluate(e), evaluate(out))
