"""Schema specialization (Figure 4g) — including Example 4.6."""

from repro.db import JoinQuery
from repro.interp import Interpreter, evaluate
from repro.ir.builders import V, dict_build, dict_lit, fields, fld, rec
from repro.ir.expr import (
    DictBuild,
    DictLit,
    DynFieldAccess,
    FieldAccess,
    FieldLit,
    Lookup,
    RecordLit,
)
from repro.ir.traversal import subexpressions
from repro.ml.programs import linear_regression_bgd
from repro.opt import high_level_optimize
from repro.typing.specialize import (
    dictlit_to_record,
    dyn_to_static_access,
    schema_specialize,
    specialize_expr,
)
from repro.typing.typecheck import typecheck_program


class TestSyntacticRules:
    def test_dictlit_with_field_keys_becomes_record(self):
        d = dict_lit((fld("i"), 0.0), (fld("s"), 1.0))
        out = dictlit_to_record(d)
        assert out == RecordLit((("i", _const(0.0)), ("s", _const(1.0))))

    def test_dictlit_with_mixed_keys_untouched(self):
        d = dict_lit((fld("i"), 0.0), ("plain", 1.0))
        assert dictlit_to_record(d) is None

    def test_dyn_access_with_field_literal(self):
        e = V("x").at(fld("price"))
        assert dyn_to_static_access(e) == FieldAccess(V("x"), "price")

    def test_dyn_access_with_variable_key_untouched(self):
        assert dyn_to_static_access(V("x").at(V("f"))) is None


def _const(v):
    from repro.ir.expr import Const

    return Const(v)


class TestSpecializeExpr:
    def test_lambda_over_fields_becomes_record(self):
        e = dict_build("f", fields("a", "b"), V("x").at(V("f")))
        out = specialize_expr(e, {})
        assert isinstance(out, RecordLit)
        assert out.field_names() == ("a", "b")
        # bodies became static accesses
        assert out.field_expr("a") == FieldAccess(V("x"), "a")

    def test_lookup_on_record_var_becomes_access(self):
        from repro.ir.builders import let

        e = let("theta", dict_lit((fld("a"), 1.0)), Lookup(V("theta"), fld("a")))
        out = specialize_expr(e, {})
        assert all(not isinstance(n, Lookup) for n in subexpressions(out))
        assert evaluate(out) == 1.0

    def test_nested_lookup_chain(self):
        from repro.ir.builders import let

        table = dict_lit((fld("a"), dict_lit((fld("b"), 7.0))))
        e = let("m", table, Lookup(Lookup(V("m"), fld("a")), fld("b")))
        out = specialize_expr(e, {})
        assert evaluate(out) == 7.0
        assert all(not isinstance(n, Lookup) for n in subexpressions(out))


class TestExample46FullProgram:
    def test_lr_program_specializes_to_records(self, paper_db, paper_query):
        prog = linear_regression_bgd(
            paper_db.schema(), paper_query, ["cityf", "price"], "units",
            iterations=3, alpha=0.01,
        )
        optimized = high_level_optimize(prog, stats=paper_db.statistics())
        rel_types = {r.name: r.schema.ifaq_type() for r in paper_db}
        spec = schema_specialize(optimized, rel_types)

        # no residual dynamic features anywhere
        for _, value in spec.inits:
            for n in subexpressions(value):
                assert not isinstance(n, (FieldLit, DynFieldAccess, DictBuild))
        for n in subexpressions(spec.body):
            assert not isinstance(n, (FieldLit, DynFieldAccess, DictBuild))

        # the covar matrix is now a nested record
        tables = dict(spec.inits)
        memo_names = [n for n in tables if n.startswith("memo")]
        assert any(isinstance(tables[n], RecordLit) for n in memo_names)

    def test_specialized_program_typechecks(self, paper_db, paper_query):
        prog = linear_regression_bgd(
            paper_db.schema(), paper_query, ["cityf", "price"], "units",
            iterations=3, alpha=0.01,
        )
        optimized = high_level_optimize(prog, stats=paper_db.statistics())
        rel_types = {r.name: r.schema.ifaq_type() for r in paper_db}
        spec = schema_specialize(optimized, rel_types)
        state_t = typecheck_program(spec, rel_types)
        from repro.ir.types import RecordType

        assert isinstance(state_t, RecordType)
        assert state_t.has_field("theta")

    def test_specialization_preserves_semantics(self, paper_db, paper_query):
        from repro.runtime.values import FieldValue

        prog = linear_regression_bgd(
            paper_db.schema(), paper_query, ["cityf", "price"], "units",
            iterations=3, alpha=0.01,
        )
        optimized = high_level_optimize(prog, stats=paper_db.statistics())
        rel_types = {r.name: r.schema.ifaq_type() for r in paper_db}
        spec = schema_specialize(optimized, rel_types)

        import math

        r_dyn = Interpreter(paper_db.to_env()).run_program(prog)
        r_spec = Interpreter(paper_db.to_env()).run_program(spec)
        theta_dyn = {k.name: v for k, v in r_dyn["theta"].items()}
        theta_spec = dict(r_spec["theta"].items())
        assert set(theta_dyn) == set(theta_spec)
        for k in theta_dyn:
            assert math.isclose(theta_dyn[k], theta_spec[k], rel_tol=1e-9)
