"""Dataset generators match the paper's Table 1 shapes."""

import pytest

from repro.data import DatasetBundle, favorita, retailer, star_schema
from repro.db.query import materialize_join


class TestFavoritaShape:
    @pytest.fixture(scope="class")
    def ds(self):
        return favorita(scale=0.02, seed=1)

    def test_five_relations(self, ds):
        assert len(list(ds.db)) == 5

    def test_six_continuous_attributes(self, ds):
        assert len(ds.features) + 1 == 6  # paper counts the label too

    def test_join_is_complete(self, ds):
        joined = materialize_join(ds.db, ds.query)
        fact = ds.db.relation("Sales")
        assert joined.tuple_count() == fact.tuple_count()

    def test_test_split_disjoint_dates(self, ds):
        train_dates = {rec["date"] for rec in ds.db.relation("Sales").data}
        test_dates = {rec["date"] for rec in ds.test_db.relation("Sales").data}
        assert train_dates.isdisjoint(test_dates)

    def test_deterministic(self):
        a = favorita(scale=0.01, seed=7)
        b = favorita(scale=0.01, seed=7)
        assert a.db.relation("Sales").data == b.db.relation("Sales").data

    def test_different_seeds_differ(self):
        a = favorita(scale=0.01, seed=1)
        b = favorita(scale=0.01, seed=2)
        assert a.db.relation("Sales").data != b.db.relation("Sales").data


class TestRetailerShape:
    @pytest.fixture(scope="class")
    def ds(self):
        return retailer(scale=0.02, seed=1)

    def test_five_relations(self, ds):
        assert len(list(ds.db)) == 5

    def test_thirty_five_continuous_attributes(self, ds):
        assert len(ds.features) + 1 == 35  # paper's count includes the label

    def test_snowflake_census_reachable_via_location(self, ds):
        schema = ds.db.schema()
        assert schema.shared_attributes("Location", "Census") == ("zip",)
        assert "zip" not in ds.db.relation("Inventory").schema.attribute_names()

    def test_weather_joins_on_composite_key(self, ds):
        schema = ds.db.schema()
        shared = set(schema.shared_attributes("Inventory", "Weather"))
        assert shared == {"locn", "dateid"}

    def test_join_is_complete(self, ds):
        joined = materialize_join(ds.db, ds.query)
        assert joined.tuple_count() == ds.db.relation("Inventory").tuple_count()


class TestBundleHelpers:
    def test_summary_reports_table1_columns(self):
        ds = favorita(scale=0.01, seed=3)
        s = ds.summary()
        assert {"dataset", "db_tuples", "join_tuples", "relations", "continuous_attrs"} <= set(s)
        assert s["relations"] == 5

    def test_test_matrix_shapes(self):
        ds = favorita(scale=0.01, seed=3)
        x, y = ds.test_matrix()
        assert x.shape[1] == len(ds.features)
        assert x.shape[0] == y.shape[0] > 0


class TestStarSchema:
    def test_scaling_parameters(self):
        ds = star_schema(n_facts=500, n_dims=3, dim_size=10, attrs_per_dim=2, seed=0)
        assert len(list(ds.db)) == 4
        assert len(ds.features) == 1 + 3 * 2

    def test_join_completeness(self):
        ds = star_schema(n_facts=300, n_dims=2, seed=0)
        joined = materialize_join(ds.db, ds.query)
        assert joined.tuple_count() == ds.db.relation("Fact").tuple_count()
