"""The full high-level optimization pipeline on the paper's LR program."""

from repro.db import JoinQuery
from repro.interp import Interpreter
from repro.ir.expr import DictBuild, Let, Sum
from repro.ir.program import Program
from repro.ir.traversal import subexpressions
from repro.ml.programs import linear_regression_bgd
from repro.opt import HighLevelOptimizer, high_level_optimize
from repro.runtime.compare import values_close


def lr_program(db, query, iterations=4):
    return linear_regression_bgd(
        db.schema(), query, ["cityf", "price"], "units",
        iterations=iterations, alpha=0.01,
    )


class TestPipelineOnLinearRegression:
    def test_covar_matrix_hoisted_to_inits(self, paper_db, paper_query):
        prog = lr_program(paper_db, paper_query)
        out = high_level_optimize(prog, stats=paper_db.statistics())

        init_names = [name for name, _ in out.inits]
        # the memoized tables (covar matrix + label vector) became inits
        memo_inits = [n for n in init_names if n.startswith("memo")]
        assert len(memo_inits) == 2

        # one of them is the two-level λf1 λf2 covar table
        tables = dict(out.inits)
        assert any(
            isinstance(tables[n], DictBuild)
            and isinstance(tables[n].body, DictBuild)
            for n in memo_inits
        )

    def test_loop_body_no_longer_scans_q(self, paper_db, paper_query):
        prog = lr_program(paper_db, paper_query)
        out = high_level_optimize(prog, stats=paper_db.statistics())
        data_scans = [
            n for n in subexpressions(out.body)
            if isinstance(n, Sum) and "Q" in repr(n.domain)
        ]
        assert data_scans == []

    def test_semantics_preserved(self, paper_db, paper_query):
        prog = lr_program(paper_db, paper_query)
        out = high_level_optimize(prog, stats=paper_db.statistics())
        r1 = Interpreter(paper_db.to_env()).run_program(prog)
        r2 = Interpreter(paper_db.to_env()).run_program(out)
        assert values_close(r1, r2)

    def test_optimized_program_does_less_work(self, paper_db, paper_query):
        prog = lr_program(paper_db, paper_query, iterations=20)
        out = high_level_optimize(prog, stats=paper_db.statistics())
        i1 = Interpreter(paper_db.to_env())
        i2 = Interpreter(paper_db.to_env())
        i1.run_program(prog)
        i2.run_program(out)
        assert i2.stats.nodes_evaluated < i1.stats.nodes_evaluated

    def test_iteration_count_barely_affects_optimized_cost(self, paper_db, paper_query):
        """The Figure 6 (right) observation, as an operation-count claim."""

        def cost(program):
            interp = Interpreter(paper_db.to_env())
            interp.run_program(program)
            return interp.stats.nodes_evaluated

        stats = paper_db.statistics()
        short = cost(high_level_optimize(lr_program(paper_db, paper_query, 5), stats=stats))
        long = cost(high_level_optimize(lr_program(paper_db, paper_query, 50), stats=stats))
        unopt_short = cost(lr_program(paper_db, paper_query, 5))
        unopt_long = cost(lr_program(paper_db, paper_query, 50))

        optimized_growth = long / short
        unoptimized_growth = unopt_long / unopt_short
        assert optimized_growth < unoptimized_growth


class TestOptimizerStages:
    def test_stage_methods_individually_preserve_semantics(self, paper_db, paper_query):
        from repro.db.query import join_as_ifaq
        from repro.interp import evaluate
        from repro.ir.builders import V, dom, sum_over
        from repro.ir.expr import Lookup

        env = paper_db.to_env()
        env["Q"] = evaluate(join_as_ifaq(paper_db.schema(), paper_query), env)

        e = sum_over(
            "x", dom(V("Q")),
            Lookup(V("Q"), V("x")) * (V("x").dot("cityf") + V("x").dot("price")),
        )
        opt = HighLevelOptimizer(stats=paper_db.statistics())
        for stage in (opt.normalize, opt.schedule_loops, opt.factorize, opt.memoize, opt.code_motion):
            out = stage(e)
            assert values_close(evaluate(e, env), evaluate(out, env)), stage.__name__
            e = out
