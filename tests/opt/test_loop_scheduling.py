"""Loop scheduling (Figure 4b) — including Example 4.2."""

from repro.interp import evaluate
from repro.ir.builders import V, dom, fields, set_lit, sum_over
from repro.ir.expr import Sum
from repro.opt.cardinality import CardinalityEstimator
from repro.opt.loop_scheduling import make_loop_scheduling_rule
from repro.opt.rewriter import rewrite_fixpoint
from repro.runtime.values import DictValue, RecordValue


def make_rule(stats=None, let_sizes=None):
    est = CardinalityEstimator(stats=stats or {})
    est.let_sizes.update(let_sizes or {})
    return make_loop_scheduling_rule(est), est


class TestSwap:
    def test_swaps_when_outer_larger(self):
        rule, _ = make_rule(stats={"Q": 1000}, let_sizes={"F": 4})
        e = sum_over("x", dom(V("Q")), sum_over("f", V("F"), V("x") * V("f")))
        out = rule(e)
        assert isinstance(out, Sum)
        assert out.var == "f"
        assert isinstance(out.body, Sum)
        assert out.body.var == "x"

    def test_no_swap_when_outer_smaller(self):
        rule, _ = make_rule(stats={"Q": 1000}, let_sizes={"F": 4})
        e = sum_over("f", V("F"), sum_over("x", dom(V("Q")), V("x") * V("f")))
        assert rule(e) is None

    def test_unknown_domains_treated_as_large(self):
        rule, _ = make_rule(let_sizes={"F": 4})
        e = sum_over("x", dom(V("Mystery")), sum_over("f", V("F"), V("f")))
        out = rule(e)
        assert isinstance(out, Sum) and out.var == "f"

    def test_no_swap_when_domains_dependent(self):
        rule, _ = make_rule(stats={"Q": 1000}, let_sizes={"F": 4})
        # inner domain depends on the outer variable: must not swap
        e = sum_over("x", dom(V("Q")), sum_over("f", dom(V("x")), V("f")))
        assert rule(e) is None

    def test_set_literal_sizes_are_exact(self):
        rule, _ = make_rule(stats={"Q": 2})
        # Q (2 tuples) is smaller than the 3-element literal: no swap.
        e = sum_over("x", dom(V("Q")), sum_over("f", set_lit(1, 2, 3), V("f")))
        assert rule(e) is None

    def test_semantics_preserved(self):
        rule, _ = make_rule(stats={"Q": 10}, let_sizes={})
        env = {
            "Q": DictValue({RecordValue({"v": float(i)}): 1 for i in range(10)}),
        }
        e = sum_over(
            "x", dom(V("Q")),
            sum_over("f", set_lit(1.0, 2.0), V("x").dot("v") * V("f")),
        )
        out = rewrite_fixpoint(e, (rule,))
        assert evaluate(e, env) == evaluate(out, env)


class TestEstimator:
    def test_estimates(self):
        _, est = make_rule(stats={"Q": 55}, let_sizes={"F": 4})
        assert est.estimate(set_lit(1, 2)) == 2
        assert est.estimate(dom(V("Q"))) == 55
        assert est.estimate(V("F")) == 4
        assert est.estimate(V("unknown")) is None

    def test_static_domain_detection(self):
        _, est = make_rule(let_sizes={"F": 4})
        assert est.is_static_domain(fields("a", "b"))
        assert est.is_static_domain(V("F"))
        assert not est.is_static_domain(dom(V("Q")))
