"""Static memoization (Figure 4d) — including Example 4.4."""

from repro.interp import evaluate
from repro.ir.builders import V, dict_build, dom, fields, sum_over
from repro.ir.expr import DictBuild, Let, Lookup, Neg, Sum
from repro.ir.traversal import subexpressions
from repro.opt.cardinality import CardinalityEstimator
from repro.opt.memoization import apply_static_memoization
from repro.runtime.compare import values_close
from repro.runtime.values import DictValue, FieldValue, RecordValue


def make_estimator(**let_sizes):
    est = CardinalityEstimator(stats={})
    est.let_sizes.update(let_sizes)
    return est


def lr_inner_expr():
    """Example 4.3's factorized form, ready for memoization."""
    data_sum = sum_over(
        "x", dom(V("Q")),
        Lookup(V("Q"), V("x")) * V("x").at(V("f2")) * V("x").at(V("f1")),
    )
    return dict_build(
        "f1", V("F"),
        Lookup(V("theta"), V("f1"))
        + Neg(sum_over("f2", V("F"), Lookup(V("theta"), V("f2")) * data_sum)),
    )


def lr_env():
    q = DictValue(
        {
            RecordValue({"c": 1.0, "p": 10.0}): 2,
            RecordValue({"c": 2.0, "p": 20.0}): 1,
        }
    )
    return {
        "Q": q,
        "F": evaluate(fields("c", "p")),
        "theta": DictValue({FieldValue("c"): 0.3, FieldValue("p"): 0.7}),
    }


class TestExample44:
    def test_covar_matrix_is_tabulated(self):
        """The inner Σ over dom(Q) becomes a let-bound λf1 λf2 table."""
        est = make_estimator(F=2)
        out = apply_static_memoization(lr_inner_expr(), est)

        assert isinstance(out, Let)
        table = out.value
        assert isinstance(table, DictBuild) and table.var == "f1"
        assert isinstance(table.body, DictBuild) and table.body.var == "f2"
        assert isinstance(table.body.body, Sum)  # Σ over dom(Q)

        # the residual loop body no longer scans Q
        residual_sums = [
            n for n in subexpressions(out.body)
            if isinstance(n, Sum) and not est.is_static_domain(n.domain)
        ]
        assert residual_sums == []

    def test_semantics_preserved(self):
        est = make_estimator(F=2)
        e = lr_inner_expr()
        out = apply_static_memoization(e, est)
        env = lr_env()
        assert values_close(evaluate(e, env), evaluate(out, env))


class TestSingleBinder:
    def test_single_dependence(self):
        est = make_estimator(F=3)
        e = dict_build(
            "f", V("F"),
            sum_over("x", dom(V("Q")), Lookup(V("Q"), V("x")) * V("x").at(V("f"))),
        )
        out = apply_static_memoization(e, est)
        assert isinstance(out, Let)
        assert isinstance(out.value, DictBuild)
        # one level of tabulation only
        assert isinstance(out.value.body, Sum)

    def test_no_static_binder_no_change(self):
        est = make_estimator()
        e = sum_over("x", dom(V("Q")), Lookup(V("Q"), V("x")))
        assert apply_static_memoization(e, est) == e

    def test_independent_sum_not_tabulated(self):
        # The inner sum does not mention f: nothing to memoize
        # (factorization/LICM would hoist it instead).
        est = make_estimator(F=2)
        e = dict_build(
            "f", V("F"),
            sum_over("x", dom(V("Q")), Lookup(V("Q"), V("x"))),
        )
        out = apply_static_memoization(e, est)
        assert out == e


class TestMultipleAggregates:
    def test_two_distinct_sums_get_two_tables(self):
        est = make_estimator(F=2)
        s1 = sum_over("x", dom(V("Q")), Lookup(V("Q"), V("x")) * V("x").at(V("f")))
        s2 = sum_over(
            "x", dom(V("Q")),
            Lookup(V("Q"), V("x")) * V("x").at(V("f")) * V("x").at(V("f")),
        )
        e = dict_build("f", V("F"), s1 + s2)
        out = apply_static_memoization(e, est)
        # two nested lets around the dict build
        assert isinstance(out, Let)
        assert isinstance(out.body, Let)
        assert isinstance(out.body.body, DictBuild)

    def test_repeated_identical_sum_shares_one_table(self):
        est = make_estimator(F=2)
        s = sum_over("x", dom(V("Q")), Lookup(V("Q"), V("x")) * V("x").at(V("f")))
        e = dict_build("f", V("F"), s + s)
        out = apply_static_memoization(e, est)
        assert isinstance(out, Let)
        assert not isinstance(out.body, Let)  # a single table suffices

    def test_semantics_multi(self):
        est = make_estimator(F=2)
        s1 = sum_over("x", dom(V("Q")), Lookup(V("Q"), V("x")) * V("x").at(V("f")))
        s2 = sum_over(
            "x", dom(V("Q")),
            Lookup(V("Q"), V("x")) * V("x").at(V("f")) * V("x").at(V("f")),
        )
        e = dict_build("f", V("F"), s1 + s2)
        out = apply_static_memoization(e, est)
        env = lr_env()
        env["F"] = evaluate(fields("c", "p"))
        assert values_close(evaluate(e, env), evaluate(out, env))
