"""Generic cleanup rules (Figure 4i) and constant folding."""

from repro.interp import evaluate
from repro.ir.builders import V, let, sum_over
from repro.ir.expr import Add, Const, Let, Mul, Neg, Var
from repro.opt.generic import (
    cse_adjacent_lets,
    dead_let,
    flatten_let,
    fold_constants,
    inline_single_use_let,
    inline_trivial_let,
)


class TestLetRules:
    def test_inline_trivial_var(self):
        assert inline_trivial_let(let("x", V("a"), V("x") + V("x"))) == V("a") + V("a")

    def test_inline_trivial_const(self):
        assert inline_trivial_let(let("x", Const(3), V("x"))) == Const(3)

    def test_dead_let(self):
        assert dead_let(let("x", V("big"), V("y"))) == V("y")

    def test_dead_let_keeps_used(self):
        assert dead_let(let("x", V("a"), V("x"))) is None

    def test_inline_single_use(self):
        e = let("x", V("a") * V("b"), V("x") + V("c"))
        assert inline_single_use_let(e) == (V("a") * V("b")) + V("c")

    def test_single_use_respects_shadowing(self):
        # inner let rebinds x: the only use is shadowed, count = 0 → no inline
        e = let("x", V("a"), let("x", Const(1), V("x")))
        assert inline_single_use_let(e) is None

    def test_no_inline_multiple_uses(self):
        e = let("x", V("a") * V("b"), V("x") + V("x"))
        assert inline_single_use_let(e) is None

    def test_flatten_let(self):
        e = let("x", let("y", Const(1), V("y") + 1), V("x") * 2)
        out = flatten_let(e)
        assert isinstance(out, Let) and isinstance(out.body, Let)
        assert evaluate(out) == evaluate(e) == 4

    def test_flatten_renames_on_clash(self):
        e = let("x", let("y", Const(1), V("y")), V("x") + V("y"))
        out = flatten_let(e)
        assert out is not None
        assert evaluate(out, {"y": 10}) == evaluate(e, {"y": 10}) == 11

    def test_cse_adjacent(self):
        e = let("x", V("a") * V("a"), let("y", V("a") * V("a"), V("x") + V("y")))
        out = cse_adjacent_lets(e)
        assert isinstance(out, Let)
        assert not isinstance(out.body, Let)
        assert evaluate(out, {"a": 3}) == 18


class TestConstantFolding:
    def test_add_consts(self):
        assert fold_constants(Add(Const(2), Const(3))) == Const(5)

    def test_mul_consts(self):
        assert fold_constants(Mul(Const(2), Const(3))) == Const(6)

    def test_identities(self):
        assert fold_constants(Add(Const(0), V("a"))) == V("a")
        assert fold_constants(Add(V("a"), Const(0))) == V("a")
        assert fold_constants(Mul(Const(1), V("a"))) == V("a")
        assert fold_constants(Mul(V("a"), Const(1))) == V("a")

    def test_annihilator(self):
        assert fold_constants(Mul(Const(0), V("a"))) == Const(0)

    def test_double_negation(self):
        assert fold_constants(Neg(Neg(V("a")))) == V("a")

    def test_neg_const(self):
        assert fold_constants(Neg(Const(3))) == Const(-3)

    def test_bool_consts_not_folded_arithmetically(self):
        out = fold_constants(Add(Const(True), Const(True)))
        assert out is None or out == Add(Const(True), Const(True))
