"""Factorization rules (Figure 4c) — including Example 4.3."""

from repro.interp import evaluate
from repro.ir.builders import V, dom, set_lit, sum_over
from repro.ir.expr import Add, Const, Mul, Neg, Sum
from repro.opt.factorization import (
    FACTORIZATION_RULES,
    build_product,
    factor_common_add,
    flatten_product,
    hoist_from_sum,
)
from repro.opt.rewriter import rewrite_fixpoint


class TestFlatten:
    def test_flatten_nested(self):
        e = Mul(Mul(V("a"), V("b")), V("c"))
        assert flatten_product(e) == [V("a"), V("b"), V("c")]

    def test_neg_becomes_minus_one_factor(self):
        assert flatten_product(Neg(V("a"))) == [Const(-1), V("a")]

    def test_build_product_empty_is_one(self):
        assert build_product([]) == Const(1)

    def test_build_roundtrip(self):
        fs = [V("a"), V("b"), V("c")]
        assert flatten_product(build_product(fs)) == fs


class TestCommonFactor:
    def test_factor_left(self):
        e = Add(Mul(V("a"), V("b")), Mul(V("a"), V("c")))
        assert factor_common_add(e) == Mul(V("a"), Add(V("b"), V("c")))

    def test_factor_buried_in_chain(self):
        e = Add(Mul(Mul(V("k"), V("a")), V("b")), Mul(V("a"), V("c")))
        out = factor_common_add(e)
        assert out is not None
        assert evaluate(out, {"k": 2, "a": 3, "b": 5, "c": 7}) == evaluate(
            e, {"k": 2, "a": 3, "b": 5, "c": 7}
        )

    def test_no_common_factor(self):
        assert factor_common_add(Add(Mul(V("a"), V("b")), Mul(V("c"), V("d")))) is None


class TestHoistFromSum:
    def test_hoists_independent_factor(self):
        e = sum_over("x", V("d"), Mul(V("a"), V("x")))
        out = hoist_from_sum(e)
        assert out == Mul(V("a"), Sum("x", V("d"), V("x")))

    def test_keeps_dependent_factors_inside(self):
        e = sum_over("x", V("d"), Mul(V("x"), V("x")))
        assert hoist_from_sum(e) is None

    def test_all_independent_not_hoisted(self):
        # Σ_x a  has no dependent factor left: rule does not apply
        # (hoisting would change the result by the domain cardinality).
        e = sum_over("x", V("d"), Mul(V("a"), V("b")))
        assert hoist_from_sum(e) is None

    def test_hoists_neg_scale(self):
        e = sum_over("x", V("d"), Neg(Mul(V("scale"), V("x"))))
        out = hoist_from_sum(e)
        assert out is not None
        env = {"d": evaluate(set_lit(1.0, 2.0)), "scale": 3.0}
        assert evaluate(out, env) == evaluate(e, env) == -9.0


class TestExample43:
    def test_theta_hoisted_outside_data_loop(self):
        """Example 4.3: θ(f2) leaves the Σ over dom(Q)."""
        from repro.ir.expr import Lookup

        inner = sum_over(
            "x", dom(V("Q")),
            Lookup(V("Q"), V("x")) * Lookup(V("theta"), V("f2"))
            * V("x").at(V("f2")) * V("x").at(V("f1")),
        )
        out = rewrite_fixpoint(inner, FACTORIZATION_RULES)
        # result: θ(f2) * Σ_x Q(x)·x[f2]·x[f1]
        assert isinstance(out, Mul)
        assert out.left == Lookup(V("theta"), V("f2"))
        assert isinstance(out.right, Sum)
