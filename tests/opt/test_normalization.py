"""Normalization rules (Figure 4a) — including Example 4.1."""

from repro.interp import evaluate
from repro.ir.builders import V, dict_lit, dom, set_lit, sum_over
from repro.ir.expr import Add, Mul, Neg, Sum, Var
from repro.opt.normalization import (
    NORMALIZATION_RULES,
    distribute_mul_over_add,
    mul_neg,
    neg_sum,
    push_mul_into_sum,
    split_sum_over_add,
)
from repro.opt.rewriter import rewrite_fixpoint
from repro.runtime.values import DictValue


class TestDistribute:
    def test_right_add(self):
        e = Mul(V("a"), Add(V("b"), V("c")))
        assert distribute_mul_over_add(e) == Add(
            Mul(V("a"), V("b")), Mul(V("a"), V("c"))
        )

    def test_left_add(self):
        e = Mul(Add(V("b"), V("c")), V("a"))
        assert distribute_mul_over_add(e) == Add(
            Mul(V("b"), V("a")), Mul(V("c"), V("a"))
        )

    def test_no_match(self):
        assert distribute_mul_over_add(Mul(V("a"), V("b"))) is None


class TestPushMulIntoSum:
    def test_push_right(self):
        s = sum_over("x", V("d"), V("x"))
        out = push_mul_into_sum(Mul(V("a"), s))
        assert out == Sum("x", V("d"), Mul(V("a"), V("x")))

    def test_push_left(self):
        s = sum_over("x", V("d"), V("x"))
        out = push_mul_into_sum(Mul(s, V("a")))
        assert out == Sum("x", V("d"), Mul(V("x"), V("a")))

    def test_capture_avoidance(self):
        # x is free in the other operand: binder must be renamed.
        s = sum_over("x", V("d"), V("x"))
        out = push_mul_into_sum(Mul(V("x"), s))
        assert isinstance(out, Sum)
        assert out.var != "x"

    def test_semantics_preserved(self):
        env = {"d": DictValue({1: 1, 2: 1, 3: 1})}
        e = Mul(V("k"), sum_over("x", dom(V("d")), V("x")))
        env["k"] = 10
        out = rewrite_fixpoint(e, NORMALIZATION_RULES)
        assert evaluate(e, env) == evaluate(out, env) == 60


class TestNegRules:
    def test_mul_neg_right(self):
        assert mul_neg(Mul(V("a"), Neg(V("b")))) == Neg(Mul(V("a"), V("b")))

    def test_mul_neg_left(self):
        assert mul_neg(Mul(Neg(V("a")), V("b"))) == Neg(Mul(V("a"), V("b")))

    def test_neg_sum(self):
        s = sum_over("x", V("d"), V("x"))
        assert neg_sum(Neg(s)) == Sum("x", V("d"), Neg(V("x")))


class TestSplitSum:
    def test_split(self):
        e = sum_over("x", V("d"), Add(V("x"), V("y")))
        out = split_sum_over_add(e)
        assert out == Add(
            Sum("x", V("d"), V("x")), Sum("x", V("d"), V("y"))
        )

    def test_semantics(self):
        e = sum_over("x", set_lit(1, 2), Add(V("x"), V("x") * V("x")))
        out = rewrite_fixpoint(e, NORMALIZATION_RULES)
        assert evaluate(e) == evaluate(out) == 8


class TestExample41:
    def test_product_pushed_into_inner_sum(self):
        """Example 4.1: x[f1] moves inside the sum over f2."""
        from repro.ir.expr import Lookup

        inner = sum_over("f2", V("F"), Lookup(V("theta"), V("f2")) * V("x").at(V("f2")))
        e = Mul(Mul(V("Qx"), inner), V("xf1"))
        out = rewrite_fixpoint(e, NORMALIZATION_RULES)
        # after normalization the outermost node is the Σ over f2
        assert isinstance(out, Sum)
        assert out.var == "f2"
