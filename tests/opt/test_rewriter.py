"""The rewrite engine: fixpoints, logging, divergence guards."""

import pytest

from repro.ir.builders import V
from repro.ir.expr import Add, Const, Expr, Mul
from repro.opt.rewriter import (
    RewriteBudgetExceeded,
    RewriteLog,
    Rule,
    rewrite_fixpoint,
    rewrite_once,
    rule,
)


@rule("test/fold-add")
def fold_add(e: Expr):
    if isinstance(e, Add) and isinstance(e.left, Const) and isinstance(e.right, Const):
        return Const(e.left.value + e.right.value)
    return None


def test_rewrite_once_applies_bottom_up():
    e = Add(Add(Const(1), Const(2)), Const(3))
    out, changed = rewrite_once(e, [fold_add])
    assert changed
    assert out == Const(6)  # inner fold enables the outer in one sweep


def test_fixpoint_terminates_and_logs():
    log = RewriteLog()
    e = Add(Add(Const(1), Const(2)), Add(Const(3), Const(4)))
    out = rewrite_fixpoint(e, [fold_add], log)
    assert out == Const(10)
    assert log.count("test/fold-add") == 3
    assert len(log) == 3


def test_no_change_returns_same():
    e = Mul(V("a"), V("b"))
    out, changed = rewrite_once(e, [fold_add])
    assert not changed
    assert out == e


def test_diverging_rule_hits_growth_guard():
    @rule("test/duplicate")
    def duplicate(e: Expr):
        if isinstance(e, Mul):
            return Add(Mul(e.left, e.right), Mul(e.left, e.right))
        return None

    with pytest.raises(RewriteBudgetExceeded):
        rewrite_fixpoint(Mul(V("a"), V("b")), [duplicate])


def test_oscillating_rules_hit_sweep_guard():
    @rule("test/swap")
    def swap(e: Expr):
        if isinstance(e, Add):
            return Add(e.right, e.left)
        return None

    with pytest.raises(RewriteBudgetExceeded):
        rewrite_fixpoint(Add(V("a"), V("b")), [swap], max_sweeps=5)


def test_rule_decorator_names():
    assert fold_add.name == "test/fold-add"
    assert isinstance(fold_add, Rule)
