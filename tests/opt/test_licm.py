"""Loop-invariant code motion (Figure 4e) — including Example 4.5."""

from repro.interp import Interpreter, evaluate, run_program
from repro.ir.builders import V, dict_build, dom, let, rec, set_lit, sum_over
from repro.ir.expr import Cmp, Const, Let, Mul, RecordLit, Sum, Var
from repro.ir.program import Program
from repro.opt.licm import LICM_RULES, float_let_upward, hoist_loop_invariants, let_out_of_loop
from repro.opt.rewriter import rewrite_fixpoint


class TestLetOutOfLoop:
    def test_hoists_invariant_let(self):
        e = sum_over("x", V("d"), let("y", V("a") * 2, V("y") + V("x")))
        out = let_out_of_loop(e)
        assert isinstance(out, Let)
        assert isinstance(out.body, Sum)

    def test_keeps_dependent_let(self):
        e = sum_over("x", V("d"), let("y", V("x") * 2, V("y")))
        assert let_out_of_loop(e) is None

    def test_renames_on_domain_clash(self):
        e = sum_over("x", dom(V("y")), let("y", Const(1), V("y") + V("x").dot("v")))
        out = let_out_of_loop(e)
        assert isinstance(out, Let)
        assert out.var != "y"

    def test_dict_build_variant(self):
        e = dict_build("f", V("F"), let("y", V("a"), V("y")))
        out = let_out_of_loop(e)
        assert isinstance(out, Let)

    def test_semantics(self):
        e = sum_over("x", set_lit(1, 2, 3), let("y", V("a") * 2, V("y") + V("x")))
        out = rewrite_fixpoint(e, LICM_RULES)
        assert evaluate(e, {"a": 5}) == evaluate(out, {"a": 5}) == 36


class TestFloatLetUpward:
    def test_floats_out_of_mul(self):
        e = Mul(let("y", V("a"), V("y")), V("b"))
        out = float_let_upward(e)
        assert isinstance(out, Let)
        assert out.body == Mul(V("y"), V("b"))

    def test_floats_out_of_record(self):
        e = rec(theta=let("m", V("a"), V("m")), it=V("k"))
        out = float_let_upward(e)
        assert isinstance(out, Let)
        assert isinstance(out.body, RecordLit)

    def test_renames_on_sibling_clash(self):
        e = Mul(let("y", V("a"), V("y")), V("y"))
        out = float_let_upward(e)
        assert isinstance(out, Let)
        assert out.var != "y"
        assert evaluate(out, {"a": 3, "y": 5}) == 15

    def test_does_not_float_out_of_if_branches(self):
        from repro.ir.builders import if_

        e = if_(V("c"), let("y", V("a"), V("y")), Const(0))
        assert float_let_upward(e) is None


class TestProgramHoisting:
    def test_example_45_invariant_let_moves_to_inits(self):
        """Figure 4e, second rule: the memo table leaves the while body."""
        body = let("M", sum_over("x", dom(V("Q")), V("Q")(V("x"))), V("state") + V("M"))
        p = Program(
            inits=(("Q", V("db_rel")),),
            state="state",
            init=Const(0.0),
            cond=Cmp("<", V("state"), Const(100)),
            body=body,
        )
        out = hoist_loop_invariants(p)
        assert [name for name, _ in out.inits] == ["Q", "M"]
        assert not isinstance(out.body, Let)

    def test_state_dependent_let_stays(self):
        body = let("d", V("state") * 2, V("d"))
        p = Program((), "state", Const(1.0), Cmp("<", V("state"), Const(8)), body)
        out = hoist_loop_invariants(p)
        assert out.inits == ()
        assert isinstance(out.body, Let)

    def test_name_collision_with_existing_init_renamed(self):
        body = let("Q", Const(5), V("state") + V("Q"))
        p = Program(
            inits=(("Q", Const(1)),),
            state="state",
            init=V("Q"),
            cond=Cmp("<", V("state"), Const(3)),
            body=body,
        )
        out = hoist_loop_invariants(p)
        names = [name for name, _ in out.inits]
        assert names[0] == "Q" and len(names) == 2 and names[1] != "Q"
        # semantics: state starts at 1, adds 5 until >= 3  → 1+5 = 6
        assert run_program(out) == run_program(p) == 6

    def test_hoisted_program_runs_loop_body_once_per_iteration(self):
        """The point of the optimization: the invariant is computed once."""
        from repro.runtime.values import DictValue, RecordValue

        q = DictValue({RecordValue({"v": float(i)}): 1 for i in range(50)})
        body = let(
            "M",
            sum_over("x", dom(V("Q")), V("Q")(V("x")) * V("x").dot("v")),
            V("state") + V("M"),
        )
        p = Program(
            inits=(),
            state="state",
            init=Const(0.0),
            cond=Cmp("<", V("state"), Const(10_000.0)),
            body=body,
        )
        out = hoist_loop_invariants(Program(p.inits, p.state, p.init, p.cond, p.body))

        i_plain = Interpreter({"Q": q})
        i_hoisted = Interpreter({"Q": q})
        assert i_plain.run_program(p) == i_hoisted.run_program(out)
        assert i_hoisted.stats.loop_iterations < i_plain.stats.loop_iterations
