"""Pretty-printer rendering checks (paper-style notation)."""

from repro.ir.builders import (
    V,
    dict_build,
    dict_lit,
    dom,
    fields,
    fld,
    if_,
    let,
    rec,
    sum_over,
    variant,
)
from repro.ir.expr import BinOp, Cmp, Const, Neg, UnaryOp
from repro.ir.pretty import pretty, pretty_program
from repro.ir.program import Program


def test_sum_uses_sigma_notation():
    e = sum_over("x", dom(V("Q")), V("Q")(V("x")))
    assert pretty(e) == "Σ{x ∈ dom(Q)} Q(x)"


def test_dict_build_uses_lambda_notation():
    e = dict_build("f", V("F"), V("theta")(V("f")))
    assert pretty(e) == "λ{f ∈ F} theta(f)"


def test_subtraction_renders_with_minus():
    assert pretty(V("a") - V("b")) == "(a - b)"


def test_field_literal_quoting():
    assert pretty(fields("i", "s")) == "[['i', 's']]"


def test_record_and_variant():
    assert pretty(rec(a=Const(1))) == "{a = 1}"
    assert pretty(variant("tag", Const(2))) == "<tag = 2>"


def test_dict_literal_arrow():
    assert pretty(dict_lit((fld("i"), Const(0.0)))) == "{{'i' → 0.0}}"


def test_accesses():
    assert pretty(V("x").dot("price")) == "x.price"
    assert pretty(V("x").at(V("f"))) == "x[f]"


def test_let_if_cmp():
    assert pretty(let("y", Const(1), V("y"))) == "let y = 1 in y"
    assert pretty(if_(Cmp("<", V("a"), Const(2)), 1, 0)) == "if (a < 2) then 1 else 0"


def test_ops():
    assert pretty(Neg(V("a"))) == "-a"
    assert pretty(UnaryOp("sqrt", V("a"))) == "sqrt(a)"
    assert pretty(BinOp("div", V("a"), V("b"))) == "(a / b)"
    assert pretty(BinOp("min", V("a"), V("b"))) == "min(a, b)"


def test_program_rendering_has_while_loop():
    p = Program(
        inits=(("F", fields("i", "s")),),
        state="theta",
        init=Const(0),
        cond=Cmp("<", V("theta"), Const(3)),
        body=V("theta") + 1,
    )
    text = pretty_program(p)
    assert "let F = [['i', 's']] in" in text
    assert "theta ← 0" in text
    assert "while ((theta < 3)) {" in text
