"""Unit tests for the IFAQ type system (paper Figure 2, type grammar)."""

import pytest

from repro.ir.types import (
    BOOL,
    DYN,
    FIELD,
    INT,
    REAL,
    STRING,
    DictType,
    EnumType,
    OneHotType,
    RecordType,
    SetType,
    VariantType,
    is_collection,
    relation_type,
)


class TestScalarTypes:
    def test_numeric_classification(self):
        assert INT.is_numeric()
        assert REAL.is_numeric()
        assert not STRING.is_numeric()
        assert not BOOL.is_numeric()

    def test_categorical_classification(self):
        assert BOOL.is_categorical()
        assert STRING.is_categorical()
        assert FIELD.is_categorical()
        assert not INT.is_categorical()

    def test_singletons_are_equal_by_structure(self):
        from repro.ir.types import IntType, RealType

        assert INT == IntType()
        assert REAL == RealType()
        assert INT != REAL

    def test_enum_type(self):
        color = EnumType("color", ("red", "green"))
        assert color.is_categorical()
        assert color == EnumType("color", ("red", "green"))
        assert color != EnumType("shade", ("red", "green"))

    def test_one_hot_type_is_numeric(self):
        t = OneHotType(5, EnumType("color"))
        assert t.is_numeric()
        assert t.dim == 5


class TestRecordType:
    def test_field_lookup(self):
        r = RecordType((("a", INT), ("b", REAL)))
        assert r.field_type("a") == INT
        assert r.field_type("b") == REAL
        assert r.field_names() == ("a", "b")

    def test_missing_field_raises(self):
        r = RecordType((("a", INT),))
        with pytest.raises(KeyError):
            r.field_type("zzz")

    def test_has_field(self):
        r = RecordType((("a", INT),))
        assert r.has_field("a")
        assert not r.has_field("b")

    def test_structural_equality_is_order_sensitive(self):
        assert RecordType((("a", INT), ("b", REAL))) != RecordType(
            (("b", REAL), ("a", INT))
        )


class TestCollectionTypes:
    def test_relation_type_shape(self):
        t = relation_type((("item", STRING), ("price", REAL)))
        assert isinstance(t, DictType)
        assert isinstance(t.key, RecordType)
        assert t.value == INT

    def test_is_collection(self):
        assert is_collection(DictType(INT, REAL))
        assert is_collection(SetType(FIELD))
        assert not is_collection(INT)
        assert not is_collection(RecordType(()))

    def test_variant_field_type(self):
        v = VariantType((("left", INT), ("right", REAL)))
        assert v.field_type("left") == INT
        with pytest.raises(KeyError):
            v.field_type("middle")

    def test_dyn_is_neither(self):
        assert not DYN.is_numeric()
        assert not DYN.is_categorical()

    def test_reprs_are_readable(self):
        assert repr(DictType(INT, REAL)) == "Map[int, real]"
        assert repr(SetType(FIELD)) == "Set[field]"
        assert "a: int" in repr(RecordType((("a", INT),)))
