"""Unit tests for traversal, free variables and substitution."""

from repro.ir.builders import V, dict_build, dom, fld, let, set_lit, sum_over
from repro.ir.expr import (
    Add,
    Const,
    DictLit,
    Let,
    Mul,
    RecordLit,
    Sum,
    Var,
)
from repro.ir.traversal import (
    children,
    contains,
    count_nodes,
    free_vars,
    fresh_name,
    rebuild_exact,
    rename_binder,
    replace_subexpr,
    subexpressions,
    substitute,
    transform_bottom_up,
)


class TestChildrenRebuild:
    def test_roundtrip_every_node_kind(self):
        exprs = [
            Add(Var("a"), Var("b")),
            Mul(Var("a"), Const(2)),
            sum_over("x", dom(V("Q")), V("x")),
            dict_build("x", set_lit(1, 2), V("x")),
            DictLit(((Const("k"), Const(1)), (Const("j"), Const(2)))),
            RecordLit((("a", Const(1)), ("b", Var("z")))),
            let("y", Const(1), V("y") + V("z")),
            V("x").dot("f"),
            V("x").at(fld("f")),
            V("Q")(V("x")),
        ]
        for e in exprs:
            assert rebuild_exact(e, children(e)) == e

    def test_dictlit_rebuild_preserves_pairing(self):
        d = DictLit(((Const("a"), Const(1)), (Const("b"), Const(2))))
        kids = children(d)
        assert kids == (Const("a"), Const(1), Const("b"), Const(2))
        assert rebuild_exact(d, kids) == d

    def test_count_nodes(self):
        assert count_nodes(Var("a")) == 1
        assert count_nodes(Add(Var("a"), Var("b"))) == 3

    def test_subexpressions_preorder(self):
        e = Add(Var("a"), Mul(Var("b"), Var("c")))
        nodes = list(subexpressions(e))
        assert nodes[0] == e
        assert Var("c") in nodes

    def test_contains(self):
        e = Add(Var("a"), Mul(Var("b"), Var("c")))
        assert contains(e, Mul(Var("b"), Var("c")))
        assert not contains(e, Var("z"))


class TestFreeVars:
    def test_var_is_free(self):
        assert free_vars(Var("a")) == {"a"}

    def test_sum_binds_its_variable(self):
        e = sum_over("x", dom(V("Q")), V("x") * V("y"))
        assert free_vars(e) == {"Q", "y"}

    def test_let_binds_only_in_body(self):
        e = let("x", V("x") + 1, V("x") * V("y"))
        # the value's x is free (refers to an outer x)
        assert free_vars(e) == {"x", "y"}

    def test_domain_not_in_binder_scope(self):
        e = sum_over("x", dom(V("x")), V("x"))
        assert free_vars(e) == {"x"}  # the domain's x is free


class TestSubstitution:
    def test_simple(self):
        assert substitute(Var("a") + Var("b"), "a", Const(1)) == Const(1) + Var("b")

    def test_shadowed_variable_untouched(self):
        e = let("x", Const(1), V("x") + V("y"))
        out = substitute(e, "x", Const(99))
        assert isinstance(out, Let)
        assert out.body == V("x") + V("y")  # inner x still bound by let

    def test_substitution_in_let_value(self):
        e = let("z", V("a"), V("z"))
        out = substitute(e, "a", Const(7))
        assert isinstance(out, Let)
        assert out.value == Const(7)

    def test_capture_avoidance_in_sum(self):
        # Σ_{x∈Q} (x * y) [y := x]  must NOT capture the bound x.
        e = sum_over("x", dom(V("Q")), V("x") * V("y"))
        out = substitute(e, "y", Var("x"))
        assert isinstance(out, Sum)
        assert out.var != "x"
        # the free x must appear in the body, multiplied by the renamed binder
        assert free_vars(out) == {"Q", "x"}

    def test_capture_avoidance_in_let(self):
        e = let("x", Const(1), V("x") + V("y"))
        out = substitute(e, "y", Var("x"))
        assert isinstance(out, Let)
        assert out.var != "x"
        assert free_vars(out) == {"x"}


class TestHelpers:
    def test_fresh_name_avoids(self):
        name = fresh_name("x", avoid={"x_0", "x_1"})
        assert name not in {"x_0", "x_1"}

    def test_rename_binder(self):
        e = sum_over("x", dom(V("Q")), V("x") * V("x"))
        out = rename_binder(e, "z")
        assert isinstance(out, Sum)
        assert out.var == "z"
        assert out.body == V("z") * V("z")

    def test_replace_subexpr_all_occurrences(self):
        needle = V("a") * V("b")
        e = Add(needle, Add(needle, Const(1)))
        out = replace_subexpr(e, needle, Var("m"))
        assert out == Add(Var("m"), Add(Var("m"), Const(1)))

    def test_transform_bottom_up(self):
        def inc_consts(node):
            if isinstance(node, Const) and isinstance(node.value, int):
                return Const(node.value + 1)
            return node

        assert transform_bottom_up(Add(Const(1), Const(2)), inc_consts) == Add(
            Const(2), Const(3)
        )
