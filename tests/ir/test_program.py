"""Tests for the top-level program shape (grammar production ``p``)."""

from repro.ir.builders import V
from repro.ir.expr import Const, Let, Var
from repro.ir.program import Program, straight_line
from repro.interp import run_program


def test_straight_line_program_evaluates_expression():
    p = straight_line(Const(5) + Const(2))
    assert run_program(p) == 7


def test_program_free_vars_excludes_inits_and_state():
    p = Program(
        inits=(("a", Const(1)), ("b", V("a") + V("external"))),
        state="s",
        init=V("b"),
        cond=Const(False),
        body=Var("s"),
    )
    assert p.free_vars() == {"external"}


def test_as_expr_wraps_inits_as_lets():
    p = Program(
        inits=(("a", Const(2)),),
        state="s",
        init=V("a") * 3,
        cond=Const(False),
        body=Var("s"),
    )
    e = p.as_expr()
    assert isinstance(e, Let)
    from repro.interp import evaluate

    assert evaluate(e) == 6


def test_iterative_program_counts():
    from repro.ir.expr import Cmp

    p = Program(
        inits=(),
        state="k",
        init=Const(0),
        cond=Cmp("<", V("k"), Const(10)),
        body=V("k") + 1,
    )
    assert run_program(p) == 10


def test_with_inits_replaces():
    p = straight_line(Const(1))
    p2 = p.with_inits((("x", Const(2)),))
    assert p2.inits == (("x", Const(2)),)
    assert p.inits == ()
