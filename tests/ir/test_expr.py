"""Unit tests for the expression AST and its operator sugar."""

import pytest

from repro.ir.builders import V, fld
from repro.ir.expr import (
    Add,
    Cmp,
    Const,
    DictLit,
    FieldAccess,
    FieldLit,
    Lookup,
    Mul,
    Neg,
    RecordLit,
    SetLit,
    Var,
)


class TestOperatorSugar:
    def test_add(self):
        assert V("a") + V("b") == Add(Var("a"), Var("b"))

    def test_add_coerces_constants(self):
        assert V("a") + 1 == Add(Var("a"), Const(1))
        assert 2 + V("a") == Add(Const(2), Var("a"))

    def test_mul(self):
        assert V("a") * V("b") == Mul(Var("a"), Var("b"))

    def test_sub_desugars_to_add_neg(self):
        assert V("a") - V("b") == Add(Var("a"), Neg(Var("b")))

    def test_neg(self):
        assert -V("a") == Neg(Var("a"))

    def test_dot_is_static_access(self):
        assert V("x").dot("price") == FieldAccess(Var("x"), "price")

    def test_call_is_dict_lookup(self):
        assert V("Q")(V("x")) == Lookup(Var("Q"), Var("x"))

    def test_at_is_dynamic_access(self):
        from repro.ir.expr import DynFieldAccess

        assert V("x").at(fld("f")) == DynFieldAccess(Var("x"), FieldLit("f"))

    def test_eq_produces_cmp(self):
        assert V("a").eq(V("b")) == Cmp("==", Var("a"), Var("b"))

    def test_unsupported_coercion_raises(self):
        with pytest.raises(TypeError):
            V("a") + [1, 2]  # type: ignore[operator]


class TestStructuralIdentity:
    def test_equality_is_structural(self):
        e1 = Mul(Var("a"), Add(Const(1), Var("b")))
        e2 = Mul(Var("a"), Add(Const(1), Var("b")))
        assert e1 == e2
        assert hash(e1) == hash(e2)

    def test_inequality(self):
        assert Mul(Var("a"), Var("b")) != Mul(Var("b"), Var("a"))

    def test_numeric_consts_follow_python_equality(self):
        # dataclass equality delegates to the payloads: 1 == 1.0
        assert Const(1) == Const(1.0)
        assert Const(1) != Const(2)

    def test_expressions_usable_as_dict_keys(self):
        table = {Var("a"): 1, Mul(Var("a"), Var("b")): 2}
        assert table[Var("a")] == 1
        assert table[Mul(Var("a"), Var("b"))] == 2


class TestRecordLit:
    def test_field_names_and_lookup(self):
        r = RecordLit((("a", Const(1)), ("b", Const(2))))
        assert r.field_names() == ("a", "b")
        assert r.field_expr("b") == Const(2)

    def test_missing_field_raises(self):
        r = RecordLit((("a", Const(1)),))
        with pytest.raises(KeyError):
            r.field_expr("q")


class TestCollectionLiterals:
    def test_set_lit_preserves_order(self):
        s = SetLit((FieldLit("a"), FieldLit("b")))
        assert s.elems == (FieldLit("a"), FieldLit("b"))

    def test_dict_lit_entries(self):
        d = DictLit(((Const("k"), Const(1)),))
        assert d.entries[0] == (Const("k"), Const(1))
