"""Unit tests for the polymorphic ring operations used by Σ."""

import pytest

from repro.runtime.rings import is_zero, truthy, v_add, v_mul, v_neg
from repro.runtime.values import DictValue, RecordValue, SetValue


class TestAddition:
    def test_numbers(self):
        assert v_add(2, 3) == 5
        assert v_add(2.5, 0.5) == 3.0

    def test_booleans_coerce(self):
        assert v_add(True, True) == 2

    def test_scalar_zero_is_polymorphic_identity(self):
        d = DictValue({"k": 1})
        assert v_add(0, d) == d
        assert v_add(d, 0) == d

    def test_records_pointwise(self):
        a = RecordValue({"x": 1, "y": 2.0})
        b = RecordValue({"x": 10, "y": 0.5})
        assert v_add(a, b) == RecordValue({"x": 11, "y": 2.5})

    def test_record_field_mismatch_raises(self):
        with pytest.raises(TypeError):
            v_add(RecordValue({"x": 1}), RecordValue({"y": 1}))

    def test_dicts_merge_bag_union(self):
        a = DictValue({"k": 2, "j": 1})
        b = DictValue({"k": 3, "m": 4})
        assert v_add(a, b) == DictValue({"k": 5, "j": 1, "m": 4})

    def test_dict_merge_drops_zero_entries(self):
        a = DictValue({"k": 2})
        b = DictValue({"k": -2})
        assert v_add(a, b) == DictValue({})

    def test_dict_merge_skips_incoming_zeros(self):
        assert v_add(DictValue({}), DictValue({"k": 0})) == DictValue({})

    def test_sets_union(self):
        assert v_add(SetValue([1]), SetValue([2, 1])) == SetValue([1, 2])

    def test_incompatible_raises(self):
        with pytest.raises(TypeError):
            v_add(SetValue([1]), DictValue({}))


class TestMultiplication:
    def test_numbers(self):
        assert v_mul(3, 4) == 12

    def test_bool_as_indicator(self):
        assert v_mul(True, 5) == 5
        assert v_mul(False, 5) == 0

    def test_scalar_scales_record(self):
        r = RecordValue({"x": 2.0, "y": 3.0})
        assert v_mul(2, r) == RecordValue({"x": 4.0, "y": 6.0})
        assert v_mul(r, 2) == RecordValue({"x": 4.0, "y": 6.0})

    def test_scalar_scales_dict(self):
        d = DictValue({"k": 3})
        assert v_mul(2, d) == DictValue({"k": 6})

    def test_zero_annihilates_collections(self):
        assert v_mul(0, DictValue({"k": 3})) == 0

    def test_records_pointwise(self):
        a = RecordValue({"x": 2.0, "y": 3.0})
        b = RecordValue({"x": 5.0, "y": 7.0})
        assert v_mul(a, b) == RecordValue({"x": 10.0, "y": 21.0})

    def test_dicts_intersect_pointwise(self):
        a = DictValue({"k": 2, "j": 1})
        b = DictValue({"k": 3, "m": 9})
        assert v_mul(a, b) == DictValue({"k": 6})

    def test_set_scaling_raises(self):
        with pytest.raises(TypeError):
            v_mul(2, SetValue([1]))


class TestNegationZeroTruthy:
    def test_neg(self):
        assert v_neg(3) == -3
        assert v_neg(RecordValue({"x": 1})) == RecordValue({"x": -1})
        assert v_neg(DictValue({"k": 2})) == DictValue({"k": -2})

    def test_is_zero(self):
        assert is_zero(0)
        assert is_zero(0.0)
        assert is_zero(False)
        assert is_zero(DictValue({}))
        assert is_zero(SetValue([]))
        assert is_zero(RecordValue({"x": 0}))
        assert not is_zero(RecordValue({"x": 1}))
        assert not is_zero(1)

    def test_truthy(self):
        assert truthy(True)
        assert truthy(2)
        assert not truthy(0.0)
        with pytest.raises(TypeError):
            truthy(DictValue({}))
