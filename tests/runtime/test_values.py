"""Unit tests for the runtime value model."""

import pytest

from repro.runtime.values import (
    DictValue,
    FieldValue,
    RecordValue,
    SetValue,
    VariantValue,
)


class TestFieldValue:
    def test_equality_and_hash(self):
        assert FieldValue("a") == FieldValue("a")
        assert FieldValue("a") != FieldValue("b")
        assert hash(FieldValue("a")) == hash(FieldValue("a"))

    def test_distinct_from_plain_string(self):
        assert FieldValue("a") != "a"


class TestRecordValue:
    def test_mapping_interface(self):
        r = RecordValue({"a": 1, "b": 2.5})
        assert r["a"] == 1
        assert len(r) == 2
        assert list(r) == ["a", "b"]

    def test_hashable_and_usable_as_key(self):
        r1 = RecordValue({"a": 1})
        r2 = RecordValue({"a": 1})
        assert hash(r1) == hash(r2)
        assert {r1: "x"}[r2] == "x"

    def test_equality_ignores_declaration_order(self):
        assert RecordValue({"a": 1, "b": 2}) == RecordValue({"b": 2, "a": 1})

    def test_project(self):
        r = RecordValue({"a": 1, "b": 2, "c": 3})
        assert r.project(["c", "a"]) == RecordValue({"c": 3, "a": 1})
        assert r.project(["c", "a"]).field_names() == ("c", "a")

    def test_from_pairs(self):
        r = RecordValue([("x", 1), ("y", 2)])
        assert r.field_names() == ("x", "y")


class TestVariantValue:
    def test_equality(self):
        assert VariantValue("t", 1) == VariantValue("t", 1)
        assert VariantValue("t", 1) != VariantValue("u", 1)

    def test_hashable(self):
        assert hash(VariantValue("t", 1)) == hash(VariantValue("t", 1))


class TestDictValue:
    def test_get_defaults_to_ring_zero(self):
        d = DictValue({"k": 5})
        assert d.get("missing") == 0
        assert d.get("k") == 5

    def test_mapping_interface(self):
        d = DictValue({"a": 1, "b": 2})
        assert set(d.keys()) == {"a", "b"}
        assert len(d) == 2
        assert "a" in d

    def test_equality(self):
        assert DictValue({"a": 1}) == DictValue({"a": 1})
        assert DictValue({"a": 1}) != DictValue({"a": 2})

    def test_from_pairs(self):
        d = DictValue([("a", 1)])
        assert d["a"] == 1


class TestSetValue:
    def test_insertion_order_preserved(self):
        s = SetValue(["b", "a", "b"])
        assert s.elements() == ("b", "a")

    def test_membership_and_len(self):
        s = SetValue([1, 2])
        assert 1 in s
        assert len(s) == 2

    def test_equality_is_order_insensitive(self):
        assert SetValue([1, 2]) == SetValue([2, 1])
