"""Join tree construction and rerooting (Example 4.8)."""

import pytest

from repro.aggregates import JoinTreeError, build_join_tree, reroot
from repro.db import Database, Relation, RelationSchema
from repro.ir.types import INT, REAL


class TestBuild:
    def test_root_is_largest_by_stats(self, paper_db):
        tree = build_join_tree(
            paper_db.schema(), ("S", "R", "I"), stats=paper_db.statistics()
        )
        assert tree.relation == "S"
        assert {c.relation for c in tree.children} == {"R", "I"}

    def test_edge_annotations(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="S")
        by_name = {c.relation: c for c in tree.children}
        assert by_name["R"].join_attrs == ("store",)
        assert by_name["I"].join_attrs == ("item",)

    def test_explicit_root(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="I")
        assert tree.relation == "I"

    def test_unknown_root_raises(self, paper_db):
        with pytest.raises(JoinTreeError):
            build_join_tree(paper_db.schema(), ("S", "R"), root="Z")

    def test_disconnected_graph_raises(self):
        a = Relation.from_rows(RelationSchema.of("A", [("x", INT)]), [(1,)])
        b = Relation.from_rows(RelationSchema.of("B", [("y", INT)]), [(1,)])
        db = Database.of(a, b)
        with pytest.raises(JoinTreeError, match="disconnected"):
            build_join_tree(db.schema(), ("A", "B"))

    def test_snowflake_chain(self):
        """Census joins Location on zip; Location joins the fact on locn."""
        fact = Relation.from_rows(
            RelationSchema.of("F", [("locn", INT), ("y", REAL)]), [(1, 1.0)]
        )
        loc = Relation.from_rows(
            RelationSchema.of("L", [("locn", INT), ("zip", INT)]), [(1, 10)]
        )
        census = Relation.from_rows(
            RelationSchema.of("C", [("zip", INT), ("pop", REAL)]), [(10, 5.0)]
        )
        db = Database.of(fact, loc, census)
        tree = build_join_tree(db.schema(), ("F", "L", "C"), root="F")
        assert tree.children[0].relation == "L"
        assert tree.children[0].children[0].relation == "C"
        assert tree.children[0].children[0].join_attrs == ("zip",)

    def test_walk_preorder(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="S")
        assert tree.relation_names()[0] == "S"

    def test_pretty(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="S")
        text = tree.pretty()
        assert "S (root)" in text
        assert "⋈" in text


class TestReroot:
    def test_reroot_leaf_to_root(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="S")
        flipped = reroot(tree, "I", paper_db.schema())
        assert flipped.relation == "I"
        assert flipped.children[0].relation == "S"
        # the S child keeps the edge annotation with I
        assert flipped.children[0].join_attrs == ("item",)

    def test_reroot_preserves_node_set(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="S")
        flipped = reroot(tree, "R", paper_db.schema())
        assert sorted(flipped.relation_names()) == sorted(tree.relation_names())

    def test_reroot_same_root_is_identity(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="S")
        assert reroot(tree, "S", paper_db.schema()) is tree

    def test_reroot_unknown_raises(self, paper_db):
        tree = build_join_tree(paper_db.schema(), ("S", "R", "I"), root="S")
        with pytest.raises(JoinTreeError):
            reroot(tree, "Z", paper_db.schema())
