"""View trees as S-IFAQ expressions (Examples 4.9/4.10) evaluate correctly."""

import math

import pytest

from repro.aggregates import (
    build_join_tree,
    compute_batch_materialized,
    covar_batch,
    merged_views_expr,
    views_per_aggregate_expr,
)
from repro.interp import evaluate
from repro.ir.expr import Let, RecordLit, Sum
from repro.ir.traversal import subexpressions


@pytest.fixture
def setup(int_star_db, int_star_query):
    batch = covar_batch(["cityf", "price"])
    tree = build_join_tree(
        int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
    )
    oracle = compute_batch_materialized(int_star_db, int_star_query, batch)
    return int_star_db, batch, tree, oracle


def test_per_aggregate_views_evaluate_to_oracle(setup):
    db, batch, tree, oracle = setup
    expr = views_per_aggregate_expr(db, tree, batch)
    value = evaluate(expr, db.to_env())
    for spec in batch:
        assert math.isclose(value[spec.name], oracle[spec.name], rel_tol=1e-9)


def test_merged_views_evaluate_to_oracle(setup):
    db, batch, tree, oracle = setup
    expr = merged_views_expr(db, tree, batch)
    value = evaluate(expr, db.to_env())
    for spec in batch:
        assert math.isclose(value[spec.name], oracle[spec.name], rel_tol=1e-9)


def test_merged_emits_one_view_per_edge(setup):
    """Example 4.10: W_R and W_I, not one view per (edge, aggregate)."""
    db, batch, tree, _ = setup
    expr = merged_views_expr(db, tree, batch)
    lets = [n for n in subexpressions(expr) if isinstance(n, Let)]
    view_lets = [n for n in lets if n.var.startswith("W_")]
    assert len(view_lets) == 2  # R and I


def test_per_aggregate_emits_views_per_aggregate(setup):
    """Example 4.9: each aggregate owns its own V views."""
    db, batch, tree, _ = setup
    expr = views_per_aggregate_expr(db, tree, batch)
    lets = [n for n in subexpressions(expr) if isinstance(n, Let) and n.var.startswith("V_")]
    assert len(lets) == 2 * len(batch)


def test_merged_root_scan_count(setup):
    """Multi-aggregate iteration: exactly one Σ per relation."""
    db, batch, tree, _ = setup
    expr = merged_views_expr(db, tree, batch)
    sums = [n for n in subexpressions(expr) if isinstance(n, Sum)]
    assert len(sums) == 3  # S, R, I — one scan each
