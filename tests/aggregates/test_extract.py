"""Aggregate extraction from S-IFAQ expressions."""

from repro.aggregates import (
    AggregateSpec,
    extract_aggregates,
    extract_program_aggregates,
    match_aggregate,
    remove_dead_inits,
)
from repro.ir.builders import V, dom, sum_over
from repro.ir.expr import Const, FieldAccess, Lookup, Mul, Var
from repro.ir.program import Program


def agg(*attrs):
    """Σ_{x∈dom(Q)} Q(x) · Π x.attr"""
    body = Lookup(V("Q"), V("x"))
    for a in attrs:
        body = body * V("x").dot(a)
    return sum_over("x", dom(V("Q")), body)


class TestMatch:
    def test_matches_second_moment(self):
        matched = match_aggregate(agg("c", "p"), "Q")
        assert matched is not None
        spec, coef = matched
        assert spec == AggregateSpec.of("c", "p")
        assert coef == 1.0

    def test_matches_count(self):
        spec, coef = match_aggregate(agg(), "Q")
        assert spec == AggregateSpec.of()

    def test_extracts_constant_coefficient(self):
        e = sum_over(
            "x", dom(V("Q")), Const(-1) * Lookup(V("Q"), V("x")) * V("x").dot("c")
        )
        spec, coef = match_aggregate(e, "Q")
        assert spec == AggregateSpec.of("c")
        assert coef == -1.0

    def test_rejects_wrong_relation(self):
        assert match_aggregate(agg("c"), "OtherQ") is None

    def test_rejects_foreign_factor(self):
        e = sum_over("x", dom(V("Q")), Lookup(V("Q"), V("x")) * V("theta"))
        assert match_aggregate(e, "Q") is None

    def test_rejects_missing_relation_lookup(self):
        e = sum_over("x", dom(V("Q")), V("x").dot("c"))
        assert match_aggregate(e, "Q") is None


class TestExtract:
    def test_replaces_with_batch_reference(self):
        e = agg("c", "p") + agg("c")
        result = extract_aggregates(e)
        assert len(result.specs) == 2
        refs = [
            n
            for n in __import__("repro.ir.traversal", fromlist=["subexpressions"]).subexpressions(result.expr)
            if isinstance(n, FieldAccess) and n.record == Var("__aggs")
        ]
        assert len(refs) == 2

    def test_duplicate_aggregates_share_spec(self):
        e = agg("c") + agg("c")
        result = extract_aggregates(e)
        assert len(result.specs) == 1

    def test_coefficient_preserved_at_use_site(self):
        e = sum_over(
            "x", dom(V("Q")), Const(2.0) * Lookup(V("Q"), V("x")) * V("x").dot("c")
        )
        result = extract_aggregates(e)
        assert isinstance(result.expr, Mul)
        assert result.expr.left == Const(2.0)


class TestProgramExtraction:
    def test_q_init_removed_when_dead(self):
        p = Program(
            inits=(("Q", V("join_expr_placeholder")), ("m", agg("c"))),
            state="s",
            init=V("m"),
            cond=Const(False),
            body=Var("s"),
        )
        out, batch = extract_program_aggregates(p)
        assert [name for name, _ in out.inits] == ["m"]
        assert len(batch) == 1

    def test_q_kept_if_used_elsewhere(self):
        p = Program(
            inits=(("Q", V("join_expr_placeholder")),),
            state="s",
            init=dom(V("Q")),  # non-aggregate use of Q survives
            cond=Const(False),
            body=Var("s"),
        )
        out, batch = extract_program_aggregates(p)
        assert [name for name, _ in out.inits] == ["Q"]
        assert len(batch) == 0


class TestDeadInits:
    def test_chain_removal(self):
        p = Program(
            inits=(("a", Const(1)), ("b", V("a")), ("unused", Const(9))),
            state="s",
            init=V("b"),
            cond=Const(False),
            body=Var("s"),
        )
        out = remove_dead_inits(p)
        assert [name for name, _ in out.inits] == ["a", "b"]

    def test_keeps_transitive_dependencies(self):
        p = Program(
            inits=(("a", Const(1)), ("b", V("a"))),
            state="s",
            init=V("b"),
            cond=Const(False),
            body=Var("s"),
        )
        assert remove_dead_inits(p).inits == p.inits
