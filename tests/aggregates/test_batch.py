"""Aggregate specs and batches."""

from repro.aggregates import COUNT, AggregateBatch, AggregateSpec, covar_batch, variance_batch


class TestSpec:
    def test_attrs_sorted_for_identity(self):
        assert AggregateSpec.of("p", "c") == AggregateSpec.of("c", "p")

    def test_names(self):
        assert COUNT.name == "agg_count"
        assert AggregateSpec.of("c", "p").name == "agg_c_p"
        assert AggregateSpec.of("c", "c").name == "agg_c_c"

    def test_degree(self):
        assert COUNT.degree == 0
        assert AggregateSpec.of("c").degree == 1


class TestBatch:
    def test_deduplicates(self):
        b = AggregateBatch.of([AggregateSpec.of("c", "p"), AggregateSpec.of("p", "c")])
        assert len(b) == 1

    def test_preserves_order(self):
        b = AggregateBatch.of([COUNT, AggregateSpec.of("a")])
        assert b.specs[0] == COUNT
        assert b.index_of(AggregateSpec.of("a")) == 1

    def test_all_attributes(self):
        b = AggregateBatch.of([AggregateSpec.of("c", "p"), AggregateSpec.of("c")])
        assert b.all_attributes() == ("c", "p")


class TestCovarBatch:
    def test_size_formula(self):
        # k columns (features+label) → 1 + k + k(k+1)/2 aggregates
        for n_feat in (1, 2, 5):
            b = covar_batch([f"f{i}" for i in range(n_feat)], label="y")
            k = n_feat + 1
            assert len(b) == 1 + k + k * (k + 1) // 2

    def test_contains_count_and_label_moments(self):
        b = covar_batch(["a"], label="y")
        names = b.names()
        assert "agg_count" in names
        assert "agg_y" in names
        assert "agg_y_y" in names
        assert "agg_a_y" in names

    def test_without_label(self):
        b = covar_batch(["a", "b"])
        assert "agg_a_b" in b.names()
        assert all("y" not in n for n in b.names())


def test_variance_batch_is_count_sum_sumsq():
    b = variance_batch("y")
    assert set(b.names()) == {"agg_count", "agg_y", "agg_y_y"}
