"""The factorized evaluation engines vs the materialized oracle."""

import math

import pytest

from repro.aggregates import (
    COUNT,
    AggregateBatch,
    AggregateSpec,
    build_join_tree,
    compute_batch_materialized,
    compute_batch_merged,
    compute_batch_pushdown,
    compute_batch_trie,
    compute_groupby,
    covar_batch,
)
from repro.db import JoinQuery, materialize_join

ENGINES = [compute_batch_pushdown, compute_batch_merged, compute_batch_trie]


@pytest.fixture
def setup(int_star_db, int_star_query):
    batch = covar_batch(["cityf", "price"], label="units")
    tree = build_join_tree(
        int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
    )
    oracle = compute_batch_materialized(int_star_db, int_star_query, batch)
    return int_star_db, int_star_query, batch, tree, oracle


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_matches_oracle(setup, engine):
    db, _query, batch, tree, oracle = setup
    result = engine(db, tree, batch)
    assert set(result) == set(oracle)
    for name in oracle:
        assert math.isclose(result[name], oracle[name], rel_tol=1e-9), name


def test_count_aggregate_equals_join_size(setup):
    db, query, batch, tree, _oracle = setup
    result = compute_batch_merged(db, tree, batch)
    assert result["agg_count"] == materialize_join(db, query).tuple_count()


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_respect_predicates(setup, engine):
    db, query, batch, tree, _ = setup
    predicates = {"I": [lambda rec: rec["price"] > 20.0]}
    expected = compute_batch_materialized(db, query, batch, predicates)
    result = engine(db, tree, batch, predicates)
    for name in expected:
        assert math.isclose(result[name], expected[name], rel_tol=1e-9), name


def test_predicate_on_fact_table(setup):
    db, query, batch, tree, _ = setup
    predicates = {"S": [lambda rec: rec["units"] >= 5.0]}
    expected = compute_batch_materialized(db, query, batch, predicates)
    result = compute_batch_merged(db, tree, batch, predicates)
    for name in expected:
        assert math.isclose(result[name], expected[name], rel_tol=1e-9)


def test_empty_selection_gives_zeros(setup):
    db, _query, batch, tree, _ = setup
    predicates = {"S": [lambda rec: False]}
    result = compute_batch_merged(db, tree, batch, predicates)
    assert all(v == 0.0 for v in result.values())


class TestGroupBy:
    def test_groupby_fact_attribute(self, setup):
        db, query, _b, tree, _ = setup
        batch = AggregateBatch.of([COUNT, AggregateSpec.of("units")])
        groups = compute_groupby(db, tree, batch, "store")
        joined = materialize_join(db, query)
        manual: dict = {}
        for rec, mult in joined.data.items():
            acc = manual.setdefault(rec["store"], [0.0, 0.0])
            acc[0] += mult
            acc[1] += mult * rec["units"]
        assert set(groups) == set(manual)
        for k in groups:
            assert all(
                math.isclose(a, b, rel_tol=1e-9) for a, b in zip(groups[k], manual[k])
            )

    def test_groupby_dimension_attribute_reroots(self, setup):
        db, query, _b, tree, _ = setup
        batch = AggregateBatch.of([COUNT, AggregateSpec.of("units")])
        groups = compute_groupby(db, tree, batch, "price")  # owned by I
        joined = materialize_join(db, query)
        manual: dict = {}
        for rec, mult in joined.data.items():
            acc = manual.setdefault(rec["price"], [0.0, 0.0])
            acc[0] += mult
            acc[1] += mult * rec["units"]
        assert set(groups) == set(manual)
        for k in groups:
            assert all(
                math.isclose(a, b, rel_tol=1e-9) for a, b in zip(groups[k], manual[k])
            )

    def test_groupby_with_predicates(self, setup):
        db, query, _b, tree, _ = setup
        batch = AggregateBatch.of([COUNT])
        predicates = {"R": [lambda rec: rec["cityf"] < 3.0]}
        groups = compute_groupby(db, tree, batch, "price", predicates)
        joined = materialize_join(db, query)
        manual: dict = {}
        for rec, mult in joined.data.items():
            if rec["cityf"] < 3.0:
                manual[rec["price"]] = manual.get(rec["price"], 0.0) + mult
        assert {k: v[0] for k, v in groups.items()} == manual


class TestHigherMoments:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_cubic_aggregate(self, setup, engine):
        db, query, _b, tree, _ = setup
        batch = AggregateBatch.of([AggregateSpec.of("cityf", "price", "units")])
        expected = compute_batch_materialized(db, query, batch)
        result = engine(db, tree, batch)
        name = batch.specs[0].name
        assert math.isclose(result[name], expected[name], rel_tol=1e-9)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_squared_dimension_attribute(self, setup, engine):
        db, query, _b, tree, _ = setup
        batch = AggregateBatch.of([AggregateSpec.of("price", "price")])
        expected = compute_batch_materialized(db, query, batch)
        result = engine(db, tree, batch)
        name = batch.specs[0].name
        assert math.isclose(result[name], expected[name], rel_tol=1e-9)
