"""ShardedBackend: partitioning, merge correctness, bit-identity."""

import math

import pytest

from repro.aggregates import build_join_tree, covar_batch
from repro.backend import (
    EngineBackend,
    KernelCache,
    PythonKernelBackend,
    ShardedBackend,
    build_batch_plan,
    shard_database,
)
from repro.backend.layout import LAYOUT_BASELINE, LAYOUT_SORTED
from repro.compiler import IFAQCompiler
from repro.data import star_schema
from repro.ml.programs import linear_regression_bgd


def make_plan(db, query):
    batch = covar_batch(["cityf", "price"], label="units")
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(db, tree, batch)


class TestShardDatabase:
    def test_partition_preserves_tuples(self, int_star_db):
        shards = shard_database(int_star_db, "S", 4)
        assert len(shards) == 4
        total = sum(s.relation("S").tuple_count() for s in shards)
        assert total == int_star_db.relation("S").tuple_count()
        # Non-root relations are shared, not copied.
        for s in shards:
            assert s.relation("R") is int_star_db.relation("R")

    def test_more_shards_than_rows(self, int_star_db):
        n = int_star_db.relation("R").distinct_count()
        shards = shard_database(int_star_db, "R", n + 50)
        assert len(shards) == n
        assert all(s.relation("R").distinct_count() == 1 for s in shards)


class TestShardedPython:
    """Block-structured sharding is bit-identical to single-shot."""

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_bit_identical_to_single_shot(self, int_star_db, int_star_query, shards):
        plan = make_plan(int_star_db, int_star_query)
        # Small blocks so every shard count actually distributes work.
        inner = PythonKernelBackend(block_size=16)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, int_star_db)
        sharded = ShardedBackend(inner=inner, shards=shards).execute(kernel, int_star_db)
        assert sharded == single  # exact float equality, not isclose

    def test_records_shard_timings(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        inner = PythonKernelBackend(block_size=16)
        backend = ShardedBackend(inner=inner, shards=3)
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        backend.execute(kernel, int_star_db)
        assert len(backend.last_shard_seconds) == 3
        assert all(s >= 0 for s in backend.last_shard_seconds)

    def test_dict_layout_also_sharded(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        inner = PythonKernelBackend(block_size=16)
        kernel = inner.compile_plan(plan, LAYOUT_BASELINE)
        single = inner.execute(kernel, int_star_db)
        sharded = ShardedBackend(inner=inner, shards=4).execute(kernel, int_star_db)
        assert sharded == single


class TestShardedEngine:
    @pytest.mark.parametrize("mode", ["materialized", "pushdown", "merged", "trie"])
    def test_matches_single_shot(self, int_star_db, int_star_query, mode):
        plan = make_plan(int_star_db, int_star_query)
        inner = EngineBackend(aggregate_mode=mode)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, int_star_db)
        sharded = ShardedBackend(inner=inner, shards=4).execute(kernel, int_star_db)
        assert set(sharded) == set(single)
        for name, value in single.items():
            assert math.isclose(sharded[name], value, rel_tol=1e-9), (mode, name)


@pytest.mark.cpp
class TestShardedCpp:
    def test_matches_single_shot(self, int_star_db, int_star_query):
        from repro.backend import CppKernelBackend

        plan = make_plan(int_star_db, int_star_query)
        inner = CppKernelBackend()
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, int_star_db)
        sharded = ShardedBackend(inner=inner, shards=4).execute(kernel, int_star_db)
        for name, value in single.items():
            assert math.isclose(sharded[name], value, rel_tol=1e-9), name


class TestShardedCompiler:
    """The acceptance workload: sharded LR through the full compiler."""

    def test_fig5_lr_sharded_equals_single_shot(self):
        ds = star_schema(n_facts=600, n_dims=2, dim_size=15, attrs_per_dim=1, seed=2)
        program = linear_regression_bgd(
            ds.db.schema(), ds.query, ds.features, ds.label, iterations=10, alpha=0.05
        )
        single = IFAQCompiler(
            db=ds.db, query=ds.query, backend="python", kernel_cache=KernelCache()
        )
        sharded = IFAQCompiler(
            db=ds.db,
            query=ds.query,
            backend=ShardedBackend(inner="python", shards=4),
            kernel_cache=KernelCache(),
        )
        a_single = single.compile(program)
        a_sharded = sharded.compile(program)
        # Bit-identical aggregate vectors...
        assert sharded.compute_batch(a_sharded) == single.compute_batch(a_single)
        # ...and therefore bit-identical trained parameters.
        s1 = single.run_artifacts(a_single)
        s2 = sharded.run_artifacts(a_sharded)
        for k in s1["theta"].field_names():
            assert s1["theta"][k] == s2["theta"][k]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedBackend(inner="python", shards=0)
