"""The shared per-database ColumnStore: memoization, codings, lifecycle."""

import gc
import weakref

import numpy as np
import pytest

from repro.backend import column_store
from repro.backend.column_store import ColumnStore
from repro.db import Database, Relation, RelationSchema
from repro.ir.types import INT, REAL


def _db():
    fact = Relation.from_rows(
        RelationSchema.of("F", [("k", INT), ("y", REAL)]),
        [(i % 4, float(i)) for i in range(20)],
    )
    dim = Relation.from_rows(
        RelationSchema.of("D", [("k", INT), ("a", REAL)]),
        [(k, float(10 * k)) for k in range(4)],
    )
    return Database.of(fact, dim)


class TestMemoization:
    def test_same_store_per_database(self):
        db = _db()
        assert column_store(db) is column_store(db)

    def test_columns_and_codings_are_memoized(self):
        db = _db()
        store = column_store(db)
        assert store.mult("F") is store.mult("F")
        assert store.raw_col("F", "y") is store.raw_col("F", "y")
        assert store.key_coding("D", ("k",)) is store.key_coding("D", ("k",))
        assert store.parent_codes("F", "D", ("k",)) is store.parent_codes(
            "F", "D", ("k",)
        )


class TestKeyCodings:
    def test_vectorized_matches_loop_coding(self):
        """Sorted-order codes describe the same key partition as the
        first-seen loop codes (renumbering-invariant join semantics)."""
        db = _db()
        store = ColumnStore(db)
        fast = store._vectorized_key_coding("F", ("k",))
        slow = store._loop_key_coding("F", ("k",))
        assert fast is not None
        assert fast.n_keys == slow.n_keys
        assert fast.unique == slow.unique
        # Same rows grouped together, same representative rows per key.
        for coding in (fast, slow):
            by_code = {}
            for row, code in enumerate(coding.codes):
                by_code.setdefault(int(code), []).append(row)
        fast_groups = {tuple(np.flatnonzero(fast.codes == c)) for c in range(fast.n_keys)}
        slow_groups = {tuple(np.flatnonzero(slow.codes == c)) for c in range(slow.n_keys)}
        assert fast_groups == slow_groups
        assert set(fast.key_row.tolist()) == set(slow.key_row.tolist())

    def test_dangling_parent_keys_code_minus_one(self):
        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("y", REAL)]), [(0, 1.0), (9, 2.0)]
        )
        dim = Relation.from_rows(
            RelationSchema.of("D", [("k", INT), ("a", REAL)]), [(0, 1.0)]
        )
        db = Database.of(fact, dim)
        store = ColumnStore(db)
        assert store.parent_codes("F", "D", ("k",)).tolist() == [0, -1]

    def test_two_attribute_int_keys_pack(self):
        left = Relation.from_rows(
            RelationSchema.of("L", [("a", INT), ("b", INT), ("x", REAL)]),
            [(1, 2, 1.0), (1, 3, 2.0), (1, 2, 3.0)],
        )
        db = Database.of(left)
        store = ColumnStore(db)
        coding = store.key_coding("L", ("a", "b"))
        assert coding.values is not None  # vectorized path taken
        assert coding.n_keys == 2
        assert coding.codes[0] == coding.codes[2] != coding.codes[1]

    def test_negative_wide_keys_fall_back_to_loop(self):
        left = Relation.from_rows(
            RelationSchema.of("L", [("a", INT), ("b", INT), ("x", REAL)]),
            [(2**40, -5, 1.0), (0, 7, 2.0)],
        )
        db = Database.of(left)
        store = ColumnStore(db)
        coding = store.key_coding("L", ("a", "b"))
        assert coding.table is not None  # loop path taken
        assert coding.n_keys == 2


class TestStats:
    def test_stats_track_materialized_memos(self):
        db = _db()
        store = column_store(db)
        empty = store.stats()
        assert empty["relations"] == 0
        assert empty["approx_bytes"] == 0

        store.mult("F")
        store.float_col("F", "y")
        store.key_coding("D", ("k",))
        store.parent_codes("F", "D", ("k",))
        store.column_coding("F", "k")
        stats = store.stats()
        assert stats["relations"] >= 2
        assert stats["record_rows"] == 24
        assert stats["key_codings"] == 1
        assert stats["parent_code_maps"] == 1
        assert stats["column_codings"] == 1
        # Byte estimate covers at least the arrays we can count directly.
        floor = store.mult("F").nbytes + store.float_col("F", "y").nbytes
        assert stats["ndarray_bytes"] >= floor
        assert stats["approx_bytes"] >= stats["ndarray_bytes"]

    def test_stats_include_eval_cache_arrays(self):
        db = _db()
        store = column_store(db)
        base = store.stats()["approx_bytes"]
        store.eval_cache["scan-key"] = (np.ones(100), np.ones(100, dtype=bool))
        stats = store.stats()
        assert stats["eval_entries"] == 1
        assert stats["eval_bytes"] >= 800
        assert stats["approx_bytes"] > base

    def test_evict_column_store(self):
        from repro.backend import evict_column_store, peek_column_store

        db = _db()
        assert peek_column_store(db) is None  # peek never builds
        store = column_store(db)
        assert peek_column_store(db) is store
        assert evict_column_store(db)
        assert peek_column_store(db) is None
        assert not evict_column_store(db)


class TestLifecycle:
    def test_store_does_not_pin_the_database(self):
        """The registry's weakref eviction must actually fire: the
        store holds its database weakly, so dropping the last user
        reference collects both the database and the cached store."""
        db = _db()
        store_ref = weakref.ref(column_store(db))
        db_ref = weakref.ref(db)
        del db
        gc.collect()
        assert db_ref() is None
        assert store_ref() is None

    def test_dead_store_raises_on_lazy_access(self):
        db = _db()
        store = column_store(db)
        store.mult("F")  # built while the database is alive
        del db
        gc.collect()
        assert store.mult("F") is not None  # memoized arrays survive
        with pytest.raises(RuntimeError, match="garbage-collected"):
            store.records("D")  # unbuilt relation needs the database
