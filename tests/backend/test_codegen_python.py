"""Generated Python kernels across the full layout ladder."""

import math

import pytest

from repro.aggregates import (
    AggregateBatch,
    AggregateSpec,
    build_join_tree,
    compute_batch_materialized,
    covar_batch,
)
from repro.backend.codegen_python import generate_python_kernel
from repro.backend.layout import (
    LAYOUT_ARRAYS,
    LAYOUT_BASELINE,
    LAYOUT_SCALARIZED,
    LAYOUT_SORTED,
    LayoutOptions,
)
from repro.backend.plan import build_batch_plan, prepare_data

LAYOUTS = [
    ("baseline", LAYOUT_BASELINE),
    ("records", LayoutOptions(static_records=True)),
    ("scalarized", LAYOUT_SCALARIZED),
    ("arrays", LAYOUT_ARRAYS),
    ("sorted", LAYOUT_SORTED),
]


@pytest.fixture
def setup(int_star_db, int_star_query):
    batch = covar_batch(["cityf", "price"], label="units")
    tree = build_join_tree(
        int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
    )
    plan = build_batch_plan(int_star_db, tree, batch)
    oracle = compute_batch_materialized(int_star_db, int_star_query, batch)
    return int_star_db, batch, plan, oracle


@pytest.mark.parametrize("name,layout", LAYOUTS)
def test_kernel_matches_oracle(setup, name, layout):
    db, batch, plan, oracle = setup
    kernel = generate_python_kernel(plan, layout)
    fn = kernel.compile()
    values = fn(prepare_data(db, plan, layout))
    for i, spec in enumerate(batch):
        assert math.isclose(values[i], oracle[spec.name], rel_tol=1e-9), (name, spec.name)


def test_generated_source_is_deterministic(setup):
    db, batch, plan, _ = setup
    s1 = generate_python_kernel(plan, LAYOUT_ARRAYS).source
    s2 = generate_python_kernel(plan, LAYOUT_ARRAYS).source
    assert s1 == s2


def test_baseline_uses_string_records(setup):
    _, _, plan, _ = setup
    src = generate_python_kernel(plan, LAYOUT_BASELINE).source
    assert "rec = dict(row)" in src
    assert "rec['" in src or 'rec["' in src


def test_scalarized_unrolls_accumulators(setup):
    _, batch, plan, _ = setup
    src = generate_python_kernel(plan, LAYOUT_SCALARIZED).source
    assert "_t0" in src and f"_t{len(batch) - 1}" in src


def test_sorted_layout_uses_merge_cursor_and_bisect(setup):
    _, _, plan, _ = setup
    src = generate_python_kernel(plan, LAYOUT_SORTED).source
    assert "_cursor0" in src
    assert "bisect_left" in src


def test_single_aggregate_batch(setup):
    db, _, _, _ = setup
    batch = AggregateBatch.of([AggregateSpec.of("units")])
    tree = build_join_tree(db.schema(), ("S", "R", "I"), stats=db.statistics())
    plan = build_batch_plan(db, tree, batch)
    from repro.db import JoinQuery

    oracle = compute_batch_materialized(db, JoinQuery(("S", "R", "I")), batch)
    for _, layout in LAYOUTS:
        fn = generate_python_kernel(plan, layout).compile()
        values = fn(prepare_data(db, plan, layout))
        assert math.isclose(values[0], oracle["agg_units"], rel_tol=1e-9)


def test_deep_tree_kernel(paper_db):
    """Snowflake: the kernel composes views through an internal node."""
    from repro.db import Database, JoinQuery, Relation, RelationSchema
    from repro.ir.types import INT, REAL

    fact = Relation.from_rows(
        RelationSchema.of("F", [("locn", INT), ("y", REAL)]),
        [(1, 2.0), (1, 3.0), (2, 5.0)],
    )
    loc = Relation.from_rows(
        RelationSchema.of("L", [("locn", INT), ("zip", INT), ("a", REAL)]),
        [(1, 10, 0.5), (2, 20, 0.25)],
    )
    census = Relation.from_rows(
        RelationSchema.of("C", [("zip", INT), ("pop", REAL)]),
        [(10, 100.0), (20, 200.0)],
    )
    db = Database.of(fact, loc, census)
    batch = covar_batch(["a", "pop"], label="y")
    tree = build_join_tree(db.schema(), ("F", "L", "C"), root="F")
    plan = build_batch_plan(db, tree, batch)
    oracle = compute_batch_materialized(db, JoinQuery(("F", "L", "C")), batch)
    for _, layout in LAYOUTS:
        fn = generate_python_kernel(plan, layout).compile()
        values = fn(prepare_data(db, plan, layout))
        for i, spec in enumerate(batch):
            assert math.isclose(values[i], oracle[spec.name], rel_tol=1e-9)
