"""The vectorized NumPy backend: lowering, layout reuse, fact alignment."""

import math

import numpy as np
import pytest

from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.backend import (
    EngineBackend,
    KernelCache,
    NumpyBackend,
    ShardedBackend,
    available_backends,
    build_batch_plan,
    get_backend,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.db import Database, Relation, RelationSchema
from repro.ir.types import INT, REAL


def _plan(db, query, batch=None):
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(
        db, tree, batch if batch is not None else covar_batch(["cityf", "price"], label="units")
    )


class TestRegistration:
    def test_numpy_is_registered(self):
        assert "numpy" in available_backends()
        assert isinstance(get_backend("numpy"), NumpyBackend)


class TestPlainBatches:
    def test_matches_engine(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        engine = EngineBackend(aggregate_mode="merged")
        want = engine.execute(engine.compile_plan(plan, LAYOUT_SORTED), int_star_db)
        backend = NumpyBackend()
        got = backend.execute(backend.compile_plan(plan, LAYOUT_SORTED), int_star_db)
        assert set(got) == set(want)
        for name in want:
            assert math.isclose(got[name], want[name], rel_tol=1e-9), name

    def test_sharded_numpy_matches_single_shot(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        single = backend.execute(kernel, int_star_db)
        for shards in (1, 2, 4):
            sharded = ShardedBackend(inner=backend, shards=shards).execute(
                kernel, int_star_db
            )
            for name in single:
                assert math.isclose(sharded[name], single[name], rel_tol=1e-9)

    def test_dangling_keys_are_dead_rows(self):
        """Fact rows joining no dimension tuple contribute nothing."""
        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("y", REAL)]),
            [(0, 2.0), (1, 3.0), (9, 100.0)],  # key 9 dangles
        )
        dim = Relation.from_rows(
            RelationSchema.of("D", [("k", INT), ("a", REAL)]),
            [(0, 1.0), (1, 10.0)],
        )
        db = Database.of(fact, dim)
        tree = build_join_tree(db.schema(), ("F", "D"))
        plan = build_batch_plan(db, tree, covar_batch(["a"], label="y"))
        backend = NumpyBackend()
        got = backend.execute(backend.compile_plan(plan, LAYOUT_SORTED), db)
        assert got["agg_count"] == 2.0
        assert got["agg_y"] == 5.0

    def test_duplicate_dimension_keys_join_as_bags(self):
        """Two dim rows per key: the join multiplies out, like the engine."""
        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("y", REAL)]), [(0, 2.0)]
        )
        dim = Relation.from_rows(
            RelationSchema.of("D", [("k", INT), ("a", REAL)]),
            [(0, 1.0), (0, 10.0)],
        )
        db = Database.of(fact, dim)
        tree = build_join_tree(db.schema(), ("F", "D"))
        plan = build_batch_plan(db, tree, covar_batch(["a"], label="y"))
        backend = NumpyBackend()
        got = backend.execute(backend.compile_plan(plan, LAYOUT_SORTED), db)
        assert got["agg_count"] == 2.0
        assert got["agg_a"] == 11.0
        assert got["agg_y"] == 4.0


class TestLayoutReuse:
    def test_layout_cached_per_database(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        l1 = backend.prepared_layout(kernel, int_star_db)
        l2 = backend.prepared_layout(kernel, int_star_db)
        assert l1 is l2

    def test_new_database_rebuilds_layout(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        l1 = backend.prepared_layout(kernel, int_star_db)
        other = Database(dict(int_star_db.relations))
        l2 = backend.prepared_layout(kernel, other)
        assert l1 is not l2


class TestFactAlignment:
    def test_fact_index_composes_through_dimensions(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query, variance_batch("units"))
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        layout = backend.prepared_layout(kernel, int_star_db)
        col = layout.fact_column("R", "cityf")
        assert len(col) == layout.root.n_rows
        # Spot-check: each fact row's cityf equals its store's cityf.
        stores = {rec["store"]: rec["cityf"] for rec in int_star_db.relation("R").data}
        for i, rec in enumerate(layout.root.records[:20]):
            assert col[i] == stores[rec["store"]]

    def test_dangling_keys_raise_for_fact_alignment(self):
        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("y", REAL)]), [(0, 1.0), (9, 2.0)]
        )
        dim = Relation.from_rows(
            RelationSchema.of("D", [("k", INT), ("a", REAL)]), [(0, 1.0)]
        )
        db = Database.of(fact, dim)
        tree = build_join_tree(db.schema(), ("F", "D"))
        plan = build_batch_plan(db, tree, variance_batch("y"))
        backend = NumpyBackend()
        layout = backend.prepared_layout(backend.compile_plan(plan, LAYOUT_SORTED), db)
        with pytest.raises(ValueError, match="dangling"):
            layout.fact_index("D")


class TestPredicateMasks:
    def test_structured_conditions_vectorize(self, int_star_db, int_star_query):
        from repro.ml.regression_tree import Condition

        plan = _plan(int_star_db, int_star_query, variance_batch("units"))
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        layout = backend.prepared_layout(kernel, int_star_db)
        cond = Condition("cityf", "<=", 3.0)
        masks = layout.predicate_masks({"R": [cond]})
        want = np.array(
            [rec["cityf"] <= 3.0 for rec in layout.nodes["R"].records]
        )
        assert np.array_equal(masks["R"], want)

    def test_opaque_callables_fall_back(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query, variance_batch("units"))
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        layout = backend.prepared_layout(kernel, int_star_db)
        masks = layout.predicate_masks({"R": [lambda rec: rec["cityf"] <= 3.0]})
        want = np.array(
            [rec["cityf"] <= 3.0 for rec in layout.nodes["R"].records]
        )
        assert np.array_equal(masks["R"], want)
