"""The vectorized NumPy backend: lowering, shared column store, layout
reuse, fact alignment, block protocol, and fused multi-plan group-bys."""

import math

import numpy as np
import pytest

from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.backend import (
    EngineBackend,
    KernelCache,
    MultiBatchPlan,
    NumpyBackend,
    ShardedBackend,
    available_backends,
    build_batch_plan,
    column_store,
    get_backend,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.db import Database, Relation, RelationSchema
from repro.ir.types import INT, REAL


def _plan(db, query, batch=None):
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(
        db, tree, batch if batch is not None else covar_batch(["cityf", "price"], label="units")
    )


class TestRegistration:
    def test_numpy_is_registered(self):
        assert "numpy" in available_backends()
        assert isinstance(get_backend("numpy"), NumpyBackend)


class TestPlainBatches:
    def test_matches_engine(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        engine = EngineBackend(aggregate_mode="merged")
        want = engine.execute(engine.compile_plan(plan, LAYOUT_SORTED), int_star_db)
        backend = NumpyBackend()
        got = backend.execute(backend.compile_plan(plan, LAYOUT_SORTED), int_star_db)
        assert set(got) == set(want)
        for name in want:
            assert math.isclose(got[name], want[name], rel_tol=1e-9), name

    def test_sharded_numpy_matches_single_shot(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        single = backend.execute(kernel, int_star_db)
        for shards in (1, 2, 4):
            sharded = ShardedBackend(inner=backend, shards=shards).execute(
                kernel, int_star_db
            )
            for name in single:
                assert math.isclose(sharded[name], single[name], rel_tol=1e-9)

    def test_dangling_keys_are_dead_rows(self):
        """Fact rows joining no dimension tuple contribute nothing."""
        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("y", REAL)]),
            [(0, 2.0), (1, 3.0), (9, 100.0)],  # key 9 dangles
        )
        dim = Relation.from_rows(
            RelationSchema.of("D", [("k", INT), ("a", REAL)]),
            [(0, 1.0), (1, 10.0)],
        )
        db = Database.of(fact, dim)
        tree = build_join_tree(db.schema(), ("F", "D"))
        plan = build_batch_plan(db, tree, covar_batch(["a"], label="y"))
        backend = NumpyBackend()
        got = backend.execute(backend.compile_plan(plan, LAYOUT_SORTED), db)
        assert got["agg_count"] == 2.0
        assert got["agg_y"] == 5.0

    def test_duplicate_dimension_keys_join_as_bags(self):
        """Two dim rows per key: the join multiplies out, like the engine."""
        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("y", REAL)]), [(0, 2.0)]
        )
        dim = Relation.from_rows(
            RelationSchema.of("D", [("k", INT), ("a", REAL)]),
            [(0, 1.0), (0, 10.0)],
        )
        db = Database.of(fact, dim)
        tree = build_join_tree(db.schema(), ("F", "D"))
        plan = build_batch_plan(db, tree, covar_batch(["a"], label="y"))
        backend = NumpyBackend()
        got = backend.execute(backend.compile_plan(plan, LAYOUT_SORTED), db)
        assert got["agg_count"] == 2.0
        assert got["agg_a"] == 11.0
        assert got["agg_y"] == 4.0


class TestLayoutReuse:
    def test_layout_cached_per_database(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        l1 = backend.prepared_layout(kernel, int_star_db)
        l2 = backend.prepared_layout(kernel, int_star_db)
        assert l1 is l2

    def test_new_database_rebuilds_layout(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        l1 = backend.prepared_layout(kernel, int_star_db)
        other = Database(dict(int_star_db.relations))
        l2 = backend.prepared_layout(kernel, other)
        assert l1 is not l2


class TestColumnStoreSharing:
    def test_layouts_share_one_store_per_database(self, int_star_db, int_star_query):
        """F feature kernels over one database share one columnar copy."""
        backend = NumpyBackend()
        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        batch = variance_batch("units")
        layouts = []
        for feature in ("price", "cityf"):
            plan = build_batch_plan(int_star_db, tree, batch, group_attr=feature)
            kernel = backend.compile_plan(plan, LAYOUT_SORTED)
            layouts.append(backend.prepared_layout(kernel, int_star_db))
        store = column_store(int_star_db)
        assert all(layout.store is store for layout in layouts)
        # The shared arrays are the same objects, not copies.
        assert layouts[0].nodes["S"].mult is layouts[1].nodes["S"].mult
        assert layouts[0].nodes["S"].records is layouts[1].nodes["S"].records

    def test_rerooted_plans_share_subtree_evaluations(
        self, int_star_db, int_star_query
    ):
        """Clean subtree results are memoized on the store by scan key."""
        backend = NumpyBackend()
        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        batch = variance_batch("units")
        store = column_store(int_star_db)
        store.eval_cache.clear()
        for feature in ("price", "cityf"):
            plan = build_batch_plan(int_star_db, tree, batch, group_attr=feature)
            kernel = backend.compile_plan(plan, LAYOUT_SORTED)
            backend.run_groupby(kernel, int_star_db)
        # Both rerooted trees contain the same leaf subtrees; re-running
        # either kernel must not add new cache entries.
        n_entries = len(store.eval_cache)
        plan = build_batch_plan(int_star_db, tree, batch, group_attr="price")
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        backend.run_groupby(kernel, int_star_db)
        assert len(store.eval_cache) == n_entries


class TestBlockProtocol:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_sharded_plain_bit_identical(self, int_star_db, int_star_query, shards):
        plan = _plan(int_star_db, int_star_query)
        inner = NumpyBackend(block_size=16)  # force many blocks
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, int_star_db)
        sharded = ShardedBackend(inner=inner, shards=shards).execute(
            kernel, int_star_db
        )
        assert sharded == single  # exact float equality, not isclose

    @pytest.mark.parametrize("shards", [1, 3, 5])
    def test_sharded_groupby_bit_identical(self, int_star_db, int_star_query, shards):
        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        plan = build_batch_plan(
            int_star_db, tree, variance_batch("units"), group_attr="price"
        )
        inner = NumpyBackend(block_size=4)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.run_groupby(kernel, int_star_db)
        sharded_backend = ShardedBackend(inner=inner, shards=shards)
        assert sharded_backend.run_groupby(kernel, int_star_db) == single

    def test_sparse_block_partials_match_dense(self, int_star_db, int_star_query):
        """Grouping by a near-unique column with tiny blocks takes the
        sparse partial path; results equal the one-block dense fold."""
        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        # ~200 distinct float unit values, blocks of 8 rows → sparse.
        plan = build_batch_plan(
            int_star_db, tree, variance_batch("units"), group_attr="units"
        )
        dense = NumpyBackend(block_size=10**9)
        sparse = NumpyBackend(block_size=8)
        want = dense.run_groupby(dense.compile_plan(plan, LAYOUT_SORTED), int_star_db)
        got = sparse.run_groupby(sparse.compile_plan(plan, LAYOUT_SORTED), int_star_db)
        assert set(got) == set(want)
        for key in want:
            assert all(
                math.isclose(a, b, rel_tol=1e-12) for a, b in zip(got[key], want[key])
            )

    def test_sharded_groupby_uses_blocks_not_subdatabases(
        self, int_star_db, int_star_query
    ):
        """The shard path must reuse the shared store via the block
        protocol — no fresh shard databases, hence no store rebuilds."""
        from repro.backend.column_store import column_store_stats

        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        plan = build_batch_plan(
            int_star_db, tree, variance_batch("units"), group_attr="price"
        )
        inner = NumpyBackend(block_size=8)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        sharded_backend = ShardedBackend(inner=inner, shards=4)
        assert sharded_backend._supports_groupby_blocks(kernel)
        inner.run_groupby(kernel, int_star_db)  # warm the store
        builds_before = column_store_stats().builds
        sharded_backend.run_groupby(kernel, int_star_db)
        assert column_store_stats().builds == builds_before


class TestFusedGroupbyMany:
    def _fused_kernel(self, db, query, features, backend, cache=None):
        tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
        batch = variance_batch("units")
        plans = [
            build_batch_plan(db, tree, batch, group_attr=f) for f in features
        ]
        mplan = MultiBatchPlan(plans)
        cache = cache if cache is not None else KernelCache()
        return cache.get_or_compile(backend, mplan, LAYOUT_SORTED)

    def test_fused_matches_per_member(self, int_star_db, int_star_query):
        backend = NumpyBackend()
        kernel = self._fused_kernel(
            int_star_db, int_star_query, ("price", "cityf", "store"), backend
        )
        fused = backend.run_groupby_many(kernel, int_star_db)
        for member, result in zip(kernel.entry, fused):
            assert result == backend.run_groupby(member, int_star_db)

    def test_scan_groups_fuse_same_owner_features(self, int_star_db, int_star_query):
        """Features owned by one relation share a single value pass."""
        backend = NumpyBackend()
        # item and store are join attributes owned by the root S, so
        # their plans share one scan; price reroots at Items.
        kernel = self._fused_kernel(
            int_star_db, int_star_query, ("item", "store", "price"), backend
        )
        groups = sorted(sorted(g) for g in kernel.meta["scan_groups"])
        assert groups == [[0, 1], [2]]

    def test_multi_kernel_is_cached(self, int_star_db, int_star_query):
        backend = NumpyBackend()
        cache = KernelCache()
        k1 = self._fused_kernel(
            int_star_db, int_star_query, ("price", "cityf"), backend, cache
        )
        k2 = self._fused_kernel(
            int_star_db, int_star_query, ("price", "cityf"), backend, cache
        )
        assert k1 is k2
        # 2 member misses + 1 bundle miss, then 1 bundle hit.
        assert cache.stats.misses == 3
        assert cache.stats.hits == 1

    def test_members_shared_with_single_plan_entries(self, int_star_db, int_star_query):
        """A feature kernel compiled alone is reused inside the bundle."""
        backend = NumpyBackend()
        cache = KernelCache()
        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        batch = variance_batch("units")
        single_plan = build_batch_plan(int_star_db, tree, batch, group_attr="price")
        single = cache.get_or_compile(backend, single_plan, LAYOUT_SORTED)
        kernel = self._fused_kernel(
            int_star_db, int_star_query, ("price", "cityf"), backend, cache
        )
        assert kernel.entry[0] is single

    def test_compute_groupby_many_rejects_reordered_bundle(
        self, int_star_db, int_star_query
    ):
        from repro.aggregates import compute_groupby_many, variance_batch as vb

        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        batch = vb("units")
        plans = [
            build_batch_plan(int_star_db, tree, batch, group_attr=f)
            for f in ("cityf", "price")
        ]
        with pytest.raises(ValueError, match="member order"):
            compute_groupby_many(
                int_star_db,
                tree,
                batch,
                ("price", "cityf"),  # reversed relative to the bundle
                multi_plan=MultiBatchPlan(plans),
            )

    def test_run_groupby_many_rejects_single_kernel(self, int_star_db, int_star_query):
        backend = NumpyBackend()
        tree = build_join_tree(
            int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
        )
        plan = build_batch_plan(
            int_star_db, tree, variance_batch("units"), group_attr="price"
        )
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        with pytest.raises(ValueError, match="not a multi-plan"):
            backend.run_groupby_many(kernel, int_star_db)

    def test_run_groupby_rejects_multi_kernel(self, int_star_db, int_star_query):
        backend = NumpyBackend()
        kernel = self._fused_kernel(
            int_star_db, int_star_query, ("price", "cityf"), backend
        )
        with pytest.raises(ValueError, match="multi-plan"):
            backend.run_groupby(kernel, int_star_db)

    @pytest.mark.parametrize("inner", ["engine", "python", "numpy"])
    def test_sharded_fused_matches_single_shot(
        self, int_star_db, int_star_query, inner
    ):
        backend = get_backend(inner)
        kernel = self._fused_kernel(
            int_star_db, int_star_query, ("price", "cityf"), backend
        )
        single = backend.run_groupby_many(kernel, int_star_db)
        sharded_backend = ShardedBackend(inner=backend, shards=3)
        got = sharded_backend.run_groupby_many(kernel, int_star_db)
        for a, b in zip(got, single):
            assert set(a) == set(b)
            for key in b:
                assert all(
                    math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)
                    for x, y in zip(a[key], b[key])
                )


class TestFactAlignment:
    def test_fact_index_composes_through_dimensions(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query, variance_batch("units"))
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        layout = backend.prepared_layout(kernel, int_star_db)
        col = layout.fact_column("R", "cityf")
        assert len(col) == layout.root.n_rows
        # Spot-check: each fact row's cityf equals its store's cityf.
        stores = {rec["store"]: rec["cityf"] for rec in int_star_db.relation("R").data}
        for i, rec in enumerate(layout.root.records[:20]):
            assert col[i] == stores[rec["store"]]

    def test_dangling_keys_raise_for_fact_alignment(self):
        fact = Relation.from_rows(
            RelationSchema.of("F", [("k", INT), ("y", REAL)]), [(0, 1.0), (9, 2.0)]
        )
        dim = Relation.from_rows(
            RelationSchema.of("D", [("k", INT), ("a", REAL)]), [(0, 1.0)]
        )
        db = Database.of(fact, dim)
        tree = build_join_tree(db.schema(), ("F", "D"))
        plan = build_batch_plan(db, tree, variance_batch("y"))
        backend = NumpyBackend()
        layout = backend.prepared_layout(backend.compile_plan(plan, LAYOUT_SORTED), db)
        with pytest.raises(ValueError, match="dangling"):
            layout.fact_index("D")


class TestPredicateMasks:
    def test_structured_conditions_vectorize(self, int_star_db, int_star_query):
        from repro.ml.regression_tree import Condition

        plan = _plan(int_star_db, int_star_query, variance_batch("units"))
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        layout = backend.prepared_layout(kernel, int_star_db)
        cond = Condition("cityf", "<=", 3.0)
        masks = layout.predicate_masks({"R": [cond]})
        want = np.array(
            [rec["cityf"] <= 3.0 for rec in layout.nodes["R"].records]
        )
        assert np.array_equal(masks["R"], want)

    def test_opaque_callables_fall_back(self, int_star_db, int_star_query):
        plan = _plan(int_star_db, int_star_query, variance_batch("units"))
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        layout = backend.prepared_layout(kernel, int_star_db)
        masks = layout.predicate_masks({"R": [lambda rec: rec["cityf"] <= 3.0]})
        want = np.array(
            [rec["cityf"] <= 3.0 for rec in layout.nodes["R"].records]
        )
        assert np.array_equal(masks["R"], want)
