"""Incremental maintenance: column-store delta extension + delta runs.

The load-bearing contract mirrors the block protocol's: a maintained
state advanced by ``run_delta`` / ``run_groupby_delta`` after a pure
root append must reproduce — with ``==`` on float dictionaries, i.e.
bit identity — the result a *from-scratch* full recompute produces on a
deep copy of the mutated database, for every backend shape (single
numpy, sharded threads, sharded worker processes) and shard count.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.backend import (
    NumpyBackend,
    ProcessKernelExecutor,
    ShardedBackend,
    build_batch_plan,
    column_store,
    column_store_stats,
    evict_column_store,
    reset_column_store_stats,
)
from repro.backend.column_store import ColumnStore
from repro.backend.layout import LAYOUT_SORTED
from repro.ml.regression_tree import Condition

FEATURES = ["cityf", "price"]
LABEL = "units"

PRICE_PREDICATES = {"I": [Condition("price", "<=", 25.0)]}


@pytest.fixture(scope="module")
def pool():
    executor = ProcessKernelExecutor(workers=2)
    yield executor
    executor.shutdown()


def plain_plan(db, query):
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(db, tree, covar_batch(FEATURES, label=LABEL))


def groupby_plan(db, query, attr="price"):
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(db, tree, variance_batch(LABEL), group_attr=attr)


def sale_rows(start, count):
    """Appended sales rows, distinct from the fixture's (units > 10)."""
    return [
        (i % 12, i % 5, 1000.0 + i * 0.5) for i in range(start, start + count)
    ]


def fresh_plain(kernel, db):
    """From-scratch recompute: a deep copy gets its own fresh store."""
    return NumpyBackend(block_size=16).execute(kernel, copy.deepcopy(db))


def fresh_groupby(kernel, db, predicates=None):
    return NumpyBackend(block_size=16).run_groupby(
        kernel, copy.deepcopy(db), predicates
    )


class TestColumnStoreDelta:
    def test_extend_keeps_old_prefix_bitwise(self, int_star_db):
        store = column_store(int_star_db)
        old_mult = store.mult("S").copy()
        old_units = store.float_col("S", "units").copy()
        old_n = len(old_mult)
        reset_column_store_stats()
        int_star_db.append_rows("S", sale_rows(0, 23))
        store.extend_relation("S")
        assert len(store.mult("S")) == old_n + 23
        assert np.array_equal(store.mult("S")[:old_n], old_mult)
        assert np.array_equal(store.float_col("S", "units")[:old_n], old_units)
        assert column_store_stats().delta_extends == 1

    def test_extend_preserves_column_coding_codes(self, int_star_db):
        store = column_store(int_star_db)
        keys, codes = store.column_coding("S", "units")
        old_keys = list(keys)
        old_codes = codes.copy()
        int_star_db.append_rows("S", sale_rows(100, 9))
        store.extend_relation("S")
        new_keys, new_codes = store.column_coding("S", "units")
        # Old codes are stable; unseen values get fresh codes at the end.
        assert new_keys[: len(old_keys)] == old_keys
        assert np.array_equal(new_codes[: len(old_codes)], old_codes)
        assert len(new_keys) > len(old_keys)

    def test_extend_drops_only_touching_eval_entries(
        self, int_star_db, int_star_query
    ):
        plan = groupby_plan(int_star_db, int_star_query)
        backend = NumpyBackend(block_size=16)
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        backend.run_groupby(kernel, int_star_db)  # populate the memo
        store = column_store(int_star_db)
        before = set(store.eval_cache)
        assert before
        int_star_db.append_rows("S", sale_rows(200, 5))
        store.extend_relation("S")
        after = set(store.eval_cache)
        assert after < before  # S-rooted entries dropped...
        for scan_key in after:  # ...and every survivor avoids S
            assert not ColumnStore._scan_key_mentions(scan_key, "S")

    def test_invalidate_relation_forces_rebuild(self, int_star_db):
        store = column_store(int_star_db)
        n_before = len(store.mult("S"))
        total_before = store.mult("S").sum()
        # A duplicate of an existing record is a multiplicity bump —
        # not a pure append — so the caller must invalidate.
        first_row = tuple(next(iter(int_star_db.relation("S").data)).values())
        delta = int_star_db.append_rows("S", [first_row])
        assert not delta.pure_append
        store.invalidate_relation("S")
        assert len(store.mult("S")) == n_before  # distinct count unchanged
        assert store.mult("S").sum() == total_before + 1  # but the bag grew

    def test_stats_lazily_recomputed(self, int_star_db):
        store = column_store(int_star_db)
        store.records("S")
        store.mult("S")
        first = store.stats()
        assert store.stats() == first  # served from the dirty-flag cache
        int_star_db.append_rows("S", sale_rows(300, 50))
        store.extend_relation("S")
        second = store.stats()
        assert second["approx_bytes"] > first["approx_bytes"]
        assert second["record_rows"] == first["record_rows"] + 50


class TestNumpyDelta:
    @pytest.mark.parametrize("append_sizes", [[1], [37], [5, 64, 300]])
    def test_plain_delta_bit_identical(
        self, int_star_db, int_star_query, append_sizes
    ):
        backend = NumpyBackend(block_size=16)
        plan = plain_plan(int_star_db, int_star_query)
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        result, state = backend.run_maintained(kernel, int_star_db)
        assert result == backend.execute(kernel, int_star_db)
        start = 0
        for size in append_sizes:
            int_star_db.append_rows("S", sale_rows(start, size))
            column_store(int_star_db).extend_relation("S")
            result, state = backend.run_delta(kernel, int_star_db, state)
            assert result == fresh_plain(kernel, int_star_db)
            start += size

    @pytest.mark.parametrize("attr", ["price", "units"])
    @pytest.mark.parametrize("append_sizes", [[1], [5, 64, 300]])
    def test_groupby_delta_bit_identical(
        self, int_star_db, int_star_query, attr, append_sizes
    ):
        """``units`` groups grow with every append (new coding codes);
        ``price`` groups are stable — both must fold bit-identically."""
        backend = NumpyBackend(block_size=16)
        plan = groupby_plan(int_star_db, int_star_query, attr)
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        result, state = backend.run_groupby_maintained(kernel, int_star_db)
        assert result == backend.run_groupby(kernel, int_star_db)
        start = 0
        for size in append_sizes:
            int_star_db.append_rows("S", sale_rows(start, size))
            column_store(int_star_db).extend_relation("S")
            result, state = backend.run_groupby_delta(kernel, int_star_db, state)
            assert result == fresh_groupby(kernel, int_star_db)
            start += size

    def test_groupby_delta_with_predicates(self, int_star_db, int_star_query):
        backend = NumpyBackend(block_size=16)
        plan = groupby_plan(int_star_db, int_star_query)
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        result, state = backend.run_groupby_maintained(
            kernel, int_star_db, PRICE_PREDICATES
        )
        int_star_db.append_rows("S", sale_rows(0, 90))
        column_store(int_star_db).extend_relation("S")
        result, state = backend.run_groupby_delta(
            kernel, int_star_db, state, PRICE_PREDICATES
        )
        assert result == fresh_groupby(kernel, int_star_db, PRICE_PREDICATES)

    def test_foreign_state_rejected(self, int_star_db, int_star_query):
        backend = NumpyBackend(block_size=16)
        plain = backend.compile_plan(
            plain_plan(int_star_db, int_star_query), LAYOUT_SORTED
        )
        other = backend.compile_plan(
            build_batch_plan(
                int_star_db,
                build_join_tree(
                    int_star_db.schema(),
                    int_star_query.relations,
                    stats=int_star_db.statistics(),
                ),
                covar_batch(["price"], label=LABEL),
            ),
            LAYOUT_SORTED,
        )
        _, state = backend.run_maintained(plain, int_star_db)
        with pytest.raises(ValueError, match="belongs to kernel"):
            backend.run_delta(other, int_star_db, state)

    def test_rebuilt_store_coding_rejected(self, int_star_db, int_star_query):
        """After the group coding grew, a state folded against a fresh
        (rebuilt, sorted) store must refuse rather than misfold."""
        backend = NumpyBackend(block_size=16)
        plan = groupby_plan(int_star_db, int_star_query, "units")
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        _, state = backend.run_groupby_maintained(kernel, int_star_db)
        int_star_db.append_rows("S", sale_rows(0, 40))
        column_store(int_star_db).extend_relation("S")
        _, state = backend.run_groupby_delta(kernel, int_star_db, state)
        evict_column_store(int_star_db)  # rebuild → canonical sorted coding
        int_star_db.append_rows("S", sale_rows(40, 10))
        with pytest.raises(ValueError, match="different group coding"):
            backend.run_groupby_delta(kernel, int_star_db, state)

    def test_shrunk_database_rejected(self, int_star_db, int_star_query):
        backend = NumpyBackend(block_size=16)
        plan = plain_plan(int_star_db, int_star_query)
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        _, state = backend.run_maintained(kernel, int_star_db)
        sales = int_star_db.relation("S")
        sales.data.pop(next(iter(sales.data)))
        evict_column_store(int_star_db)
        with pytest.raises(ValueError, match="shrank"):
            backend.run_delta(kernel, int_star_db, state)

    def test_unextended_store_rejected(self, int_star_db, int_star_query):
        """``append_rows`` without ``extend_relation``: the store's root
        snapshot is short of the live relation, and a delta computed
        from it would silently serve the pre-append result — both the
        single-shot and sharded entry points must refuse instead."""
        backend = NumpyBackend(block_size=16)
        plain = backend.compile_plan(
            plain_plan(int_star_db, int_star_query), LAYOUT_SORTED
        )
        group = backend.compile_plan(  # "units" keeps the plan rooted at S
            groupby_plan(int_star_db, int_star_query, "units"), LAYOUT_SORTED
        )
        _, vstate = backend.run_maintained(plain, int_star_db)
        _, gstate = backend.run_groupby_maintained(group, int_star_db)
        int_star_db.append_rows("S", sale_rows(0, 20))  # no extend_relation
        with pytest.raises(ValueError, match="stale"):
            backend.run_delta(plain, int_star_db, vstate)
        with pytest.raises(ValueError, match="stale"):
            backend.run_groupby_delta(group, int_star_db, gstate)
        sharded = ShardedBackend(inner=backend, shards=2)
        with pytest.raises(ValueError, match="stale"):
            sharded.run_delta(plain, int_star_db, vstate)
        with pytest.raises(ValueError, match="stale"):
            sharded.run_groupby_delta(group, int_star_db, gstate)


class TestShardedDelta:
    """Delta runs dispatch through shard threads and worker processes
    with the same bit-identity guarantee as full runs."""

    @pytest.mark.parametrize("shards", [1, 2, 5])
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_plain_delta(self, pool, int_star_db, int_star_query, shards, mode):
        inner = NumpyBackend(block_size=16)
        plan = plain_plan(int_star_db, int_star_query)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        sharded = ShardedBackend(
            inner=inner, shards=shards, mode=mode, executor=pool
        )
        result, state = sharded.run_maintained(kernel, int_star_db)
        assert result == fresh_plain(kernel, int_star_db)
        for start, size in ((0, 18), (18, 120)):
            int_star_db.append_rows("S", sale_rows(start, size))
            column_store(int_star_db).extend_relation("S")
            result, state = sharded.run_delta(kernel, int_star_db, state)
            assert result == fresh_plain(kernel, int_star_db)

    @pytest.mark.parametrize("shards", [1, 2, 5])
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_groupby_delta_growing_groups(
        self, pool, int_star_db, int_star_query, shards, mode
    ):
        """Group by ``units``: every append adds unseen group values, so
        worker processes (fresh canonical coding) exercise the
        remap-onto-extended-coding path."""
        inner = NumpyBackend(block_size=16)
        plan = groupby_plan(int_star_db, int_star_query, "units")
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        sharded = ShardedBackend(
            inner=inner, shards=shards, mode=mode, executor=pool
        )
        result, state = sharded.run_groupby_maintained(kernel, int_star_db)
        assert result == fresh_groupby(kernel, int_star_db)
        for start, size in ((0, 18), (18, 120)):
            int_star_db.append_rows("S", sale_rows(start, size))
            column_store(int_star_db).extend_relation("S")
            result, state = sharded.run_groupby_delta(kernel, int_star_db, state)
            assert result == fresh_groupby(kernel, int_star_db)

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_groupby_delta_with_predicates(
        self, pool, int_star_db, int_star_query, mode
    ):
        inner = NumpyBackend(block_size=16)
        plan = groupby_plan(int_star_db, int_star_query)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        sharded = ShardedBackend(
            inner=inner, shards=3, mode=mode, executor=pool
        )
        result, state = sharded.run_groupby_maintained(
            kernel, int_star_db, PRICE_PREDICATES
        )
        int_star_db.append_rows("S", sale_rows(0, 75))
        column_store(int_star_db).extend_relation("S")
        result, state = sharded.run_groupby_delta(
            kernel, int_star_db, state, PRICE_PREDICATES
        )
        assert result == fresh_groupby(kernel, int_star_db, PRICE_PREDICATES)
