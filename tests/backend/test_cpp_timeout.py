"""IFAQ_CPP_TIMEOUT: toolchain subprocesses fail loudly, never hang.

No real g++ needed: ``subprocess.run`` is monkeypatched to raise
``TimeoutExpired``, which is exactly what a wedged compiler or a
runaway kernel binary produces once the timeout fires.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.backend import compile_cpp
from repro.backend.compile_cpp import (
    DEFAULT_CPP_TIMEOUT,
    CompiledKernel,
    CppToolchainError,
    toolchain_timeout,
)
from repro.backend.codegen_cpp import CppKernel


def timing_out_run(captured):
    def run(cmd, **kwargs):
        captured.append(kwargs.get("timeout"))
        raise subprocess.TimeoutExpired(cmd=cmd, timeout=kwargs.get("timeout") or 0)

    return run


class TestToolchainTimeout:
    def test_default_and_env_overrides(self, monkeypatch):
        monkeypatch.delenv("IFAQ_CPP_TIMEOUT", raising=False)
        assert toolchain_timeout() == DEFAULT_CPP_TIMEOUT
        monkeypatch.setenv("IFAQ_CPP_TIMEOUT", "12.5")
        assert toolchain_timeout() == 12.5
        monkeypatch.setenv("IFAQ_CPP_TIMEOUT", "0")
        assert toolchain_timeout() is None  # non-positive disables

    def test_compile_timeout_raises_toolchain_error(self, tmp_path, monkeypatch):
        captured: list = []
        monkeypatch.setenv("IFAQ_CPP_TIMEOUT", "7")
        monkeypatch.setattr(compile_cpp, "gxx_available", lambda: True)
        monkeypatch.setattr(subprocess, "run", timing_out_run(captured))
        kernel = CppKernel(source="int main() { for(;;); }")
        with pytest.raises(CppToolchainError, match="IFAQ_CPP_TIMEOUT"):
            compile_cpp.compile_kernel(kernel, work_dir=tmp_path)
        assert captured == [7.0]  # the timeout reached subprocess.run

    def test_binary_run_timeout_raises_toolchain_error(self, tmp_path, monkeypatch):
        captured: list = []
        monkeypatch.setenv("IFAQ_CPP_TIMEOUT", "3")
        monkeypatch.setattr(subprocess, "run", timing_out_run(captured))
        compiled = CompiledKernel(
            binary_path=Path("/nonexistent/kernel"), compile_seconds=0.0, source=""
        )
        with pytest.raises(CppToolchainError, match="IFAQ_CPP_TIMEOUT"):
            compiled.run_lines(tmp_path / "data.txt")
        assert captured == [3.0]
