"""Group-by batches as first-class plannable kernels.

The same group-by plan runs through every backend — engine, generated
Python, C++, numpy, sharded — and each agrees with the interpreted
:func:`compute_groupby_tree` oracle.
"""

import math

import pytest

from repro.aggregates import (
    COUNT,
    AggregateBatch,
    AggregateSpec,
    build_join_tree,
    compute_groupby,
    compute_groupby_tree,
    variance_batch,
)
from repro.backend import (
    KernelCache,
    ShardedBackend,
    build_batch_plan,
    get_backend,
)
from repro.backend.layout import LAYOUT_ARRAYS, LAYOUT_SORTED


def _tree(db, query):
    return build_join_tree(db.schema(), query.relations, stats=db.statistics())


def _batch():
    return AggregateBatch.of([COUNT, AggregateSpec.of("units")])


def assert_groups_close(got, want):
    assert set(got) == set(want)
    for key in want:
        assert all(
            math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
            for a, b in zip(got[key], want[key])
        ), key


class TestGroupByPlan:
    def test_reroots_at_group_owner(self, int_star_db, int_star_query):
        tree = _tree(int_star_db, int_star_query)
        plan = build_batch_plan(int_star_db, tree, _batch(), group_attr="price")
        assert plan.is_groupby
        assert plan.root.relation == "I"  # price lives in Items

    def test_group_column_in_root_columns(self, int_star_db, int_star_query):
        tree = _tree(int_star_db, int_star_query)
        plan = build_batch_plan(int_star_db, tree, _batch(), group_attr="price")
        assert "price" in plan.root.columns

    def test_fingerprint_distinguishes_group_attr(self, int_star_db, int_star_query):
        tree = _tree(int_star_db, int_star_query)
        plain = build_batch_plan(int_star_db, tree, _batch())
        by_units = build_batch_plan(int_star_db, tree, _batch(), group_attr="units")
        by_cityf = build_batch_plan(int_star_db, tree, _batch(), group_attr="cityf")
        fps = {p.fingerprint(LAYOUT_SORTED, "x") for p in (plain, by_units, by_cityf)}
        assert len(fps) == 3

    def test_fingerprint_stable_across_nodes(self, int_star_db, int_star_query):
        """The tree learner's per-node plans for one feature collide —
        that is what turns per-node group-bys into cache hits."""
        tree = _tree(int_star_db, int_star_query)
        p1 = build_batch_plan(int_star_db, tree, _batch(), group_attr="price")
        p2 = build_batch_plan(int_star_db, tree, _batch(), group_attr="price")
        assert p1.fingerprint(LAYOUT_SORTED, "x") == p2.fingerprint(LAYOUT_SORTED, "x")


class TestBackendsAgree:
    @pytest.mark.parametrize("backend_name", ["engine", "python", "numpy"])
    @pytest.mark.parametrize("group_attr", ["store", "price", "cityf"])
    def test_matches_interpreted_oracle(
        self, int_star_db, int_star_query, backend_name, group_attr
    ):
        tree = _tree(int_star_db, int_star_query)
        want = compute_groupby_tree(int_star_db, tree, _batch(), group_attr)
        got = compute_groupby(
            int_star_db,
            tree,
            _batch(),
            group_attr,
            backend=backend_name,
            kernel_cache=KernelCache(),
        )
        assert_groups_close(got, want)

    @pytest.mark.cpp
    @pytest.mark.parametrize("group_attr", ["store", "price"])
    def test_cpp_matches_oracle(self, int_star_db, int_star_query, group_attr):
        tree = _tree(int_star_db, int_star_query)
        want = compute_groupby_tree(int_star_db, tree, _batch(), group_attr)
        got = compute_groupby(
            int_star_db,
            tree,
            _batch(),
            group_attr,
            backend="cpp",
            kernel_cache=KernelCache(),
        )
        assert_groups_close(got, want)

    @pytest.mark.parametrize("backend_name", ["engine", "python", "numpy"])
    def test_predicates_push_into_scans(
        self, int_star_db, int_star_query, backend_name
    ):
        tree = _tree(int_star_db, int_star_query)
        predicates = {"R": [lambda rec: rec["cityf"] < 3.0]}
        want = compute_groupby_tree(int_star_db, tree, _batch(), "price", predicates)
        got = compute_groupby(
            int_star_db,
            tree,
            _batch(),
            "price",
            predicates,
            backend=backend_name,
            kernel_cache=KernelCache(),
        )
        assert_groups_close(got, want)

    @pytest.mark.parametrize("inner", ["engine", "python", "numpy"])
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_sharded_merges_under_ring_monoid(
        self, int_star_db, int_star_query, inner, shards
    ):
        tree = _tree(int_star_db, int_star_query)
        plan = build_batch_plan(int_star_db, tree, _batch(), group_attr="price")
        backend = ShardedBackend(inner=inner, shards=shards)
        kernel = KernelCache().get_or_compile(backend, plan, LAYOUT_SORTED)
        got = backend.run_groupby(kernel, int_star_db)
        want = compute_groupby_tree(int_star_db, tree, _batch(), "price")
        assert_groups_close(got, want)


class TestKernelReuse:
    def test_repeated_groupbys_hit_cache(self, int_star_db, int_star_query):
        tree = _tree(int_star_db, int_star_query)
        cache = KernelCache()
        for _ in range(4):
            compute_groupby(
                int_star_db, tree, _batch(), "price", kernel_cache=cache
            )
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3

    def test_predicates_do_not_fragment_the_cache(self, int_star_db, int_star_query):
        tree = _tree(int_star_db, int_star_query)
        cache = KernelCache()
        for bound in (1.0, 2.0, 3.0):
            compute_groupby(
                int_star_db,
                tree,
                _batch(),
                "price",
                {"R": [lambda rec, b=bound: rec["cityf"] < b]},
                backend="numpy",
                kernel_cache=cache,
            )
        assert cache.stats.misses == 1 and cache.stats.hits == 2


class TestGuards:
    def test_execute_rejects_groupby_kernel(self, int_star_db, int_star_query):
        tree = _tree(int_star_db, int_star_query)
        plan = build_batch_plan(int_star_db, tree, _batch(), group_attr="price")
        for name in ("engine", "python", "numpy"):
            backend = get_backend(name)
            kernel = backend.compile_plan(plan, LAYOUT_ARRAYS)
            with pytest.raises(ValueError, match="group-by"):
                backend.execute(kernel, int_star_db)

    def test_run_groupby_rejects_plain_kernel(self, int_star_db, int_star_query):
        tree = _tree(int_star_db, int_star_query)
        plan = build_batch_plan(int_star_db, tree, _batch())
        for name in ("engine", "python", "numpy"):
            backend = get_backend(name)
            kernel = backend.compile_plan(plan, LAYOUT_ARRAYS)
            with pytest.raises(ValueError, match="not a group-by"):
                backend.run_groupby(kernel, int_star_db)

    def test_backends_without_groupby_raise(self, int_star_db, int_star_query):
        from repro.backend.base import ExecutionBackend

        class Plain(ExecutionBackend):
            name = "plain"

            def compile_plan(self, plan, layout):
                raise NotImplementedError

            def execute(self, kernel, db):
                raise NotImplementedError

        tree = _tree(int_star_db, int_star_query)
        plan = build_batch_plan(int_star_db, tree, _batch(), group_attr="price")
        kernel = get_backend("numpy").compile_plan(plan, LAYOUT_ARRAYS)
        with pytest.raises(NotImplementedError, match="plain"):
            Plain().run_groupby(kernel, int_star_db)
