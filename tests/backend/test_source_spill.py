"""The worker-bootstrap contract: spilled kernel sources round-trip.

A kernel compiled in one process must be loadable and executable in a
*fresh* interpreter that shares nothing but ``IFAQ_KERNEL_CACHE_DIR`` —
that file is the only thing the process pool's workers need to warm-
start, so this pins the cross-process channel at the unit level.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.aggregates import build_join_tree, covar_batch
from repro.backend import (
    PythonKernelBackend,
    build_batch_plan,
    load_kernel_source,
    store_kernel_source,
)
from repro.backend.layout import LAYOUT_SORTED

#: Rebuilds the deterministic star database (mirrors the ``int_star_db``
#: fixture: same seed, same shapes), compiles the same plan in a fresh
#: interpreter, and reports whether the spill was reused.
CHILD_SCRIPT = """
import json, random, sys

from repro.aggregates import build_join_tree, covar_batch
from repro.backend import PythonKernelBackend, build_batch_plan
from repro.backend.layout import LAYOUT_SORTED
from repro.db import Database, Relation, RelationSchema
from repro.ir.types import INT, REAL

rng = random.Random(17)
n_items, n_stores, n_sales = 12, 5, 200
sales = Relation.from_rows(
    RelationSchema.of("S", [("item", INT), ("store", INT), ("units", REAL)]),
    [
        (rng.randrange(n_items), rng.randrange(n_stores), round(rng.uniform(0, 10), 2))
        for _ in range(n_sales)
    ],
)
stores = Relation.from_rows(
    RelationSchema.of("R", [("store", INT), ("cityf", REAL)]),
    [(s, round(rng.uniform(1, 5), 2)) for s in range(n_stores)],
)
items = Relation.from_rows(
    RelationSchema.of("I", [("item", INT), ("price", REAL)]),
    [(i, round(rng.uniform(5, 50), 2)) for i in range(n_items)],
)
db = Database.of(sales, stores, items)
tree = build_join_tree(db.schema(), ("S", "R", "I"), stats=db.statistics())
plan = build_batch_plan(db, tree, covar_batch(["cityf", "price"], label="units"))
backend = PythonKernelBackend()
kernel = backend.compile_plan(plan, LAYOUT_SORTED)
print(json.dumps({
    "source_cached": kernel.meta["source_cached"],
    "fingerprint": kernel.fingerprint,
    "result": backend.execute(kernel, db),
}))
"""


def run_child(kernel_dir: Path) -> dict:
    env = dict(os.environ)
    env["IFAQ_KERNEL_CACHE_DIR"] = str(kernel_dir)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_fresh_process_warm_loads_spilled_kernel(
    tmp_path, monkeypatch, int_star_db, int_star_query
):
    monkeypatch.setenv("IFAQ_KERNEL_CACHE_DIR", str(tmp_path))
    tree = build_join_tree(
        int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
    )
    plan = build_batch_plan(
        int_star_db, tree, covar_batch(["cityf", "price"], label="units")
    )
    backend = PythonKernelBackend()
    kernel = backend.compile_plan(plan, LAYOUT_SORTED)
    assert kernel.meta["source_cached"] is False  # cold: we generated it
    assert load_kernel_source(kernel.fingerprint) == kernel.source

    child = run_child(tmp_path)
    # The fresh interpreter derived the same fingerprint, found our
    # spill, exec'd it instead of regenerating...
    assert child["fingerprint"] == kernel.fingerprint
    assert child["source_cached"] is True
    # ...and computed the identical result with it.
    assert child["result"] == backend.execute(kernel, int_star_db)


def test_cold_child_regenerates_without_a_spill(tmp_path):
    child = run_child(tmp_path / "empty")
    assert child["source_cached"] is False
    assert child["result"]  # still answers, just paid the codegen


def test_store_then_load_round_trips_bytes(tmp_path, monkeypatch):
    monkeypatch.setenv("IFAQ_KERNEL_CACHE_DIR", str(tmp_path))
    source = "def f():\n    return 42\n"
    path = store_kernel_source("deadbeef", source)
    assert path.parent == tmp_path
    assert load_kernel_source("deadbeef") == source
    assert load_kernel_source("cafebabe") is None


def test_corrupt_spill_falls_back_to_regeneration(
    tmp_path, monkeypatch, int_star_db, int_star_query
):
    monkeypatch.setenv("IFAQ_KERNEL_CACHE_DIR", str(tmp_path))
    tree = build_join_tree(
        int_star_db.schema(), int_star_query.relations, stats=int_star_db.statistics()
    )
    plan = build_batch_plan(
        int_star_db, tree, covar_batch(["cityf", "price"], label="units")
    )
    backend = PythonKernelBackend()
    fingerprint = plan.fingerprint(LAYOUT_SORTED, backend.kernel_key)
    store_kernel_source(fingerprint, "this is not python (")
    kernel = backend.compile_plan(plan, LAYOUT_SORTED)
    assert kernel.meta["source_cached"] is False  # corrupt spill rejected
    assert kernel.entry is not None
    assert backend.execute(kernel, int_star_db)
