"""ProcessKernelExecutor + process-mode ShardedBackend.

The load-bearing property is the bit-identity contract: block layout
depends only on the data and the block size — never on the shard or
worker count — and partials merge in canonical block order, so every
``(shards, workers)`` combination must reproduce the single-shot result
with ``==`` on float dictionaries (bit identity, not ``approx``).
"""

from __future__ import annotations

import threading

import pytest

from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.backend import (
    KernelCache,
    NumpyBackend,
    ProcessKernelExecutor,
    PythonKernelBackend,
    ShardedBackend,
    TaskNotPicklable,
    WorkerError,
    build_batch_plan,
    default_process_workers,
    executor_mode_from_env,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.ml.regression_tree import Condition

FEATURES = ["cityf", "price"]
LABEL = "units"


def plain_plan(db, query):
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(db, tree, covar_batch(FEATURES, label=LABEL))


def groupby_plan(db, query, attr="price"):
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(db, tree, variance_batch(LABEL), group_attr=attr)


PRICE_PREDICATES = {"I": [Condition("price", "<=", 25.0)]}


class ExplodingBackend(NumpyBackend):
    """Raises inside the worker process — tests error propagation."""

    def run_groupby(self, kernel, db, predicates=None):
        raise ValueError("exploded in worker")


class LockedBackend(NumpyBackend):
    """Cannot cross the process boundary — tests the pickle gate."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._lock = threading.Lock()


@pytest.fixture(scope="module")
def pool():
    executor = ProcessKernelExecutor(workers=2)
    yield executor
    executor.shutdown()


class TestRunKernel:
    """Whole-run tasks: the serving layer's unit of work."""

    def test_plain_matches_in_process(self, pool, int_star_db, int_star_query):
        plan = plain_plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        want = backend.execute(kernel, int_star_db)
        got, seconds = pool.run_kernel(
            backend, int_star_db, "plain", plan, LAYOUT_SORTED
        ).result()
        assert got == want
        assert seconds >= 0

    @pytest.mark.parametrize("predicates", [None, PRICE_PREDICATES])
    def test_groupby_matches_in_process(
        self, pool, int_star_db, int_star_query, predicates
    ):
        plan = groupby_plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        want = backend.run_groupby(kernel, int_star_db, predicates)
        got, _ = pool.run_kernel(
            backend,
            int_star_db,
            "groupby",
            plan,
            LAYOUT_SORTED,
            predicates=predicates,
            pred_key=("I", "price") if predicates else (),
        ).result()
        assert got == want

    def test_token_registration_is_stable(self, pool, int_star_db):
        assert pool.db_token(int_star_db) == pool.db_token(int_star_db)

    def test_eviction_then_rerun_reregisters(
        self, pool, int_star_db, int_star_query
    ):
        plan = plain_plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        want = backend.execute(kernel, int_star_db)
        first, _ = pool.run_kernel(
            backend, int_star_db, "plain", plan, LAYOUT_SORTED
        ).result()
        pool.evict_database(int_star_db)
        second, _ = pool.run_kernel(
            backend, int_star_db, "plain", plan, LAYOUT_SORTED
        ).result()
        assert first == want == second


class TestShardedProcessBitIdentity:
    """Every (shards, workers) combination reproduces single-shot."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_python_plain(self, pool, int_star_db, int_star_query, shards):
        plan = plain_plan(int_star_db, int_star_query)
        inner = PythonKernelBackend(block_size=16)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, int_star_db)
        sharded = ShardedBackend(
            inner=inner, shards=shards, mode="process", executor=pool
        )
        assert sharded.execute(kernel, int_star_db) == single

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_numpy_plain(self, pool, int_star_db, int_star_query, shards):
        plan = plain_plan(int_star_db, int_star_query)
        inner = NumpyBackend(block_size=16)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.execute(kernel, int_star_db)
        sharded = ShardedBackend(
            inner=inner, shards=shards, mode="process", executor=pool
        )
        assert sharded.execute(kernel, int_star_db) == single

    @pytest.mark.parametrize("shards", [1, 2, 5])
    @pytest.mark.parametrize("predicates", [None, PRICE_PREDICATES])
    def test_numpy_groupby(
        self, pool, int_star_db, int_star_query, shards, predicates
    ):
        plan = groupby_plan(int_star_db, int_star_query)
        inner = NumpyBackend(block_size=16)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.run_groupby(kernel, int_star_db, predicates)
        sharded = ShardedBackend(
            inner=inner, shards=shards, mode="process", executor=pool
        )
        assert sharded.run_groupby(kernel, int_star_db, predicates) == single

    def test_worker_count_does_not_change_results(
        self, int_star_db, int_star_query
    ):
        plan = groupby_plan(int_star_db, int_star_query)
        inner = NumpyBackend(block_size=16)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        single = inner.run_groupby(kernel, int_star_db)
        for workers in (1, 3):
            one = ProcessKernelExecutor(workers=workers)
            try:
                sharded = ShardedBackend(
                    inner=inner, shards=4, mode="process", executor=one
                )
                assert sharded.run_groupby(kernel, int_star_db) == single
            finally:
                one.shutdown()

    def test_records_shard_timings(self, pool, int_star_db, int_star_query):
        plan = plain_plan(int_star_db, int_star_query)
        inner = PythonKernelBackend(block_size=16)
        sharded = ShardedBackend(
            inner=inner, shards=3, mode="process", executor=pool
        )
        kernel = sharded.compile_plan(plan, LAYOUT_SORTED)
        sharded.execute(kernel, int_star_db)
        assert len(sharded.last_shard_seconds) == 3
        assert all(s >= 0 for s in sharded.last_shard_seconds)


class TestFallbackAndErrors:
    def test_opaque_predicate_falls_back_to_threads(
        self, pool, int_star_db, int_star_query
    ):
        plan = groupby_plan(int_star_db, int_star_query)
        inner = NumpyBackend(block_size=16)
        kernel = inner.compile_plan(plan, LAYOUT_SORTED)
        predicates = {"I": [lambda row: row["price"] <= 25.0]}
        single = inner.run_groupby(kernel, int_star_db, predicates)
        sharded = ShardedBackend(
            inner=inner, shards=3, mode="process", executor=pool
        )
        # Lambdas don't pickle; the sharded backend silently degrades
        # to its thread path and still answers bit-identically.
        assert sharded.run_groupby(kernel, int_star_db, predicates) == single

    def test_unpicklable_backend_raises_task_not_picklable(
        self, pool, int_star_db, int_star_query
    ):
        plan = plain_plan(int_star_db, int_star_query)
        backend = LockedBackend()
        with pytest.raises(TaskNotPicklable):
            pool.run_kernel(
                backend, int_star_db, "plain", plan, LAYOUT_SORTED
            ).result()

    def test_worker_exception_keeps_type_and_carries_traceback(
        self, pool, int_star_db, int_star_query
    ):
        plan = groupby_plan(int_star_db, int_star_query)
        with pytest.raises(ValueError, match="exploded in worker") as info:
            pool.run_kernel(
                ExplodingBackend(), int_star_db, "groupby", plan, LAYOUT_SORTED
            ).result()
        assert isinstance(info.value.__cause__, WorkerError)
        assert "exploded in worker" in str(info.value.__cause__)

    def test_pool_survives_worker_death(self, int_star_db, int_star_query):
        plan = plain_plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        want = backend.execute(kernel, int_star_db)
        one = ProcessKernelExecutor(workers=1)
        try:
            one._handles[0].process.kill()
            one._handles[0].process.join(timeout=5)
            with pytest.raises(WorkerError):
                one.run_kernel(
                    backend, int_star_db, "plain", plan, LAYOUT_SORTED
                ).result()
            # The dead slot was respawned in place: the pool still works.
            got, _ = one.run_kernel(
                backend, int_star_db, "plain", plan, LAYOUT_SORTED
            ).result()
            assert got == want
        finally:
            one.shutdown()

    def test_submit_is_not_a_generic_executor(self, pool):
        with pytest.raises(NotImplementedError):
            pool.submit(sum, [1, 2])

    def test_bad_kind_rejected(self, pool, int_star_db, int_star_query):
        plan = plain_plan(int_star_db, int_star_query)
        with pytest.raises(ValueError, match="kind"):
            pool.run_kernel(
                NumpyBackend(), int_star_db, "nonsense", plan, LAYOUT_SORTED
            )


class TestSpilledSourceBootstrap:
    def test_workers_bootstrap_from_spilled_sources(
        self, tmp_path, monkeypatch, int_star_db, int_star_query
    ):
        monkeypatch.setenv("IFAQ_KERNEL_CACHE_DIR", str(tmp_path))
        plan = plain_plan(int_star_db, int_star_query)
        backend = PythonKernelBackend(block_size=16)
        cache = KernelCache()
        kernel = cache.get_or_compile(backend, plan, LAYOUT_SORTED)
        want = backend.execute(kernel, int_star_db)
        spilled = list(tmp_path.glob("kernel_*.py"))
        assert spilled, "parent compile should spill the kernel source"
        # A pool created *now* forks workers that warm-load that spill.
        one = ProcessKernelExecutor(workers=1)
        try:
            got, _ = one.run_kernel(
                backend, int_star_db, "plain", plan, LAYOUT_SORTED
            ).result()
            assert got == want
        finally:
            one.shutdown()


class TestEnvConfiguration:
    def test_executor_mode_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("IFAQ_EXECUTOR", raising=False)
        assert executor_mode_from_env() == "thread"

    @pytest.mark.parametrize(
        "raw,expect",
        [("thread", "thread"), ("threads", "thread"),
         ("process", "process"), ("Processes", "process")],
    )
    def test_executor_mode_normalization(self, monkeypatch, raw, expect):
        monkeypatch.setenv("IFAQ_EXECUTOR", raw)
        assert executor_mode_from_env() == expect

    def test_executor_mode_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("IFAQ_EXECUTOR", "gpu")
        with pytest.raises(ValueError):
            executor_mode_from_env()

    def test_worker_count_from_env(self, monkeypatch):
        monkeypatch.setenv("IFAQ_PROC_WORKERS", "3")
        assert default_process_workers() == 3
        monkeypatch.setenv("IFAQ_PROC_WORKERS", "0")
        with pytest.raises(ValueError):
            default_process_workers()

    def test_sharded_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("IFAQ_EXECUTOR", "process")
        backend = ShardedBackend(inner=NumpyBackend(), shards=2)
        assert backend.mode == "process"
        assert ":process]" in backend.name

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ShardedBackend(inner=NumpyBackend(), shards=2, mode="gpu")


class SleepingBackend(NumpyBackend):
    """Wedges inside the worker — tests shutdown escalation."""

    def run_groupby(self, kernel, db, predicates=None):
        import time

        time.sleep(60)
        return super().run_groupby(kernel, db, predicates)


class TestShutdownEscalation:
    def test_hung_worker_is_reclaimed(self, int_star_db, int_star_query):
        """close() must reclaim workers even when one is stuck mid-task.

        The worker never reads the cooperative shutdown message (it is
        wedged in the kernel run), so shutdown escalates: grace join →
        terminate → kill.  The old order (proxy pool first) deadlocked
        here — the proxy thread sat in conn.recv() forever.
        """
        import time

        plan = groupby_plan(int_star_db, int_star_query)
        one = ProcessKernelExecutor(workers=1, shutdown_grace=0.2)
        future = one.run_kernel(
            SleepingBackend(), int_star_db, "groupby", plan, LAYOUT_SORTED
        )
        deadline = time.monotonic() + 10
        while not one._free.empty() and time.monotonic() < deadline:
            time.sleep(0.01)  # wait until the proxy dispatched the task
        process = one._handles[0].process
        started = time.monotonic()
        one.shutdown(wait=True)
        assert time.monotonic() - started < 10
        assert not process.is_alive()
        with pytest.raises(WorkerError):
            future.result(timeout=10)

    def test_kill_worker_is_public_fault_surface(self, int_star_db, int_star_query):
        plan = plain_plan(int_star_db, int_star_query)
        backend = NumpyBackend()
        kernel = backend.compile_plan(plan, LAYOUT_SORTED)
        want = backend.execute(kernel, int_star_db)
        one = ProcessKernelExecutor(workers=1)
        try:
            one.kill_worker(0)
            with pytest.raises(WorkerError):
                one.run_kernel(
                    backend, int_star_db, "plain", plan, LAYOUT_SORTED
                ).result()
            got, _ = one.run_kernel(
                backend, int_star_db, "plain", plan, LAYOUT_SORTED
            ).result()
            assert got == want  # respawned in place, bit-identical
        finally:
            one.shutdown()

    def test_shutdown_grace_from_env(self, monkeypatch):
        from repro.backend.process_pool import default_shutdown_grace

        monkeypatch.setenv("IFAQ_SHUTDOWN_GRACE", "1.5")
        assert default_shutdown_grace() == 1.5
        monkeypatch.setenv("IFAQ_SHUTDOWN_GRACE", "-3")
        assert default_shutdown_grace() == 0.0
        monkeypatch.delenv("IFAQ_SHUTDOWN_GRACE")
        assert default_shutdown_grace() == 5.0
