"""Generated C++ kernels (requires g++; skipped otherwise)."""

import math
import tempfile
from pathlib import Path

import pytest

from repro.aggregates import build_join_tree, compute_batch_materialized, covar_batch
from repro.backend.codegen_cpp import (
    CppBackendError,
    generate_cpp_kernel,
    write_binary_data,
)
from repro.backend.compile_cpp import compile_kernel
from repro.backend.layout import LAYOUT_ARRAYS, LAYOUT_SCALARIZED, LAYOUT_SORTED
from repro.backend.plan import build_batch_plan

pytestmark = pytest.mark.cpp

CPP_LAYOUTS = [
    ("hash", LAYOUT_SCALARIZED),
    ("arrays", LAYOUT_ARRAYS),
    ("sorted", LAYOUT_SORTED),
]


@pytest.fixture(scope="module")
def setup():
    import random

    from repro.db import Database, JoinQuery, Relation, RelationSchema
    from repro.ir.types import INT, REAL

    rng = random.Random(5)
    sales = Relation.from_rows(
        RelationSchema.of("S", [("item", INT), ("store", INT), ("units", REAL)]),
        [(rng.randrange(15), rng.randrange(6), round(rng.uniform(0, 9), 2)) for _ in range(400)],
    )
    stores = Relation.from_rows(
        RelationSchema.of("R", [("store", INT), ("cityf", REAL)]),
        [(s, round(rng.uniform(1, 4), 2)) for s in range(6)],
    )
    items = Relation.from_rows(
        RelationSchema.of("I", [("item", INT), ("price", REAL)]),
        [(i, round(rng.uniform(2, 30), 2)) for i in range(15)],
    )
    db = Database.of(sales, stores, items)
    query = JoinQuery(("S", "R", "I"))
    batch = covar_batch(["cityf", "price"], label="units")
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    plan = build_batch_plan(db, tree, batch)
    oracle = compute_batch_materialized(db, query, batch)
    return db, batch, plan, oracle


@pytest.mark.parametrize("name,layout", CPP_LAYOUTS)
def test_cpp_kernel_matches_oracle(setup, name, layout):
    db, batch, plan, oracle = setup
    compiled = compile_kernel(generate_cpp_kernel(plan, layout))
    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "data.bin"
        write_binary_data(db, plan, data, layout)
        _, values = compiled.run(data)
    for i, spec in enumerate(batch):
        assert math.isclose(values[i], oracle[spec.name], rel_tol=1e-9), (name, spec.name)


def test_compile_is_cached(setup):
    _, _, plan, _ = setup
    k = generate_cpp_kernel(plan, LAYOUT_ARRAYS)
    first = compile_kernel(k)
    second = compile_kernel(k)
    assert second.compile_seconds == 0.0
    assert first.binary_path == second.binary_path


def test_reported_time_is_positive(setup):
    db, _, plan, _ = setup
    compiled = compile_kernel(generate_cpp_kernel(plan, LAYOUT_SORTED, repetitions=2))
    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "data.bin"
        write_binary_data(db, plan, data, LAYOUT_SORTED)
        seconds, _ = compiled.run(data)
    assert seconds > 0


def test_three_attribute_key_rejected(setup):
    from repro.backend.plan import NodePlan, BatchPlan
    from repro.aggregates import AggregateBatch, AggregateSpec

    node = NodePlan(relation="X", parent_key=("a", "b", "c"), columns=("a", "b", "c"))
    plan = BatchPlan(root=node, batch=AggregateBatch.of([AggregateSpec.of()]))
    with pytest.raises(CppBackendError):
        generate_cpp_kernel(plan, LAYOUT_ARRAYS)


def test_composite_key_star(paper_db):
    """(date, store) composite join key packs into one int64."""
    import random

    from repro.db import Database, JoinQuery, Relation, RelationSchema
    from repro.ir.types import INT, REAL

    rng = random.Random(11)
    n_dates, n_stores = 8, 4
    sales = Relation.from_rows(
        RelationSchema.of("Sa", [("date", INT), ("store", INT), ("units", REAL)]),
        [(rng.randrange(n_dates), rng.randrange(n_stores), 1.0 + rng.random()) for _ in range(200)],
    )
    txn = Relation.from_rows(
        RelationSchema.of("Tx", [("date", INT), ("store", INT), ("txn", REAL)]),
        [(d, s, float(100 + d * s)) for d in range(n_dates) for s in range(n_stores)],
    )
    db = Database.of(sales, txn)
    query = JoinQuery(("Sa", "Tx"))
    batch = covar_batch(["txn"], label="units")
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    plan = build_batch_plan(db, tree, batch)
    oracle = compute_batch_materialized(db, query, batch)
    for _, layout in CPP_LAYOUTS:
        compiled = compile_kernel(generate_cpp_kernel(plan, layout))
        with tempfile.TemporaryDirectory() as tmp:
            data = Path(tmp) / "d.bin"
            write_binary_data(db, plan, data, layout)
            _, values = compiled.run(data)
        for i, spec in enumerate(batch):
            assert math.isclose(values[i], oracle[spec.name], rel_tol=1e-9)


def test_groupby_uses_vector_accumulator(setup):
    """The group scan accumulates into per-group vector buffers with a
    sorted-run shortcut — no std::map in the generated program."""
    from repro.aggregates import variance_batch

    db, _, _, _ = setup
    tree = build_join_tree(db.schema(), ("S", "R", "I"), stats=db.statistics())
    plan = build_batch_plan(db, tree, variance_batch("units"), group_attr="price")
    source = generate_cpp_kernel(plan, LAYOUT_SORTED).source
    assert "std::map" not in source
    assert "struct Groups" in source
    assert "groups.slot(" in source
    assert "last_slot" in source  # the run shortcut


def test_groupby_output_sorted_and_matches_engine(setup):
    """Output lines stay sorted by group key (the std::map contract)."""
    from repro.aggregates import compute_groupby_tree, variance_batch
    from repro.backend.executors import CppKernelBackend

    db, _, _, _ = setup
    tree = build_join_tree(db.schema(), ("S", "R", "I"), stats=db.statistics())
    plan = build_batch_plan(db, tree, variance_batch("units"), group_attr="price")
    backend = CppKernelBackend()
    kernel = backend.compile_plan(plan, LAYOUT_SORTED)
    groups = backend.run_groupby(kernel, db)
    keys = list(groups)
    assert keys == sorted(keys)
    want = compute_groupby_tree(db, tree, variance_batch("units"), "price")
    assert set(groups) == set(want)
    for key in want:
        assert all(
            math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
            for a, b in zip(groups[key], want[key])
        )
