"""Kernel cache: fingerprints, hit/miss accounting, compile-once identity,
single-flight concurrent compiles, cross-process source persistence."""

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.aggregates import build_join_tree, covar_batch
from repro.backend import (
    EngineBackend,
    KernelCache,
    PythonKernelBackend,
    build_batch_plan,
    clear_kernel_sources,
    kernel_source_dir,
    load_kernel_source,
)
from repro.backend.layout import LAYOUT_ARRAYS, LAYOUT_SORTED
from repro.compiler import IFAQCompiler
from repro.data import star_schema
from repro.ml.programs import linear_regression_bgd


def make_plan(db, query):
    batch = covar_batch(["cityf", "price"], label="units")
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(db, tree, batch)


class TestFingerprint:
    def test_stable_across_rebuilds(self, int_star_db, int_star_query):
        p1 = make_plan(int_star_db, int_star_query)
        p2 = make_plan(int_star_db, int_star_query)
        assert p1.fingerprint(LAYOUT_SORTED, "python") == p2.fingerprint(
            LAYOUT_SORTED, "python"
        )

    def test_distinguishes_layout_and_backend(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        fps = {
            plan.fingerprint(LAYOUT_SORTED, "python"),
            plan.fingerprint(LAYOUT_ARRAYS, "python"),
            plan.fingerprint(LAYOUT_SORTED, "cpp"),
            plan.fingerprint(LAYOUT_SORTED, "engine:trie"),
        }
        assert len(fps) == 4


class CountingBackend(PythonKernelBackend):
    """A Python backend that counts compile_plan calls."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.compile_calls = 0

    def compile_plan(self, plan, layout):
        self.compile_calls += 1
        return super().compile_plan(plan, layout)


class TestKernelCache:
    def test_hit_miss_accounting(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        cache = KernelCache()
        backend = CountingBackend()
        k1 = cache.get_or_compile(backend, plan, LAYOUT_SORTED)
        k2 = cache.get_or_compile(backend, plan, LAYOUT_SORTED)
        assert k1 is k2
        assert backend.compile_calls == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_different_layouts_are_different_entries(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        cache = KernelCache()
        backend = CountingBackend()
        cache.get_or_compile(backend, plan, LAYOUT_SORTED)
        cache.get_or_compile(backend, plan, LAYOUT_ARRAYS)
        assert backend.compile_calls == 2
        assert len(cache) == 2

    def test_capacity_eviction(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        cache = KernelCache(capacity=1)
        backend = CountingBackend()
        cache.get_or_compile(backend, plan, LAYOUT_SORTED)
        cache.get_or_compile(backend, plan, LAYOUT_ARRAYS)
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # The evicted layout recompiles.
        cache.get_or_compile(backend, plan, LAYOUT_SORTED)
        assert backend.compile_calls == 3

    def test_clear_resets_stats(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        cache = KernelCache()
        cache.get_or_compile(CountingBackend(), plan, LAYOUT_SORTED)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0


class SlowCountingBackend(CountingBackend):
    """Compilation takes long enough that racers genuinely overlap."""

    def compile_plan(self, plan, layout):
        time.sleep(0.05)
        return super().compile_plan(plan, layout)


class TestSingleFlightCompilation:
    """Racing get_or_compile on one fingerprint compiles exactly once:
    the first thread builds, the rest wait on its result (the serving
    layer fans identical requests into the cache from worker threads)."""

    def test_same_fingerprint_raced_compiles_once(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        cache = KernelCache()
        backend = SlowCountingBackend()
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            return cache.get_or_compile(backend, plan, LAYOUT_SORTED)

        with ThreadPoolExecutor(max_workers=8) as pool:
            kernels = [f.result() for f in [pool.submit(race) for _ in range(8)]]

        assert backend.compile_calls == 1
        assert all(k is kernels[0] for k in kernels)
        assert cache.stats.misses == 1
        # The 7 non-builders either waited on the in-progress compile
        # or arrived after it finished; none compiled.
        assert cache.stats.hits + cache.stats.coalesced_compiles >= 7

    def test_failed_compile_releases_waiters(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        cache = KernelCache()

        class FlakyBackend(SlowCountingBackend):
            def compile_plan(self, plan, layout):
                if self.compile_calls == 0:
                    self.compile_calls += 1
                    time.sleep(0.02)
                    raise RuntimeError("first compile fails")
                return super().compile_plan(plan, layout)

        backend = FlakyBackend()
        barrier = threading.Barrier(4)
        outcomes = []

        def race():
            barrier.wait()
            try:
                return cache.get_or_compile(backend, plan, LAYOUT_SORTED)
            except RuntimeError as exc:
                return exc

        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = [f.result() for f in [pool.submit(race) for _ in range(4)]]

        # The failing builder raised; a waiter retried as the new
        # builder and succeeded, so no thread deadlocked.
        errors = [o for o in outcomes if isinstance(o, RuntimeError)]
        kernels = [o for o in outcomes if not isinstance(o, RuntimeError)]
        assert len(errors) == 1
        assert kernels and all(k is kernels[0] for k in kernels)
        assert cache.lookup(plan.fingerprint(LAYOUT_SORTED, backend.kernel_key)) is kernels[0]


class TestSourcePersistence:
    """Generated Python sources spill to disk keyed by fingerprint, so a
    fresh process (fresh KernelCache) skips codegen on warm starts."""

    def _compile(self, db, query):
        backend = PythonKernelBackend()
        return backend.compile_plan(make_plan(db, query), LAYOUT_SORTED)

    def test_cold_then_warm(self, int_star_db, int_star_query, monkeypatch, tmp_path):
        monkeypatch.setenv("IFAQ_KERNEL_CACHE_DIR", str(tmp_path))
        cold = self._compile(int_star_db, int_star_query)
        assert cold.meta["source_cached"] is False
        assert load_kernel_source(cold.fingerprint) == cold.source
        # A second compile (new backend, no in-memory cache) is warm.
        warm = self._compile(int_star_db, int_star_query)
        assert warm.meta["source_cached"] is True
        assert warm.source == cold.source

    def test_warm_kernel_executes_identically(
        self, int_star_db, int_star_query, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("IFAQ_KERNEL_CACHE_DIR", str(tmp_path))
        cold = self._compile(int_star_db, int_star_query)
        warm = self._compile(int_star_db, int_star_query)
        backend = PythonKernelBackend()
        assert backend.execute(cold, int_star_db) == backend.execute(warm, int_star_db)

    def test_clear_removes_spilled_sources(
        self, int_star_db, int_star_query, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("IFAQ_KERNEL_CACHE_DIR", str(tmp_path))
        assert kernel_source_dir() == tmp_path
        kernel = self._compile(int_star_db, int_star_query)
        assert clear_kernel_sources() >= 1
        assert load_kernel_source(kernel.fingerprint) is None

    def test_untrusted_default_dir_disables_persistence(
        self, int_star_db, int_star_query, monkeypatch, tmp_path
    ):
        """A default spill dir writable by others is never exec'd from
        (or written to) — compilation just runs cold."""
        import tempfile

        monkeypatch.delenv("IFAQ_KERNEL_CACHE_DIR", raising=False)
        monkeypatch.setattr(tempfile, "gettempdir", lambda: str(tmp_path))
        kernel = self._compile(int_star_db, int_star_query)  # creates 0700 dir
        kernel_source_dir().chmod(0o777)
        assert load_kernel_source(kernel.fingerprint) is None
        again = self._compile(int_star_db, int_star_query)
        assert again.meta["source_cached"] is False
        assert again.source == kernel.source


class TestCompilerIntegration:
    """The compile()-time kernel is the executed kernel (no rebuilds)."""

    def _setup(self):
        ds = star_schema(n_facts=400, n_dims=2, dim_size=10, attrs_per_dim=1, seed=5)
        program = linear_regression_bgd(
            ds.db.schema(), ds.query, ds.features, ds.label, iterations=5, alpha=0.05
        )
        return ds, program

    def test_compiled_kernel_is_executed(self):
        ds, program = self._setup()
        backend = CountingBackend()
        compiler = IFAQCompiler(
            db=ds.db, query=ds.query, backend=backend, kernel_cache=KernelCache()
        )
        artifacts = compiler.compile(program)
        assert artifacts.kernel is not None
        assert artifacts.kernel_source == artifacts.kernel.source
        assert backend.compile_calls == 1

        before = artifacts.kernel
        compiler.compute_batch(artifacts)
        # Execution reused the compile()-time kernel: nothing regenerated.
        assert artifacts.kernel is before
        assert backend.compile_calls == 1

    def test_second_compile_hits_cache(self):
        ds, program = self._setup()
        cache = KernelCache()
        compiler = IFAQCompiler(
            db=ds.db, query=ds.query, backend=CountingBackend(), kernel_cache=cache
        )
        a1 = compiler.compile(program)
        a2 = compiler.compile(program)
        assert a2.kernel is a1.kernel
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_cached_execution_matches_engine(self):
        ds, program = self._setup()
        engine_state = IFAQCompiler(
            db=ds.db, query=ds.query, backend=EngineBackend()
        ).run(program)
        cached = IFAQCompiler(
            db=ds.db, query=ds.query, backend=CountingBackend(), kernel_cache=KernelCache()
        )
        state = cached.run(program)
        for k in engine_state["theta"].field_names():
            assert math.isclose(
                engine_state["theta"][k], state["theta"][k], rel_tol=1e-8
            )
