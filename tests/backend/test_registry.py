"""Backend registry: resolution, fallback, extension."""

import pytest

from repro.backend import (
    BackendResolutionError,
    CppKernelBackend,
    EngineBackend,
    ExecutionBackend,
    PythonKernelBackend,
    ShardedBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.backend.compile_cpp import gxx_available


class TestResolution:
    def test_builtins_registered(self):
        assert {"engine", "python", "cpp", "sharded", "numpy"} <= set(
            available_backends()
        )

    def test_numpy_resolves(self):
        from repro.backend import NumpyBackend

        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_python_resolves(self):
        backend = get_backend("python")
        assert isinstance(backend, PythonKernelBackend)
        assert backend.name == "python"

    def test_engine_receives_context(self):
        backend = get_backend("engine", aggregate_mode="merged")
        assert isinstance(backend, EngineBackend)
        assert backend.aggregate_mode == "merged"
        assert backend.kernel_key == "engine:merged"

    def test_cpp_fallback_decided_once(self):
        backend = get_backend("cpp")
        if gxx_available():
            assert isinstance(backend, CppKernelBackend)
        else:
            # No toolchain: resolution (not execution) picks Python.
            assert isinstance(backend, PythonKernelBackend)

    def test_instance_passthrough(self):
        instance = PythonKernelBackend(block_size=7)
        assert get_backend(instance) is instance

    def test_sharded_resolves_with_context(self):
        backend = get_backend("sharded", inner="python", shards=3)
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 3
        assert isinstance(backend.inner, PythonKernelBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(BackendResolutionError, match="unknown backend"):
            get_backend("fortran")

    def test_unknown_name_lists_sorted_registered_names(self):
        """The error names every registered backend, sorted, so a typo'd
        config is self-diagnosing."""
        with pytest.raises(BackendResolutionError) as excinfo:
            get_backend("fortran")
        message = str(excinfo.value)
        names = available_backends()
        assert list(names) == sorted(names)
        assert ", ".join(names) in message
        assert "'fortran'" in message

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            get_backend(42)


class TestRegistration:
    def test_register_and_unregister(self):
        class NullBackend(ExecutionBackend):
            name = "null"

            def compile_plan(self, plan, layout):
                raise NotImplementedError

            def execute(self, kernel, db):
                raise NotImplementedError

        register_backend("null", lambda **ctx: NullBackend())
        try:
            assert isinstance(get_backend("null"), NullBackend)
        finally:
            unregister_backend("null")
        with pytest.raises(BackendResolutionError):
            get_backend("null")

    def test_duplicate_requires_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("python", lambda **ctx: PythonKernelBackend())
