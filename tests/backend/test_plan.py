"""Physical plans and data loaders."""

from repro.aggregates import build_join_tree, covar_batch
from repro.backend.layout import (
    LAYOUT_ARRAYS,
    LAYOUT_BASELINE,
    LAYOUT_SCALARIZED,
    LAYOUT_SORTED,
    FIGURE_7B_LADDER,
    LayoutOptions,
)
from repro.backend.plan import (
    build_batch_plan,
    prepare_arrays,
    prepare_data,
    prepare_dicts,
    prepare_sorted,
    prepare_tuple_dicts,
)


def make_plan(db, query):
    batch = covar_batch(["cityf", "price"], label="units")
    tree = build_join_tree(db.schema(), query.relations, stats=db.statistics())
    return build_batch_plan(db, tree, batch)


class TestBuildPlan:
    def test_columns_cover_keys_and_owned(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        root = plan.root
        assert set(root.columns) >= {"item", "store", "units"}
        for child in root.children:
            assert set(child.parent_key) <= set(child.columns)

    def test_owned_per_spec_alignment(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        assert all(
            len(n.owned_per_spec) == plan.num_aggregates for n in plan.root.walk()
        )

    def test_attr_owned_exactly_once(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        for i, spec in enumerate(plan.batch.specs):
            total = sum(len(n.owned_per_spec[i]) for n in plan.root.walk())
            assert total == spec.degree


class TestLoaders:
    def test_arrays_row_shape(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        data = prepare_arrays(int_star_db, plan)
        node = plan.root
        row = data[node.relation][0]
        assert len(row) == len(node.columns) + 1  # + multiplicity

    def test_sorted_is_sorted(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        data = prepare_sorted(int_star_db, plan)
        for child in plan.root.children:
            idx = [child.column_index(a) for a in child.parent_key]
            keys = [tuple(r[i] for i in idx) for r in data[child.relation]]
            assert keys == sorted(keys)

    def test_dict_loaders_preserve_counts(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        tuples = prepare_tuple_dicts(int_star_db, plan)
        dicts = prepare_dicts(int_star_db, plan)
        for node in plan.root.walk():
            rel = int_star_db.relation(node.relation)
            assert sum(tuples[node.relation].values()) == rel.tuple_count()
            assert sum(dicts[node.relation].values()) == rel.tuple_count()

    def test_prepare_data_dispatch(self, int_star_db, int_star_query):
        plan = make_plan(int_star_db, int_star_query)
        assert isinstance(prepare_data(int_star_db, plan, LAYOUT_BASELINE)["S"], dict)
        assert isinstance(prepare_data(int_star_db, plan, LAYOUT_SCALARIZED)["S"], dict)
        assert isinstance(prepare_data(int_star_db, plan, LAYOUT_ARRAYS)["S"], list)
        assert isinstance(prepare_data(int_star_db, plan, LAYOUT_SORTED)["S"], list)


class TestLayoutPresets:
    def test_ladder_is_monotone(self):
        flags_on = []
        for _, layout in FIGURE_7B_LADDER:
            on = sum(
                [layout.static_records, layout.scalar_replacement,
                 layout.dict_to_array, layout.sorted_trie]
            )
            flags_on.append(on)
        assert flags_on == sorted(flags_on)

    def test_with_override(self):
        l = LayoutOptions().with_(sorted_trie=True)
        assert l.sorted_trie and not l.dict_to_array
