"""Fault tolerance: deadlines, admission, retries, breakers, injection.

Every scenario here is **deterministic**: faults fire on counted
schedules (:mod:`repro.serving.faults`), in-flight runs block on events
the test releases (never bare sleeps), breakers take fake clocks, and
retry backoff uses ``base_delay=0`` so recovery is immediate.  The
recovery contract is bit identity — kernels are pure, so a retried or
degraded run must ``==`` the clean result.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future

import pytest

from repro.aggregates import variance_batch
from repro.aggregates.engine import compute_groupby
from repro.backend import (
    KernelCache,
    NumpyBackend,
    ProcessKernelExecutor,
    WorkerError,
    build_batch_plan,
)
from repro.aggregates import build_join_tree
from repro.serving import (
    AggregateRequest,
    AggregateService,
    CircuitBreaker,
    DeadlineExceeded,
    Every,
    Fail,
    FaultSchedule,
    FaultyBackend,
    FaultyExecutor,
    GroupByRequest,
    Hold,
    KillWorker,
    QueueFull,
    RetryPolicy,
    Sometimes,
    TransientError,
)
from repro.serving.service import _WriteBarrier

LABEL = "units"
NO_BACKOFF = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def make_service(**kwargs):
    kwargs.setdefault("backend", NumpyBackend())
    kwargs.setdefault("kernel_cache", KernelCache())
    return AggregateService(**kwargs)


def faulty_service(schedule: FaultSchedule, **kwargs):
    kwargs.setdefault("retry_policy", NO_BACKOFF)
    kwargs["backend"] = FaultyBackend(NumpyBackend(), schedule)
    kwargs.setdefault("kernel_cache", KernelCache())
    return AggregateService(**kwargs)


def serve(coro):
    return asyncio.run(coro)


def expected_groupby(db, query, attr="price"):
    tree = build_join_tree(db.schema(), query.relations, stats=dict(db.statistics()))
    return compute_groupby(
        db, tree, variance_batch(LABEL), attr,
        backend="numpy", kernel_cache=KernelCache(),
    )


async def wait_until(predicate, timeout=10.0):
    """Poll ``predicate`` without blocking the loop (bounded, no races:
    the condition is monotonic — once true it stays true)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.005)


class InlinePool:
    """A synchronous stand-in for ProcessKernelExecutor.

    Exposes the same ``run_kernel`` future surface, runs the task
    in-process, and stays deterministic/cheap — the seam FaultyExecutor
    and the breaker tests need without real worker processes.
    """

    workers = 1

    def __init__(self) -> None:
        self.cache = KernelCache()
        self.calls = 0

    def run_kernel(self, backend, db, kind, plan, layout, predicates=None, pred_key=()):
        self.calls += 1
        future: Future = Future()
        try:
            kernel = self.cache.get_or_compile(backend, plan, layout)
            if kind == "groupby":
                result = backend.run_groupby(kernel, db, predicates)
            elif kind == "multi":
                result = backend.run_groupby_many(kernel, db, predicates)
            else:
                result = backend.execute(kernel, db)
            future.set_result((result, 0.0))
        except BaseException as exc:  # noqa: BLE001 — mirror the pool
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True, **_kw):
        pass


# -- policy units ------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        now = [0.0]
        brk = CircuitBreaker("process", failure_threshold=3, reset_seconds=10.0,
                             clock=lambda: now[0])
        for _ in range(2):
            brk.record_failure()
        assert brk.state == "closed" and brk.allow()
        brk.record_failure()
        assert brk.state == "open" and brk.trips == 1
        assert not brk.allow()  # reset period not elapsed
        now[0] = 10.0
        assert brk.allow()  # the probe
        assert brk.state == "half_open"
        brk.record_success()
        assert brk.state == "closed" and brk.recoveries == 1
        assert brk.failures == 0

    def test_half_open_failure_reopens(self):
        now = [0.0]
        brk = CircuitBreaker("process", failure_threshold=1, reset_seconds=5.0,
                             clock=lambda: now[0])
        brk.record_failure()
        assert brk.state == "open"
        now[0] = 5.0
        assert brk.allow() and brk.state == "half_open"
        brk.record_failure()
        assert brk.state == "open" and brk.trips == 2
        assert not brk.allow()  # clock at 5.0, reopened at 5.0
        assert [tuple(t) for t in brk.transitions] == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "open"),
        ]

    def test_transition_callback(self):
        seen = []
        brk = CircuitBreaker("thread", failure_threshold=1,
                             on_transition=lambda *t: seen.append(t))
        brk.record_failure()
        assert seen == [("thread", "closed", "open")]


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.3,
                             jitter=0.5, seed=7)
        a = [policy.delay(k, policy.rng()) for k in (1, 2, 3, 4)]
        b = [policy.delay(k, policy.rng()) for k in (1, 2, 3, 4)]
        assert a == b  # same seed, same schedule
        assert all(d <= 0.3 * 1.5 for d in a)

    def test_zero_base_means_immediate(self):
        rng = NO_BACKOFF.rng()
        assert NO_BACKOFF.delay(1, rng) == 0.0
        assert NO_BACKOFF.delay(2, rng) == 0.0


class TestSchedules:
    def test_counted_firing_and_log(self):
        schedule = FaultSchedule().on("op", Fail(), at=(1, 3))
        assert schedule.fire("op") == []
        assert len(schedule.fire("op")) == 1
        assert schedule.fire("op") == []
        assert len(schedule.fire("op")) == 1
        assert [(op, i) for op, i, _ in schedule.log] == [("op", 1), ("op", 3)]
        assert schedule.count("op") == 4

    def test_sometimes_is_seed_deterministic(self):
        assert [Sometimes(0.5, seed=3)(i) for i in range(20)] == [
            Sometimes(0.5, seed=3)(i) for i in range(20)
        ]

    def test_every(self):
        every = Every(3, start=1)
        assert [i for i in range(10) if every(i)] == [1, 4, 7]


# -- deadlines ---------------------------------------------------------------


class TestDeadlines:
    def test_deadline_while_in_flight(self, int_star_db):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(schedule, max_workers=1) as svc:
                svc.register_database("star", int_star_db)
                with pytest.raises(DeadlineExceeded) as err:
                    await svc.submit(
                        GroupByRequest("star", batch, "price"), deadline=0.05
                    )
                assert "in flight" in str(err.value)
                release.set()
                await svc.drain()
                return svc.stats

        stats = serve(run())
        assert stats.deadline_timeouts == 1
        # The run still completed (threads can't be interrupted) with
        # zero remaining waiters — counted as wasted work.
        assert stats.abandoned_runs == 1
        assert stats.completed == 1

    def test_deadline_while_queued_cancels_the_run(self, int_star_db):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(schedule, max_workers=1, fuse=False) as svc:
                svc.register_database("star", int_star_db)
                first = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "price"))
                )
                await wait_until(lambda: schedule.count("run_groupby") >= 1)
                with pytest.raises(DeadlineExceeded) as err:
                    await svc.submit(
                        GroupByRequest("star", batch, "cityf"), deadline=0.05
                    )
                assert "queued" in str(err.value)
                release.set()
                await first
                await svc.drain()
                return svc.stats, schedule

        stats, schedule = serve(run())
        assert stats.deadline_timeouts == 1
        # The abandoned queued unit was discarded before dispatch: only
        # the held run ever reached the backend.
        assert stats.cancelled_queued == 1
        assert schedule.count("run_groupby") == 1
        assert stats.runs == 1

    def test_request_level_deadline_field(self, int_star_db):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(schedule, max_workers=1) as svc:
                svc.register_database("star", int_star_db)
                with pytest.raises(DeadlineExceeded):
                    await svc.submit(
                        GroupByRequest("star", batch, "price", deadline=0.05)
                    )
                release.set()
                await svc.drain()

        serve(run())

    def test_coalesced_waiters_have_independent_deadlines(self, int_star_db):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(schedule, max_workers=1) as svc:
                svc.register_database("star", int_star_db)
                request = GroupByRequest("star", batch, "price")
                patient = asyncio.ensure_future(svc.submit(request))
                await wait_until(lambda: schedule.count("run_groupby") >= 1)
                with pytest.raises(DeadlineExceeded):
                    await svc.submit(request, deadline=0.05)
                assert not patient.done()  # its run was not cancelled
                release.set()
                return await patient, svc.stats

        result, stats = serve(run())
        assert result == expected_groupby(
            *_db_query(int_star_db)
        )
        assert stats.coalesced == 1
        assert stats.abandoned_runs == 0  # a live waiter consumed the run

    def test_no_deadline_by_default(self, int_star_db, int_star_query):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service() as svc:
                assert svc.default_deadline is None
                svc.register_database("star", int_star_db)
                return await svc.submit(GroupByRequest("star", batch, "price"))

        assert serve(run()) == expected_groupby(int_star_db, int_star_query)


def _db_query(db):
    from repro.db import JoinQuery

    return db, JoinQuery(("S", "R", "I"))


# -- bounded admission -------------------------------------------------------


class TestAdmission:
    def test_reject_policy_raises_queue_full(self, int_star_db):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(
                schedule, max_workers=1, fuse=False, max_queue_depth=1
            ) as svc:
                svc.register_database("star", int_star_db)
                held = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "price"))
                )
                await wait_until(lambda: schedule.count("run_groupby") >= 1)
                queued = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "cityf"))
                )
                await wait_until(lambda: svc._dbs["star"].queued >= 1)
                with pytest.raises(QueueFull):
                    await svc.submit(
                        AggregateRequest("star", variance_batch("price"))
                    )
                release.set()
                return await held, await queued, svc.stats

        first, second, stats = serve(run())
        db, query = _db_query(int_star_db)
        assert first == expected_groupby(db, query, "price")
        assert second == expected_groupby(db, query, "cityf")
        assert stats.queue_rejections == 1

    def test_wait_policy_parks_until_slot_frees(self, int_star_db):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(
                schedule, max_workers=1, fuse=False,
                max_queue_depth=1, queue_policy="wait",
            ) as svc:
                svc.register_database("star", int_star_db)
                held = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "price"))
                )
                await wait_until(lambda: schedule.count("run_groupby") >= 1)
                queued = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "cityf"))
                )
                await wait_until(lambda: svc._dbs["star"].queued >= 1)
                parked = asyncio.ensure_future(
                    svc.submit(AggregateRequest("star", variance_batch("price")))
                )
                await asyncio.sleep(0.02)
                assert not parked.done()  # over cap: waiting, not rejected
                release.set()
                await asyncio.gather(held, queued, parked)
                return svc.stats

        stats = serve(run())
        assert stats.queue_rejections == 0
        assert stats.completed == 3

    def test_wait_policy_respects_deadline(self, int_star_db):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(
                schedule, max_workers=1, fuse=False,
                max_queue_depth=1, queue_policy="wait",
            ) as svc:
                svc.register_database("star", int_star_db)
                held = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "price"))
                )
                await wait_until(lambda: schedule.count("run_groupby") >= 1)
                queued = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "cityf"))
                )
                await wait_until(lambda: svc._dbs["star"].queued >= 1)
                with pytest.raises(DeadlineExceeded) as err:
                    await svc.submit(
                        AggregateRequest("star", variance_batch("price")),
                        deadline=0.05,
                    )
                assert "admission" in str(err.value)
                release.set()
                await asyncio.gather(held, queued)
                return svc.stats

        stats = serve(run())
        assert stats.deadline_timeouts == 1
        assert stats.completed == 2


# -- retries -----------------------------------------------------------------


class TestRetries:
    def test_transient_failure_retried_bit_identical(self, int_star_db, int_star_query):
        schedule = FaultSchedule().on("run_groupby", Fail(TransientError), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(schedule) as svc:
                svc.register_database("star", int_star_db)
                result = await svc.submit(GroupByRequest("star", batch, "price"))
                return result, svc.stats

        result, stats = serve(run())
        assert result == expected_groupby(int_star_db, int_star_query)
        assert stats.retries == 1
        assert stats.retry_exhausted == 0
        assert stats.errors == 0
        assert len(schedule.log) == 1

    def test_retry_budget_exhausts_and_propagates(self, int_star_db):
        schedule = FaultSchedule().on(
            "run_groupby", Fail(TransientError, "still down"), at=lambda i: True
        )
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(
                schedule, retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
            ) as svc:
                svc.register_database("star", int_star_db)
                with pytest.raises(TransientError):
                    await svc.submit(GroupByRequest("star", batch, "price"))
                return svc.stats

        stats = serve(run())
        assert stats.retries == 1  # one backoff before giving up
        assert stats.retry_exhausted == 1
        assert stats.errors == 1
        assert schedule.count("run_groupby") == 2

    def test_non_transient_errors_never_retry(self, int_star_db):
        schedule = FaultSchedule().on(
            "run_groupby", Fail(ValueError, "bad batch"), at=0
        )
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(schedule) as svc:
                svc.register_database("star", int_star_db)
                with pytest.raises(ValueError):
                    await svc.submit(GroupByRequest("star", batch, "price"))
                return svc.stats

        stats = serve(run())
        assert stats.retries == 0
        assert stats.retry_exhausted == 0
        assert schedule.count("run_groupby") == 1  # exactly one attempt


# -- circuit breakers / degradation -----------------------------------------


class TestDegradation:
    def test_breaker_trips_and_runs_degrade_to_thread(self, int_star_db, int_star_query):
        schedule = FaultSchedule().on(
            "run_kernel", Fail(WorkerError, "pool down"), at=lambda i: True
        )
        executor = FaultyExecutor(InlinePool(), schedule)
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(
                executor=executor,
                retry_policy=NO_BACKOFF,
                breaker=CircuitBreaker("process", failure_threshold=1, reset_seconds=60.0),
            ) as svc:
                svc.register_database("star", int_star_db)
                first = await svc.submit(GroupByRequest("star", batch, "price"))
                second = await svc.submit(GroupByRequest("star", batch, "cityf"))
                return first, second, svc.stats

        first, second, stats = serve(run())
        # Degraded runs are bit-identical to the clean path.
        assert first == expected_groupby(int_star_db, int_star_query, "price")
        assert second == expected_groupby(int_star_db, int_star_query, "cityf")
        assert stats.breaker_state == "open"
        assert ("process", "closed", "open") in [
            tuple(t) for t in stats.breaker_transitions
        ]
        assert stats.retries == 1      # first request: process fail → retry
        assert stats.degraded_runs == 2  # both answered on threads
        # Second request skipped the open process stage entirely.
        assert schedule.count("run_kernel") == 1

    def test_half_open_probe_recovers(self, int_star_db, int_star_query):
        schedule = FaultSchedule().on("run_kernel", Fail(WorkerError), at=0)
        pool = InlinePool()
        executor = FaultyExecutor(pool, schedule)
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(
                executor=executor,
                retry_policy=NO_BACKOFF,
                breaker=CircuitBreaker("process", failure_threshold=1, reset_seconds=0.0),
            ) as svc:
                svc.register_database("star", int_star_db)
                result = await svc.submit(GroupByRequest("star", batch, "price"))
                return result, svc.stats, svc._breaker

        result, stats, breaker = serve(run())
        assert result == expected_groupby(int_star_db, int_star_query)
        # Fail → open; reset=0 elapses immediately, so the retry itself
        # is the half-open probe; it succeeds and closes the breaker.
        assert breaker.trips == 1 and breaker.recoveries == 1
        assert stats.breaker_state == "closed"
        assert stats.degraded_runs == 0  # the probe ran at process level
        assert pool.calls == 1

    def test_thread_breaker_degrades_to_inline(self, int_star_db, int_star_query):
        schedule = FaultSchedule().on("run_groupby", Fail(TransientError), at=0)
        batch = variance_batch(LABEL)

        async def run():
            # Pinned to the thread executor: this test is about the
            # thread → inline rung of the ladder, regardless of any
            # IFAQ_EXECUTOR=process override in the environment.
            async with faulty_service(
                schedule,
                executor="thread",
                thread_breaker=CircuitBreaker("thread", failure_threshold=1, reset_seconds=60.0),
            ) as svc:
                svc.register_database("star", int_star_db)
                result = await svc.submit(GroupByRequest("star", batch, "price"))
                return result, svc.stats

        result, stats = serve(run())
        assert result == expected_groupby(int_star_db, int_star_query)
        assert stats.thread_breaker_state == "open"
        assert stats.degraded_runs == 1  # answered inline on the loop
        assert stats.retries == 1

    def test_reliability_section_in_stats(self, int_star_db):
        async def run():
            async with make_service(
                max_queue_depth=4, queue_policy="wait", default_deadline=9.0
            ) as svc:
                svc.register_database("star", int_star_db)
                return svc.stats_dict()

        report = serve(run())
        section = report["reliability"]
        assert section["default_deadline"] == 9.0
        assert section["max_queue_depth"] == 4
        assert section["queue_policy"] == "wait"
        assert section["retry"]["max_attempts"] >= 1
        assert section["breakers"]["process"]["state"] == "closed"
        assert section["breakers"]["thread"]["state"] == "closed"


# -- write barrier under cancellation ---------------------------------------


class TestWriteBarrierCancellation:
    def test_cancelled_writer_reopens_the_gate(self):
        async def run():
            barrier = _WriteBarrier()
            await barrier.reader_enter()  # an active reader keeps idle clear
            writer = asyncio.ensure_future(barrier.writer_enter())
            await asyncio.sleep(0)  # writer closed the gate, awaits idle
            writer.cancel()
            with pytest.raises(asyncio.CancelledError):
                await writer
            barrier.reader_exit()
            # The gate must be open again: a fresh reader enters at once.
            await asyncio.wait_for(barrier.reader_enter(), timeout=1.0)
            barrier.reader_exit()

        serve(run())

    def test_cancelled_ingest_does_not_wedge_submits(self, int_star_db, int_star_query):
        release = threading.Event()
        schedule = FaultSchedule().on("run_groupby", Hold(release), at=0)
        batch = variance_batch(LABEL)

        async def run():
            async with faulty_service(schedule, max_workers=1) as svc:
                svc.register_database("star", int_star_db)
                held = asyncio.ensure_future(
                    svc.submit(GroupByRequest("star", batch, "price"))
                )
                await wait_until(lambda: schedule.count("run_groupby") >= 1)
                ingest = asyncio.ensure_future(
                    svc.ingest("star", "S", [(0, 0, 1.0)])
                )
                await asyncio.sleep(0.02)  # writer is parked at the barrier
                ingest.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await ingest
                release.set()
                await held
                # The barrier reopened: new submissions still answer.
                return await svc.submit(GroupByRequest("star", batch, "cityf"))

        result = serve(run())
        assert result == expected_groupby(int_star_db, int_star_query, "cityf")


# -- real process pool + injected worker kills -------------------------------


class TestProcessFaults:
    def test_worker_kill_retried_bit_identical(self, int_star_db, int_star_query):
        schedule = FaultSchedule().on("run_kernel", KillWorker(0), at=0)
        pool = ProcessKernelExecutor(workers=1)
        executor = FaultyExecutor(pool, schedule)
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(
                executor=executor, retry_policy=NO_BACKOFF
            ) as svc:
                svc.register_database("star", int_star_db)
                result = await svc.submit(GroupByRequest("star", batch, "price"))
                return result, svc.stats

        try:
            result, stats = serve(run())
        finally:
            pool.shutdown()
        # The kill produced the organic WorkerError, the pool respawned
        # the worker, and the retry recomputed the same pure fold.
        assert result == expected_groupby(int_star_db, int_star_query)
        assert stats.retries == 1
        assert stats.errors == 0
        assert stats.degraded_runs == 0  # recovered at process level
