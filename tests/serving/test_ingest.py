"""Streaming ingest through the service: maintained materialized views.

Every correctness assertion compares the served result after
``ingest`` against a *from-scratch* recompute of the same kernel on a
deep copy of the mutated database (its own fresh column store) with
``==`` — bit identity, exactly like the backend delta tests.

These tests run under both executor modes: the CI process-executor job
re-runs them with ``IFAQ_EXECUTOR=process`` (``-k ingest``), where
views are created without delta state (worker runs can't ship it back)
and the first ingest re-establishes state parent-side.
"""

from __future__ import annotations

import asyncio
import copy

import pytest

from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.backend import (
    KernelCache,
    NumpyBackend,
    build_batch_plan,
    peek_column_store,
)
from repro.backend.layout import LAYOUT_SORTED
from repro.ml.regression_tree import Condition
from repro.serving import (
    AggregateRequest,
    AggregateService,
    DatabaseNotRegistered,
    GroupByRequest,
)

FEATURES = ["cityf", "price"]
LABEL = "units"

PRICE_PREDICATES = {"I": [Condition("price", "<=", 25.0)]}


def make_service(**kwargs):
    kwargs.setdefault("backend", NumpyBackend(block_size=16))
    kwargs.setdefault("kernel_cache", KernelCache())
    return AggregateService(**kwargs)


def serve(coro):
    return asyncio.run(coro)


def sale_rows(start, count):
    return [
        (i % 12, i % 5, 1000.0 + i * 0.5) for i in range(start, start + count)
    ]


class Oracle:
    """From-scratch recomputes with the *service's* plans, so the float
    association matches and ``==`` is a fair bit-identity check."""

    def __init__(self, db, query):
        self.db = db
        self.tree = build_join_tree(
            db.schema(), query.relations, stats=dict(db.statistics())
        )
        self.backend = NumpyBackend(block_size=16)
        self.plans = {}

    def _kernel(self, batch, group_attr):
        key = (batch, group_attr)
        plan = self.plans.get(key)
        if plan is None:
            plan = self.plans[key] = build_batch_plan(
                self.db, self.tree, batch, group_attr=group_attr
            )
        return self.backend.compile_plan(plan, LAYOUT_SORTED)

    def plain(self, batch):
        return self.backend.execute(self._kernel(batch, None), copy.deepcopy(self.db))

    def groupby(self, batch, attr, predicates=None):
        return self.backend.run_groupby(
            self._kernel(batch, attr), copy.deepcopy(self.db), predicates
        )


class TestIngestCorrectness:
    def test_groupby_view_stays_fresh_across_ingests(
        self, int_star_db, int_star_query
    ):
        batch = variance_batch(LABEL)
        oracle = Oracle(int_star_db, int_star_query)
        req = GroupByRequest("star", batch, "units")  # groups grow per append

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                first = await svc.submit(req)
                assert first == oracle.groupby(batch, "units")
                start = 0
                for size in (17, 120):
                    report = await svc.ingest("star", "S", sale_rows(start, size))
                    assert report["pure_append"] and report["rows"] == size
                    served = await svc.submit(req)
                    assert served == oracle.groupby(batch, "units")
                    start += size
                return svc.stats

        stats = serve(run())
        assert stats.ingests == 2 and stats.ingest_rows == 137
        assert stats.view_hits >= 2  # post-ingest submits served from the view
        # Thread executor: both ingests fold deltas.  Process executor:
        # the first ingest re-establishes state, the second folds.
        assert stats.delta_runs >= 1
        assert stats.delta_runs + stats.full_recomputes == 2

    def test_plain_view_stays_fresh(self, int_star_db, int_star_query):
        batch = covar_batch(FEATURES, label=LABEL)
        oracle = Oracle(int_star_db, int_star_query)
        req = AggregateRequest("star", batch)

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(req)
                await svc.ingest("star", "S", sale_rows(0, 64))
                await svc.ingest("star", "S", sale_rows(64, 9))
                return await svc.submit(req), svc.stats

        served, stats = serve(run())
        assert served == oracle.plain(batch)
        assert stats.delta_runs >= 1

    def test_predicate_groupby_view_maintained(
        self, int_star_db, int_star_query
    ):
        batch = variance_batch(LABEL)
        oracle = Oracle(int_star_db, int_star_query)
        req = GroupByRequest("star", batch, "price", predicates=PRICE_PREDICATES)

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(req)
                await svc.ingest("star", "S", sale_rows(0, 55))
                return await svc.submit(req)

        assert serve(run()) == oracle.groupby(batch, "price", PRICE_PREDICATES)

    def test_non_root_ingest_recomputes_fully(
        self, int_star_db, int_star_query
    ):
        """Appending to a relation that is *not* the view's plan root
        changes child aggregates for existing root rows — inexpressible
        as a root-tail delta, so the view must take the full-recompute
        path and still serve correctly.  (Group-by plans reroot at the
        grouping attribute's owner, so a ``units`` group-by is rooted at
        S and an append to I is a non-root change for it.)"""
        batch = variance_batch(LABEL)
        oracle = Oracle(int_star_db, int_star_query)
        req = GroupByRequest("star", batch, "units")

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(req)
                # New item ids 12/13: joinable once sales reference them.
                report = await svc.ingest("star", "I", [(12, 60.5), (13, 77.25)])
                assert report["pure_append"]
                assert report["full_recomputes"] >= 1 and report["delta_runs"] == 0
                await svc.ingest("star", "S", [(12, 0, 2000.0), (13, 1, 2001.0)])
                return await svc.submit(req), svc.stats

        served, stats = serve(run())
        assert served == oracle.groupby(batch, "units")
        assert stats.full_recomputes >= 1

    def test_multiplicity_bump_falls_back_and_serves_correctly(
        self, int_star_db, int_star_query
    ):
        batch = variance_batch(LABEL)
        oracle = Oracle(int_star_db, int_star_query)
        req = GroupByRequest("star", batch, "price")
        dup = tuple(next(iter(int_star_db.relation("S").data)).values())

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(req)
                report = await svc.ingest("star", "S", [dup])
                assert not report["pure_append"]
                return await svc.submit(req)

        assert serve(run()) == oracle.groupby(batch, "price")


class TestIngestMechanics:
    def test_ingest_unregistered_database_raises(self, int_star_db):
        async def run():
            async with make_service() as svc:
                with pytest.raises(DatabaseNotRegistered):
                    await svc.ingest("nope", "S", sale_rows(0, 1))

        serve(run())

    def test_ingest_waits_for_inflight_runs(self, int_star_db, int_star_query):
        """The writer barrier: an ingest issued while a run is in flight
        applies after it, and the run's waiter still gets a pre-ingest
        answer."""
        import threading

        batch = variance_batch(LABEL)
        oracle = Oracle(int_star_db, int_star_query)
        started = threading.Event()
        release = threading.Event()

        class SlowBackend(NumpyBackend):
            def run_groupby_maintained(self, kernel, db, predicates=None):
                out = super().run_groupby_maintained(kernel, db, predicates)
                started.set()
                assert release.wait(5)
                return out

        expected_before = oracle.groupby(batch, "units")

        async def run():
            async with make_service(
                backend=SlowBackend(block_size=16), executor="thread"
            ) as svc:
                svc.register_database("star", int_star_db)
                req = GroupByRequest("star", batch, "units")
                inflight = asyncio.ensure_future(svc.submit(req))
                while not started.is_set():
                    await asyncio.sleep(0.005)
                ingest = asyncio.ensure_future(
                    svc.ingest("star", "S", sale_rows(0, 30))
                )
                await asyncio.sleep(0.02)
                assert not ingest.done()  # writer parked behind the reader
                release.set()
                old = await inflight
                await ingest
                new = await svc.submit(req)
                return old, new

        old, new = serve(run())
        assert old == expected_before
        assert new == oracle.groupby(batch, "units")
        assert old != new

    def test_ingest_drops_filtered_copies(self, int_star_db, int_star_query):
        batch = variance_batch(LABEL)
        oracle = Oracle(int_star_db, int_star_query)
        req = AggregateRequest("star", batch, predicates=PRICE_PREDICATES)

        async def run():
            # Thread executor: asserts on parent-side filtered memos.
            async with make_service(executor="thread") as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(req)
                reg = svc._dbs["star"]
                assert reg.filtered_dbs
                filtered = next(iter(reg.filtered_dbs.values()))
                await svc.ingest("star", "S", sale_rows(0, 12))
                assert not reg.filtered_dbs  # memo cleared...
                assert peek_column_store(filtered) is None  # ...store evicted
                return await svc.submit(req)

        # δ-filtered plain results are recomputed, not maintained; they
        # must still reflect the appended rows.
        result = serve(run())
        import copy as _copy

        from repro.aggregates.engine import apply_predicates

        clean = apply_predicates(_copy.deepcopy(int_star_db), PRICE_PREDICATES)
        kernel = oracle.backend.compile_plan(
            oracle.plans[(batch, None)]
            if (batch, None) in oracle.plans
            else build_batch_plan(int_star_db, oracle.tree, batch),
            LAYOUT_SORTED,
        )
        assert result == oracle.backend.execute(kernel, clean)

    def test_version_vector_keys_prevent_stale_coalescing(
        self, int_star_db, int_star_query
    ):
        """Two requests that straddle an ingest must not share a run.
        With views disabled (coalesce=False exercises the raw path) the
        service runs each; with coalescing on, the version vector in the
        key separates them."""
        batch = variance_batch(LABEL)

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                req = GroupByRequest("star", batch, "price")
                before = await svc.submit(req)
                key_before = (
                    "star",
                    svc._dbs["star"].generation,
                    int_star_db.version_vector(),
                )
                await svc.ingest("star", "S", sale_rows(0, 40))
                key_after = (
                    "star",
                    svc._dbs["star"].generation,
                    int_star_db.version_vector(),
                )
                assert key_before != key_after
                after = await svc.submit(req)
                return before, after

        before, after = serve(run())
        assert before != after  # appended units shift every price group

    def test_stats_dict_reports_views_and_ingests(
        self, int_star_db, int_star_query
    ):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(GroupByRequest("star", batch, "price"))
                await svc.ingest("star", "S", sale_rows(0, 10))
                await svc.ingest("star", "S", sale_rows(10, 10))
                return svc.stats_dict()

        report = serve(run())
        assert report["databases"]["star"]["views"] == 1
        service = report["service"]
        assert service["ingests"] == 2 and service["ingest_rows"] == 20
        assert service["delta_runs"] + service["full_recomputes"] == 2
        assert "delta_speedup" in service
