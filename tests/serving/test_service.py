"""The async serving layer: coalescing, fusion, hooks, stats, errors.

Driven with ``asyncio.run`` from synchronous tests (no pytest-asyncio
dependency).  The bit-identity tests use ``==`` on result dictionaries:
aggregate values are floats, so dictionary equality *is* bit identity.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.aggregates import build_join_tree, covar_batch, variance_batch
from repro.aggregates.engine import compute_batch_mode, compute_groupby
from repro.backend import KernelCache, NumpyBackend, column_store, peek_column_store
from repro.ml.regression_tree import Condition
from repro.serving import (
    AggregateRequest,
    AggregateService,
    DatabaseNotRegistered,
    GroupByRequest,
    MultiGroupByRequest,
    predicate_key,
)

FEATURES = ["cityf", "price"]
LABEL = "units"


class CountingNumpyBackend(NumpyBackend):
    """Numpy backend that counts kernel executions (not compiles)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.execute_calls = 0
        self.groupby_calls = 0
        self.groupby_many_calls = 0

    def execute(self, kernel, db):
        self.execute_calls += 1
        return super().execute(kernel, db)

    def run_groupby(self, kernel, db, predicates=None):
        self.groupby_calls += 1
        return super().run_groupby(kernel, db, predicates)

    def run_groupby_many(self, kernel, db, predicates=None):
        self.groupby_many_calls += 1
        return super().run_groupby_many(kernel, db, predicates)

    # Maintained runs are kernel executions too (the service prefers
    # them when the backend speaks the delta protocol).
    def run_maintained(self, kernel, db):
        self.execute_calls += 1
        return super().run_maintained(kernel, db)

    def run_groupby_maintained(self, kernel, db, predicates=None):
        self.groupby_calls += 1
        return super().run_groupby_maintained(kernel, db, predicates)


def make_service(**kwargs):
    kwargs.setdefault("backend", CountingNumpyBackend())
    kwargs.setdefault("kernel_cache", KernelCache())
    return AggregateService(**kwargs)


def serve(coro):
    return asyncio.run(coro)


def join_tree(db, query):
    return build_join_tree(db.schema(), query.relations, stats=dict(db.statistics()))


class TestRequestExecution:
    def test_plain_request_matches_engine(self, int_star_db, int_star_query):
        batch = covar_batch(FEATURES, label=LABEL)

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                return await svc.submit(AggregateRequest("star", batch))

        result = serve(run())
        expected = compute_batch_mode(
            int_star_db, join_tree(int_star_db, int_star_query), batch, "trie"
        )
        assert set(result) == set(expected)
        for name, value in expected.items():
            assert result[name] == pytest.approx(value, rel=1e-12)

    @pytest.mark.parametrize("backend", ["engine", "numpy"])
    def test_groupby_request_matches_compute_groupby(
        self, backend, int_star_db, int_star_query
    ):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(backend=backend) as svc:
                svc.register_database("star", int_star_db)
                return await svc.submit(GroupByRequest("star", batch, "price"))

        result = serve(run())
        expected = compute_groupby(
            int_star_db,
            join_tree(int_star_db, int_star_query),
            batch,
            "price",
            backend=backend,
            kernel_cache=KernelCache(),
        )
        assert result == expected  # float lists: == is bit identity

    def test_multi_groupby_request(self, int_star_db, int_star_query):
        batch = variance_batch(LABEL)
        attrs = ("price", "cityf")

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                return await svc.submit(MultiGroupByRequest("star", batch, attrs))

        result = serve(run())
        assert set(result) == set(attrs)
        tree = join_tree(int_star_db, int_star_query)
        for attr in attrs:
            expected = compute_groupby(
                int_star_db, tree, batch, attr,
                backend="numpy", kernel_cache=KernelCache(),
            )
            assert result[attr] == expected

    def test_plain_request_with_predicates(self, int_star_db, int_star_query):
        batch = covar_batch(FEATURES, label=LABEL)
        preds = {"I": [Condition("price", "<=", 25.0)]}

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                return await svc.submit(AggregateRequest("star", batch, predicates=preds))

        result = serve(run())
        expected = compute_batch_mode(
            int_star_db, join_tree(int_star_db, int_star_query), batch, "trie",
            predicates=preds,
        )
        for name, value in expected.items():
            assert result[name] == pytest.approx(value, rel=1e-12)


class TestCoalescing:
    def test_concurrent_identical_requests_run_once(self, int_star_db):
        batch = variance_batch(LABEL)
        backend = CountingNumpyBackend()

        async def run():
            async with make_service(backend=backend) as svc:
                svc.register_database("star", int_star_db)
                results = await svc.submit_many(
                    GroupByRequest("star", batch, "price") for _ in range(16)
                )
                return results, svc.stats

        results, stats = serve(run())
        # stats.runs (not a backend-side counter) so the assertion holds
        # for thread and process executors alike.
        assert stats.requests == 16
        assert stats.coalesced == 15
        assert stats.runs == 1
        first = results[0]
        assert all(r == first for r in results)

    def test_coalesced_results_bit_identical_to_sequential(
        self, int_star_db, int_star_query
    ):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                return await svc.submit_many(
                    GroupByRequest("star", batch, "cityf") for _ in range(8)
                )

        results = serve(run())
        sequential = compute_groupby(
            int_star_db, join_tree(int_star_db, int_star_query), batch, "cityf",
            backend="numpy", kernel_cache=KernelCache(),
        )
        for r in results:
            assert r == sequential

    def test_waiters_get_private_copies(self, int_star_db):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                return await svc.submit_many(
                    GroupByRequest("star", batch, "price") for _ in range(2)
                )

        a, b = serve(run())
        assert a == b
        a[next(iter(a))][0] += 1.0
        assert a != b  # mutating one response does not leak into the other

    def test_coalesce_disabled_runs_every_request(self, int_star_db):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(coalesce=False, fuse=False) as svc:
                svc.register_database("star", int_star_db)
                await svc.submit_many(
                    GroupByRequest("star", batch, "price") for _ in range(4)
                )
                return svc.stats

        stats = serve(run())
        assert stats.runs == 4
        assert stats.coalesced == 0

    def test_predicates_distinguish_requests(self, int_star_db, int_star_query):
        batch = variance_batch(LABEL)
        low = {"I": [Condition("price", "<=", 20.0)]}
        low_twin = {"I": [Condition("price", "<=", 20.0)]}  # distinct objects
        high = {"I": [Condition("price", "<=", 40.0)]}
        assert predicate_key(low) == predicate_key(low_twin)
        assert predicate_key(low) != predicate_key(high)

        async def run():
            async with make_service(fuse=False) as svc:
                svc.register_database("star", int_star_db)
                results = await svc.submit_many(
                    [
                        GroupByRequest("star", batch, "price", predicates=low),
                        GroupByRequest("star", batch, "price", predicates=low_twin),
                        GroupByRequest("star", batch, "price", predicates=high),
                    ]
                )
                return results, svc.stats

        (r_low, r_twin, r_high), stats = serve(run())
        # Structurally equal predicates coalesced; different ones did not.
        assert stats.runs == 2
        assert r_low == r_twin
        tree = join_tree(int_star_db, int_star_query)
        for preds, result in ((low, r_low), (high, r_high)):
            assert result == compute_groupby(
                int_star_db, tree, batch, "price",
                predicates=preds, backend="numpy", kernel_cache=KernelCache(),
            )


class TestFusion:
    def test_queued_groupbys_fuse_into_one_run(self, int_star_db, int_star_query):
        batch = variance_batch(LABEL)

        async def run():
            # One worker: the first request occupies it while the rest
            # queue, so the drain fuses them into one MultiBatchPlan.
            async with make_service(max_workers=1) as svc:
                svc.register_database("star", int_star_db)
                results = await svc.submit_many(
                    [
                        GroupByRequest("star", batch, "price"),
                        GroupByRequest("star", batch, "cityf"),
                        GroupByRequest("star", batch, "item"),
                    ]
                )
                return results, svc.stats

        results, stats = serve(run())
        # All three requests were queued when the worker drained, so
        # they fused into a single MultiBatchPlan execution.
        assert stats.fused_runs == 1
        assert stats.fused_requests == 3
        assert stats.runs == 1
        tree = join_tree(int_star_db, int_star_query)
        for attr, result in zip(("price", "cityf", "item"), results):
            assert result == compute_groupby(
                int_star_db, tree, batch, attr,
                backend="numpy", kernel_cache=KernelCache(),
            )

    def test_fusion_respects_predicate_identity(self, int_star_db):
        batch = variance_batch(LABEL)
        preds = {"I": [Condition("price", "<=", 25.0)]}

        async def run():
            async with make_service(max_workers=1) as svc:
                svc.register_database("star", int_star_db)
                await svc.submit_many(
                    [
                        GroupByRequest("star", batch, "price"),
                        GroupByRequest("star", batch, "cityf", predicates=preds),
                        GroupByRequest("star", batch, "item"),
                    ]
                )
                return svc.stats

        stats = serve(run())
        # The unfiltered pair fuses; the δ-filtered request must not
        # join their bundle and runs on its own.
        assert stats.fused_runs == 1
        assert stats.fused_requests == 2
        assert stats.runs == 2


class TestLifecycleAndStats:
    def test_register_twice_requires_replace(self, int_star_db):
        """Re-registering the *same* object is an idempotent no-op; a
        different database under a taken name still requires replace."""
        from repro.db import Database

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                generation = svc._dbs["star"].generation
                svc.register_database("star", int_star_db)
                assert svc.stats.reregistrations == 1
                assert svc._dbs["star"].generation == generation
                other = Database.of(
                    int_star_db.relation("S"),
                    int_star_db.relation("R"),
                    int_star_db.relation("I"),
                )
                with pytest.raises(ValueError, match="already registered"):
                    svc.register_database("star", other)
                svc.register_database("star", int_star_db, replace=True)

        serve(run())

    def test_replace_does_not_coalesce_onto_stale_inflight_run(self, int_star_db):
        """A request arriving after register_database(replace=True) must
        not join an execution still running against the old database."""
        from repro.db import Database, Relation

        batch = variance_batch(LABEL)
        old_sales = int_star_db.relation("S")
        small_db = Database.of(
            Relation(old_sales.schema, dict(list(old_sales.data.items())[:50])),
            int_star_db.relation("R"),
            int_star_db.relation("I"),
        )
        run_started = threading.Event()
        release = threading.Event()

        class SlowBackend(CountingNumpyBackend):
            def run_groupby(self, kernel, db, predicates=None):
                run_started.set()
                assert release.wait(5)
                return super().run_groupby(kernel, db, predicates)

            def run_groupby_maintained(self, kernel, db, predicates=None):
                run_started.set()
                assert release.wait(5)
                return super().run_groupby_maintained(kernel, db, predicates)

        backend = SlowBackend()

        async def run():
            # Pinned to the thread executor: the backend blocks on
            # parent-process threading.Events, which cannot cross into
            # a pool worker.
            async with make_service(
                backend=backend, max_workers=1, executor="thread"
            ) as svc:
                svc.register_database("star", int_star_db)
                req = GroupByRequest("star", batch, "price")
                first = asyncio.ensure_future(svc.submit(req))
                while not run_started.is_set():
                    await asyncio.sleep(0.005)
                # Swap the database while the first run is mid-flight.
                svc.register_database("star", small_db, replace=True)
                second = asyncio.ensure_future(svc.submit(req))
                await asyncio.sleep(0.01)  # let the second request enqueue
                release.set()
                return await first, await second

        old_result, new_result = serve(run())
        assert backend.groupby_calls == 2  # no coalescing across the swap
        assert old_result != new_result
        count = lambda res: sum(v[0] for v in res.values())  # noqa: E731
        assert count(old_result) == 200 and count(new_result) == 50

    def test_eviction_blocks_new_requests_and_fires_hooks(self, int_star_db):
        batch = variance_batch(LABEL)
        events: list[tuple[str, str]] = []

        async def run():
            async with make_service() as svc:
                svc.add_hooks(
                    on_register=lambda name, db: events.append(("register", name)),
                    on_evict=lambda name, db: events.append(("evict", name)),
                )
                svc.register_database("star", int_star_db)
                await svc.submit(GroupByRequest("star", batch, "price"))
                assert svc.evict_database("star")
                assert not svc.evict_database("star")
                with pytest.raises(DatabaseNotRegistered):
                    await svc.submit(GroupByRequest("star", batch, "price"))

        serve(run())
        assert events == [("register", "star"), ("evict", "star")]

    def test_eviction_drops_column_store(self, int_star_db):
        batch = variance_batch(LABEL)

        async def run():
            # Pinned to the thread executor: this asserts on the
            # *parent-side* store, which process workers never build.
            async with make_service(executor="thread") as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(GroupByRequest("star", batch, "price"))
                assert peek_column_store(int_star_db) is not None
                svc.evict_database("star")
                assert peek_column_store(int_star_db) is None

        serve(run())

    def test_errors_propagate_to_all_waiters(self, int_star_db):
        bad = variance_batch("no_such_attribute")

        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                return await asyncio.gather(
                    *(
                        svc.submit(GroupByRequest("star", bad, "price"))
                        for _ in range(3)
                    ),
                    return_exceptions=True,
                )

        outcomes = serve(run())
        assert len(outcomes) == 3
        assert all(isinstance(o, Exception) for o in outcomes)

    def test_stats_dict_reports_column_store_bytes(self, int_star_db):
        batch = variance_batch(LABEL)

        async def run():
            # Thread executor: the byte estimate reads the parent-side
            # store, which process workers build on their side instead.
            async with make_service(executor="thread") as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(GroupByRequest("star", batch, "price"))
                return svc.stats_dict()

        report = serve(run())
        assert report["service"]["requests"] == 1
        assert report["kernel_cache"]["misses"] >= 1
        store = report["databases"]["star"]["column_store"]
        assert store is not None and store["approx_bytes"] > 0

    def test_submit_after_close_raises(self, int_star_db):
        batch = variance_batch(LABEL)

        async def run():
            svc = make_service()
            svc.register_database("star", int_star_db)
            await svc.close()
            with pytest.raises(RuntimeError, match="closed"):
                await svc.submit(GroupByRequest("star", batch, "price"))

        serve(run())

    def test_unknown_request_type_raises(self, int_star_db):
        async def run():
            async with make_service() as svc:
                svc.register_database("star", int_star_db)
                await svc.submit(object())  # type: ignore[arg-type]

        with pytest.raises((TypeError, AttributeError)):
            serve(run())


class LockedNumpyBackend(NumpyBackend):
    """A backend that cannot cross the process boundary."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._lock = threading.Lock()  # unpicklable on purpose


class TestProcessExecutor:
    """The GIL-escape path: serving through worker processes."""

    def _run_all(self, svc_kwargs, int_star_db):
        batch = variance_batch(LABEL)
        cov = covar_batch(FEATURES, label=LABEL)
        preds = {"I": [Condition("price", "<=", 25.0)]}

        async def run():
            async with make_service(**svc_kwargs) as svc:
                svc.register_database("star", int_star_db)
                plain = await svc.submit(AggregateRequest("star", cov))
                plain_p = await svc.submit(
                    AggregateRequest("star", cov, predicates=preds)
                )
                group = await svc.submit(GroupByRequest("star", batch, "price"))
                group_p = await svc.submit(
                    GroupByRequest("star", batch, "price", predicates=preds)
                )
                multi = await svc.submit(
                    MultiGroupByRequest("star", batch, ("price", "cityf"))
                )
                fanout = await svc.submit_many(
                    GroupByRequest("star", batch, attr)
                    for attr in ("price", "cityf", "item")
                )
                return [plain, plain_p, group, group_p, multi, fanout]

        return serve(run())

    def test_process_results_bit_identical_to_thread(self, int_star_db):
        reference = self._run_all({"executor": "thread"}, int_star_db)
        via_processes = self._run_all(
            {"executor": "process", "backend": NumpyBackend()}, int_star_db
        )
        assert via_processes == reference  # float dicts: == is bit identity

    def test_env_variable_selects_process_executor(self, int_star_db, monkeypatch):
        monkeypatch.setenv("IFAQ_EXECUTOR", "process")
        monkeypatch.setenv("IFAQ_PROC_WORKERS", "2")
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(backend=NumpyBackend()) as svc:
                assert svc._process_executor is not None
                assert svc._process_executor.workers == 2
                assert svc.stats_dict()["executor"]["kind"] == "process"
                svc.register_database("star", int_star_db)
                return await svc.submit(GroupByRequest("star", batch, "price"))

        result = serve(run())
        assert result  # and it actually answers requests

    def test_unpicklable_backend_falls_back_inline(
        self, int_star_db, int_star_query
    ):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(
                backend=LockedNumpyBackend(), executor="process"
            ) as svc:
                svc.register_database("star", int_star_db)
                return await svc.submit(GroupByRequest("star", batch, "price"))

        result = serve(run())
        expected = compute_groupby(
            int_star_db,
            join_tree(int_star_db, int_star_query),
            batch,
            "price",
            backend="numpy",
            kernel_cache=KernelCache(),
        )
        assert result == expected

    def test_worker_errors_keep_original_type(self, int_star_db):
        bad = variance_batch("no_such_attribute")

        async def run():
            async with make_service(
                backend=NumpyBackend(), executor="process"
            ) as svc:
                svc.register_database("star", int_star_db)
                return await asyncio.gather(
                    *(
                        svc.submit(GroupByRequest("star", bad, "price"))
                        for _ in range(2)
                    ),
                    return_exceptions=True,
                )

        outcomes = serve(run())
        assert all(isinstance(o, Exception) for o in outcomes)


class TestStoreBudget:
    """Automatic ColumnStore LRU trimming under a byte budget."""

    def test_over_budget_trims_coldest_store(self, int_star_db):
        from repro.db import Database

        batch = variance_batch(LABEL)
        twin_db = Database(dict(int_star_db.relations))

        async def run():
            async with make_service(
                executor="thread", store_budget_bytes=1
            ) as svc:
                svc.register_database("a", int_star_db)
                svc.register_database("b", twin_db)
                first = await svc.submit(GroupByRequest("a", batch, "price"))
                await svc.submit(GroupByRequest("b", batch, "price"))
                # "a" is now the LRU registration and over budget: its
                # whole store was trimmed, the hot one ("b") survives.
                assert peek_column_store(int_star_db) is None
                assert peek_column_store(twin_db) is not None
                trims = svc.stats.store_trims
                # Trimmed stores rebuild lazily and serve bit-identical
                # results.
                again = await svc.submit(GroupByRequest("a", batch, "price"))
                return first, again, trims

        first, again, trims = serve(run())
        assert trims >= 1
        assert first == again

    def test_no_budget_means_no_trims(self, int_star_db):
        batch = variance_batch(LABEL)

        async def run():
            async with make_service(executor="thread") as svc:
                svc.register_database("a", int_star_db)
                await svc.submit(GroupByRequest("a", batch, "price"))
                return svc.stats.store_trims, peek_column_store(int_star_db)

        trims, store = serve(run())
        assert trims == 0
        assert store is not None

    def test_budget_read_from_env(self, int_star_db, monkeypatch):
        monkeypatch.setenv("IFAQ_STORE_BUDGET_BYTES", "12345")
        svc = make_service(executor="thread")
        assert svc.store_budget_bytes == 12345

        async def close():
            await svc.close()

        serve(close())
