"""Trie layouts: grouping, sorted lookups, counts (Section 4.3/4.4)."""

from repro.db import Relation, RelationSchema, build_sorted_trie, build_trie
from repro.db.trie import SortedTrie, iter_trie_leaves, trie_tuple_count
from repro.ir.types import INT, REAL


def relation():
    return Relation.from_rows(
        RelationSchema.of("S", [("store", INT), ("item", INT), ("units", REAL)]),
        [
            (1, 10, 2.0),
            (1, 11, 3.0),
            (2, 10, 4.0),
            (1, 10, 2.0),  # duplicate → multiplicity 2
        ],
    )


class TestBuildTrie:
    def test_single_level_groups(self):
        trie = build_trie(relation(), ["store"])
        assert set(trie) == {1, 2}
        assert len(trie[1]) == 2  # two residual tuples under store 1

    def test_two_level_structure(self):
        trie = build_trie(relation(), ["store", "item"])
        assert set(trie[1]) == {10, 11}
        bucket = trie[1][10]
        assert bucket[0][1] == 2  # multiplicity preserved

    def test_exhausted_attrs_leaf_is_count(self):
        r = Relation.from_rows(
            RelationSchema.of("T", [("a", INT), ("b", INT)]),
            [(1, 2), (1, 2), (1, 3)],
        )
        trie = build_trie(r, ["a", "b"])
        assert trie[1][2] == 2
        assert trie[1][3] == 1

    def test_tuple_count_roundtrip(self):
        trie = build_trie(relation(), ["store"])
        assert trie_tuple_count(trie, 1) == relation().tuple_count()

    def test_iter_leaves(self):
        trie = build_trie(relation(), ["store", "item"])
        paths = {path for path, _ in iter_trie_leaves(trie, 2)}
        assert (1, 10) in paths and (2, 10) in paths


class TestSortedTrie:
    def test_keys_sorted(self):
        t = SortedTrie([(3, "c"), (1, "a"), (2, "b")])
        assert t.keys == [1, 2, 3]

    def test_get_hits_and_misses(self):
        t = SortedTrie([(1, "a"), (3, "c")])
        assert t.get(1) == "a"
        assert t.get(2, "missing") == "missing"
        assert t.get(3) == "c"

    def test_ascending_probe_sequence_uses_cursor(self):
        t = SortedTrie([(i, i * 10) for i in range(100)])
        for k in range(100):
            assert t.get(k) == k * 10

    def test_backwards_probe_still_correct(self):
        t = SortedTrie([(i, i) for i in range(10)])
        assert t.get(8) == 8
        assert t.get(2) == 2  # cursor behind: falls back to full search
        assert t.get(9) == 9

    def test_build_sorted_trie_nested(self):
        t = build_sorted_trie(relation(), ["store", "item"])
        level2 = t.get(1)
        assert isinstance(level2, SortedTrie)
        assert level2.keys == [10, 11]

    def test_iteration(self):
        t = SortedTrie([(2, "b"), (1, "a")])
        assert list(t) == [(1, "a"), (2, "b")]
