"""CSV round-tripping with typed parsing."""

import pytest

from repro.db import Relation, RelationSchema
from repro.db.csv_io import load_csv, save_csv
from repro.ir.types import INT, REAL, STRING


def schema():
    return RelationSchema.of("T", [("k", INT), ("name", STRING), ("v", REAL)])


def test_roundtrip(tmp_path):
    r = Relation.from_rows(schema(), [(1, "a", 2.5), (2, "b", 3.0)])
    path = tmp_path / "t.csv"
    save_csv(r, path)
    back = load_csv(path, schema())
    assert back.data == r.data


def test_multiplicities_expand_and_recollect(tmp_path):
    r = Relation.from_rows(schema(), [(1, "a", 2.5), (1, "a", 2.5)])
    path = tmp_path / "t.csv"
    save_csv(r, path)
    back = load_csv(path, schema())
    assert back.tuple_count() == 2
    assert back.distinct_count() == 1


def test_typed_parsing(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("k,name,v\n7,x,1.25\n")
    r = load_csv(path, schema())
    rec = next(iter(r.data))
    assert rec["k"] == 7 and isinstance(rec["k"], int)
    assert rec["v"] == 1.25 and isinstance(rec["v"], float)
    assert rec["name"] == "x"


def test_header_mismatch_raises(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("wrong,header,names\n1,x,2.0\n")
    with pytest.raises(ValueError, match="header"):
        load_csv(path, schema())


def test_row_arity_mismatch_raises(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("k,name,v\n1,x\n")
    with pytest.raises(ValueError, match="cells"):
        load_csv(path, schema())


def test_no_header_mode(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("1,x,2.0\n")
    r = load_csv(path, schema(), has_header=False)
    assert r.tuple_count() == 1
