"""Streaming-append semantics: Relation/Database.append_rows.

The invariant everything downstream builds on: a pure append leaves
``list(relation.data)`` with its old prefix verbatim and the new
distinct records at the end, in insertion order.
"""

from __future__ import annotations

import pytest

from repro.db import Database, Relation, RelationSchema
from repro.ir.types import INT, REAL


def sales_relation():
    return Relation.from_rows(
        RelationSchema.of("S", [("item", INT), ("store", INT), ("units", REAL)]),
        [(0, 0, 1.0), (1, 0, 2.0), (0, 1, 3.0)],
    )


class TestRelationAppend:
    def test_pure_append_extends_record_order(self):
        rel = sales_relation()
        before = list(rel.data)
        delta = rel.append_rows([(2, 1, 4.0), (3, 0, 5.0)])
        assert delta.pure_append
        assert delta.fresh == 2 and delta.bumped == 0
        assert delta.old_records == 3 and delta.new_records == 5
        after = list(rel.data)
        assert after[: len(before)] == before  # old prefix untouched
        assert len(after) == 5

    def test_duplicate_of_existing_record_is_a_bump(self):
        rel = sales_relation()
        delta = rel.append_rows([(0, 0, 1.0)])  # equals an existing record
        assert not delta.pure_append
        assert delta.bumped == 1 and delta.fresh == 0
        assert rel.data[list(rel.data)[0]] == 2  # multiplicity raised

    def test_within_batch_duplicates_stay_pure(self):
        rel = sales_relation()
        delta = rel.append_rows([(7, 7, 9.0), (7, 7, 9.0)])
        assert delta.pure_append
        assert delta.fresh == 2 and delta.bumped == 0
        assert delta.new_records == delta.old_records + 1
        assert rel.data[list(rel.data)[-1]] == 2

    def test_arity_mismatch_raises(self):
        rel = sales_relation()
        with pytest.raises(ValueError, match="arity"):
            rel.append_rows([(1, 2)])


class TestDatabaseAppend:
    def test_append_bumps_only_that_relations_version(self):
        db = Database.of(
            sales_relation(),
            Relation.from_rows(
                RelationSchema.of("R", [("store", INT), ("cityf", REAL)]),
                [(0, 1.5), (1, 2.5)],
            ),
        )
        assert db.relation_version("S") == 0
        delta = db.append_rows("S", [(5, 1, 6.0)])
        assert delta.relation == "S" and delta.pure_append
        assert db.relation_version("S") == 1
        assert db.relation_version("R") == 0
        db.append_rows("S", [(6, 0, 7.0)])
        assert db.relation_version("S") == 2

    def test_version_vector_is_sorted_and_hashable(self):
        db = Database.of(
            sales_relation(),
            Relation.from_rows(
                RelationSchema.of("R", [("store", INT), ("cityf", REAL)]),
                [(0, 1.5)],
            ),
        )
        v0 = db.version_vector()
        assert v0 == (("R", 0), ("S", 0))
        hash(v0)  # usable inside coalescing keys
        db.append_rows("R", [(9, 3.5)])
        assert db.version_vector() == (("R", 1), ("S", 0))
        assert db.version_vector() != v0

    def test_unknown_relation_raises(self):
        db = Database.of(sales_relation())
        with pytest.raises(KeyError):
            db.append_rows("missing", [(1, 2, 3.0)])
