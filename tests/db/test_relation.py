"""Relations: construction, bag semantics, layouts."""

import pytest

from repro.db import Relation, RelationSchema
from repro.ir.types import INT, REAL, STRING
from repro.runtime.values import DictValue, RecordValue


def schema():
    return RelationSchema.of("T", [("k", INT), ("v", REAL)])


class TestConstruction:
    def test_from_rows(self):
        r = Relation.from_rows(schema(), [(1, 2.0), (2, 3.0)])
        assert r.tuple_count() == 2
        assert r.distinct_count() == 2

    def test_duplicates_accumulate_multiplicity(self):
        r = Relation.from_rows(schema(), [(1, 2.0), (1, 2.0)])
        assert r.tuple_count() == 2
        assert r.distinct_count() == 1
        assert r.data[RecordValue({"k": 1, "v": 2.0})] == 2

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError, match="arity"):
            Relation.from_rows(schema(), [(1,)])

    def test_from_dicts(self):
        r = Relation.from_dicts(schema(), [{"v": 2.0, "k": 1}])
        assert r.tuple_count() == 1


class TestAccessors:
    def test_attribute_values_respect_multiplicity(self):
        r = Relation.from_rows(schema(), [(1, 2.0), (1, 2.0), (2, 5.0)])
        assert sorted(r.attribute_values("v")) == [2.0, 2.0, 5.0]

    def test_active_domain_sorted_distinct(self):
        r = Relation.from_rows(schema(), [(3, 1.0), (1, 1.0), (3, 2.0)])
        assert r.active_domain("k") == [1, 3]

    def test_filter(self):
        r = Relation.from_rows(schema(), [(1, 2.0), (2, 9.0)])
        out = r.filter(lambda rec: rec["v"] > 5)
        assert out.tuple_count() == 1

    def test_project_accumulates(self):
        r = Relation.from_rows(schema(), [(1, 2.0), (1, 9.0)])
        out = r.project(["k"])
        assert out.data[RecordValue({"k": 1})] == 2

    def test_estimated_size(self):
        r = Relation.from_rows(schema(), [(1, 2.0)])
        assert r.estimated_size_bytes() == 2 * 8


class TestLayouts:
    def test_to_value_is_dict_value(self):
        r = Relation.from_rows(schema(), [(1, 2.0)])
        v = r.to_value()
        assert isinstance(v, DictValue)
        assert v[RecordValue({"k": 1, "v": 2.0})] == 1

    def test_to_array(self):
        r = Relation.from_rows(schema(), [(1, 2.0), (2, 3.0)])
        arr = r.to_array()
        assert len(arr) == 2
        assert all(isinstance(rec, RecordValue) for rec, _ in arr)


class TestSchema:
    def test_tuple_type(self):
        t = schema().tuple_type()
        assert t.field_names() == ("k", "v")

    def test_ifaq_type(self):
        from repro.ir.types import DictType

        assert isinstance(schema().ifaq_type(), DictType)

    def test_attribute_type_lookup(self):
        assert schema().attribute_type("v") == REAL
        with pytest.raises(KeyError):
            schema().attribute_type("zz")
