"""Join queries: materialization, natural-join semantics, IFAQ emission."""

import pytest

from repro.db import Database, JoinQuery, Relation, RelationSchema, join_as_ifaq, materialize_join
from repro.interp import evaluate
from repro.ir.types import INT, REAL, STRING
from repro.runtime.values import RecordValue


class TestMaterializeJoin:
    def test_natural_join_on_shared_attr(self):
        a = Relation.from_rows(
            RelationSchema.of("A", [("k", INT), ("x", REAL)]), [(1, 1.0), (2, 2.0)]
        )
        b = Relation.from_rows(
            RelationSchema.of("B", [("k", INT), ("y", REAL)]), [(1, 10.0), (1, 20.0)]
        )
        out = materialize_join(Database.of(a, b), JoinQuery(("A", "B")))
        assert out.tuple_count() == 2  # only k=1 matches, twice
        assert set(out.schema.attribute_names()) == {"k", "x", "y"}

    def test_multiplicities_multiply(self):
        a = Relation.from_rows(
            RelationSchema.of("A", [("k", INT)]), [(1,), (1,)]
        )
        b = Relation.from_rows(
            RelationSchema.of("B", [("k", INT), ("y", REAL)]), [(1, 5.0), (1, 5.0)]
        )
        out = materialize_join(Database.of(a, b), JoinQuery(("A", "B")))
        assert out.data[RecordValue({"k": 1, "y": 5.0})] == 4

    def test_projection(self):
        a = Relation.from_rows(
            RelationSchema.of("A", [("k", INT), ("x", REAL)]), [(1, 1.0)]
        )
        b = Relation.from_rows(
            RelationSchema.of("B", [("k", INT), ("y", REAL)]), [(1, 10.0)]
        )
        q = JoinQuery(("A", "B"), output_attrs=("x", "y"))
        out = materialize_join(Database.of(a, b), q)
        assert set(out.schema.attribute_names()) == {"x", "y"}

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            materialize_join(Database(), JoinQuery(()))

    def test_three_way(self, paper_db, paper_query):
        out = materialize_join(paper_db, paper_query)
        assert out.tuple_count() == paper_db.relation("S").tuple_count()


class TestJoinAsIfaq:
    def test_matches_hash_join(self, paper_db, paper_query):
        expr = join_as_ifaq(paper_db.schema(), paper_query)
        assert evaluate(expr, paper_db.to_env()) == materialize_join(
            paper_db, paper_query
        ).to_value()

    def test_non_joining_tuples_vanish(self):
        a = Relation.from_rows(RelationSchema.of("A", [("k", INT)]), [(1,), (2,)])
        b = Relation.from_rows(
            RelationSchema.of("B", [("k", INT), ("y", REAL)]), [(1, 3.0)]
        )
        db = Database.of(a, b)
        value = evaluate(join_as_ifaq(db.schema(), JoinQuery(("A", "B"))), db.to_env())
        assert len(value) == 1


class TestJoinQueryHelpers:
    def test_output_attributes_default_order(self, paper_db, paper_query):
        attrs = paper_query.output_attributes(paper_db.schema())
        assert attrs[0] == "item"  # fact table first, first-seen order
        assert set(attrs) == {"item", "store", "units", "cityf", "price"}

    def test_join_attributes_edges(self, paper_db, paper_query):
        edges = paper_query.join_attributes(paper_db.schema())
        assert edges[("S", "R")] == ("store",)
        assert edges[("S", "I")] == ("item",)


class TestDatabase:
    def test_schema_join_graph(self, paper_db):
        graph = paper_db.schema().join_graph()
        assert ("S", "R") in graph and ("S", "I") in graph

    def test_missing_relation_error_lists_available(self, paper_db):
        with pytest.raises(KeyError, match="available"):
            paper_db.relation("Nope")

    def test_statistics(self, paper_db):
        stats = paper_db.statistics()
        assert stats["S"] == 5
