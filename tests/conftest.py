"""Shared fixtures: the paper's running-example database and friends."""

from __future__ import annotations

import pytest

from repro.db import Database, JoinQuery, Relation, RelationSchema
from repro.ir.types import INT, REAL, STRING


@pytest.fixture
def paper_db() -> Database:
    """The Example 3.1 schema: Sales ⋈ StoRes ⋈ Items.

    ``cityf`` replaces the categorical ``city`` with a continuous stand-in
    (the paper's runtime experiments use continuous attributes only).
    """
    sales = Relation.from_rows(
        RelationSchema.of(
            "S", [("item", STRING), ("store", STRING), ("units", REAL)]
        ),
        [
            ("i1", "s1", 3.0),
            ("i1", "s2", 1.0),
            ("i2", "s1", 2.0),
            ("i2", "s2", 4.0),
            ("i3", "s1", 5.0),
        ],
    )
    stores = Relation.from_rows(
        RelationSchema.of("R", [("store", STRING), ("cityf", REAL)]),
        [("s1", 1.5), ("s2", 2.5)],
    )
    items = Relation.from_rows(
        RelationSchema.of("I", [("item", STRING), ("price", REAL)]),
        [("i1", 10.0), ("i2", 20.0), ("i3", 15.0)],
    )
    return Database.of(sales, stores, items)


@pytest.fixture
def paper_query() -> JoinQuery:
    return JoinQuery(("S", "R", "I"))


@pytest.fixture
def int_star_db() -> Database:
    """A small integer-keyed star join usable by every backend."""
    import random

    rng = random.Random(17)
    n_items, n_stores, n_sales = 12, 5, 200
    sales = Relation.from_rows(
        RelationSchema.of("S", [("item", INT), ("store", INT), ("units", REAL)]),
        [
            (rng.randrange(n_items), rng.randrange(n_stores), round(rng.uniform(0, 10), 2))
            for _ in range(n_sales)
        ],
    )
    stores = Relation.from_rows(
        RelationSchema.of("R", [("store", INT), ("cityf", REAL)]),
        [(s, round(rng.uniform(1, 5), 2)) for s in range(n_stores)],
    )
    items = Relation.from_rows(
        RelationSchema.of("I", [("item", INT), ("price", REAL)]),
        [(i, round(rng.uniform(5, 50), 2)) for i in range(n_items)],
    )
    return Database.of(sales, stores, items)


@pytest.fixture
def int_star_query() -> JoinQuery:
    return JoinQuery(("S", "R", "I"))


def pytest_configure(config):
    from repro.backend.compile_cpp import gxx_available

    config._gxx = gxx_available()


def pytest_collection_modifyitems(config, items):
    import pytest as _pytest

    if getattr(config, "_gxx", False):
        return
    skip_cpp = _pytest.mark.skip(reason="g++ not available")
    for item in items:
        if "cpp" in item.keywords:
            item.add_marker(skip_cpp)
