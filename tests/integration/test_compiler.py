"""The IFAQ compiler driver: stage artifacts and backend agreement."""

import math

import pytest

from repro.compiler import IFAQCompiler
from repro.data import star_schema
from repro.ml.programs import linear_regression_bgd


@pytest.fixture(scope="module")
def setup():
    ds = star_schema(n_facts=600, n_dims=2, dim_size=15, attrs_per_dim=1, seed=2)
    program = linear_regression_bgd(
        ds.db.schema(), ds.query, ds.features, ds.label, iterations=10, alpha=0.05
    )
    return ds, program


class TestArtifacts:
    def test_stages_recorded(self, setup):
        ds, program = setup
        compiler = IFAQCompiler(db=ds.db, query=ds.query)
        artifacts = compiler.compile(program)
        assert artifacts.source is program
        assert artifacts.optimized is not program
        assert artifacts.specialized is not artifacts.optimized
        assert artifacts.join_tree is not None
        assert artifacts.plan is not None
        assert artifacts.kernel_source and "def kernel" in artifacts.kernel_source

    def test_q_eliminated_from_residual(self, setup):
        ds, program = setup
        artifacts = IFAQCompiler(db=ds.db, query=ds.query).compile(program)
        assert all(name != "Q" for name, _ in artifacts.residual.inits)

    def test_batch_covers_covar_and_label(self, setup):
        ds, program = setup
        artifacts = IFAQCompiler(db=ds.db, query=ds.query).compile(program)
        names = artifacts.batch.names()
        # count (from |Q|), second moments, and label correlations
        assert "agg_count" in names
        assert any("a0_0" in n and "a1_0" in n for n in names)
        assert any(ds.label in n for n in names)

    def test_state_type_is_record(self, setup):
        from repro.ir.types import RecordType

        ds, program = setup
        artifacts = IFAQCompiler(db=ds.db, query=ds.query).compile(program)
        assert isinstance(artifacts.state_type, RecordType)


class TestBackendAgreement:
    def test_engine_modes_agree(self, setup):
        ds, program = setup
        results = {}
        for mode in ("materialized", "pushdown", "merged", "trie"):
            compiler = IFAQCompiler(
                db=ds.db, query=ds.query, aggregate_mode=mode, backend="engine"
            )
            state = compiler.run(program)
            results[mode] = {
                k: state["theta"][k] for k in state["theta"].field_names()
            }
        reference = results["materialized"]
        for mode, theta in results.items():
            for k in reference:
                assert math.isclose(theta[k], reference[k], rel_tol=1e-8), (mode, k)

    def test_python_backend_agrees(self, setup):
        ds, program = setup
        engine_state = IFAQCompiler(
            db=ds.db, query=ds.query, backend="engine"
        ).run(program)
        python_state = IFAQCompiler(
            db=ds.db, query=ds.query, backend="python"
        ).run(program)
        for k in engine_state["theta"].field_names():
            assert math.isclose(
                engine_state["theta"][k], python_state["theta"][k], rel_tol=1e-8
            )

    @pytest.mark.cpp
    def test_cpp_backend_agrees(self, setup):
        ds, program = setup
        engine_state = IFAQCompiler(db=ds.db, query=ds.query, backend="engine").run(program)
        cpp_state = IFAQCompiler(db=ds.db, query=ds.query, backend="cpp").run(program)
        for k in engine_state["theta"].field_names():
            assert math.isclose(
                engine_state["theta"][k], cpp_state["theta"][k], rel_tol=1e-8
            )
