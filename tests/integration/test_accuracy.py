"""Section 5 accuracy claims on the synthetic Retailer and Favorita."""

import numpy as np
import pytest

from repro.data import favorita, retailer
from repro.ml import (
    BaselineRegressionTree,
    IFAQLinearRegression,
    IFAQRegressionTree,
    ScikitStyleLinearRegression,
    TensorFlowStyleLinearRegression,
    rmse,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module", params=["favorita", "retailer"])
def dataset(request):
    make = favorita if request.param == "favorita" else retailer
    return make(scale=0.04, seed=3)


def test_ifaq_rmse_within_one_percent_of_closed_form(dataset):
    """Paper: 'the RMSE for IFAQ is within 1% of the closed form solution'."""
    ds = dataset
    model = IFAQLinearRegression(
        ds.features, ds.label, iterations=1000, alpha=1.0
    ).fit(ds.db, ds.query)
    closed = ScikitStyleLinearRegression(ds.features, ds.label).fit(ds.db, ds.query)
    xt, yt = ds.test_matrix()
    r_ifaq = rmse(model.predict_many(xt), yt)
    r_closed = rmse(closed.predict_many(xt), yt)
    assert r_ifaq <= r_closed * 1.01


def test_tensorflow_single_epoch_is_no_better(dataset):
    """Paper: TF needs more epochs to reach IFAQ's accuracy."""
    ds = dataset
    model = IFAQLinearRegression(
        ds.features, ds.label, iterations=1000, alpha=1.0
    ).fit(ds.db, ds.query)
    tf = TensorFlowStyleLinearRegression(
        ds.features, ds.label, batch_size=2000, learning_rate=0.1
    ).fit(ds.db, ds.query)
    xt, yt = ds.test_matrix()
    assert rmse(tf.predict_many(xt), yt) >= rmse(model.predict_many(xt), yt) - 1e-9


def test_trees_match_scikit_style_cart(dataset):
    """Paper: 'Scikit-learn and IFAQ learn very similar regression trees'."""
    ds = dataset
    features = ds.features[:5]
    ifaq = IFAQRegressionTree(features, ds.label, max_depth=2).fit(ds.db, ds.query)
    base = BaselineRegressionTree(features, ds.label, max_depth=2).fit(ds.db, ds.query)

    xt, yt = ds.test_matrix()
    cols = [ds.features.index(f) for f in features]
    preds_ifaq = np.array(
        [ifaq.predict(dict(zip(features, row))) for row in xt[:, cols][:1500]]
    )
    preds_base = base.predict_many(xt[:, cols][:1500])
    # identical threshold strategy → identical trees → identical predictions
    assert np.allclose(preds_ifaq, preds_base)
