"""Packaging for the IFAQ reproduction (conf_cgo_ShaikhhaSGO20)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="ifaq-repro",
    version=VERSION,
    description=(
        "Multi-layer optimizations for end-to-end data analytics (IFAQ, "
        "CGO 2020): factorized in-database learning with pluggable "
        "engine/Python/C++ execution backends, kernel caching and "
        "sharded parallel evaluation"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text()
    if (Path(__file__).parent / "README.md").exists()
    else "",
    long_description_content_type="text/markdown",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: Database",
    ],
)
