"""Figure 5 (left) — end-to-end linear regression.

Per dataset × size, the paper plots IFAQ against scikit-learn and
TensorFlow, with the competitors' bars split into (1) training-dataset
materialization and (2) learning.  Here:

* ``ifaq``      — factorized covar batch (generated kernel; C++ when
                  g++ exists) + BGD over the covar matrix, end to end;
* ``materialize`` — the join materialization both competitors share;
* ``scikit_learn_step`` — closed-form OLS over the materialized matrix;
* ``tensorflow_learn_step`` — one epoch of minibatch SGD.

The paper's claim to check in the timing table: the ``ifaq`` row beats
even the bare ``materialize`` row, for every dataset and size.  RMSE
parity (within 1% of closed form) is asserted inline.
"""

import numpy as np
import pytest

from benchmarks.conftest import ifaq_backend, load_dataset
from repro.bench import emit, emit_header, format_seconds
from repro.ml import (
    IFAQLinearRegression,
    ScikitStyleLinearRegression,
    TensorFlowStyleLinearRegression,
    materialize_to_matrix,
    rmse,
)

CASES = [
    (name, size) for name in ("favorita", "retailer") for size in ("small", "large")
]


def _group(name, size):
    return f"fig5-linreg-{name}-{size}"


@pytest.mark.parametrize("name,size", CASES)
def test_ifaq_end_to_end(benchmark, name, size):
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    model = IFAQLinearRegression(
        ds.features, ds.label, iterations=50, alpha=1.0, backend=ifaq_backend()
    )

    fitted = benchmark.pedantic(lambda: model.fit(ds.db, ds.query), rounds=3, iterations=1, warmup_rounds=1)

    xt, yt = ds.test_matrix()
    r_ifaq = rmse(fitted.predict_many(xt), yt)
    closed = ScikitStyleLinearRegression(ds.features, ds.label).fit(ds.db, ds.query)
    r_closed = rmse(closed.predict_many(xt), yt)
    emit_header(f"Figure 5 LR — {ds.name} [{size}] (backend={ifaq_backend()})")
    emit(f"  IFAQ RMSE {r_ifaq:.4f} vs closed-form {r_closed:.4f} "
         f"(ratio {r_ifaq / r_closed:.4f})")
    assert r_ifaq <= r_closed * 1.02


@pytest.mark.parametrize("name,size", CASES)
def test_competitors_materialize_step(benchmark, name, size):
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    x, y = benchmark.pedantic(
        lambda: materialize_to_matrix(ds.db, ds.query, ds.features, ds.label),
        rounds=2, iterations=1,
    )
    assert x.shape[0] == y.shape[0] > 0


@pytest.mark.parametrize("name,size", CASES)
def test_scikit_learn_step(benchmark, name, size):
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
    model = ScikitStyleLinearRegression(ds.features, ds.label)
    benchmark(lambda: model.learn(x, y))


@pytest.mark.parametrize("name,size", CASES)
def test_tensorflow_learn_step(benchmark, name, size):
    ds = load_dataset(name, size)
    benchmark.group = _group(name, size)
    x, y = materialize_to_matrix(ds.db, ds.query, ds.features, ds.label)
    model = TensorFlowStyleLinearRegression(
        ds.features, ds.label, batch_size=10_000, learning_rate=0.1
    )
    benchmark(lambda: model.learn(x, y))
